// Tests for the performance-model module: the paper's analytical BFS
// model, trace extraction, scheduling simulators, the machine execution
// model, and the qualitative shapes of the paper's findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "micg/graph/generators.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/graph/suite.hpp"
#include "micg/model/bfs_model.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/sched_model.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::model::bfs_model_speedup;
using micg::model::machine_config;
using micg::model::parallel_step;
using micg::model::work_item;
using micg::model::work_trace;
using micg::rt::backend;

// ------------------------------------------------------- paper's BFS model

TEST(BfsModel, LevelCostFormula) {
  // x < b: one thread processes it at cost x.
  EXPECT_DOUBLE_EQ(micg::model::bfs_level_cost(10, 8, 32), 10.0);
  // x >= b: ceil(x/(t*b)) rounds of b.
  // x=100, t=2, b=32: ceil(100/64)=2 rounds -> 64.
  EXPECT_DOUBLE_EQ(micg::model::bfs_level_cost(100, 2, 32), 64.0);
  // Exactly one round.
  EXPECT_DOUBLE_EQ(micg::model::bfs_level_cost(64, 2, 32), 32.0);
}

TEST(BfsModel, ChainHasNoParallelism) {
  // "consider a graph that is a very long chain, the layered BFS
  // algorithm will not be able expose any parallelism" (SIII-C).
  std::vector<std::size_t> chain(1000, 1);
  for (int t : {1, 4, 16, 121}) {
    EXPECT_DOUBLE_EQ(bfs_model_speedup(chain, t, 32), 1.0) << t;
  }
}

TEST(BfsModel, WideLevelsScaleLinearly) {
  std::vector<std::size_t> wide{320000, 320000, 320000};
  // Far more blocks than threads: near-perfect speedup.
  EXPECT_NEAR(bfs_model_speedup(wide, 10, 32), 10.0, 0.1);
  EXPECT_NEAR(bfs_model_speedup(wide, 100, 32), 100.0, 1.0);
}

TEST(BfsModel, SpeedupMonotoneInThreads) {
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("inline_1"), 0.02);
  const auto ref = micg::bfs::seq_bfs(g, g.num_vertices() / 2);
  double prev = 0.0;
  for (int t : micg::model::paper_thread_grid(121)) {
    const double s = bfs_model_speedup(ref.frontier_sizes, t, 32);
    EXPECT_GE(s, prev - 1e-9) << "threads " << t;
    prev = s;
  }
}

TEST(BfsModel, PwtkSaturatesBelowWiderGraphs) {
  // pwtk's long, narrow level structure caps its achievable speedup at
  // about half of inline_1's (Figure 4a vs 4b).
  const double scale = 0.05;
  auto pwtk = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("pwtk"), scale);
  auto inline1 = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("inline_1"), scale);
  const auto rp = micg::bfs::seq_bfs(pwtk, pwtk.num_vertices() / 2);
  const auto ri = micg::bfs::seq_bfs(inline1, inline1.num_vertices() / 2);
  const double sp = bfs_model_speedup(rp.frontier_sizes, 121, 32);
  const double si = bfs_model_speedup(ri.frontier_sizes, 121, 32);
  EXPECT_GT(si, 1.7 * sp);
}

TEST(BfsModel, RejectsBadArgs) {
  std::vector<std::size_t> f{1, 2};
  EXPECT_THROW(micg::model::bfs_level_cost(1, 0, 32), micg::check_error);
  EXPECT_THROW(micg::model::bfs_level_cost(1, 1, 0), micg::check_error);
}

// ---------------------------------------------------- batched (msbfs) model

TEST(MsbfsModel, SingleSourceDegeneratesToBfsModel) {
  // One lane: the union frontier IS the source's frontier and the source
  // work is its total, so the batched model reproduces the paper's model.
  std::vector<std::size_t> frontier{1, 4, 16, 64, 16, 4, 1};
  double work = 0.0;
  for (std::size_t x : frontier) work += static_cast<double>(x);
  for (int t : {1, 4, 31, 121}) {
    EXPECT_DOUBLE_EQ(
        micg::model::msbfs_model_speedup(frontier, work, t, 32),
        micg::model::bfs_model_speedup(frontier, t, 32))
        << t;
  }
}

TEST(MsbfsModel, SharedSweepMultipliesChainThroughput) {
  // 64 sources on a chain that all discover the same union frontier: the
  // layered model is stuck at 1, but the batch does 64 traversals' work in
  // one sweep, so throughput is 64x even with one thread.
  std::vector<std::size_t> union_frontier(1000, 1);
  const double work = 64.0 * 1000.0;
  EXPECT_DOUBLE_EQ(
      micg::model::msbfs_model_speedup(union_frontier, work, 1, 32), 64.0);
  EXPECT_DOUBLE_EQ(micg::model::bfs_model_speedup(union_frontier, 1, 32),
                   1.0);
}

TEST(MsbfsModel, ThroughputMonotoneInThreadsAndLanes) {
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("inline_1"), 0.02);
  const auto ref = micg::bfs::seq_bfs(g, g.num_vertices() / 2);
  double ref_work = 0.0;
  for (std::size_t x : ref.frontier_sizes) {
    ref_work += static_cast<double>(x);
  }
  // Lanes overlap heavily on a small-world-ish graph: the union frontier
  // stays close to one source's, while the work scales with lanes.
  double prev = 0.0;
  for (int lanes : {1, 8, 64}) {
    const double s = micg::model::msbfs_model_speedup(
        ref.frontier_sizes, lanes * ref_work, 8, 32);
    EXPECT_GT(s, prev) << lanes;
    prev = s;
  }
  const auto grid = micg::model::paper_thread_grid(121);
  const auto curve = micg::model::msbfs_model_curve(
      ref.frontier_sizes, 64 * ref_work, grid, 32);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-9) << grid[i];
  }
}

TEST(MsbfsModel, RejectsNegativeWork) {
  std::vector<std::size_t> f{1, 2};
  EXPECT_THROW(micg::model::msbfs_model_speedup(f, -1.0, 1, 32),
               micg::check_error);
}

// ----------------------------------------------------------------- machine

TEST(Machine, KncProjectionScalesColoringFurther) {
  // §VI: ">50 cores ... will make the Intel MIC architecture a very
  // attractive component" — the shuffled (latency-bound) workload should
  // keep scaling on the bigger chip.
  // Needs a big enough graph that 224 threads have work per round
  // (at tiny scales per-step barriers dominate and more threads lose).
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("hood"), 0.1);
  const auto trace = micg::model::coloring_trace(g, /*shuffled=*/true);
  micg::model::exec_options o;
  o.policy = backend::omp_dynamic;
  o.chunk = 100;
  o.threads = 121;
  const double knf =
      micg::model::model_speedup(trace, o, machine_config::knf());
  o.threads = 57 * 4 - 4;
  const double knc =
      micg::model::model_speedup(trace, o, machine_config::knc());
  EXPECT_GT(knc, knf);
}

TEST(Machine, PresetsMatchPaperTopology) {
  const auto knf = machine_config::knf();
  EXPECT_EQ(knf.cores, 31);  // "exposes 31 computational cores" (SV-A)
  EXPECT_EQ(knf.smt, 4);
  const auto host = machine_config::host_xeon();
  EXPECT_EQ(host.cores, 12);  // dual X5680
  EXPECT_EQ(host.smt, 2);
  EXPECT_EQ(machine_config::knc().cores, 57);
}

// ------------------------------------------------------------------ traces

TEST(TraceGen, IrregularTraceScalesCpuNotMem) {
  auto g = micg::graph::make_grid_2d(30, 30);
  const auto t1 = micg::model::irregular_trace(g, 1);
  const auto t10 = micg::model::irregular_trace(g, 10);
  EXPECT_NEAR(t10.total_cpu() / t1.total_cpu(), 10.0, 0.01);
  // "memory traffic does not scale with iterations" (SIII-B).
  EXPECT_DOUBLE_EQ(t10.total_mem(), t1.total_mem());
  EXPECT_EQ(t1.steps.size(), 1u);
  EXPECT_EQ(t1.total_items(), 900u);
}

TEST(TraceGen, ColoringTraceHasTwoStepsPerRound) {
  auto g = micg::graph::make_erdos_renyi(2000, 10.0, 3);
  const auto trace = micg::model::coloring_trace(g, false);
  EXPECT_GE(trace.steps.size(), 2u);
  EXPECT_EQ(trace.steps.size() % 2, 0u);
  // Round zero visits every vertex in both phases.
  EXPECT_EQ(trace.steps[0].items.size(), 2000u);
  EXPECT_EQ(trace.steps[1].items.size(), 2000u);
  // Later rounds shrink.
  if (trace.steps.size() > 2) {
    EXPECT_LT(trace.steps[2].items.size(), 2000u);
  }
}

TEST(TraceGen, ShuffledColoringCostsMoreMemory) {
  auto g = micg::graph::make_grid_2d(40, 40);
  const auto nat = micg::model::coloring_trace(g, false);
  const auto shuf = micg::model::coloring_trace(g, true);
  EXPECT_GT(shuf.total_mem(), 2.0 * nat.total_mem());
  EXPECT_GT(shuf.cache_gain, nat.cache_gain);
}

TEST(TraceGen, BfsTraceMatchesLevelStructure) {
  auto g = micg::graph::make_kary_tree(2, 8);  // 255 vertices, 8 levels
  micg::model::bfs_trace_options opt;
  const auto trace = micg::model::bfs_trace(g, 0, opt);
  ASSERT_EQ(trace.steps.size(), 8u);
  EXPECT_EQ(trace.steps[0].items.size(), 1u);
  EXPECT_EQ(trace.steps[7].items.size(), 128u);
}

TEST(TraceGen, BfsVariantCostsOrdered) {
  auto g = micg::graph::make_grid_2d(40, 40);
  micg::model::bfs_trace_options relaxed;
  relaxed.frontier = micg::model::bfs_frontier::block;
  relaxed.relaxed = true;
  micg::model::bfs_trace_options locked = relaxed;
  locked.relaxed = false;
  micg::model::bfs_trace_options bag;
  bag.frontier = micg::model::bfs_frontier::bag;
  const auto tr = micg::model::bfs_trace(g, 0, relaxed);
  const auto tl = micg::model::bfs_trace(g, 0, locked);
  const auto tb = micg::model::bfs_trace(g, 0, bag);
  // Locked insertion costs more than relaxed (SV-D: relaxed queues were
  // consistently better); the bag costs more memory (pointer chasing).
  EXPECT_GT(tl.total_cpu(), tr.total_cpu());
  EXPECT_GT(tb.total_mem(), tr.total_mem());
}

// ------------------------------------------------------------- sched model

parallel_step homogeneous_step(std::size_t n, double cpu, double stall,
                               double mem) {
  parallel_step s;
  s.items.assign(n, work_item{cpu, stall, mem});
  return s;
}

class SchedPolicy : public ::testing::TestWithParam<backend> {};

TEST_P(SchedPolicy, ConservesWork) {
  const auto m = machine_config::knf();
  const auto step = homogeneous_step(5000, 10.0, 2.0, 1.0);
  for (int threads : {1, 4, 31, 121}) {
    const auto loads =
        micg::model::assign_step(step, GetParam(), threads, 64, m);
    ASSERT_EQ(loads.size(), static_cast<std::size_t>(threads));
    double cpu = 0.0, memv = 0.0;
    for (const auto& ld : loads) {
      cpu += ld.cpu_ops;
      memv += ld.mem_ops;
    }
    // cpu may be inflated by tax/jitter but never lost.
    EXPECT_GE(cpu, 5000.0 * 10.0 - 1e-6) << threads;
    EXPECT_LE(cpu, 5000.0 * 10.0 * 2.0) << threads;
    EXPECT_GE(memv, 5000.0 * 1.0 - 1e-6) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedPolicy,
                         ::testing::ValuesIn(micg::rt::all_backends()),
                         [](const auto& info) {
                           std::string n =
                               micg::rt::backend_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SchedModel, WsTaskCostGrowsWithThreads) {
  const auto m = machine_config::knf();
  EXPECT_GT(micg::model::ws_task_cost(backend::cilk_holder, 121, m),
            micg::model::ws_task_cost(backend::cilk_holder, 11, m));
  // Cilk pays more per task than TBB-simple (Figure 1 ranking).
  EXPECT_GT(micg::model::ws_task_cost(backend::cilk_holder, 121, m),
            micg::model::ws_task_cost(backend::tbb_simple, 121, m));
  // OpenMP loop schedules pay no task cost.
  EXPECT_EQ(micg::model::ws_task_cost(backend::omp_dynamic, 121, m), 0.0);
}

// -------------------------------------------------------------- exec model

TEST(ExecModel, SoloChainIsFullyExposed) {
  const auto m = machine_config::knf();
  std::vector<micg::model::thread_load> loads(1);
  loads[0].cpu_ops = 100.0;
  loads[0].stall_ops = 50.0;
  loads[0].mem_ops = 10.0;
  // In-order core, one thread: cpu + stalls + misses serialize.
  const double t =
      micg::model::step_time(loads, m, /*solo_overlap=*/0.0);
  EXPECT_NEAR(t, 100.0 + 50.0 + 10.0 * m.mem_latency, 1e-9);
  // An out-of-order host hides part of the exposure.
  const double t_ooo = micg::model::step_time(loads, m, 0.5);
  EXPECT_LT(t_ooo, t);
  EXPECT_GT(t_ooo, 100.0);
}

TEST(ExecModel, SmtHidesMemoryLatency) {
  auto m = machine_config::knf();
  m.cores = 1;  // pin every thread onto one core
  // Memory-only work split over k threads of ONE core.
  auto time_with_threads = [&](int k) {
    std::vector<micg::model::thread_load> loads(
        static_cast<std::size_t>(k));
    for (auto& ld : loads) ld.mem_ops = 1000.0 / k;
    return micg::model::step_time(loads, m, 0.0);
  };
  const double t1 = time_with_threads(1);
  const double t4 = time_with_threads(4);
  // 4-way SMT overlaps 4 miss streams: ~4x faster on one core.
  EXPECT_NEAR(t1 / t4, 4.0, 0.2);
}

TEST(ExecModel, PipelineSerializesArithmetic) {
  auto m = machine_config::knf();
  m.cores = 1;  // pin every thread onto one core
  auto time_with_threads = [&](int k) {
    std::vector<micg::model::thread_load> loads(
        static_cast<std::size_t>(k));
    for (auto& ld : loads) ld.cpu_ops = 1000.0 / k;
    return micg::model::step_time(loads, m, 0.0);
  };
  // Pure arithmetic gains nothing from SMT on one core.
  EXPECT_NEAR(time_with_threads(1) / time_with_threads(4), 1.0, 1e-9);
}

TEST(ExecModel, BandwidthCapsAggregateMemory) {
  auto m = machine_config::knf();
  m.chip_mem_ops_per_unit = 0.001;  // starve the chip
  std::vector<micg::model::thread_load> loads(31);
  for (auto& ld : loads) ld.mem_ops = 100.0;
  const double t = micg::model::step_time(loads, m, 0.0);
  EXPECT_NEAR(t, 31.0 * 100.0 / 0.001, 1.0);
}

// ------------------------------------------- end-to-end qualitative shapes

struct Shapes : ::testing::Test {
  static work_trace coloring_nat;
  static work_trace coloring_shuf;
  static machine_config knf;
  static void SetUpTestSuite() {
    auto g = micg::graph::make_suite_graph(
        micg::graph::suite_entry_by_name("hood"), 0.05);
    coloring_nat = micg::model::coloring_trace(g, false);
    coloring_shuf = micg::model::coloring_trace(g, true);
    knf = machine_config::knf();
  }
};
work_trace Shapes::coloring_nat;
work_trace Shapes::coloring_shuf;
machine_config Shapes::knf;

double speedup_at(const work_trace& tr, backend b, int threads,
                  std::int64_t chunk, const machine_config& m) {
  micg::model::exec_options o;
  o.policy = b;
  o.threads = threads;
  o.chunk = chunk;
  return micg::model::model_speedup(tr, o, m);
}

TEST_F(Shapes, ColoringSmtKeepsScalingPastCoreCount) {
  // Figure 1a: the OpenMP-dynamic curve keeps rising well past 31 cores.
  const double s31 = speedup_at(coloring_nat, backend::omp_dynamic, 31,
                                100, knf);
  const double s121 = speedup_at(coloring_nat, backend::omp_dynamic, 121,
                                 100, knf);
  EXPECT_GT(s31, 20.0);
  EXPECT_GT(s121, 1.5 * s31);
}

TEST_F(Shapes, ColoringDynamicBeatsStaticAtScale) {
  // SV-B: "the dynamic scheduling clearly appears to be better than the
  // guided and static scheduling policies" after 51 threads.
  const double dyn = speedup_at(coloring_nat, backend::omp_dynamic, 121,
                                100, knf);
  const double sta = speedup_at(coloring_nat, backend::omp_static, 121,
                                40, knf);
  const double gui = speedup_at(coloring_nat, backend::omp_guided, 121,
                                100, knf);
  EXPECT_GT(dyn, sta);
  EXPECT_GT(dyn, gui);
}

TEST_F(Shapes, ColoringOpenMpBeatsTbbBeatsCilk) {
  // Figure 1: OpenMP ~72 > TBB ~45 > Cilk ~32 at 121 threads.
  const double omp = speedup_at(coloring_nat, backend::omp_dynamic, 121,
                                100, knf);
  const double tbb = speedup_at(coloring_nat, backend::tbb_simple, 121,
                                40, knf);
  const double cilk = speedup_at(coloring_nat, backend::cilk_holder, 121,
                                 100, knf);
  EXPECT_GT(omp, tbb);
  EXPECT_GT(tbb, cilk);
}

TEST_F(Shapes, ShuffledColoringIsSuperlinear) {
  // Figure 2: 153 on 121 threads "despite there are only 121 threads
  // used" — super-linear because the 1-thread baseline is latency-bound.
  const double shuf = speedup_at(coloring_shuf, backend::omp_dynamic, 121,
                                 100, knf);
  const double nat = speedup_at(coloring_nat, backend::omp_dynamic, 121,
                                100, knf);
  EXPECT_GT(shuf, 121.0);
  EXPECT_GT(shuf, 1.5 * nat);
}

TEST_F(Shapes, TbbSimplePartitionerBeatsAutoAndAffinity) {
  // SV-B: "The simple partitioner clearly leads to better speedup in this
  // experiments on 31 threads and more."
  const double simple = speedup_at(coloring_nat, backend::tbb_simple, 121,
                                   40, knf);
  const double auto_p = speedup_at(coloring_nat, backend::tbb_auto, 121,
                                   40, knf);
  const double affinity = speedup_at(coloring_nat, backend::tbb_affinity,
                                     121, 40, knf);
  EXPECT_GT(simple, auto_p);
  EXPECT_GT(simple, affinity);
}

TEST_F(Shapes, CilkPeaksThenDeclines) {
  // Figure 1b: Cilk peaks around 81 threads and declines at 121.
  const double s71 = speedup_at(coloring_nat, backend::cilk_holder, 71,
                                100, knf);
  const double s121 = speedup_at(coloring_nat, backend::cilk_holder, 121,
                                 100, knf);
  EXPECT_GT(s71, s121);
}

TEST(ShapesIrregular, SpeedupDecreasesWithComputation) {
  // Figure 3a: OpenMP speedup decreases as iter grows (FPU contention).
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("msdoor"), 0.05);
  const auto knf = machine_config::knf();
  double prev = 1e9;
  for (int iter : {1, 3, 5, 10}) {
    const auto tr = micg::model::irregular_trace(g, iter);
    const double s =
        speedup_at(tr, backend::omp_dynamic, 121, 100, knf);
    EXPECT_LT(s, prev) << "iter " << iter;
    prev = s;
  }
}

TEST(ShapesIrregular, CilkImprovesWithComputation) {
  // Figure 3b: "the speedup of Cilk Plus increases with the computation
  // since an increase in the amount of computation reduces the scheduling
  // overhead".
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("msdoor"), 0.05);
  const auto knf = machine_config::knf();
  const auto t1 = micg::model::irregular_trace(g, 1);
  const auto t10 = micg::model::irregular_trace(g, 10);
  const double s1 = speedup_at(t1, backend::cilk_holder, 121, 0, knf);
  const double s10 = speedup_at(t10, backend::cilk_holder, 121, 0, knf);
  EXPECT_GT(s10, s1);
}

TEST(ShapesIrregular, SmtStillHelpsAtHighComputation) {
  // SV-C: "SMT can not be ignored since the speedup is almost double on
  // 121 than it is on 31 threads" (iter=10).
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("msdoor"), 0.05);
  const auto knf = machine_config::knf();
  const auto tr = micg::model::irregular_trace(g, 10);
  const double s31 = speedup_at(tr, backend::omp_dynamic, 31, 100, knf);
  const double s121 = speedup_at(tr, backend::omp_dynamic, 121, 100, knf);
  EXPECT_GT(s121, 1.25 * s31);
}

TEST(ShapesBfs, MachineModelTracksPaperModel) {
  // Figure 4a/b: the measured (here: machine-model) curve follows the
  // analytical model up to the core count and stays within a factor.
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("pwtk"), 0.05);
  const auto knf = machine_config::knf();
  const auto ref = micg::bfs::seq_bfs(g, g.num_vertices() / 2);
  micg::model::bfs_trace_options bo;
  const auto tr = micg::model::bfs_trace(g, g.num_vertices() / 2, bo);
  for (int t : {11, 31}) {
    const double machine =
        speedup_at(tr, backend::omp_dynamic, t, 32, knf);
    const double paper = bfs_model_speedup(ref.frontier_sizes, t, 32);
    EXPECT_GT(machine, 0.5 * paper) << t;
    EXPECT_LT(machine, 1.6 * paper) << t;
  }
}

TEST(ShapesBfs, BagSlowerThanBlockQueue) {
  // Figure 4c: "the implementation using the bag data structure performs
  // poorly on Intel MIC whereas ... the blocked queue performs better".
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("ldoor"), 0.03);
  const auto knf = machine_config::knf();
  micg::model::bfs_trace_options block;
  micg::model::bfs_trace_options bag;
  bag.frontier = micg::model::bfs_frontier::bag;
  const auto tb = micg::model::bfs_trace(g, g.num_vertices() / 2, block);
  const auto tg = micg::model::bfs_trace(g, g.num_vertices() / 2, bag);
  const double sblock = speedup_at(tb, backend::omp_dynamic, 61, 32, knf);
  const double sbag = speedup_at(tg, backend::cilk_holder, 61, 0, knf);
  EXPECT_GT(sblock, sbag);
}

TEST(ShapesBfs, RelaxedBeatsLocked) {
  // SV-D: "the relaxed queue variants led to consistently better speedup
  // than the lock-based variants".
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("hood"), 0.03);
  const auto knf = machine_config::knf();
  micg::model::bfs_trace_options relaxed;
  micg::model::bfs_trace_options locked;
  locked.relaxed = false;
  const auto tr = micg::model::bfs_trace(g, g.num_vertices() / 2, relaxed);
  const auto tl = micg::model::bfs_trace(g, g.num_vertices() / 2, locked);
  // Paper convention: one common baseline (the fastest 1-thread config,
  // which is the relaxed variant) normalizes both curves.
  const double base = micg::model::baseline_time(tr, knf);
  for (int t : {31, 61, 121}) {
    micg::model::exec_options o;
    o.policy = backend::omp_dynamic;
    o.threads = t;
    o.chunk = 32;
    EXPECT_GT(micg::model::model_speedup_vs(tr, o, knf, base),
              micg::model::model_speedup_vs(tl, o, knf, base))
        << t;
  }
}

TEST(ShapesHost, HostSaturatesNearItsCoreCount) {
  // Figure 4d: on the 12-core host the curves flatten near 12 threads.
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("hood"), 0.03);
  const auto host = machine_config::host_xeon();
  micg::model::bfs_trace_options bo;
  const auto tr = micg::model::bfs_trace(g, g.num_vertices() / 2, bo);
  micg::model::exec_options o;
  o.policy = backend::omp_dynamic;
  o.chunk = 32;
  o.solo_overlap = 0.6;  // out-of-order host
  o.threads = 12;
  const double s12 = micg::model::model_speedup(tr, o, host);
  o.threads = 24;
  const double s24 = micg::model::model_speedup(tr, o, host);
  EXPECT_LT(s24, 1.5 * s12);  // HT adds little beyond physical cores
  EXPECT_GT(s12, 2.0);
}

}  // namespace
