// Betweenness-centrality coverage: the batched (msbfs-backed) and
// repeated single-source paths must agree — bit-identically at one thread
// (both walk the same canonical (distance, id) accumulation order), within
// floating-point merge tolerance otherwise — on awkward inputs: directed
// (asymmetric) adjacency, disconnected graphs, self-loops, sampling. Plus
// exact hand-computed fixtures.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "micg/bfs/centrality.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/generators.hpp"

namespace {

using micg::graph::csr_graph;

csr_graph from_edges(std::int32_t n,
                     const std::vector<std::pair<std::int32_t,
                                                 std::int32_t>>& arcs) {
  std::vector<std::int64_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : arcs) {
    (void)v;
    ++xadj[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < xadj.size(); ++i) xadj[i] += xadj[i - 1];
  std::vector<std::int32_t> adj(arcs.size());
  std::vector<std::int64_t> cursor(xadj.begin(), xadj.end() - 1);
  for (const auto& [u, v] : arcs) {
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
  }
  return {std::move(xadj), std::move(adj)};
}

/// Undirected graph: both arc directions for each edge.
csr_graph undirected(std::int32_t n,
                     const std::vector<std::pair<std::int32_t,
                                                 std::int32_t>>& edges) {
  std::vector<std::pair<std::int32_t, std::int32_t>> arcs;
  for (const auto& [u, v] : edges) {
    arcs.emplace_back(u, v);
    arcs.emplace_back(v, u);
  }
  return from_edges(n, arcs);
}

std::vector<double> run_bc(const csr_graph& g, bool batched, int threads,
                           int lanes = 64, std::int64_t samples = 0) {
  micg::bfs::centrality_options opt;
  opt.ex.threads = threads;
  opt.batched = batched;
  opt.batch_lanes = lanes;
  opt.sample_sources = samples;
  return micg::bfs::betweenness_centrality(g, opt);
}

/// The awkward-input fixtures both paths must agree on.
std::vector<std::pair<std::string, csr_graph>> agreement_fixtures() {
  std::vector<std::pair<std::string, csr_graph>> out;
  // Two components: a path and a triangle, plus an isolated vertex.
  out.emplace_back("disconnected",
                   undirected(8, {{0, 1}, {1, 2}, {2, 3},
                                  {4, 5}, {5, 6}, {6, 4}}));
  // Self-loops on a path (a self-loop is its endpoint's neighbor; BFS
  // ignores it, sigma/delta must not double-count it).
  out.emplace_back(
      "self_loops",
      from_edges(5, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2},
                     {3, 4}, {4, 3}, {1, 1}, {3, 3}}));
  // Directed (asymmetric) adjacency: a cycle with a chord that exists in
  // one direction only. The equality contract is path-vs-path, not a
  // particular centrality semantic.
  out.emplace_back("directed",
                   from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                  {5, 0}, {1, 4}}));
  out.emplace_back("rmat",
                   micg::graph::make_rmat(8, 8, 0.57, 0.19, 0.19, 11));
  return out;
}

TEST(Centrality, BatchedEqualsRepeatedBitwiseAtOneThread) {
  for (const auto& [name, g] : agreement_fixtures()) {
    SCOPED_TRACE(name);
    const auto repeated = run_bc(g, /*batched=*/false, /*threads=*/1);
    for (const int lanes : {1, 5, 64}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes));
      const auto batched =
          run_bc(g, /*batched=*/true, /*threads=*/1, lanes);
      ASSERT_EQ(batched.size(), repeated.size());
      for (std::size_t v = 0; v < repeated.size(); ++v) {
        EXPECT_EQ(batched[v], repeated[v]) << "vertex " << v;
      }
    }
  }
}

TEST(Centrality, BatchedMatchesRepeatedMultithreaded) {
  for (const auto& [name, g] : agreement_fixtures()) {
    SCOPED_TRACE(name);
    const auto repeated = run_bc(g, /*batched=*/false, /*threads=*/1);
    const auto batched = run_bc(g, /*batched=*/true, /*threads=*/4);
    ASSERT_EQ(batched.size(), repeated.size());
    for (std::size_t v = 0; v < repeated.size(); ++v) {
      EXPECT_NEAR(batched[v], repeated[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST(Centrality, SampledBatchedEqualsSampledRepeated) {
  const auto g = micg::graph::make_rmat(9, 8, 0.57, 0.19, 0.19, 3);
  for (const std::int64_t samples : {1, 7, 64, 100}) {
    SCOPED_TRACE("samples=" + std::to_string(samples));
    const auto repeated = run_bc(g, false, 1, 64, samples);
    const auto batched = run_bc(g, true, 1, 64, samples);
    for (std::size_t v = 0; v < repeated.size(); ++v) {
      EXPECT_EQ(batched[v], repeated[v]) << "vertex " << v;
    }
  }
}

// ------------------------------------------------- hand-computed fixtures

TEST(Centrality, PathFixtureExact) {
  // P5: bc(i) = i * (n-1-i) pairs route through vertex i.
  const auto g = undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  for (const bool batched : {false, true}) {
    SCOPED_TRACE(batched ? "batched" : "repeated");
    const auto bc = run_bc(g, batched, 1);
    const std::vector<double> expect{0.0, 3.0, 4.0, 3.0, 0.0};
    ASSERT_EQ(bc.size(), expect.size());
    for (std::size_t v = 0; v < expect.size(); ++v) {
      EXPECT_DOUBLE_EQ(bc[v], expect[v]) << "vertex " << v;
    }
  }
}

TEST(Centrality, DiamondFixtureExact) {
  // 4-cycle 0-1-3-2-0: each opposite pair has two 2-hop shortest paths,
  // giving every vertex dependency 1/2 * 1 = 0.5.
  const auto g = undirected(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  for (const bool batched : {false, true}) {
    SCOPED_TRACE(batched ? "batched" : "repeated");
    const auto bc = run_bc(g, batched, 1);
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_DOUBLE_EQ(bc[v], 0.5) << "vertex " << v;
    }
  }
}

TEST(Centrality, StarFixtureExact) {
  // Star S6 (center 0): every leaf pair routes through the center,
  // C(5, 2) = 10; leaves carry nothing.
  const auto g = undirected(
      6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  for (const bool batched : {false, true}) {
    SCOPED_TRACE(batched ? "batched" : "repeated");
    const auto bc = run_bc(g, batched, 1);
    EXPECT_DOUBLE_EQ(bc[0], 10.0);
    for (std::size_t v = 1; v < 6; ++v) {
      EXPECT_DOUBLE_EQ(bc[v], 0.0) << "vertex " << v;
    }
  }
}

}  // namespace
