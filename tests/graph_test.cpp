// Tests for the graph substrate: CSR invariants, builder canonicalization,
// generators, permutation, properties, MatrixMarket I/O, and the Table I
// suite stand-ins.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "micg/graph/builder.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/io_mm.hpp"
#include "micg/graph/permute.hpp"
#include "micg/graph/props.hpp"
#include "micg/graph/suite.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

// -------------------------------------------------------------------- csr

TEST(Csr, EmptyGraph) {
  csr_graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Csr, TriangleBasics) {
  auto g = micg::graph::make_complete(3);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_directed_edges(), 6);
  EXPECT_EQ(g.max_degree(), 2);
  for (vertex_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1);
  EXPECT_EQ(n0[1], 2);
  EXPECT_NO_THROW(g.validate());
}

TEST(Csr, RejectsBadXadj) {
  // xadj not ending at adjacency size.
  EXPECT_THROW(csr_graph({0, 2}, {1}), micg::check_error);
  // xadj not starting at zero.
  EXPECT_THROW(csr_graph({1, 2}, {0, 1}), micg::check_error);
}

TEST(Csr, ValidateCatchesAsymmetry) {
  // 0 -> 1 present but 1 -> 0 missing.
  csr_graph g({0, 1, 1}, {1});
  EXPECT_THROW(g.validate(), micg::check_error);
}

TEST(Csr, ValidateCatchesSelfLoop) {
  csr_graph g({0, 1}, {0});
  EXPECT_THROW(g.validate(), micg::check_error);
}

// ----------------------------------------------------------------- builder

TEST(Builder, DeduplicatesAndSymmetrizes) {
  micg::graph::graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate (reversed)
  b.add_edge(0, 1);  // duplicate (same)
  b.add_edge(1, 2);
  auto g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_NO_THROW(g.validate());
}

TEST(Builder, DropsSelfLoops) {
  micg::graph::graph_builder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  auto g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Builder, IsolatedVerticesKept) {
  micg::graph::graph_builder b(5);
  b.add_edge(0, 1);
  auto g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.degree(4), 0);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(Builder, RejectsOutOfRangeAtBuild) {
  std::vector<std::pair<vertex_t, vertex_t>> edges{{0, 7}};
  EXPECT_THROW(micg::graph::csr_from_edges(3, edges), micg::check_error);
}

// --------------------------------------------------------------- generators

TEST(Generators, ChainShape) {
  auto g = micg::graph::make_chain(100);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_EQ(g.num_edges(), 99);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(99), 1);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 0), 100);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 50), 51);
}

TEST(Generators, CycleShape) {
  auto g = micg::graph::make_cycle(10);
  EXPECT_EQ(g.num_edges(), 10);
  for (vertex_t v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 0), 6);
}

TEST(Generators, StarShape) {
  auto g = micg::graph::make_star(64);
  EXPECT_EQ(g.num_edges(), 63);
  EXPECT_EQ(g.max_degree(), 63);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 0), 2);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 5), 3);
}

TEST(Generators, CompleteShape) {
  auto g = micg::graph::make_complete(8);
  EXPECT_EQ(g.num_edges(), 28);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 3), 2);
}

TEST(Generators, KaryTreeShape) {
  auto g = micg::graph::make_kary_tree(2, 5);  // 31 vertices
  EXPECT_EQ(g.num_vertices(), 31);
  EXPECT_EQ(g.num_edges(), 30);
  EXPECT_EQ(micg::graph::count_bfs_levels(g, 0), 5);
  EXPECT_EQ(g.degree(0), 2);   // root
  EXPECT_EQ(g.degree(30), 1);  // leaf
}

TEST(Generators, Grid2dShape) {
  auto g = micg::graph::make_grid_2d(5, 4);
  EXPECT_EQ(g.num_vertices(), 20);
  // Edges: 4*4 horizontal rows * ... = (nx-1)*ny + nx*(ny-1) = 16 + 15.
  EXPECT_EQ(g.num_edges(), 31);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(micg::graph::count_components(g), 1);
}

TEST(Generators, Grid2dDiagonals) {
  auto g = micg::graph::make_grid_2d(4, 4, /*diagonals=*/true);
  EXPECT_EQ(g.max_degree(), 8);
  EXPECT_NO_THROW(g.validate());
}

TEST(Generators, ErdosRenyiDegreeClose) {
  auto g = micg::graph::make_erdos_renyi(5000, 12.0, 42);
  const auto stats = micg::graph::compute_degree_stats(g);
  EXPECT_NEAR(stats.mean, 12.0, 1.0);  // dedupe/self-loop losses are small
  EXPECT_NO_THROW(g.validate());
}

TEST(Generators, ErdosRenyiDeterministic) {
  auto a = micg::graph::make_erdos_renyi(500, 8.0, 7);
  auto b = micg::graph::make_erdos_renyi(500, 8.0, 7);
  EXPECT_EQ(a.adj(), b.adj());
  auto c = micg::graph::make_erdos_renyi(500, 8.0, 8);
  EXPECT_NE(a.adj(), c.adj());
}

TEST(Generators, RmatPowerLaw) {
  auto g = micg::graph::make_rmat(12, 8, 0.57, 0.19, 0.19, 1);
  EXPECT_EQ(g.num_vertices(), 4096);
  const auto stats = micg::graph::compute_degree_stats(g);
  // Skew: max degree far above the mean is the RMAT signature.
  EXPECT_GT(static_cast<double>(stats.max), 4.0 * stats.mean);
  EXPECT_NO_THROW(g.validate());
}

TEST(Generators, FemLikeStencilDegrees) {
  micg::graph::fem_params p;
  p.sx = p.sy = p.sz = 10;
  p.stencil_pairs = 13;  // full 3x3x3 box
  auto g = micg::graph::make_fem_like(p);
  EXPECT_EQ(g.num_vertices(), 1000);
  EXPECT_EQ(g.max_degree(), 26);  // interior vertex
  // Corner vertex has the 7 box neighbors that stay in bounds.
  EXPECT_EQ(g.degree(0), 7);
  EXPECT_NO_THROW(g.validate());
}

TEST(Generators, FemLikeHubsRaiseMaxDegree) {
  micg::graph::fem_params p;
  p.sx = p.sy = 8;
  p.sz = 32;
  p.stencil_pairs = 7;
  p.hub_degree = 50;
  p.num_hubs = 3;
  auto g = micg::graph::make_fem_like(p);
  EXPECT_GE(g.max_degree(), 50);
  EXPECT_NO_THROW(g.validate());
}

TEST(Generators, InvalidParamsRejected) {
  EXPECT_THROW(micg::graph::make_chain(0), micg::check_error);
  EXPECT_THROW(micg::graph::make_star(1), micg::check_error);
  EXPECT_THROW(micg::graph::make_cycle(2), micg::check_error);
  micg::graph::fem_params p;
  p.stencil_pairs = 99;
  EXPECT_THROW(micg::graph::make_fem_like(p), micg::check_error);
  EXPECT_THROW(micg::graph::make_rmat(2, 2, 0.5, 0.3, 0.3, 1),
               micg::check_error);
}

// ------------------------------------------------------------------ permute

TEST(Permute, IdentityIsNoop) {
  auto g = micg::graph::make_grid_2d(6, 6);
  auto p = micg::graph::identity_permutation(g.num_vertices());
  auto h = micg::graph::apply_permutation(g, p);
  EXPECT_EQ(g.xadj(), h.xadj());
  EXPECT_EQ(g.adj(), h.adj());
}

TEST(Permute, RandomPermutationIsBijection) {
  auto p = micg::graph::random_permutation(1000, 3);
  EXPECT_TRUE(micg::graph::is_permutation(p));
  auto q = micg::graph::random_permutation(1000, 3);
  EXPECT_EQ(p, q);  // deterministic
  auto r = micg::graph::random_permutation(1000, 4);
  EXPECT_NE(p, r);
}

TEST(Permute, PreservesStructure) {
  auto g = micg::graph::make_erdos_renyi(400, 6.0, 11);
  auto perm = micg::graph::random_permutation(g.num_vertices(), 5);
  auto h = micg::graph::apply_permutation(g, perm);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.max_degree(), g.max_degree());
  EXPECT_NO_THROW(h.validate());
  // Degree multiset is preserved.
  std::vector<std::int64_t> dg, dh;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(perm[static_cast<std::size_t>(v)]));
  }
  EXPECT_EQ(dg, dh);
}

TEST(Permute, RejectsNonPermutation) {
  auto g = micg::graph::make_chain(4);
  std::vector<vertex_t> bad{0, 0, 1, 2};
  EXPECT_THROW(micg::graph::apply_permutation(g, bad), micg::check_error);
  std::vector<vertex_t> short_perm{0, 1};
  EXPECT_THROW(micg::graph::apply_permutation(g, short_perm),
               micg::check_error);
}

// -------------------------------------------------------------------- props

TEST(Props, DegreeStats) {
  auto g = micg::graph::make_star(11);
  const auto s = micg::graph::compute_degree_stats(g);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 10);
  EXPECT_NEAR(s.mean, 20.0 / 11.0, 1e-9);
}

TEST(Props, ComponentsCounted) {
  micg::graph::graph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  auto g = std::move(b).build();
  EXPECT_EQ(micg::graph::count_components(g), 4);  // {0,1} {2,3} {4} {5}
}

// ----------------------------------------------------------------------- io

TEST(IoMm, RoundTrip) {
  auto g = micg::graph::make_erdos_renyi(200, 5.0, 9);
  std::stringstream ss;
  micg::graph::write_matrix_market(ss, g);
  auto h = micg::graph::read_matrix_market(ss);
  EXPECT_EQ(g.xadj(), h.xadj());
  EXPECT_EQ(g.adj(), h.adj());
}

TEST(IoMm, ReadsGeneralRealMatrices) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment line\n"
      "3 3 4\n"
      "1 2 0.5\n"
      "2 1 0.5\n"
      "2 3 -1.0\n"
      "1 1 2.0\n");  // diagonal dropped
  auto g = micg::graph::read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // {1,2} deduped, {2,3}, diag dropped
}

TEST(IoMm, RejectsMalformedInput) {
  std::stringstream notbanner("hello world\n1 1 0\n");
  EXPECT_THROW(micg::graph::read_matrix_market(notbanner),
               micg::check_error);
  std::stringstream rect(
      "%%MatrixMarket matrix coordinate pattern general\n2 3 0\n");
  EXPECT_THROW(micg::graph::read_matrix_market(rect), micg::check_error);
  std::stringstream trunc(
      "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n");
  EXPECT_THROW(micg::graph::read_matrix_market(trunc), micg::check_error);
  EXPECT_THROW(micg::graph::load_matrix_market("/nonexistent/file.mtx"),
               micg::check_error);
}

// -------------------------------------------------------------------- suite

class SuiteGraph : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteGraph, ScaledStandInIsHealthy) {
  const auto& entry = micg::graph::suite_entry_by_name(GetParam());
  auto g = micg::graph::make_suite_graph(entry, 0.02);
  EXPECT_GT(g.num_vertices(), 100);
  EXPECT_EQ(micg::graph::count_components(g), 1);
  EXPECT_NO_THROW(g.validate());
  // Average degree should be in the ballpark of the paper's graph (the
  // stand-in matches stencil density; boundaries pull the mean down a bit).
  const double paper_avg = 2.0 * static_cast<double>(entry.paper_edges) /
                           static_cast<double>(entry.paper_vertices);
  const auto stats = micg::graph::compute_degree_stats(g);
  EXPECT_GT(stats.mean, 0.55 * paper_avg);
  EXPECT_LT(stats.mean, 1.3 * paper_avg);
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SuiteGraph,
                         ::testing::Values("auto", "bmw3_2", "hood",
                                           "inline_1", "ldoor", "msdoor",
                                           "pwtk"));

TEST(Suite, HasSevenEntriesInPaperOrder) {
  const auto& s = micg::graph::table1_suite();
  ASSERT_EQ(s.size(), 7u);
  EXPECT_EQ(s.front().name, "auto");
  EXPECT_EQ(s.back().name, "pwtk");
  EXPECT_EQ(s.back().paper_levels, 267);
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(micg::graph::suite_entry_by_name("nope"), micg::check_error);
}

TEST(Suite, ScaledParamsShrinkDimensions) {
  const auto& e = micg::graph::suite_entry_by_name("ldoor");
  const auto p = micg::graph::scaled_params(e, 0.125);  // cbrt = 0.5
  EXPECT_EQ(p.sx, e.params.sx / 2);
  EXPECT_EQ(p.sz, e.params.sz / 2);
  EXPECT_THROW(micg::graph::scaled_params(e, 0.0), micg::check_error);
  EXPECT_THROW(micg::graph::scaled_params(e, 2.0), micg::check_error);
}

}  // namespace
