// Weighted workloads: the derived weight stream, binary format v3, the
// delta-stepping SSSP kernel against hand-checked fixtures and the
// sequential Dijkstra oracle, tune::pick_sssp_delta's decision table,
// and the sssp/cc api request surface (the structs the CLI and server
// share). The cross-family differential sweep lives in property_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "micg/api/api.hpp"
#include "micg/bfs/sssp.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/components.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/stats.hpp"
#include "micg/graph/weighted.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"
#include "micg/tune/tune.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::csr32;
using micg::graph::csr64;
using micg::graph::csr_graph;
using micg::graph::weight_params;
using micg::graph::weight_t;

std::span<const weight_t> wspan(const std::vector<weight_t>& w) {
  return {w.data(), w.size()};
}

/// Snapshot meta/values are emit-ordered pair vectors; linear scan is
/// fine at test scale.
template <class T>
const T* find_kv(const std::vector<std::pair<std::string, T>>& kvs,
                 std::string_view key) {
  for (const auto& [k, v] : kvs) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ------------------------------------------------------ weight stream

TEST(Weights, GenerateIsAdjacencyParallelSymmetricAndPositive) {
  const auto g = micg::graph::make_erdos_renyi(200, 4.0, 11);
  weight_params wp;
  wp.seed = 3;
  const auto w = micg::graph::generate_weights(g, wp);
  ASSERT_EQ(w.size(), static_cast<std::size_t>(g.num_directed_edges()));
  ASSERT_NO_THROW(micg::graph::validate_weights(g, wspan(w)));
  for (const auto x : w) {
    EXPECT_GE(x, wp.min_weight);
    EXPECT_LE(x, wp.max_weight);
  }
}

TEST(Weights, StreamIsAFunctionOfSeedAndEndpointsOnly) {
  const auto g = micg::graph::make_grid_2d(8, 9);
  weight_params wp;
  wp.seed = 7;
  const auto a = micg::graph::generate_weights(g, wp);
  const auto b = micg::graph::generate_weights(g, wp);
  EXPECT_EQ(a, b);
  // Layout-independent: same stream through every CSR width.
  const auto w32 =
      micg::graph::generate_weights(micg::graph::convert_csr<csr32>(g), wp);
  const auto w64 =
      micg::graph::generate_weights(micg::graph::convert_csr<csr64>(g), wp);
  EXPECT_EQ(a, w32);
  EXPECT_EQ(a, w64);
  wp.seed = 8;
  EXPECT_NE(micg::graph::generate_weights(g, wp), a);
}

TEST(Weights, CustomRangeIsHonored) {
  const auto g = micg::graph::make_complete(12);
  weight_params wp;
  wp.min_weight = 10;
  wp.max_weight = 12;
  const auto w = micg::graph::generate_weights(g, wp);
  std::vector<bool> seen(3, false);
  for (const auto x : w) {
    ASSERT_GE(x, 10);
    ASSERT_LE(x, 12);
    seen[static_cast<std::size_t>(x - 10)] = true;
  }
  // 132 draws over 3 values: all of them show up.
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(Weights, InvalidParamsThrow) {
  const auto g = micg::graph::make_chain(4);
  weight_params zero;
  zero.min_weight = 0;  // zero weights would break bucket monotonicity
  EXPECT_THROW(micg::graph::generate_weights(g, zero), micg::check_error);
  weight_params flipped;
  flipped.min_weight = 9;
  flipped.max_weight = 3;
  EXPECT_THROW(micg::graph::generate_weights(g, flipped), micg::check_error);
}

TEST(Weights, ValidateRejectsAsymmetryAndNonPositive) {
  const auto g = micg::graph::make_chain(3);  // edges {0,1},{1,2}; 4 slots
  std::vector<weight_t> w = {5, 5, 7, 7};
  ASSERT_NO_THROW(micg::graph::validate_weights(g, wspan(w)));
  w[1] = 6;  // slot {1,0} no longer matches {0,1}
  EXPECT_THROW(micg::graph::validate_weights(g, wspan(w)),
               micg::check_error);
  w = {5, 5, 0, 0};
  EXPECT_THROW(micg::graph::validate_weights(g, wspan(w)),
               micg::check_error);
  w = {5, 5, 7};  // not adjacency-parallel
  EXPECT_THROW(micg::graph::validate_weights(g, wspan(w)),
               micg::check_error);
}

TEST(Weights, WeightedCsrViewSlicesPerVertex) {
  const auto g = micg::graph::make_star(5);  // hub 0, leaves 1..4
  const auto wg = micg::graph::make_weighted(g, weight_params{});
  ASSERT_NO_THROW(wg.validate());
  EXPECT_EQ(wg.weights_of(0).size(), 4u);
  EXPECT_EQ(wg.weights_of(1).size(), 1u);
  // Leaf 2's single slot is the back edge of hub slot 1.
  EXPECT_EQ(wg.weights_of(2)[0], wg.weights_of(0)[1]);
}

// ------------------------------------------------- binary format v3

TEST(BinaryV3, RoundTripsGraphAndWeights) {
  const auto g = micg::graph::make_erdos_renyi(150, 5.0, 21);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  std::stringstream ss;
  micg::graph::write_binary_weighted(ss, g, wspan(w));
  const auto rt = micg::graph::read_binary_weighted_any(ss);
  EXPECT_EQ(rt.g.num_vertices(), g.num_vertices());
  EXPECT_EQ(rt.g.num_directed_edges(), g.num_directed_edges());
  EXPECT_EQ(rt.weights, w);
  rt.g.visit([&](const auto& cg) {
    ASSERT_NO_THROW(micg::graph::validate_weights(cg, wspan(rt.weights)));
  });
}

TEST(BinaryV3, RoundTripsEveryLayoutWidth) {
  const auto g = micg::graph::make_grid_2d(6, 7);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  const auto check = [&](const auto& cg) {
    std::stringstream ss;
    micg::graph::write_binary_weighted(ss, cg, wspan(w));
    const auto rt = micg::graph::read_binary_weighted_any(ss);
    EXPECT_EQ(rt.g.num_vertices(), g.num_vertices());
    EXPECT_EQ(rt.weights, w);
  };
  check(micg::graph::convert_csr<csr32>(g));
  check(g);
  check(micg::graph::convert_csr<csr64>(g));
}

TEST(BinaryV3, WeightedReaderRejectsUnweightedFiles) {
  const auto g = micg::graph::make_chain(10);
  std::stringstream ss;
  micg::graph::write_binary(ss, g);  // version 2: no weights payload
  EXPECT_THROW(micg::graph::read_binary_weighted_any(ss),
               micg::check_error);
}

TEST(BinaryV3, UnweightedReaderAcceptsWeightedFiles) {
  const auto g = micg::graph::make_erdos_renyi(80, 3.0, 5);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  std::stringstream ss;
  micg::graph::write_binary_weighted(ss, g, wspan(w));
  const auto rt = micg::graph::read_binary_any(ss);
  EXPECT_EQ(rt.num_vertices(), g.num_vertices());
  EXPECT_EQ(rt.num_directed_edges(), g.num_directed_edges());
}

TEST(BinaryV3, ReaderRejectsCorruptWeights) {
  const auto g = micg::graph::make_chain(6);
  auto w = micg::graph::generate_weights(g, weight_params{});
  w[0] = w[1] + 1;  // break symmetry: the reader re-validates
  std::stringstream ss;
  micg::graph::write_binary(ss, g);
  std::string bytes = ss.str();
  // Writer refuses asymmetric weights, so splice a bogus payload by hand:
  // flip the version to 3 and append a wrong-sized weights array.
  bytes[8] = 3;
  bytes.push_back('\x01');
  std::stringstream bad(bytes);
  EXPECT_THROW(micg::graph::read_binary_weighted_any(bad),
               micg::check_error);
}

TEST(BinaryV3, WriterRejectsMismatchedWeights) {
  const auto g = micg::graph::make_chain(5);
  const std::vector<weight_t> wrong(3, 1);
  std::stringstream ss;
  EXPECT_THROW(micg::graph::write_binary_weighted(ss, g, wspan(wrong)),
               micg::check_error);
}

// ------------------------------------------------- kernel fixtures

/// Hand-checkable weighted path: 0 -5- 1 -2- 2 -9- 3.
csr_graph weighted_path_graph() {
  micg::graph::graph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return std::move(b).build();
}

TEST(SeqDijkstra, HandCheckedPath) {
  const auto g = weighted_path_graph();
  // Slots (sorted adjacency): 0:{1} 1:{0,2} 2:{1,3} 3:{2}.
  const std::vector<weight_t> w = {5, 5, 2, 2, 9, 9};
  ASSERT_NO_THROW(micg::graph::validate_weights(g, wspan(w)));
  const auto d = micg::bfs::seq_dijkstra(g, 0, wspan(w));
  EXPECT_EQ(d, (std::vector<std::int64_t>{0, 5, 7, 16}));
}

TEST(SeqDijkstra, PrefersLongerHopCountWhenCheaper) {
  // Triangle 0-1-2 plus chord: direct 0-2 costs 10, the detour 0-1-2
  // costs 3; Dijkstra (unlike BFS) must take the detour.
  micg::graph::graph_builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const auto g = std::move(b).build();
  // Sorted slots: 0:{1,2} 1:{0,2} 2:{0,1}.
  const std::vector<weight_t> w = {1, 10, 1, 2, 10, 2};
  ASSERT_NO_THROW(micg::graph::validate_weights(g, wspan(w)));
  const auto d = micg::bfs::seq_dijkstra(g, 0, wspan(w));
  EXPECT_EQ(d, (std::vector<std::int64_t>{0, 1, 3}));
}

TEST(SeqDijkstra, UnreachableIsMinusOne) {
  micg::graph::graph_builder b(4);
  b.add_edge(0, 1);  // {2, 3}: 3 isolated, 2-3 unreachable pair? no: edge
  b.add_edge(2, 3);  // two components
  const auto g = std::move(b).build();
  const std::vector<weight_t> w = {4, 4, 6, 6};
  const auto d = micg::bfs::seq_dijkstra(g, 0, wspan(w));
  EXPECT_EQ(d, (std::vector<std::int64_t>{0, 4, -1, -1}));
}

TEST(DeltaStepping, HandCheckedPathAcrossDeltas) {
  const auto g = weighted_path_graph();
  const std::vector<weight_t> w = {5, 5, 2, 2, 9, 9};
  for (const std::int64_t delta : {1, 2, 5, 100}) {
    SCOPED_TRACE("delta=" + std::to_string(delta));
    micg::bfs::sssp_options opt;
    opt.delta = delta;
    const auto r = micg::bfs::delta_stepping_sssp(g, 0, wspan(w), opt);
    EXPECT_EQ(r.dist, (std::vector<std::int64_t>{0, 5, 7, 16}));
    EXPECT_EQ(r.reached, 4);
    EXPECT_EQ(r.delta, delta);
    EXPECT_GE(r.relaxations, 3);
    EXPECT_GE(r.buckets, 1);
  }
}

TEST(DeltaStepping, MatchesDijkstraOnRmat) {
  const auto g = micg::graph::make_rmat(8, 8, 0.57, 0.19, 0.19, 13);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  const auto source = static_cast<std::int32_t>(g.num_vertices() / 2);
  const auto ref = micg::bfs::seq_dijkstra(g, source, wspan(w));
  for (const std::int64_t delta : {1, 16, 4096}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("delta=" + std::to_string(delta) +
                   " threads=" + std::to_string(threads));
      micg::bfs::sssp_options opt;
      opt.delta = delta;
      opt.ex.threads = threads;
      const auto r = micg::bfs::delta_stepping_sssp(g, source, wspan(w), opt);
      ASSERT_EQ(r.dist, ref);
    }
  }
}

TEST(DeltaStepping, BucketExtremesAreDijkstraAndBellmanFord) {
  const auto g = micg::graph::make_erdos_renyi(300, 4.0, 17);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  micg::bfs::sssp_options opt;
  opt.delta = 1;
  const auto fine = micg::bfs::delta_stepping_sssp(g, 0, wspan(w), opt);
  opt.delta = std::int64_t{1} << 40;
  const auto coarse = micg::bfs::delta_stepping_sssp(g, 0, wspan(w), opt);
  EXPECT_EQ(fine.dist, coarse.dist);
  // One bucket wide enough for every distance = Bellman-Ford.
  EXPECT_EQ(coarse.buckets, 1);
  // delta=1 buckets are singleton-distance: never fewer than max dist
  // milestones, and at least as many rounds as Bellman-Ford's.
  EXPECT_GE(fine.buckets, coarse.buckets);
  EXPECT_GE(fine.rounds, coarse.rounds);
  // Dijkstra-fine buckets never relax more than Bellman-Ford re-work.
  EXPECT_LE(fine.relaxations, coarse.relaxations);
}

TEST(DeltaStepping, InvalidOptionsThrow) {
  const auto g = micg::graph::make_chain(4);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  micg::bfs::sssp_options opt;
  opt.delta = 0;  // the kernel takes a concrete width; 0=auto lives in api
  EXPECT_THROW(micg::bfs::delta_stepping_sssp(g, 0, wspan(w), opt),
               micg::check_error);
  opt.delta = 8;
  EXPECT_THROW(
      micg::bfs::delta_stepping_sssp(g, 99, wspan(w), opt),
      micg::check_error);
  const std::vector<weight_t> wrong(2, 1);
  EXPECT_THROW(
      micg::bfs::delta_stepping_sssp(g, 0, wspan(wrong), opt),
      micg::check_error);
}

TEST(DeltaStepping, PublishesObsCounters) {
  const auto g = micg::graph::make_grid_2d(10, 10);
  const auto w = micg::graph::generate_weights(g, weight_params{});
  micg::obs::recorder rec;
  micg::bfs::sssp_options opt;
  opt.delta = 16;
  opt.ex.rec = &rec;
  const auto r = micg::bfs::delta_stepping_sssp(g, 0, wspan(w), opt);
  const auto rep = rec.take();
  const auto* kernel = find_kv(rep.meta, "kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(*kernel, "sssp");
  const auto* delta = find_kv(rep.values, "sssp.delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(*delta, 16.0);
  EXPECT_EQ(rec.get_counter("sssp.relaxations").total(),
            static_cast<std::uint64_t>(r.relaxations));
  EXPECT_EQ(rec.get_counter("sssp.buckets").total(),
            static_cast<std::uint64_t>(r.buckets));
  EXPECT_EQ(rec.get_counter("sssp.reached").total(),
            static_cast<std::uint64_t>(r.reached));
}

// ------------------------------------------------- pick_sssp_delta

TEST(PickSsspDelta, ScalesInverselyWithBranchingFactor) {
  micg::graph::graph_stats st;
  st.avg_degree = 4.0;
  EXPECT_EQ(micg::tune::pick_sssp_delta(st, 255), 63);
  st.avg_degree = 64.0;
  EXPECT_EQ(micg::tune::pick_sssp_delta(st, 255), 3);
  // Degenerate inputs clamp to the Dijkstra-like floor of 1.
  st.avg_degree = 1000.0;
  EXPECT_EQ(micg::tune::pick_sssp_delta(st, 255), 1);
  st.avg_degree = 0.0;
  EXPECT_EQ(micg::tune::pick_sssp_delta(st, 255), 255);
  EXPECT_EQ(micg::tune::pick_sssp_delta(st, 1), 1);
  EXPECT_THROW(micg::tune::pick_sssp_delta(st, 0), micg::check_error);
}

// ------------------------------------------------- api surface

TEST(ApiSssp, RunMatchesOracleAndReportsTargets) {
  const auto g = micg::graph::make_erdos_renyi(250, 5.0, 31);
  const any_csr ag(g);
  micg::api::sssp_request req;
  req.source = 7;
  req.targets = {0, 7, 100, 249};
  const auto r = micg::api::run(ag, req);
  EXPECT_EQ(r.source, 7);
  EXPECT_EQ(r.num_vertices, 250);
  EXPECT_GE(r.delta, 1);  // 0 in the request = auto-pick
  const auto w = micg::graph::generate_weights(g, weight_params{});
  const auto ref = micg::bfs::seq_dijkstra(g, 7, wspan(w));
  ASSERT_EQ(r.target_dists.size(), 4u);
  EXPECT_EQ(r.target_dists[0], ref[0]);
  EXPECT_EQ(r.target_dists[1], 0);
  EXPECT_EQ(r.target_dists[2], ref[100]);
  EXPECT_EQ(r.target_dists[3], ref[249]);
  std::int64_t reached = 0;
  for (const auto d : ref) reached += d >= 0 ? 1 : 0;
  EXPECT_EQ(r.reached, reached);
}

TEST(ApiSssp, WeightsSeedAndDeltaFlowThroughTheWire) {
  const auto g = micg::graph::make_grid_2d(9, 9);
  const any_csr ag(g);
  const auto params = micg::api::json::parse(
      R"({"source": 3, "delta": 5, "weights": 77, "max_weight": 9,)"
      R"( "targets": [80], "threads": 2})");
  const auto req = micg::api::sssp_request_from_json(params);
  EXPECT_EQ(req.source, 3);
  EXPECT_EQ(req.delta, 5);
  EXPECT_EQ(req.weights_seed, 77);
  EXPECT_EQ(req.max_weight, 9);
  const auto resp = micg::api::dispatch_query(ag, "sssp", params);
  weight_params wp;
  wp.seed = 77;
  wp.max_weight = 9;
  const auto w = micg::graph::generate_weights(g, wp);
  const auto ref = micg::bfs::seq_dijkstra(g, 3, wspan(w));
  const auto* dists = resp.find("target_dists");
  ASSERT_NE(dists, nullptr);
  EXPECT_EQ(dists->as_array()[0].as_int(), ref[80]);
  EXPECT_EQ(resp.find("delta")->as_int(), 5);
}

TEST(ApiSssp, InvalidRequestsThrow) {
  const any_csr ag(micg::graph::make_chain(5));
  micg::api::sssp_request req;
  req.source = 99;
  EXPECT_THROW(micg::api::run(ag, req), micg::check_error);
  req = {};
  req.targets = {-1};
  EXPECT_THROW(micg::api::run(ag, req), micg::check_error);
  req = {};
  req.delta = -2;
  EXPECT_THROW(micg::api::run(ag, req), micg::check_error);
  req = {};
  req.max_weight = 0;
  EXPECT_THROW(micg::api::run(ag, req), micg::check_error);
}

TEST(ApiCc, MatchesParallelComponentsAndCountsLargest) {
  // Two components: a 40-grid and a 10-chain.
  micg::graph::graph_builder b(50);
  for (int v = 0; v < 39; ++v) b.add_edge(v, v + 1);
  for (int v = 40; v < 49; ++v) b.add_edge(v, v + 1);
  const any_csr ag(std::move(b).build());
  micg::api::cc_request req;
  const auto r = micg::api::run(ag, req);
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.largest, 40);
  EXPECT_EQ(r.num_vertices, 50);
  EXPECT_GE(r.rounds, 1);
  const auto resp = micg::api::dispatch_query(
      ag, "cc", micg::api::json::parse(R"({"threads": 2})"));
  EXPECT_EQ(resp.find("num_components")->as_int(), 2);
  EXPECT_EQ(resp.find("largest")->as_int(), 40);
}

TEST(ApiDispatch, SsspAndCcAreQueryOps) {
  EXPECT_TRUE(micg::api::is_query_op("sssp"));
  EXPECT_TRUE(micg::api::is_query_op("cc"));
  EXPECT_FALSE(micg::api::is_query_op("weights"));
}

}  // namespace
