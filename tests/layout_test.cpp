// Tests for the width-parameterized graph core: select_layout boundaries,
// builder overflow refusal, any_csr binary round-trips (including the
// version-1 compatibility path), and cross-layout result parity for the
// kernels that run on every layout.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/bfs/validate.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/suite.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::csr32;
using micg::graph::csr64;
using micg::graph::csr_graph;
using micg::graph::csr_layout;

constexpr std::int64_t kMax32 =
    std::numeric_limits<std::int32_t>::max();

// ---------------------------------------------------------- select_layout

TEST(SelectLayout, SmallGraphsUseNarrowestLayout) {
  EXPECT_EQ(micg::graph::select_layout(0, 0), csr_layout::v32e32);
  EXPECT_EQ(micg::graph::select_layout(1000, 5000), csr_layout::v32e32);
}

TEST(SelectLayout, EdgeCountBoundary) {
  // 2|E| up to int32 max still fits 32-bit edge offsets...
  EXPECT_EQ(micg::graph::select_layout(1000, kMax32), csr_layout::v32e32);
  // ...one past needs 64-bit offsets but keeps 32-bit vertex ids.
  EXPECT_EQ(micg::graph::select_layout(1000, kMax32 + 1),
            csr_layout::v32e64);
}

TEST(SelectLayout, VertexCountBoundary) {
  EXPECT_EQ(micg::graph::select_layout(kMax32, 10), csr_layout::v32e32);
  EXPECT_EQ(micg::graph::select_layout(kMax32 + 1, 10),
            csr_layout::v64e64);
  // Wide vertices force wide edges regardless of the edge count.
  EXPECT_EQ(micg::graph::select_layout(kMax32 + 1, kMax32 + 1),
            csr_layout::v64e64);
}

TEST(SelectLayout, RejectsNegativeDimensions) {
  EXPECT_THROW(micg::graph::select_layout(-1, 0), micg::check_error);
  EXPECT_THROW(micg::graph::select_layout(0, -1), micg::check_error);
}

TEST(SelectLayout, LayoutNamesRoundTrip) {
  for (csr_layout l : {csr_layout::v32e32, csr_layout::v32e64,
                       csr_layout::v64e64}) {
    EXPECT_EQ(micg::graph::layout_from_name(micg::graph::layout_name(l)),
              l);
  }
  EXPECT_THROW(micg::graph::layout_from_name("csr128"), micg::check_error);
}

// ----------------------------------------------------- builder overflow

// The builder template accepts any signed layout, so a deliberately tiny
// int16 instantiation makes the overflow boundary testable without
// allocating multi-gigabyte arrays.
using tiny_builder = micg::graph::basic_builder<std::int16_t, std::int16_t>;

TEST(BuilderOverflow, TinyLayoutBuildsWithinBounds) {
  // 2 * 16383 = 32766 <= int16 max (32767): must succeed.
  constexpr std::int16_t n = 16384;
  tiny_builder b(n);
  for (std::int16_t v = 0; v + 1 < n; ++v) {
    b.add_edge(v, static_cast<std::int16_t>(v + 1));
  }
  ASSERT_EQ(b.pending_edges(), 16383u);
  const auto g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_EQ(g.num_edges(), 16383);
  EXPECT_NO_THROW(g.validate());
}

TEST(BuilderOverflow, TinyLayoutRefusesOverflow) {
  // 16384 pending edges -> 2 * 16384 = 32768 > int16 max: hard error, not
  // a silent wrap (duplicates count because the check is pre-dedup).
  constexpr std::int16_t n = 16384;
  tiny_builder b(n);
  for (std::int16_t v = 0; v + 1 < n; ++v) {
    b.add_edge(v, static_cast<std::int16_t>(v + 1));
  }
  b.add_edge(0, 1);  // duplicate pushes the pre-dedup count over the limit
  ASSERT_EQ(b.pending_edges(), 16384u);
  EXPECT_THROW(std::move(b).build(), micg::check_error);
}

TEST(BuilderOverflow, BuildAutoPicksNarrowestLayout) {
  micg::graph::graph_builder64 b(100);
  for (int v = 0; v + 1 < 100; ++v) {
    b.add_edge(v, v + 1);
  }
  const any_csr g = micg::graph::build_auto(std::move(b));
  EXPECT_EQ(g.layout(), csr_layout::v32e32);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_EQ(g.num_edges(), 99);
  EXPECT_NO_THROW(g.validate());
}

// ------------------------------------------------------ binary round-trip

void expect_same_structure(const any_csr& a, const any_csr& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  a.visit([&](const auto& ga) {
    b.visit([&](const auto& gb) {
      for (std::int64_t v = 0; v < a.num_vertices(); ++v) {
        const auto na = ga.neighbors(
            static_cast<typename std::decay_t<decltype(ga)>::vertex_type>(
                v));
        const auto nb = gb.neighbors(
            static_cast<typename std::decay_t<decltype(gb)>::vertex_type>(
                v));
        ASSERT_EQ(na.size(), nb.size());
        for (std::size_t i = 0; i < na.size(); ++i) {
          EXPECT_EQ(static_cast<std::int64_t>(na[i]),
                    static_cast<std::int64_t>(nb[i]));
        }
      }
    });
  });
}

TEST(AnyCsrBinary, RoundTripPreservesEveryLayout) {
  const csr_graph base = micg::graph::make_grid_2d(13, 17);
  for (csr_layout l : {csr_layout::v32e32, csr_layout::v32e64,
                       csr_layout::v64e64}) {
    const any_csr g = micg::graph::to_layout(any_csr(base), l);
    std::stringstream ss;
    micg::graph::write_binary(ss, g);
    const any_csr back = micg::graph::read_binary_any(ss);
    EXPECT_EQ(back.layout(), l) << micg::graph::layout_name(l);
    expect_same_structure(g, back);
  }
}

TEST(AnyCsrBinary, CompatReaderNormalizesToDefaultLayout) {
  const csr_graph base = micg::graph::make_kary_tree(3, 5);
  std::stringstream ss;
  // Write the narrowest layout; the compat reader must widen it back to
  // the historical csr_graph layout.
  micg::graph::write_binary(ss, micg::graph::to_narrowest(base));
  const csr_graph back = micg::graph::read_binary(ss);
  expect_same_structure(any_csr(base), any_csr(back));
}

TEST(AnyCsrBinary, ReadsVersion1Streams) {
  // A version-1 file is byte-identical to a version-2 csr_graph file with
  // version=1 and a zero reserved word where the widths now live.
  const csr_graph base = micg::graph::make_grid_2d(7, 9);
  std::stringstream ss;
  micg::graph::write_binary(ss, base);
  std::string bytes = ss.str();
  const std::uint32_t v1 = 1;
  const std::uint16_t zero16 = 0;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));        // version
  std::memcpy(bytes.data() + 12, &zero16, sizeof(zero16));  // vid_bytes
  std::memcpy(bytes.data() + 14, &zero16, sizeof(zero16));  // eid_bytes
  std::stringstream v1s(bytes);
  const any_csr back = micg::graph::read_binary_any(v1s);
  EXPECT_EQ(back.layout(), csr_layout::v32e64);
  expect_same_structure(any_csr(base), back);
}

TEST(AnyCsrBinary, RejectsCorruptVersion1Header) {
  const csr_graph base = micg::graph::make_grid_2d(4, 4);
  std::stringstream ss;
  micg::graph::write_binary(ss, base);
  std::string bytes = ss.str();
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));
  // Leave the width fields at (4, 8): a real version-1 writer always
  // wrote zeros there, so this header is corrupt.
  std::stringstream v1s(bytes);
  EXPECT_THROW(micg::graph::read_binary_any(v1s), micg::check_error);
}

TEST(AnyCsrBinary, RejectsUnsupportedIndexWidths) {
  const csr_graph base = micg::graph::make_grid_2d(4, 4);
  std::stringstream ss;
  micg::graph::write_binary(ss, base);
  std::string bytes = ss.str();
  const std::uint16_t two = 2;
  std::memcpy(bytes.data() + 12, &two, sizeof(two));  // vid_bytes = 2
  std::stringstream bad(bytes);
  EXPECT_THROW(micg::graph::read_binary_any(bad), micg::check_error);
}

// ------------------------------------------------------ cross-layout parity

class LayoutParity : public ::testing::TestWithParam<const char*> {};

TEST_P(LayoutParity, KernelsAgreeOnEveryLayout) {
  const auto& entry = micg::graph::suite_entry_by_name(GetParam());
  const csr_graph ref = micg::graph::make_suite_graph(entry, 0.002);
  const auto source =
      static_cast<micg::graph::vertex_t>(ref.num_vertices() / 2);

  // Reference results on the historical layout.
  const auto ref_bfs = micg::bfs::seq_bfs(ref, source);
  const auto ref_greedy = micg::color::greedy_color(ref);
  micg::irregular::pagerank_options popt;
  popt.ex.threads = 2;
  popt.max_iterations = 30;
  const auto ref_pr = micg::irregular::pagerank(ref, popt);

  for (csr_layout l : {csr_layout::v32e32, csr_layout::v64e64}) {
    SCOPED_TRACE(micg::graph::layout_name(l));
    const any_csr g = micg::graph::to_layout(any_csr(ref), l);
    g.visit([&](const auto& gl) {
      using VId = typename std::decay_t<decltype(gl)>::vertex_type;

      // BFS: parallel (every variant's default) levels match the
      // sequential reference computed on the historical layout.
      micg::bfs::parallel_bfs_options bopt;
      bopt.ex.threads = 2;
      const auto r =
          micg::bfs::parallel_bfs(gl, static_cast<VId>(source), bopt);
      EXPECT_EQ(r.level, ref_bfs.level);
      EXPECT_TRUE(micg::bfs::is_valid_bfs_levels(
          gl, static_cast<VId>(source), r.level));

      // Greedy coloring is deterministic: exact color-array equality.
      const auto c = micg::color::greedy_color(gl);
      EXPECT_EQ(c.color, ref_greedy.color);
      EXPECT_EQ(c.num_colors, ref_greedy.num_colors);

      // Iterative coloring is nondeterministic but must stay valid.
      micg::color::iterative_options iopt;
      iopt.ex.threads = 2;
      const auto ic = micg::color::iterative_color(gl, iopt);
      EXPECT_TRUE(micg::color::is_valid_coloring(gl, ic.color));

      // PageRank runs the same schedule on every layout: identical
      // floating-point operation order, identical ranks.
      const auto pr = micg::irregular::pagerank(gl, popt);
      ASSERT_EQ(pr.rank.size(), ref_pr.rank.size());
      EXPECT_EQ(pr.iterations, ref_pr.iterations);
      for (std::size_t i = 0; i < pr.rank.size(); ++i) {
        EXPECT_DOUBLE_EQ(pr.rank[i], ref_pr.rank[i]);
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, LayoutParity,
                         ::testing::Values("auto", "hood", "pwtk"));

}  // namespace
