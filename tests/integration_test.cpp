// Cross-module integration tests: complete workflows a downstream user
// would run, exercising graph construction, I/O, coloring, BFS, the
// irregular kernels and the model together.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <sstream>

#include "micg/bfs/centrality.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/parents.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/bfs/validate.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/components.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/io_mm.hpp"
#include "micg/graph/permute.hpp"
#include "micg/graph/suite.hpp"
#include "micg/irregular/gauss_seidel.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/model/bfs_model.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/tracegen.hpp"

namespace {

using micg::graph::vertex_t;

TEST(Integration, GenerateSaveLoadAnalyzePipeline) {
  // Generate -> binary roundtrip -> mtx roundtrip -> identical analyses.
  const auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("bmw3_2"), 0.01);

  std::stringstream bin, mtx;
  micg::graph::write_binary(bin, g);
  micg::graph::write_matrix_market(mtx, g);
  const auto g_bin = micg::graph::read_binary(bin);
  const auto g_mtx = micg::graph::read_matrix_market(mtx);
  EXPECT_EQ(g_bin.adj(), g.adj());
  EXPECT_EQ(g_mtx.adj(), g.adj());

  const auto bfs_a = micg::bfs::seq_bfs(g, 0);
  const auto bfs_b = micg::bfs::seq_bfs(g_bin, 0);
  EXPECT_EQ(bfs_a.level, bfs_b.level);
}

TEST(Integration, ColorThenScheduleThenSmooth) {
  // The paper's end-to-end story: color a conflict graph, use the classes
  // as a lock-free schedule, verify the parallel sweep is exact.
  const auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("auto"), 0.01);
  micg::color::iterative_options copt;
  copt.ex.kind = micg::rt::backend::tbb_simple;
  copt.ex.threads = 8;
  copt.ex.chunk = 40;
  const auto coloring = micg::color::iterative_color(g, copt);
  ASSERT_TRUE(micg::color::is_valid_coloring(g, coloring.color));

  std::vector<double> state(static_cast<std::size_t>(g.num_vertices()),
                            1.0);
  state[0] = 5000.0;
  micg::irregular::gauss_seidel_options gopt;
  gopt.ex = copt.ex;
  gopt.sweeps = 2;
  const auto par =
      micg::irregular::colored_gauss_seidel(g, coloring.color, state, gopt);
  const auto seq = micg::irregular::gauss_seidel_seq(
      g, coloring.color, state, gopt.sweeps, gopt.self_weight);
  EXPECT_EQ(par, seq);
}

TEST(Integration, ShuffleChangesLocalityNotStructure) {
  // Figure 2's transformation end-to-end: a shuffled graph has identical
  // structural results (colors needed, BFS shape, components, centrality
  // ranking) under relabeling.
  const auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("pwtk"), 0.01);
  const auto perm =
      micg::graph::random_permutation(g.num_vertices(), 11);
  const auto h = micg::graph::apply_permutation(g, perm);

  // BFS from mapped source: identical level histogram.
  const vertex_t src = g.num_vertices() / 4;
  const auto bg = micg::bfs::seq_bfs(g, src);
  const auto bh = micg::bfs::seq_bfs(
      h, perm[static_cast<std::size_t>(src)]);
  EXPECT_EQ(bg.frontier_sizes, bh.frontier_sizes);

  // Components are preserved.
  micg::rt::exec ex;
  ex.threads = 4;
  EXPECT_EQ(micg::graph::parallel_components(g, ex).num_components,
            micg::graph::parallel_components(h, ex).num_components);

  // Paper model depends only on frontier sizes: identical speedups.
  EXPECT_DOUBLE_EQ(
      micg::model::bfs_model_speedup(bg.frontier_sizes, 61, 32),
      micg::model::bfs_model_speedup(bh.frontier_sizes, 61, 32));
}

TEST(Integration, BfsFamilyAgreesEverywhere) {
  // Every BFS implementation (seq, six layered variants, parent BFS,
  // model trace) sees the same level structure.
  const auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("msdoor"), 0.01);
  const vertex_t src = g.num_vertices() / 2;
  const auto ref = micg::bfs::seq_bfs(g, src);

  for (auto variant : micg::bfs::all_bfs_variants()) {
    micg::bfs::parallel_bfs_options opt;
    opt.variant = variant;
    opt.ex.threads = 4;
    const auto r = micg::bfs::parallel_bfs(g, src, opt);
    ASSERT_EQ(r.level, ref.level) << micg::bfs::bfs_variant_name(variant);
  }

  micg::bfs::parallel_bfs_options popt;
  popt.ex.threads = 4;
  const auto pr = micg::bfs::parallel_bfs_parents(g, src, popt);
  EXPECT_TRUE(micg::bfs::validate_parent_tree(g, src, pr.parent));
  EXPECT_EQ(pr.reached, ref.reached);

  micg::model::bfs_trace_options bopt;
  const auto trace = micg::model::bfs_trace(g, src, bopt);
  EXPECT_EQ(trace.steps.size(),
            static_cast<std::size_t>(ref.num_levels));
}

TEST(Integration, PagerankOnColoredComponents) {
  // Disconnected graph: per-component mass of the PageRank vector matches
  // component sizes (teleport spreads uniformly), computed with the
  // parallel component labels.
  micg::graph::graph_builder b(300);
  for (vertex_t v = 0; v < 99; ++v) b.add_edge(v, v + 1);        // 0..99
  for (vertex_t v = 100; v < 299; ++v) b.add_edge(v, v + 1);     // 100..299
  auto g = std::move(b).build();

  micg::rt::exec ex;
  ex.threads = 4;
  const auto comps = micg::graph::parallel_components(g, ex);
  ASSERT_EQ(comps.num_components, 2);

  micg::irregular::pagerank_options popt;
  popt.ex = ex;
  const auto pr = micg::irregular::pagerank(g, popt);
  double mass0 = 0.0, mass1 = 0.0;
  for (vertex_t v = 0; v < 300; ++v) {
    (comps.label[static_cast<std::size_t>(v)] == 0 ? mass0 : mass1) +=
        pr.rank[static_cast<std::size_t>(v)];
  }
  EXPECT_NEAR(mass0 + mass1, 1.0, 1e-6);
  // Component masses proportional to size within a few percent (chain
  // ends distort slightly).
  EXPECT_NEAR(mass0, 100.0 / 300.0, 0.02);
}

TEST(Integration, CentralityTracksBfsStructure) {
  // On a barbell-ish graph (two cliques joined by a path) the path
  // vertices dominate centrality, and they're also the narrow BFS levels.
  micg::graph::graph_builder b(23);
  for (vertex_t u = 0; u < 8; ++u) {
    for (vertex_t v = u + 1; v < 8; ++v) b.add_edge(u, v);
  }
  for (vertex_t u = 15; u < 23; ++u) {
    for (vertex_t v = u + 1; v < 23; ++v) b.add_edge(u, v);
  }
  for (vertex_t v = 7; v < 16; ++v) b.add_edge(v, v + 1);  // the bridge
  auto g = std::move(b).build();

  const auto bc = micg::bfs::betweenness_centrality_seq(g);
  // The middle bridge vertex beats every clique vertex.
  const std::size_t mid = 11;
  for (vertex_t v = 0; v < 7; ++v) {
    EXPECT_GT(bc[mid], bc[static_cast<std::size_t>(v)]);
  }
  const auto r = micg::bfs::seq_bfs(g, 0);
  EXPECT_GT(r.num_levels, 8);  // the bridge stretches the BFS
}

}  // namespace
