// Tests for the coloring module: sequential greedy (Algorithm 1), the
// iterative parallel algorithm (Algorithms 2-4) across every backend, the
// quality bound of §V-B, and the distance-2 extension.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "micg/color/distance2.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/permute.hpp"
#include "micg/graph/suite.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::graph::csr_graph;
using micg::graph::vertex_t;
using micg::rt::backend;

// ------------------------------------------------------------------ greedy

TEST(Greedy, ChainUsesTwoColors) {
  auto g = micg::graph::make_chain(100);
  const auto c = micg::color::greedy_color(g);
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
}

TEST(Greedy, EvenCycleTwoColorsOddCycleThree) {
  auto even = micg::graph::make_cycle(10);
  EXPECT_EQ(micg::color::greedy_color(even).num_colors, 2);
  auto odd = micg::graph::make_cycle(11);
  EXPECT_EQ(micg::color::greedy_color(odd).num_colors, 3);
}

TEST(Greedy, CompleteGraphNeedsNColors) {
  auto g = micg::graph::make_complete(7);
  const auto c = micg::color::greedy_color(g);
  EXPECT_EQ(c.num_colors, 7);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
}

TEST(Greedy, StarUsesTwoColors) {
  auto g = micg::graph::make_star(50);
  EXPECT_EQ(micg::color::greedy_color(g).num_colors, 2);
}

TEST(Greedy, BoundedByMaxDegreePlusOne) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto g = micg::graph::make_erdos_renyi(2000, 10.0, seed);
    const auto c = micg::color::greedy_color(g);
    EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
    EXPECT_LE(c.num_colors, static_cast<int>(g.max_degree()) + 1);
  }
}

TEST(Greedy, CustomOrderStillValid) {
  auto g = micg::graph::make_erdos_renyi(1000, 8.0, 5);
  const auto order = micg::graph::random_permutation(g.num_vertices(), 17);
  const auto c = micg::color::greedy_color(g, order);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
}

TEST(Greedy, RejectsBadOrder) {
  auto g = micg::graph::make_chain(4);
  std::vector<vertex_t> bad{0, 0, 1, 2};
  EXPECT_THROW(micg::color::greedy_color(g, bad), micg::check_error);
}

TEST(ForbiddenMarks, StampSemantics) {
  micg::color::forbidden_marks m(8);
  m.forbid(1, /*v=*/10);
  m.forbid(2, /*v=*/10);
  EXPECT_EQ(m.first_allowed(10), 3);
  // Different vertex ignores stale stamps: no re-initialization needed.
  EXPECT_EQ(m.first_allowed(11), 1);
  // Non-colors are ignored.
  m.forbid(0, 12);
  m.forbid(-3, 12);
  EXPECT_EQ(m.first_allowed(12), 1);
}

TEST(ForbiddenMarks, GrowsBeyondInitialCapacity) {
  // An undersized scratch must not drop marks: a dropped mark would let
  // first_allowed() hand out a color a neighbor already holds.
  micg::color::forbidden_marks m(2);
  for (int c = 1; c <= 100; ++c) m.forbid(c, /*v=*/7);
  EXPECT_EQ(m.first_allowed(7), 101);
  EXPECT_GE(m.capacity(), 101u);
  // The grown region is initialized: other vertices are unaffected.
  EXPECT_EQ(m.first_allowed(8), 1);
}

TEST(ForbiddenBitset, MarksAndScansWordBoundaries) {
  micg::color::forbidden_bitset b(16);
  EXPECT_EQ(b.first_allowed(), 1);
  b.forbid(1);
  b.forbid(2);
  EXPECT_EQ(b.first_allowed(), 3);
  // Fill a full word's worth so the scan crosses into word 1.
  for (int c = 1; c <= 64; ++c) b.forbid(c);
  EXPECT_EQ(b.first_allowed(), 65);
  b.forbid(65);
  EXPECT_EQ(b.first_allowed(), 66);
  // Non-colors ignored; reset clears only what was touched.
  b.forbid(0);
  b.forbid(-5);
  b.reset();
  EXPECT_EQ(b.first_allowed(), 1);
}

TEST(ForbiddenBitset, GrowsBeyondInitialCapacity) {
  micg::color::forbidden_bitset b(4);
  for (int c = 1; c <= 1000; ++c) b.forbid(c);
  EXPECT_EQ(b.first_allowed(), 1001);
  EXPECT_GE(b.capacity(), 1001u);
  b.reset();
  EXPECT_EQ(b.first_allowed(), 1);
}

TEST(ForbiddenBitset, SparseHighColorsScanFast) {
  micg::color::forbidden_bitset b(256);
  b.forbid(200);
  EXPECT_EQ(b.first_allowed(), 1);
  for (int c = 1; c <= 10; ++c) b.forbid(c);
  EXPECT_EQ(b.first_allowed(), 11);
}

TEST(Greedy, HighDegreeHubCrossesBitsetThreshold) {
  // A star larger than bitset_degree_threshold routes its hub through the
  // bitset scratch while the leaves stay on the stamp path; the coloring
  // must remain a valid 2-coloring either way.
  const auto n = static_cast<vertex_t>(
      micg::color::bitset_degree_threshold + 500);
  auto g = micg::graph::make_star(n);
  const auto c = micg::color::greedy_color(g);
  EXPECT_EQ(c.num_colors, 2);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
  // Reverse order colors every leaf before the hub — the hub's scan then
  // walks a fully-marked bitset.
  std::vector<vertex_t> order(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<vertex_t>(order.size() - 1 - i);
  }
  const auto rev = micg::color::greedy_color(g, order);
  EXPECT_EQ(rev.num_colors, 2);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, rev.color));
}

TEST(Greedy, CliqueWithHubPendantsAboveThreshold) {
  // A clique pinned to >2 colors where the first clique vertex also owns
  // enough pendant leaves to cross the bitset threshold: the bitset path
  // must reproduce the same first-fit colors as the stamp path would.
  const auto extra = static_cast<vertex_t>(
      micg::color::bitset_degree_threshold + 10);
  micg::graph::graph_builder b(20 + extra);
  for (vertex_t v = 0; v < 20; ++v) {
    for (vertex_t w = static_cast<vertex_t>(v + 1); w < 20; ++w) {
      b.add_edge(v, w);
    }
  }
  for (vertex_t l = 0; l < extra; ++l) {
    b.add_edge(0, static_cast<vertex_t>(20 + l));
  }
  auto g = std::move(b).build();
  const auto c = micg::color::greedy_color(g);
  EXPECT_EQ(c.num_colors, 20);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
  // First-fit in natural order: clique vertex v gets color v+1, pendants
  // see only vertex 0 and get color 2.
  for (vertex_t v = 0; v < 20; ++v) {
    EXPECT_EQ(c.color[static_cast<std::size_t>(v)], static_cast<int>(v) + 1);
  }
  EXPECT_EQ(c.color[25], 2);
}

// ------------------------------------------------------------------ verify

TEST(Verify, DetectsConflicts) {
  auto g = micg::graph::make_chain(3);  // 0-1-2
  std::vector<int> good{1, 2, 1};
  EXPECT_TRUE(micg::color::is_valid_coloring(g, good));
  EXPECT_TRUE(micg::color::find_conflicts(g, good).empty());
  std::vector<int> bad{1, 1, 2};
  EXPECT_FALSE(micg::color::is_valid_coloring(g, bad));
  const auto conflicts = micg::color::find_conflicts(g, bad);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], 0);  // v < w rule reports the smaller endpoint
}

TEST(Verify, UncoloredIsInvalid) {
  auto g = micg::graph::make_chain(2);
  std::vector<int> uncolored{0, 1};
  EXPECT_FALSE(micg::color::is_valid_coloring(g, uncolored));
}

TEST(Verify, CountColors) {
  std::vector<int> c{1, 3, 2, 3};
  EXPECT_EQ(micg::color::count_colors(c), 3);
}

// --------------------------------------------------------------- iterative

struct IterCase {
  backend kind;
  int threads;
};

class IterativeColoring : public ::testing::TestWithParam<IterCase> {};

TEST_P(IterativeColoring, ValidOnErdosRenyi) {
  const auto p = GetParam();
  auto g = micg::graph::make_erdos_renyi(3000, 12.0, 99);
  micg::color::iterative_options opt;
  opt.ex.kind = p.kind;
  opt.ex.threads = p.threads;
  opt.ex.chunk = 64;
  const auto r = micg::color::iterative_color(g, opt);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, r.color));
  EXPECT_LE(r.num_colors, static_cast<int>(g.max_degree()) + 1);
  EXPECT_GE(r.rounds, 1);
  ASSERT_EQ(r.conflicts_per_round.size(),
            static_cast<std::size_t>(r.rounds));
  EXPECT_EQ(r.conflicts_per_round.back(), 0u);
}

TEST_P(IterativeColoring, ValidOnSuiteStandIn) {
  const auto p = GetParam();
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("hood"), 0.01);
  micg::color::iterative_options opt;
  opt.ex.kind = p.kind;
  opt.ex.threads = p.threads;
  opt.ex.chunk = 40;  // paper's best chunk for coloring
  const auto r = micg::color::iterative_color(g, opt);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, r.color));
}

std::vector<IterCase> iterative_cases() {
  std::vector<IterCase> cases;
  for (backend b : micg::rt::all_backends()) {
    cases.push_back({b, 1});
    cases.push_back({b, 4});
  }
  cases.push_back({backend::omp_dynamic, 16});  // oversubscribed
  cases.push_back({backend::cilk_holder, 16});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IterativeColoring, ::testing::ValuesIn(iterative_cases()),
    [](const auto& info) {
      std::string n = micg::rt::backend_name(info.param.kind);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_t" + std::to_string(info.param.threads);
    });

TEST(IterativeQuality, DegradationBounded) {
  // §V-B reports parallel color counts within 5% of sequential on the UF
  // matrices. The synthetic stand-ins have smaller cliques, so first-fit
  // is more order-sensitive and speculation costs more; we bound the
  // degradation at 35% and document the difference in EXPERIMENTS.md.
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("msdoor"), 0.02);
  const auto seq = micg::color::greedy_color(g);
  micg::color::iterative_options opt;
  opt.ex.kind = backend::omp_dynamic;
  opt.ex.threads = 8;
  opt.ex.chunk = 40;
  const auto par = micg::color::iterative_color(g, opt);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, par.color));
  EXPECT_LE(par.num_colors,
            static_cast<int>(1.35 * seq.num_colors) + 1);
}

TEST(IterativeQuality, CliqueDominatedGraphsKeepExactCount) {
  // When the chromatic number is pinned by a large clique (the situation
  // of the paper's FEM matrices), speculation cannot inflate the count:
  // K_n needs exactly n colors under any visit order.
  auto g = micg::graph::make_complete(24);
  const auto seq = micg::color::greedy_color(g);
  micg::color::iterative_options opt;
  opt.ex.kind = backend::omp_dynamic;
  opt.ex.threads = 8;
  opt.ex.chunk = 2;
  const auto par = micg::color::iterative_color(g, opt);
  EXPECT_EQ(seq.num_colors, 24);
  EXPECT_EQ(par.num_colors, 24);
}

TEST(IterativeQuality, SingleThreadMatchesSequentialColors) {
  auto g = micg::graph::make_erdos_renyi(2000, 10.0, 31);
  const auto seq = micg::color::greedy_color(g);
  micg::color::iterative_options opt;
  opt.ex.kind = backend::omp_static;
  opt.ex.threads = 1;
  opt.ex.chunk = 1 << 30;  // one chunk: identical visit order
  const auto par = micg::color::iterative_color(g, opt);
  EXPECT_EQ(par.rounds, 1);  // no speculation conflicts possible
  EXPECT_EQ(par.num_colors, seq.num_colors);
  EXPECT_EQ(par.color, seq.color);
}

TEST(IterativeOptions, Rejected) {
  auto g = micg::graph::make_chain(10);
  micg::color::iterative_options opt;
  opt.ex.threads = 0;
  EXPECT_THROW(micg::color::iterative_color(g, opt), micg::check_error);
  opt.ex.threads = 1;
  opt.max_rounds = 0;
  EXPECT_THROW(micg::color::iterative_color(g, opt), micg::check_error);
}

TEST(IterativeColoringShuffled, ValidOnRandomOrder) {
  // Figure 2 configuration: randomly relabeled graph.
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("pwtk"), 0.01);
  auto shuffled = micg::graph::apply_permutation(
      g, micg::graph::random_permutation(g.num_vertices(), 2026));
  micg::color::iterative_options opt;
  opt.ex.kind = backend::omp_dynamic;
  opt.ex.threads = 8;
  opt.ex.chunk = 100;
  const auto r = micg::color::iterative_color(shuffled, opt);
  EXPECT_TRUE(micg::color::is_valid_coloring(shuffled, r.color));
}

// --------------------------------------------------------------- distance-2

TEST(Distance2, ChainNeedsThreeColors) {
  auto g = micg::graph::make_chain(10);
  const auto c = micg::color::greedy_color_distance2(g);
  EXPECT_EQ(c.num_colors, 3);
  EXPECT_TRUE(micg::color::is_valid_distance2_coloring(g, c.color));
}

TEST(Distance2, StarNeedsNColors) {
  // All leaves are within distance 2 of each other.
  auto g = micg::graph::make_star(12);
  const auto c = micg::color::greedy_color_distance2(g);
  EXPECT_EQ(c.num_colors, 12);
}

TEST(Distance2, ValidityCheckerRejectsD1OnlyColoring) {
  auto g = micg::graph::make_chain(5);
  std::vector<int> d1{1, 2, 1, 2, 1};  // valid distance-1, not distance-2
  EXPECT_FALSE(micg::color::is_valid_distance2_coloring(g, d1));
}

class Distance2Parallel : public ::testing::TestWithParam<backend> {};

TEST_P(Distance2Parallel, MatchesValidity) {
  auto g = micg::graph::make_erdos_renyi(800, 6.0, 55);
  micg::color::iterative_options opt;
  opt.ex.kind = GetParam();
  opt.ex.threads = 4;
  opt.ex.chunk = 16;
  const auto r = micg::color::iterative_color_distance2(g, opt);
  EXPECT_TRUE(micg::color::is_valid_distance2_coloring(g, r.color));
  // Distance-2 needs at least as many colors as distance-1.
  const auto d1 = micg::color::iterative_color(g, opt);
  EXPECT_GE(r.num_colors, d1.num_colors);
}

INSTANTIATE_TEST_SUITE_P(SomeBackends, Distance2Parallel,
                         ::testing::Values(backend::omp_dynamic,
                                           backend::cilk_holder,
                                           backend::tbb_simple),
                         [](const auto& info) {
                           std::string n =
                               micg::rt::backend_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
