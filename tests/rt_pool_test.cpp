// Tests for the persistent thread pool, barrier, spinlock and worker ids.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "micg/rt/barrier.hpp"
#include "micg/rt/spinlock.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/rt/worker.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"

namespace {

using micg::rt::thread_pool;

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  thread_pool pool(8);
  std::atomic<int> hits{0};
  std::mutex mu;
  std::set<int> ids;
  pool.run(8, [&](int w) {
    hits.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(w);
  });
  EXPECT_EQ(hits.load(), 8);
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 7);
}

TEST(ThreadPool, CallerIsWorkerZero) {
  thread_pool pool(4);
  int caller_id = -2;
  pool.run(1, [&](int w) {
    if (micg::rt::this_worker_id() == 0) caller_id = w;
  });
  EXPECT_EQ(caller_id, 0);
}

TEST(ThreadPool, WorkerIdVisibleViaTls) {
  thread_pool pool(4);
  std::vector<micg::padded<int>> seen(4);
  pool.run(4, [&](int w) {
    seen[static_cast<std::size_t>(w)].value = micg::rt::this_worker_id();
  });
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(seen[static_cast<std::size_t>(w)].value, w);
  }
}

TEST(ThreadPool, WorkerIdResetAfterRegion) {
  thread_pool pool(2);
  pool.run(2, [](int) {});
  EXPECT_EQ(micg::rt::this_worker_id(), -1);
}

TEST(ThreadPool, SupportsRepeatedRegions) {
  thread_pool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(4, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, RegionsOfVaryingWidth) {
  thread_pool pool(1);  // grows on demand
  for (int n : {1, 3, 7, 2, 16, 1}) {
    std::atomic<int> hits{0};
    pool.run(n, [&](int) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), n) << "width " << n;
  }
  EXPECT_GE(pool.max_threads(), 16);
}

TEST(ThreadPool, OversubscriptionWorks) {
  // 64 workers on however few cores this machine has.
  thread_pool pool(64);
  std::atomic<long> sum{0};
  pool.run(64, [&](int w) { sum.fetch_add(w); });
  EXPECT_EQ(sum.load(), 64L * 63L / 2L);
}

TEST(ThreadPool, NestedWidthOneRegionIsLegal) {
  // A serial (width-1) region may run inside a parallel region — the
  // pattern of a pipeline filter calling a serial library routine.
  thread_pool outer(4);
  thread_pool inner(1);
  std::atomic<int> nested_runs{0};
  outer.run(4, [&](int) {
    inner.run(1, [&](int w) {
      EXPECT_EQ(w, 0);
      EXPECT_EQ(micg::rt::this_worker_id(), 0);
      nested_runs.fetch_add(1);
    });
  });
  EXPECT_EQ(nested_runs.load(), 4);
  // Multi-thread nesting is still rejected.
  EXPECT_THROW(
      outer.run(2, [&](int) { inner.run(2, [](int) {}); }),
      micg::check_error);
}

TEST(ThreadPool, WorkerExceptionsPropagateToCaller) {
  thread_pool pool(4);
  // Thrown on a helper thread: captured, joined, rethrown on the caller.
  EXPECT_THROW(pool.run(4,
                        [&](int w) {
                          if (w == 3) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> hits{0};
  pool.run(4, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
  // Thrown on the caller (worker 0): helpers are still joined first.
  EXPECT_THROW(pool.run(4,
                        [&](int w) {
                          if (w == 0) throw std::runtime_error("caller");
                        }),
               std::runtime_error);
  pool.run(2, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 6);
}

TEST(ThreadPool, RejectsZeroThreads) {
  thread_pool pool(2);
  EXPECT_THROW(pool.run(0, [](int) {}), micg::check_error);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> hits{0};
  thread_pool::global().run(4, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 8;
  constexpr int kPhases = 20;
  thread_pool pool(kThreads);
  micg::rt::sense_barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> torn{false};
  pool.run(kThreads, [&](int) {
    for (int p = 0; p < kPhases; ++p) {
      phase_counter.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier every thread must observe the full phase count.
      if (phase_counter.load() < (p + 1) * kThreads) torn.store(true);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(Barrier, SingleParticipantNeverBlocks) {
  micg::rt::sense_barrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

TEST(Spinlock, MutualExclusion) {
  thread_pool pool(8);
  micg::rt::spinlock lock;
  long counter = 0;  // protected by `lock`
  pool.run(8, [&](int) {
    for (int i = 0; i < 1000; ++i) {
      std::lock_guard<micg::rt::spinlock> guard(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 8000);
}

TEST(Spinlock, TryLockReportsContention) {
  micg::rt::spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
