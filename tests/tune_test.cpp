// The auto-tuner: knob-picker decision table on synthetic profiles,
// micg.calib.v1 round-trip and schema validation, the machine_config
// projection, the one-sweep graph probe against naive recomputation, the
// epoch-keyed stats cache, and the central output-invariance property —
// `--tune auto` (and `calibrate`) must be bit-identical to `--tune fixed`
// for every tuned kernel, in every shipped layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "micg/api/api.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/stats.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"
#include "micg/tune/calib.hpp"
#include "micg/tune/tune.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::csr_layout;
using micg::graph::graph_stats;
using micg::tune::calibration_profile;
using micg::tune::gather_point;
using micg::tune::knob_plan;
using micg::tune::pick_knobs;
using micg::tune::tune_mode;

// ------------------------------------------------------ synthetic inputs

/// Out-of-order host: SIMD gathers win, software prefetch loses (the
/// machine class the shipped static defaults were tuned on).
calibration_profile ooo_profile() {
  calibration_profile p;
  p.host = "test-ooo";
  p.isa = "test";
  p.threads = 4;
  p.synthetic = true;
  p.alu_ns = 0.4;
  p.stream_gbps = 12.0;
  p.gather_latency_ns = 80.0;
  p.chunk_claim_ns = 40.0;
  p.spawn_ns = 120.0;
  p.gather.push_back({.working_set_bytes = 256 << 10,
                      .plain_gbps = 6.0,
                      .simd_gbps = 7.5,
                      .prefetch8_gbps = 5.8,
                      .prefetch32_gbps = 5.6});
  p.gather.push_back({.working_set_bytes = 64 << 20,
                      .plain_gbps = 1.2,
                      .simd_gbps = 1.5,
                      .prefetch8_gbps = 1.15,
                      .prefetch32_gbps = 1.1});
  return p;
}

/// In-order host (the paper's KNF shape): gathers stall on every miss, so
/// software prefetch multiplies throughput while the emulated vector
/// gather path runs slower than scalar.
calibration_profile inorder_profile() {
  calibration_profile p = ooo_profile();
  p.host = "test-inorder";
  p.gather.clear();
  p.gather.push_back({.working_set_bytes = 256 << 10,
                      .plain_gbps = 1.0,
                      .simd_gbps = 0.95,
                      .prefetch8_gbps = 2.0,
                      .prefetch32_gbps = 3.0});
  return p;
}

/// Mesh-shaped stats: regular degrees, no hubs, narrow frontiers.
graph_stats mesh_stats() {
  graph_stats st;
  st.num_vertices = 10000;
  st.num_directed_edges = 40000;
  st.min_degree = 4;
  st.max_degree = 4;
  st.avg_degree = 4.0;
  st.hub_edge_fraction = 0.01;
  return st;
}

/// RMAT-shaped stats: heavy skew, hubs own half the edges.
graph_stats rmat_stats() {
  graph_stats st;
  st.num_vertices = 4096;
  st.num_directed_edges = 4096 * 16;
  st.min_degree = 0;
  st.max_degree = 2000;
  st.avg_degree = 16.0;
  st.hub_edge_fraction = 0.5;
  return st;
}

// ------------------------------------------------- knob-picker decisions

TEST(PickKnobs, OooMeshKeepsShippedDefaults) {
  const knob_plan plan = pick_knobs(ooo_profile(), mesh_stats());
  EXPECT_TRUE(plan.mem.simd);
  EXPECT_EQ(plan.mem.prefetch_distance, 0);
  EXPECT_EQ(plan.mem.partition, micg::rt::partition_mode::vertex);
  EXPECT_FALSE(plan.bfs_direction);
  EXPECT_DOUBLE_EQ(plan.bfs_alpha, 14.0);
  EXPECT_EQ(plan.layout, csr_layout::v32e32);
  EXPECT_FALSE(plan.rationale.empty());
}

TEST(PickKnobs, OooRmatPicksEdgeBalanceAndDirection) {
  const knob_plan plan = pick_knobs(ooo_profile(), rmat_stats());
  EXPECT_TRUE(plan.mem.simd);
  EXPECT_EQ(plan.mem.prefetch_distance, 0);
  EXPECT_EQ(plan.mem.partition, micg::rt::partition_mode::edge);
  EXPECT_TRUE(plan.bfs_direction);
  EXPECT_EQ(plan.bfs_partition, micg::rt::partition_mode::edge);
  // Hubs own half the edges -> the bottom-up switch fires early.
  EXPECT_DOUBLE_EQ(plan.bfs_alpha, 8.0);
}

TEST(PickKnobs, InOrderPicksPrefetch) {
  const knob_plan plan = pick_knobs(inorder_profile(), mesh_stats());
  // pf32 at 3.0 (scalar base ~1.0) beats the simd/pf0 default (1.05) by
  // far more than the hysteresis margin.
  EXPECT_EQ(plan.mem.prefetch_distance, 32);
  EXPECT_FALSE(plan.mem.simd);
}

TEST(PickKnobs, HysteresisKeepsDefaultOnMarginalWins) {
  calibration_profile p = ooo_profile();
  p.gather.clear();
  // pf8 "wins" by 2% over the simd default — within noise, keep default.
  p.gather.push_back({.working_set_bytes = 256 << 10,
                      .plain_gbps = 6.0,
                      .simd_gbps = 6.0,
                      .prefetch8_gbps = 6.12,
                      .prefetch32_gbps = 5.0});
  const knob_plan plan = pick_knobs(p, mesh_stats());
  EXPECT_TRUE(plan.mem.simd);
  EXPECT_EQ(plan.mem.prefetch_distance, 0);
}

TEST(PickKnobs, ModerateHubMassKeepsBeamerAlpha) {
  graph_stats st = rmat_stats();
  st.hub_edge_fraction = 0.2;  // skewed, but hubs don't dominate
  const knob_plan plan = pick_knobs(ooo_profile(), st);
  EXPECT_TRUE(plan.bfs_direction);
  EXPECT_DOUBLE_EQ(plan.bfs_alpha, 14.0);
}

TEST(PickKnobs, ChunkIsClampedPowerOfTwo) {
  calibration_profile p = ooo_profile();
  // Free chunk claims -> the floor (the shipped default of 64).
  p.chunk_claim_ns = 0.001;
  EXPECT_EQ(pick_knobs(p, mesh_stats()).chunk, 64);
  // Absurdly expensive claims -> the ceiling, still a power of two.
  p.chunk_claim_ns = 1e6;
  EXPECT_EQ(pick_knobs(p, mesh_stats()).chunk, 8192);
  // In between: a power of two in range.
  p.chunk_claim_ns = 40.0;
  const std::int64_t c = pick_knobs(p, mesh_stats()).chunk;
  EXPECT_GE(c, 64);
  EXPECT_LE(c, 8192);
  EXPECT_EQ(c & (c - 1), 0) << "chunk " << c << " is not a power of two";
}

TEST(PickKnobs, LayoutFollowsNarrowestFitRule) {
  graph_stats st = mesh_stats();
  st.num_directed_edges = (std::int64_t{1} << 31) + 10;
  EXPECT_EQ(pick_knobs(ooo_profile(), st).layout, csr_layout::v32e64);
  st.num_vertices = (std::int64_t{1} << 32);
  EXPECT_EQ(pick_knobs(ooo_profile(), st).layout, csr_layout::v64e64);
}

TEST(PickKnobs, BuiltinDefaultProfileReproducesShippedDefaults) {
  // The fallback profile must be shaped so auto-tuning without any
  // calibration file behaves exactly like the hand-tuned defaults.
  for (const graph_stats& st : {mesh_stats(), rmat_stats()}) {
    const knob_plan plan = pick_knobs(micg::tune::default_profile(), st);
    EXPECT_TRUE(plan.mem.simd);
    EXPECT_EQ(plan.mem.prefetch_distance, 0);
  }
}

TEST(PickKnobs, SummaryMentionsEveryKnob) {
  const std::string s =
      micg::tune::knobs_summary(pick_knobs(ooo_profile(), rmat_stats()));
  EXPECT_NE(s.find("edge"), std::string::npos);
  EXPECT_NE(s.find("simd"), std::string::npos);
  EXPECT_NE(s.find("chunk"), std::string::npos);
  EXPECT_NE(s.find("dir"), std::string::npos);
}

// ------------------------------------------------------- mode resolution

TEST(TuneMode, NamesRoundTrip) {
  for (tune_mode m :
       {tune_mode::fixed, tune_mode::auto_pick, tune_mode::calibrate}) {
    EXPECT_EQ(micg::tune::tune_mode_from_name(micg::tune::tune_mode_name(m)),
              m);
  }
  EXPECT_THROW(micg::tune::tune_mode_from_name("turbo"), micg::check_error);
}

TEST(TuneMode, ResolutionOrderFieldThenEnvThenFixed) {
  const char* saved = std::getenv("MICG_TUNE");
  const std::string saved_copy = saved != nullptr ? saved : "";
  ::unsetenv("MICG_TUNE");
  EXPECT_EQ(micg::tune::resolve_tune_mode(""), tune_mode::fixed);
  EXPECT_EQ(micg::tune::resolve_tune_mode("auto"), tune_mode::auto_pick);
  ::setenv("MICG_TUNE", "calibrate", 1);
  EXPECT_EQ(micg::tune::resolve_tune_mode(""), tune_mode::calibrate);
  // An explicit request field outranks the environment.
  EXPECT_EQ(micg::tune::resolve_tune_mode("fixed"), tune_mode::fixed);
  ::setenv("MICG_TUNE", "bogus", 1);
  EXPECT_THROW(micg::tune::resolve_tune_mode(""), micg::check_error);
  if (saved != nullptr) {
    ::setenv("MICG_TUNE", saved_copy.c_str(), 1);
  } else {
    ::unsetenv("MICG_TUNE");
  }
}

// -------------------------------------------------- micg.calib.v1 schema

TEST(CalibSchema, RoundTripPreservesEveryField) {
  const calibration_profile p = ooo_profile();
  const calibration_profile q =
      micg::tune::profile_from_json(micg::tune::to_json(p));
  EXPECT_EQ(q.host, p.host);
  EXPECT_EQ(q.isa, p.isa);
  EXPECT_EQ(q.threads, p.threads);
  EXPECT_EQ(q.synthetic, p.synthetic);
  EXPECT_DOUBLE_EQ(q.alu_ns, p.alu_ns);
  EXPECT_DOUBLE_EQ(q.stream_gbps, p.stream_gbps);
  EXPECT_DOUBLE_EQ(q.gather_latency_ns, p.gather_latency_ns);
  EXPECT_DOUBLE_EQ(q.chunk_claim_ns, p.chunk_claim_ns);
  EXPECT_DOUBLE_EQ(q.spawn_ns, p.spawn_ns);
  ASSERT_EQ(q.gather.size(), p.gather.size());
  for (std::size_t i = 0; i < p.gather.size(); ++i) {
    EXPECT_EQ(q.gather[i].working_set_bytes, p.gather[i].working_set_bytes);
    EXPECT_DOUBLE_EQ(q.gather[i].plain_gbps, p.gather[i].plain_gbps);
    EXPECT_DOUBLE_EQ(q.gather[i].simd_gbps, p.gather[i].simd_gbps);
    EXPECT_DOUBLE_EQ(q.gather[i].prefetch8_gbps, p.gather[i].prefetch8_gbps);
    EXPECT_DOUBLE_EQ(q.gather[i].prefetch32_gbps,
                     p.gather[i].prefetch32_gbps);
  }
}

TEST(CalibSchema, TextRoundTripThroughDump) {
  const calibration_profile p = ooo_profile();
  const std::string text = micg::tune::to_json(p).dump();
  const calibration_profile q =
      micg::tune::profile_from_json(micg::api::json::parse(text));
  EXPECT_EQ(micg::tune::to_json(q).dump(), text);
}

TEST(CalibSchema, RejectsMalformedProfiles) {
  const calibration_profile p = ooo_profile();
  {
    micg::api::json v = micg::tune::to_json(p);
    v.set("schema", micg::api::json("micg.calib.v999"));
    EXPECT_THROW(micg::tune::profile_from_json(v), micg::check_error);
  }
  {
    micg::api::json v = micg::tune::to_json(p);
    v.set("stream_gbps", micg::api::json(-1.0));
    EXPECT_THROW(micg::tune::profile_from_json(v), micg::check_error);
  }
  {
    calibration_profile bad = p;
    std::swap(bad.gather.front(), bad.gather.back());  // unsorted
    EXPECT_THROW(micg::tune::profile_from_json(micg::tune::to_json(bad)),
                 micg::check_error);
  }
  {
    calibration_profile bad = p;
    bad.gather.clear();
    EXPECT_THROW(micg::tune::profile_from_json(micg::tune::to_json(bad)),
                 micg::check_error);
  }
}

TEST(CalibSchema, GatherNearPicksLogScaleNearest) {
  const calibration_profile p = ooo_profile();  // points at 256 KiB, 64 MiB
  EXPECT_EQ(p.gather_near(1 << 20)->working_set_bytes, 256 << 10);
  EXPECT_EQ(p.gather_near(16 << 20)->working_set_bytes, 64 << 20);
  EXPECT_EQ(p.gather_near(1)->working_set_bytes, 256 << 10);
  EXPECT_EQ(p.gather_near(std::int64_t{1} << 40)->working_set_bytes,
            64 << 20);
}

TEST(CalibSchema, MachineConfigProjection) {
  const calibration_profile p = ooo_profile();
  const micg::model::machine_config mc = micg::tune::to_machine_config(p);
  // 1.0 model unit == one ALU op == alu_ns wall nanoseconds.
  EXPECT_NEAR(mc.mem_latency, p.gather_latency_ns / p.alu_ns, 1e-9);
  EXPECT_EQ(mc.cores, p.threads);
  EXPECT_EQ(mc.smt, 1);
  EXPECT_GT(mc.mlp, 0);
  EXPECT_GT(mc.chip_mem_ops_per_unit, 0.0);
}

// ------------------------------------------------------- the graph probe

TEST(GraphStats, MatchesNaiveRecomputationOnRmat) {
  const auto g = micg::graph::make_rmat(8, 8, 0.57, 0.19, 0.19, 7);
  const graph_stats st = micg::graph::compute_graph_stats(g);
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  ASSERT_EQ(st.num_vertices, n);
  EXPECT_EQ(st.num_directed_edges,
            static_cast<std::int64_t>(g.xadj().back()));

  std::int64_t mn = n, mx = 0, hist_total = 0;
  double sum = 0.0;
  for (std::int64_t v = 0; v < n; ++v) {
    const auto d = static_cast<std::int64_t>(
        g.degree(static_cast<micg::graph::vertex_t>(v)));
    mn = std::min(mn, d);
    mx = std::max(mx, d);
    sum += static_cast<double>(d);
  }
  EXPECT_EQ(st.min_degree, mn);
  EXPECT_EQ(st.max_degree, mx);
  EXPECT_DOUBLE_EQ(st.avg_degree, sum / static_cast<double>(n));
  for (const auto c : st.degree_log2_hist) hist_total += c;
  EXPECT_EQ(hist_total, n) << "histogram must count every vertex once";
  EXPECT_GE(st.degree_stddev, 0.0);
  EXPECT_GT(st.skew(), 1.0);
  EXPECT_GT(st.hub_edge_fraction, 0.0);
  EXPECT_LE(st.hub_edge_fraction, 1.0);
}

TEST(GraphStats, StarGraphShape) {
  const auto g = micg::graph::make_star(100);  // center 0, 99 leaves
  const graph_stats st = micg::graph::compute_graph_stats(g);
  EXPECT_EQ(st.max_degree, 99);
  EXPECT_EQ(st.min_degree, 1);
  ASSERT_FALSE(st.top_vertices.empty());
  EXPECT_EQ(st.top_vertices.front(), 0);  // the hub leads the top-k table
  // Top-64 = hub (99 edges) + 63 leaves (1 each) of 198 directed edges.
  EXPECT_NEAR(st.hub_edge_fraction, (99.0 + 63.0) / 198.0, 1e-12);
}

TEST(GraphStats, TopDegreeVerticesMatchesSortRule) {
  const auto g = micg::graph::make_rmat(7, 8, 0.57, 0.19, 0.19, 11);
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  const auto top = micg::graph::top_degree_vertices(g, 10);
  ASSERT_EQ(top.size(), 10u);
  std::vector<std::int64_t> all(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  std::sort(all.begin(), all.end(), [&](std::int64_t a, std::int64_t b) {
    const auto da = g.degree(static_cast<micg::graph::vertex_t>(a));
    const auto db = g.degree(static_cast<micg::graph::vertex_t>(b));
    return da != db ? da > db : a < b;
  });
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(top[i]), all[i]) << "rank " << i;
  }
}

TEST(GraphStats, CacheIsEpochKeyed) {
  micg::graph::stats_cache cache;
  const any_csr g(micg::graph::make_star(50));
  const auto a = cache.get("g", 1, g);
  const auto b = cache.get("g", 1, g);
  EXPECT_EQ(a.get(), b.get()) << "same epoch must share the probe";
  const auto c = cache.get("g", 2, g);
  EXPECT_NE(a.get(), c.get()) << "a new epoch must re-probe";
  EXPECT_EQ(cache.size(), 1u) << "one entry per key, not per epoch";
  cache.get("h", 1, g);
  EXPECT_EQ(cache.size(), 2u);
}

// -------------------------------------- output invariance (the contract)
//
// Auto-tuning may only change *how* a kernel runs, never what it returns.
// Sweep the api layer — the exact code path the CLI and server execute —
// across tune modes, layouts and graph shapes, and require bit-identical
// responses (modulo the reported variant name, which legitimately changes
// when the tuner swaps the BFS implementation).

class TuneInvariance : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Hermetic: the builtin default profile, no env-forced mode.
    ::unsetenv("MICG_TUNE");
    ::unsetenv("MICG_CALIB");
  }

  static std::vector<std::pair<std::string, micg::graph::csr_graph>>
  shapes() {
    std::vector<std::pair<std::string, micg::graph::csr_graph>> out;
    out.emplace_back("rmat", micg::graph::make_rmat(9, 8, 0.57, 0.19, 0.19,
                                                    42));
    out.emplace_back("grid", micg::graph::make_grid_2d(24, 24));
    out.emplace_back("star", micg::graph::make_star(512));
    return out;
  }

  static constexpr csr_layout kLayouts[] = {
      csr_layout::v32e32, csr_layout::v32e64, csr_layout::v64e64};
};

TEST_F(TuneInvariance, BfsLevelsIdenticalAcrossModesAndLayouts) {
  for (const auto& [name, cg] : shapes()) {
    for (const csr_layout l : kLayouts) {
      const any_csr g = micg::graph::to_layout(any_csr(cg), l);
      micg::api::bfs_request req;
      req.ex.threads = 2;
      req.targets = {0, 1, static_cast<std::int64_t>(cg.num_vertices()) - 1};
      req.ex.tune = "fixed";
      const auto fixed = micg::api::run(g, req);
      req.ex.tune = "auto";
      const auto tuned = micg::api::run(g, req);
      const std::string at = name + "/" + micg::graph::layout_name(l);
      EXPECT_EQ(tuned.source, fixed.source) << at;
      EXPECT_EQ(tuned.num_levels, fixed.num_levels) << at;
      EXPECT_EQ(tuned.reached, fixed.reached) << at;
      EXPECT_EQ(tuned.num_vertices, fixed.num_vertices) << at;
      EXPECT_EQ(tuned.target_levels, fixed.target_levels) << at;
    }
  }
}

TEST_F(TuneInvariance, PagerankBitIdenticalAcrossModesAndLayouts) {
  for (const auto& [name, cg] : shapes()) {
    for (const csr_layout l : kLayouts) {
      const any_csr g = micg::graph::to_layout(any_csr(cg), l);
      micg::api::pagerank_request req;
      req.ex.threads = 2;
      req.max_iterations = 30;
      req.ex.tune = "fixed";
      const auto fixed = micg::api::run(g, req);
      req.ex.tune = "auto";
      const auto tuned = micg::api::run(g, req);
      const std::string at = name + "/" + micg::graph::layout_name(l);
      EXPECT_EQ(tuned.iterations, fixed.iterations) << at;
      EXPECT_EQ(tuned.converged, fixed.converged) << at;
      // Bit-identical, not approximately equal: the tuned fast paths are
      // exact reorderings-free implementations of the same arithmetic.
      EXPECT_EQ(tuned.final_delta, fixed.final_delta) << at;
      ASSERT_EQ(tuned.top.size(), fixed.top.size()) << at;
      for (std::size_t i = 0; i < fixed.top.size(); ++i) {
        EXPECT_EQ(tuned.top[i].vertex, fixed.top[i].vertex) << at;
        EXPECT_EQ(tuned.top[i].score, fixed.top[i].score) << at;
      }
    }
  }
}

TEST_F(TuneInvariance, CalibrateModeMatchesFixedToo) {
  // `calibrate` measures a quick in-process profile (once), then picks;
  // whatever it picks, the answers must not move.
  const any_csr g(micg::graph::make_rmat(8, 8, 0.57, 0.19, 0.19, 3));
  micg::api::bfs_request req;
  req.ex.threads = 2;
  req.ex.tune = "fixed";
  const auto fixed = micg::api::run(g, req);
  req.ex.tune = "calibrate";
  const auto tuned = micg::api::run(g, req);
  EXPECT_EQ(tuned.num_levels, fixed.num_levels);
  EXPECT_EQ(tuned.reached, fixed.reached);
}

// Regression: the sharded drivers run on fixed knobs regardless of the
// requested tune mode (the picker plan has no sharded application path).
// The bug: `--shards 2 --tune auto` silently reported tune.mode=auto while
// executing fixed knobs. The fix tags the truth instead.
TEST_F(TuneInvariance, ShardedRunReportsPinnedFixedKnobs) {
  const any_csr g(micg::graph::make_grid_2d(20, 20));
  const auto meta_of = [&](int shards, const char* kernel) {
    micg::obs::recorder rec;
    micg::api::run_context ctx;
    ctx.rec = &rec;
    if (std::string(kernel) == "bfs") {
      micg::api::bfs_request req;
      req.ex.threads = 2;
      req.ex.shards = shards;
      req.ex.tune = "auto";
      micg::api::run(g, req, ctx);
    } else {
      micg::api::pagerank_request req;
      req.ex.threads = 2;
      req.ex.shards = shards;
      req.ex.tune = "auto";
      req.max_iterations = 5;
      micg::api::run(g, req, ctx);
    }
    const auto snap = rec.take();
    std::string mode, why;
    for (const auto& [k, v] : snap.meta) {
      if (k == "tune.mode") mode = v;
      if (k == "tune.why") why = v;
    }
    return std::make_pair(mode, why);
  };
  for (const char* kernel : {"bfs", "pagerank"}) {
    SCOPED_TRACE(kernel);
    const auto [pinned_mode, pinned_why] = meta_of(2, kernel);
    EXPECT_EQ(pinned_mode, "fixed")
        << "sharded runs execute fixed knobs and must say so";
    EXPECT_NE(pinned_why.find("shard"), std::string::npos) << pinned_why;
    const auto [plain_mode, plain_why] = meta_of(1, kernel);
    EXPECT_EQ(plain_mode, "auto") << plain_why;
  }
}

TEST_F(TuneInvariance, ShardedAutoStillMatchesShardedFixed) {
  // Pinning is honest *and* harmless: answers can't move either way.
  const any_csr g(micg::graph::make_rmat(8, 8, 0.57, 0.19, 0.19, 5));
  micg::api::bfs_request req;
  req.ex.threads = 2;
  req.ex.shards = 2;
  req.ex.tune = "fixed";
  const auto fixed = micg::api::run(g, req);
  req.ex.tune = "auto";
  const auto tuned = micg::api::run(g, req);
  EXPECT_EQ(tuned.num_levels, fixed.num_levels);
  EXPECT_EQ(tuned.reached, fixed.reached);
  EXPECT_EQ(tuned.target_levels, fixed.target_levels);
}

TEST_F(TuneInvariance, TunedChunkNeverChangesAnswers) {
  // Under `auto` the tuner's chunk replaces the request's (chunk is pure
  // scheduling grain); the answer must be identical to any explicit
  // chunk under `fixed`.
  const any_csr g(micg::graph::make_grid_2d(16, 16));
  micg::api::bfs_request req;
  req.ex.threads = 2;
  req.ex.chunk = 32;
  req.ex.tune = "fixed";
  const auto fixed = micg::api::run(g, req);
  req.ex.tune = "auto";
  const auto tuned = micg::api::run(g, req);
  EXPECT_EQ(tuned.num_levels, fixed.num_levels);
  EXPECT_EQ(tuned.reached, fixed.reached);
  EXPECT_EQ(tuned.target_levels, fixed.target_levels);
}

}  // namespace
