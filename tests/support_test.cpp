// Unit tests for the support module: assertions, rng, stats, padding,
// table formatting, and the SIMD/prefetch fast-path layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"
#include "micg/support/prefetch.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/simd.hpp"
#include "micg/support/stats.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

TEST(Assert, CheckThrowsWithContext) {
  try {
    MICG_CHECK(1 == 2, "math is broken");
    FAIL() << "MICG_CHECK should have thrown";
  } catch (const micg::check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Assert, CheckPassesSilently) {
  EXPECT_NO_THROW(MICG_CHECK(2 + 2 == 4, "fine"));
}

TEST(Rng, SplitMixIsDeterministic) {
  micg::splitmix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDiffersAcrossSeeds) {
  micg::splitmix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  micg::xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInBounds) {
  micg::xoshiro256ss rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllResidues) {
  micg::xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  micg::xoshiro256ss rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, RunningStatsBasics) {
  micg::running_stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
}

TEST(Stats, EmptyStatsAreZero) {
  micg::running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 8.0};
  EXPECT_NEAR(micg::geometric_mean(v), 2.8284271, 1e-6);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(micg::geometric_mean(one), 5.0);
  EXPECT_EQ(micg::geometric_mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW(micg::geometric_mean(v), micg::check_error);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(micg::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(micg::median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(micg::median({}), 0.0);
}

TEST(Stats, TailMeanMatchesPaperConvention) {
  // Paper: 10 runs, report the average of the last 5.
  std::vector<double> runs{100, 90, 80, 70, 10, 10, 10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(micg::tail_mean(runs, 5), 10.0);
  EXPECT_DOUBLE_EQ(micg::tail_mean(runs, 100), 40.0);  // clamped to size
}

TEST(Cacheline, PaddedIsolatesLines) {
  micg::padded<int> a[2];
  const auto* pa = reinterpret_cast<const char*>(&a[0]);
  const auto* pb = reinterpret_cast<const char*>(&a[1]);
  EXPECT_GE(pb - pa, static_cast<ptrdiff_t>(micg::cacheline_size));
}

TEST(Table, AlignsAndFormats) {
  micg::table_printer t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1.00"});
  t.row({"b", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, HumanNumbers) {
  EXPECT_EQ(micg::table_printer::human(448000), "448K");
  EXPECT_EQ(micg::table_printer::human(3300000), "3.3M");
  EXPECT_EQ(micg::table_printer::human(37), "37");
}

TEST(Timer, MeasuresElapsedTime) {
  micg::stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

// -------------------------------------------------------------------- simd

// The vector gather and the scalar stripe emulation must agree bit for
// bit, across both index widths, every tail length, and permuted access
// patterns — that equality is what lets the kernels flip the simd knob
// without changing results.
TEST(Simd, GatherSumVectorMatchesScalarBitForBit) {
  micg::xoshiro256ss rng(42);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.uniform() * 2.0 - 1.0;
  // Every residue mod 8 plus both sides of the 4-wide mid-tail gather,
  // then larger sizes spanning several full stripe groups.
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{4}, std::size_t{5},
                        std::size_t{6}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{11}, std::size_t{12},
                        std::size_t{13}, std::size_t{15}, std::size_t{16},
                        std::size_t{63}, std::size_t{64}, std::size_t{257}}) {
    std::vector<std::int32_t> idx32(n);
    std::vector<std::int64_t> idx64(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::int32_t>(rng.next() % x.size());
      idx32[i] = j;
      idx64[i] = j;
    }
    // Short rows use the plain left-to-right path on every build; long
    // rows use the striped reference. Either way the dispatcher must
    // agree exactly with the reference for both vectorize settings.
    const bool small = n < micg::simd::short_row_threshold;
    const double s32 =
        small ? micg::simd::gather_sum_small(x.data(), idx32.data(), n)
              : micg::simd::gather_sum_scalar(x.data(), idx32.data(), n);
    const double s64 =
        small ? micg::simd::gather_sum_small(x.data(), idx64.data(), n)
              : micg::simd::gather_sum_scalar(x.data(), idx64.data(), n);
    EXPECT_EQ(s32, s64) << "n=" << n;
    EXPECT_EQ(micg::simd::gather_sum(x.data(), idx32.data(), n, true), s32)
        << "n=" << n;
    EXPECT_EQ(micg::simd::gather_sum(x.data(), idx32.data(), n, false), s32)
        << "n=" << n;
    EXPECT_EQ(micg::simd::gather_sum(x.data(), idx64.data(), n, true), s64)
        << "n=" << n;
    EXPECT_EQ(micg::simd::gather_sum(x.data(), idx64.data(), n, false), s64)
        << "n=" << n;
  }
}

TEST(Simd, GatherSumComputesStripedSum) {
  // Against an independent reference: the striped association changes
  // rounding, not the value beyond accumulated epsilon.
  std::vector<double> x{0.5, 1.25, -2.0, 4.0, 0.125};
  std::vector<std::int32_t> idx{4, 2, 0, 1, 3, 3, 2};
  double ref = 0.0;
  for (std::int32_t i : idx) ref += x[static_cast<std::size_t>(i)];
  EXPECT_NEAR(micg::simd::gather_sum(x.data(), idx.data(), idx.size()), ref,
              1e-12);
  EXPECT_EQ(micg::simd::gather_sum(x.data(), idx.data(), 0), 0.0);
}

TEST(Simd, IsaNameMatchesCompiledPath) {
  if (micg::simd::vectorized()) {
    EXPECT_STREQ(micg::simd::isa_name(), "avx2");
  } else {
    EXPECT_STREQ(micg::simd::isa_name(), "scalar");
  }
}

TEST(Prefetch, IsSemanticsFree) {
  // A prefetch may touch any mapped address without observable effect.
  std::vector<double> x(16, 1.0);
  micg::prefetch_read(x.data());
  micg::prefetch_read(x.data() + 15);
  micg::prefetch_read(nullptr);  // hint only; must not fault
  EXPECT_EQ(x[0], 1.0);
}

}  // namespace
