// Unit tests for the support module: assertions, rng, stats, padding,
// table formatting.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/stats.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

TEST(Assert, CheckThrowsWithContext) {
  try {
    MICG_CHECK(1 == 2, "math is broken");
    FAIL() << "MICG_CHECK should have thrown";
  } catch (const micg::check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Assert, CheckPassesSilently) {
  EXPECT_NO_THROW(MICG_CHECK(2 + 2 == 4, "fine"));
}

TEST(Rng, SplitMixIsDeterministic) {
  micg::splitmix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDiffersAcrossSeeds) {
  micg::splitmix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  micg::xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInBounds) {
  micg::xoshiro256ss rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllResidues) {
  micg::xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  micg::xoshiro256ss rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, RunningStatsBasics) {
  micg::running_stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
}

TEST(Stats, EmptyStatsAreZero) {
  micg::running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 8.0};
  EXPECT_NEAR(micg::geometric_mean(v), 2.8284271, 1e-6);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(micg::geometric_mean(one), 5.0);
  EXPECT_EQ(micg::geometric_mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW(micg::geometric_mean(v), micg::check_error);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(micg::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(micg::median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(micg::median({}), 0.0);
}

TEST(Stats, TailMeanMatchesPaperConvention) {
  // Paper: 10 runs, report the average of the last 5.
  std::vector<double> runs{100, 90, 80, 70, 10, 10, 10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(micg::tail_mean(runs, 5), 10.0);
  EXPECT_DOUBLE_EQ(micg::tail_mean(runs, 100), 40.0);  // clamped to size
}

TEST(Cacheline, PaddedIsolatesLines) {
  micg::padded<int> a[2];
  const auto* pa = reinterpret_cast<const char*>(&a[0]);
  const auto* pb = reinterpret_cast<const char*>(&a[1]);
  EXPECT_GE(pb - pa, static_cast<ptrdiff_t>(micg::cacheline_size));
}

TEST(Table, AlignsAndFormats) {
  micg::table_printer t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1.00"});
  t.row({"b", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, HumanNumbers) {
  EXPECT_EQ(micg::table_printer::human(448000), "448K");
  EXPECT_EQ(micg::table_printer::human(3300000), "3.3M");
  EXPECT_EQ(micg::table_printer::human(37), "37");
}

TEST(Timer, MeasuresElapsedTime) {
  micg::stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
