// Property tests for the delta/compaction half of the serving layer:
// interleaved inserts and deletes folded by apply_delta() must equal a
// from-scratch rebuild of the surviving edge set, whatever the base
// layout, and compaction mid-sequence must not change the final graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "micg/bfs/landmark.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/delta.hpp"
#include "micg/graph/generators.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::apply_delta;
using micg::graph::csr_layout;
using micg::graph::edge_delta;

using edge_set = std::set<std::pair<std::int64_t, std::int64_t>>;

std::pair<std::int64_t, std::int64_t> norm(std::int64_t u, std::int64_t v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

/// The undirected edge set of a graph, each edge once as (min, max).
edge_set edges_of(const any_csr& g) {
  edge_set out;
  g.visit([&](const auto& csr) {
    using VId = typename std::decay_t<decltype(csr)>::vertex_type;
    for (VId u = 0; u < csr.num_vertices(); ++u) {
      for (const VId w : csr.neighbors(u)) {
        if (w > u) out.emplace(u, w);
      }
    }
  });
  return out;
}

/// From-scratch oracle: build a graph holding exactly `edges` on
/// `num_vertices` vertices through the canonical builder.
any_csr rebuild(std::int64_t num_vertices, const edge_set& edges) {
  micg::graph::graph_builder64 b(num_vertices);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return micg::graph::build_auto(std::move(b));
}

TEST(EdgeDelta, NormalizesAndValidates) {
  edge_delta d;
  d.insert(5, 2);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_NE(d.decision(2, 5), nullptr);
  EXPECT_NE(d.decision(5, 2), nullptr);  // orientation-independent
  EXPECT_TRUE(*d.decision(2, 5));
  EXPECT_EQ(d.min_vertices(), 6);
  EXPECT_THROW(d.insert(3, 3), micg::check_error);
  EXPECT_THROW(d.erase(-1, 0), micg::check_error);
}

TEST(EdgeDelta, LastOpWinsPerEdge) {
  edge_delta d;
  d.insert(0, 1);
  d.erase(1, 0);  // cancels the insert
  ASSERT_EQ(d.size(), 1u);
  EXPECT_FALSE(*d.decision(0, 1));
  d.insert(0, 1);
  EXPECT_TRUE(*d.decision(0, 1));
  EXPECT_EQ(d.size(), 1u);  // still one net op
  d.clear();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.decision(0, 1), nullptr);
  EXPECT_EQ(d.min_vertices(), 0);
}

TEST(ApplyDelta, EmptyDeltaPreservesGraph) {
  const any_csr base =
      micg::graph::to_narrowest(micg::graph::make_grid_2d(6, 6));
  const any_csr out = apply_delta(base, edge_delta{});
  EXPECT_EQ(out.num_vertices(), base.num_vertices());
  EXPECT_EQ(edges_of(out), edges_of(base));
}

TEST(ApplyDelta, InsertGrowsVertexSetDeleteNeverShrinks) {
  const any_csr base =
      micg::graph::to_narrowest(micg::graph::make_chain(4));  // ids 0..3
  edge_delta d;
  d.insert(3, 9);  // touches an id past |V|
  any_csr grown = apply_delta(base, d);
  EXPECT_EQ(grown.num_vertices(), 10);
  EXPECT_TRUE(edges_of(grown).count(norm(3, 9)) == 1);

  edge_delta erase_tail;
  erase_tail.erase(3, 9);
  const any_csr shrunk = apply_delta(grown, erase_tail);
  // The edge goes; vertex 9 stays (pinned ids remain valid across epochs).
  EXPECT_EQ(shrunk.num_vertices(), 10);
  EXPECT_EQ(edges_of(shrunk).count(norm(3, 9)), 0u);
}

TEST(ApplyDelta, RedundantOpsAreNoOps) {
  const any_csr base =
      micg::graph::to_narrowest(micg::graph::make_chain(5));
  edge_delta d;
  d.insert(0, 1);  // base already has it
  d.erase(0, 4);   // base never had it
  const any_csr out = apply_delta(base, d);
  EXPECT_EQ(edges_of(out), edges_of(base));
}

/// One randomized scenario: run `num_ops` random insert/erase ops against
/// `base`, compacting at every `compact_every`-th op, and check the result
/// equals the from-scratch rebuild of the tracked surviving edge set.
void run_differential(const any_csr& base, std::uint64_t seed, int num_ops,
                      int compact_every) {
  std::mt19937_64 rng(seed);
  const std::int64_t n = base.num_vertices();
  std::uniform_int_distribution<std::int64_t> pick_v(0, n + 3);  // can grow
  std::uniform_int_distribution<int> coin(0, 99);

  edge_set oracle = edges_of(base);
  std::int64_t oracle_n = n;
  any_csr current = base;
  edge_delta delta;

  const auto compact = [&] {
    current = apply_delta(current, delta);
    delta.clear();
  };

  for (int i = 0; i < num_ops; ++i) {
    std::int64_t u = pick_v(rng);
    std::int64_t v = pick_v(rng);
    if (u == v) v = (v + 1) % (n + 4);
    const bool insert = coin(rng) < 60;  // biased toward growth
    if (insert) {
      delta.insert(u, v);
      oracle.insert(norm(u, v));
    } else {
      delta.erase(u, v);
      oracle.erase(norm(u, v));
    }
    oracle_n = std::max({oracle_n, u + 1, v + 1});
    if (compact_every > 0 && (i + 1) % compact_every == 0) compact();
  }
  compact();

  const any_csr expect = rebuild(oracle_n, oracle);
  EXPECT_EQ(current.num_vertices(), expect.num_vertices())
      << "seed=" << seed << " compact_every=" << compact_every;
  EXPECT_EQ(edges_of(current), edges_of(expect))
      << "seed=" << seed << " compact_every=" << compact_every;
  // Both went through build_auto, so layouts agree too.
  EXPECT_EQ(current.layout(), expect.layout());
}

TEST(ApplyDelta, DifferentialOracleAcrossAllLayouts) {
  const any_csr seed_graph =
      micg::graph::to_narrowest(micg::graph::make_grid_2d(8, 8));
  for (const csr_layout layout :
       {csr_layout::v32e32, csr_layout::v32e64, csr_layout::v64e64}) {
    const any_csr base = micg::graph::to_layout(seed_graph, layout);
    ASSERT_EQ(base.layout(), layout);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      run_differential(base, seed, 120, /*compact_every=*/0);
      run_differential(base, seed, 120, /*compact_every=*/7);
    }
  }
}

TEST(ApplyDelta, InterleavedCompactionEqualsSingleCompaction) {
  const any_csr base =
      micg::graph::to_narrowest(micg::graph::make_rmat(6, 8, 0.45, 0.15,
                                                       0.15, 1));
  for (const int every : {1, 3, 10}) {
    run_differential(base, 42, 90, every);
  }
}

TEST(ApplyDelta, LandmarksOnCompactedGraphMatchFromScratchRebuild) {
  // The serving layer rebuilds its landmark cache after every compaction;
  // that is only sound if an index built on the compacted graph is
  // indistinguishable from one built on a from-scratch rebuild of the
  // same edge set — same pivots, same distance table, same estimates.
  const any_csr base =
      micg::graph::to_narrowest(micg::graph::make_grid_2d(8, 8));
  edge_set oracle = edges_of(base);
  edge_delta d;
  d.insert(0, 63);
  d.insert(7, 56);
  d.erase(0, 1);
  d.insert(10, 70);  // grows the vertex set
  oracle.insert(norm(0, 63));
  oracle.insert(norm(7, 56));
  oracle.erase(norm(0, 1));
  oracle.insert(norm(10, 70));

  const any_csr compacted = apply_delta(base, d);
  const any_csr rebuilt = rebuild(71, oracle);

  micg::bfs::landmark_options lo;
  lo.count = 8;
  lo.ex.threads = 1;
  const micg::bfs::landmark_index a = micg::bfs::build_landmarks(compacted, lo);
  const micg::bfs::landmark_index b = micg::bfs::build_landmarks(rebuilt, lo);

  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.count(), b.count());
  EXPECT_EQ(a.pivots(), b.pivots());
  for (int p = 0; p < a.count(); ++p) {
    for (std::int64_t v = 0; v < a.num_vertices(); ++v) {
      ASSERT_EQ(a.pivot_level(p, v), b.pivot_level(p, v))
          << "pivot " << p << " vertex " << v;
    }
  }
  for (std::int64_t u = 0; u < a.num_vertices(); u += 7) {
    for (std::int64_t v = 0; v < a.num_vertices(); v += 5) {
      const auto ea = a.estimate(u, v);
      const auto eb = b.estimate(u, v);
      EXPECT_EQ(ea.upper, eb.upper) << u << "," << v;
      EXPECT_EQ(ea.lower, eb.lower) << u << "," << v;
      EXPECT_EQ(ea.disjoint, eb.disjoint) << u << "," << v;
      EXPECT_EQ(ea.exact, eb.exact) << u << "," << v;
    }
  }
}

TEST(ApplyDelta, CompactionRepacksToNarrowestLayout) {
  // A graph held wide repacks down once compaction rebuilds it.
  const any_csr wide = micg::graph::to_layout(
      micg::graph::to_narrowest(micg::graph::make_chain(16)),
      csr_layout::v64e64);
  edge_delta d;
  d.insert(0, 15);
  const any_csr out = apply_delta(wide, d);
  EXPECT_EQ(out.layout(), csr_layout::v32e32);
}

}  // namespace
