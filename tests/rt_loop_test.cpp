// Tests for the OpenMP-style loop scheduler, the exec facade, TLS and
// reducers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "micg/rt/edge_partition.hpp"
#include "micg/rt/exec.hpp"
#include "micg/rt/loop.hpp"
#include "micg/rt/reducer.hpp"
#include "micg/rt/tls.hpp"
#include "micg/rt/thread_pool.hpp"

namespace {

using micg::rt::backend;
using micg::rt::exec;
using micg::rt::loop_options;
using micg::rt::omp_schedule;
using micg::rt::thread_pool;

// ------------------------------------------------------------ omp schedules

struct LoopCase {
  omp_schedule schedule;
  std::int64_t chunk;
  int threads;
  std::int64_t n;
};

class OmpLoop : public ::testing::TestWithParam<LoopCase> {};

TEST_P(OmpLoop, CoversRangeExactlyOnce) {
  const auto p = GetParam();
  thread_pool pool(p.threads);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(p.n));
  micg::rt::omp_parallel_for(
      pool, p.threads, p.n, {p.schedule, p.chunk},
      [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
  for (std::int64_t i = 0; i < p.n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, OmpLoop,
    ::testing::Values(
        LoopCase{omp_schedule::static_even, 1, 1, 100},
        LoopCase{omp_schedule::static_even, 1, 4, 1000},
        LoopCase{omp_schedule::static_even, 1, 7, 10},  // n < threads
        LoopCase{omp_schedule::static_chunked, 16, 4, 1000},
        LoopCase{omp_schedule::static_chunked, 100, 3, 101},
        LoopCase{omp_schedule::dynamic, 16, 4, 1000},
        LoopCase{omp_schedule::dynamic, 1, 8, 100},
        LoopCase{omp_schedule::dynamic, 1000, 4, 100},  // chunk > n
        LoopCase{omp_schedule::guided, 16, 4, 1000},
        LoopCase{omp_schedule::guided, 1, 2, 7},
        LoopCase{omp_schedule::guided, 50, 6, 5000}));

TEST(OmpLoopEdge, EmptyRangeIsNoop) {
  thread_pool pool(2);
  bool touched = false;
  micg::rt::omp_parallel_for(pool, 2, 0,
                             {omp_schedule::dynamic, 4},
                             [&](std::int64_t, std::int64_t, int) {
                               touched = true;
                             });
  EXPECT_FALSE(touched);
}

TEST(OmpLoopEdge, StaticEvenBalancesWithinOne) {
  thread_pool pool(4);
  std::vector<micg::padded<std::int64_t>> per_thread(4);
  micg::rt::omp_parallel_for(pool, 4, 103,
                             {omp_schedule::static_even, 1},
                             [&](std::int64_t b, std::int64_t e, int w) {
                               per_thread[static_cast<std::size_t>(w)].value +=
                                   e - b;
                             });
  std::int64_t lo = 1000, hi = 0;
  for (auto& p : per_thread) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(OmpLoopEdge, GuidedChunksDecrease) {
  thread_pool pool(1);
  std::vector<std::int64_t> sizes;
  micg::rt::omp_parallel_for(pool, 4, 10000,
                             {omp_schedule::guided, 8},
                             [&](std::int64_t b, std::int64_t e, int) {
                               sizes.push_back(e - b);  // 1 thread: no race
                             });
  // First chunk should be about n/nthreads, later chunks shrink to >= 8.
  ASSERT_GE(sizes.size(), 2u);
  EXPECT_GE(sizes.front(), 2000);
  EXPECT_GE(sizes.back(), 1);
  EXPECT_LT(sizes.back(), sizes.front());
}

// ---------------------------------------------------------------- exec facade

class ExecBackend : public ::testing::TestWithParam<backend> {};

TEST_P(ExecBackend, ForRangeCoversExactlyOnce) {
  exec e;
  e.kind = GetParam();
  e.threads = 4;
  e.chunk = 32;
  constexpr std::int64_t kN = 3000;
  std::vector<std::atomic<int>> hits(kN);
  micg::rt::for_range(e, kN, [&](std::int64_t b, std::int64_t eend, int) {
    for (std::int64_t i = b; i < eend; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_P(ExecBackend, SingleThreadWorks) {
  exec e;
  e.kind = GetParam();
  e.threads = 1;
  e.chunk = 10;
  std::int64_t sum = 0;
  micg::rt::for_range(e, 100, [&](std::int64_t b, std::int64_t eend, int) {
    for (std::int64_t i = b; i < eend; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ExecBackend,
                         ::testing::ValuesIn(micg::rt::all_backends()),
                         [](const auto& info) {
                           std::string n = micg::rt::backend_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ExecNames, RoundTrip) {
  for (backend b : micg::rt::all_backends()) {
    EXPECT_EQ(micg::rt::backend_from_name(micg::rt::backend_name(b)), b);
  }
  EXPECT_THROW(micg::rt::backend_from_name("NotABackend"),
               micg::check_error);
}

TEST(ExecNames, FamilyPredicates) {
  EXPECT_TRUE(micg::rt::is_omp(backend::omp_guided));
  EXPECT_TRUE(micg::rt::is_cilk(backend::cilk_holder));
  EXPECT_TRUE(micg::rt::is_tbb(backend::tbb_affinity));
  EXPECT_FALSE(micg::rt::is_omp(backend::cilk_tid));
  EXPECT_FALSE(micg::rt::is_tbb(backend::omp_static));
}

// --------------------------------------------------------------- tls/reducer

TEST(Tls, OneInstancePerWorker) {
  thread_pool pool(4);
  micg::rt::enumerable_thread_specific<std::int64_t> ets(4);
  micg::rt::omp_parallel_for(pool, 4, 1000,
                             {omp_schedule::dynamic, 8},
                             [&](std::int64_t b, std::int64_t e, int) {
                               ets.local() += e - b;
                             });
  EXPECT_LE(ets.size(), 4u);
  EXPECT_GE(ets.size(), 1u);
  const std::int64_t total =
      ets.combine(std::int64_t{0},
                  [](std::int64_t acc, std::int64_t v) { return acc + v; });
  EXPECT_EQ(total, 1000);
}

TEST(Tls, FactoryRunsLazily) {
  thread_pool pool(4);
  std::atomic<int> constructed{0};
  micg::rt::enumerable_thread_specific<int> ets(4, [&] {
    constructed.fetch_add(1);
    return 7;
  });
  EXPECT_EQ(constructed.load(), 0);
  pool.run(1, [&](int) { EXPECT_EQ(ets.local(), 7); });
  EXPECT_EQ(constructed.load(), 1);
}

TEST(Tls, LocalOutsideRegionThrows) {
  micg::rt::enumerable_thread_specific<int> ets(2);
  EXPECT_THROW(ets.local(), micg::check_error);
}

TEST(Tls, ClearResets) {
  thread_pool pool(2);
  micg::rt::enumerable_thread_specific<int> ets(2);
  pool.run(1, [&](int) { ets.local() = 42; });
  ets.clear();
  EXPECT_EQ(ets.size(), 0u);
  pool.run(1, [&](int) { EXPECT_EQ(ets.local(), 0); });
}

TEST(Combinable, CombinesAcrossThreads) {
  thread_pool pool(4);
  micg::rt::combinable<std::int64_t> acc(4);
  micg::rt::omp_parallel_for(pool, 4, 100,
                             {omp_schedule::static_even, 1},
                             [&](std::int64_t b, std::int64_t e, int) {
                               for (std::int64_t i = b; i < e; ++i) {
                                 acc.local() += i;
                               }
                             });
  const std::int64_t total = acc.combine(
      std::int64_t{0},
      [](std::int64_t a, std::int64_t b2) { return a + b2; });
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(Holder, ViewsAreIndependentScratch) {
  thread_pool pool(4);
  micg::rt::holder<std::vector<int>> h(
      4, [] { return std::vector<int>(16, -1); });
  std::atomic<bool> clean{true};
  micg::rt::omp_parallel_for(pool, 4, 200,
                             {omp_schedule::dynamic, 4},
                             [&](std::int64_t b, std::int64_t e, int) {
                               auto& view = h.view();
                               if (view.size() != 16) clean.store(false);
                               for (std::int64_t i = b; i < e; ++i) {
                                 view[static_cast<std::size_t>(i) % 16] =
                                     static_cast<int>(i);
                               }
                             });
  EXPECT_TRUE(clean.load());
  EXPECT_GE(h.views_created(), 1u);
  EXPECT_LE(h.views_created(), 4u);
}

TEST(ReducerMax, FindsGlobalMax) {
  thread_pool pool(4);
  micg::rt::reducer_max<int> rmax(4, 0);
  micg::rt::omp_parallel_for(pool, 4, 10000,
                             {omp_schedule::dynamic, 64},
                             [&](std::int64_t b, std::int64_t e, int) {
                               for (std::int64_t i = b; i < e; ++i) {
                                 rmax.update(static_cast<int>((i * 37) % 9973));
                               }
                             });
  EXPECT_EQ(rmax.get(), 9972);  // 37 and 9973 coprime -> all residues hit
}

TEST(ReducerMax, IdentityWhenUntouched) {
  micg::rt::reducer_max<int> rmax(4, -5);
  EXPECT_EQ(rmax.get(), -5);
}

TEST(ReducerMax, ResetRestoresIdentity) {
  thread_pool pool(2);
  micg::rt::reducer_max<int> rmax(2, 0);
  pool.run(1, [&](int) { rmax.update(99); });
  EXPECT_EQ(rmax.get(), 99);
  rmax.reset();
  EXPECT_EQ(rmax.get(), 0);
}

// --------------------------------------------------------- edge partition

// Offsets of a pathological "one hub plus leaves" degree distribution:
// vertex 0 owns half of all edges. Templated on the offset type so both
// CSR edge-id widths exercise the binary search.
template <class EId>
std::vector<EId> hub_xadj(std::int64_t n) {
  std::vector<EId> xadj(static_cast<std::size_t>(n) + 1, 0);
  xadj[1] = static_cast<EId>(n - 1);  // the hub row
  for (std::int64_t v = 2; v <= n; ++v) {
    xadj[static_cast<std::size_t>(v)] =
        xadj[static_cast<std::size_t>(v) - 1] + 1;
  }
  return xadj;
}

template <class EId>
void expect_covers_exactly_once() {
  const std::int64_t n = 997;
  const auto xadj = hub_xadj<EId>(n);
  for (backend kind : micg::rt::all_backends()) {
    exec e;
    e.kind = kind;
    e.threads = 4;
    e.chunk = 50;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits) h.store(0);
    micg::rt::for_range_edges(
        e, n, xadj.data(), [&](std::int64_t b, std::int64_t ed, int) {
          for (std::int64_t i = b; i < ed; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
          }
        });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << micg::rt::backend_name(kind) << " vertex " << i;
    }
  }
}

TEST(EdgePartition, CoversEveryVertexExactlyOnceInt32) {
  expect_covers_exactly_once<std::int32_t>();
}

TEST(EdgePartition, CoversEveryVertexExactlyOnceInt64) {
  expect_covers_exactly_once<std::int64_t>();
}

TEST(EdgePartition, ChunksBalanceEdgesNotVertices) {
  const std::int64_t n = 1000;
  const auto xadj = hub_xadj<std::int64_t>(n);
  const std::int64_t total = xadj.back();
  exec e;
  e.threads = 1;
  e.chunk = 100;  // a vertex split would put the hub plus 99 rows together
  std::int64_t max_chunk_edges = 0;
  std::int64_t chunks = 0;
  micg::rt::for_range_edges(
      e, n, xadj.data(), [&](std::int64_t b, std::int64_t ed, int) {
        ++chunks;
        const std::int64_t edges = xadj[static_cast<std::size_t>(ed)] -
                                   xadj[static_cast<std::size_t>(b)];
        max_chunk_edges = std::max(max_chunk_edges, edges);
      });
  // 10 chunks over ~2n edges: every chunk stays near total/10 + one row.
  EXPECT_GE(chunks, 2);
  EXPECT_LE(max_chunk_edges, total / 10 + n);
  // The hub must not drag half the vertex range into its chunk: the
  // chunk holding vertex 0 ends long before vertex n/2.
  bool hub_seen = false;
  micg::rt::for_range_edges(
      e, n, xadj.data(), [&](std::int64_t b, std::int64_t ed, int) {
        if (b == 0) {
          hub_seen = true;
          EXPECT_LT(ed, n / 2);
        }
      });
  EXPECT_TRUE(hub_seen);
}

TEST(EdgePartition, HandlesZeroDegreeRunsAndEmptyGraphs) {
  // All-zero degrees: falls back to the vertex split but still covers
  // the range.
  const std::int64_t n = 65;
  std::vector<std::int64_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  exec e;
  e.threads = 2;
  e.chunk = 8;
  std::atomic<std::int64_t> covered{0};
  micg::rt::for_range_edges(
      e, n, xadj.data(), [&](std::int64_t b, std::int64_t ed, int) {
        covered.fetch_add(ed - b);
      });
  EXPECT_EQ(covered.load(), n);
  micg::rt::for_range_edges(e, 0, xadj.data(),
                            [&](std::int64_t, std::int64_t, int) {
                              FAIL() << "empty range must not call body";
                            });
}

TEST(EdgePartition, VertexModeDispatchesToPlainForRange) {
  const std::int64_t n = 100;
  const auto xadj = hub_xadj<std::int64_t>(n);
  exec e;
  e.threads = 2;
  e.chunk = 10;
  std::atomic<std::int64_t> covered{0};
  micg::rt::for_range_graph(e, n, xadj.data(),
                            micg::rt::partition_mode::vertex,
                            [&](std::int64_t b, std::int64_t ed, int) {
                              covered.fetch_add(ed - b);
                            });
  EXPECT_EQ(covered.load(), n);
  EXPECT_STREQ(micg::rt::partition_mode_name(
                   micg::rt::partition_mode::vertex),
               "vertex");
  EXPECT_STREQ(
      micg::rt::partition_mode_name(micg::rt::partition_mode::edge),
      "edge");
}

}  // namespace
