// Deterministic concurrency stress harness, designed to run under
// ThreadSanitizer (the CI tsan job builds exactly this binary plus the
// functional suites with -fsanitize=thread).
//
// Every test is seeded and bounded: the point is not statistical coverage
// (stress_test.cpp does bigger randomized runs) but to drive each rt/ and
// frontier primitive through the interleavings its memory-order discipline
// must survive — contended steal vs pop, ring growth mid-steal, barrier
// generation reuse, frontier swap/reset cycles — while TSan checks every
// happens-before edge. Workloads shrink under MICG_TSAN so the suite stays
// fast despite the ~10x sanitizer slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "micg/bfs/bag.hpp"
#include "micg/bfs/block_queue.hpp"
#include "micg/bfs/tls_queue.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/generators.hpp"
#include "micg/rt/barrier.hpp"
#include "micg/rt/cilk_for.hpp"
#include "micg/rt/exec.hpp"
#include "micg/rt/reducer.hpp"
#include "micg/rt/scan.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/spinlock.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/rt/ws_deque.hpp"
#include "micg/support/cacheline.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/tsan.hpp"

namespace {

using micg::graph::vertex_t;
using micg::rt::thread_pool;

#if MICG_TSAN
constexpr int kThreads = 8;
constexpr int kRounds = 6;
constexpr std::int64_t kItems = 1500;
#else
constexpr int kThreads = 12;
constexpr int kRounds = 20;
constexpr std::int64_t kItems = 6000;
#endif

// --- ws_deque ---------------------------------------------------------------

// The satellite regression: contended steal vs pop with the owner draining
// aggressively, so the single-element CAS race and the bottom_ publication
// orders are both on the critical path every round.
TEST(TsanStress, WsDequeStealPopContention) {
  thread_pool pool(kThreads);
  for (int round = 0; round < kRounds; ++round) {
    micg::rt::ws_deque<std::int64_t> d;
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> taken{0};
    pool.run(kThreads, [&](int w) {
      micg::xoshiro256ss rng(static_cast<std::uint64_t>(w) * 101 + round);
      std::int64_t local = 0;
      if (w == 0) {
        std::int64_t pushed = 0;
        while (pushed < kItems) {
          // Keep the deque near-empty: push tiny bursts, pop immediately,
          // so pop and steal collide on the last element constantly.
          const auto burst = static_cast<std::int64_t>(1 + rng.below(3));
          for (std::int64_t i = 0; i < burst && pushed < kItems; ++i) {
            d.push(++pushed);
          }
          while (auto v = d.pop()) {
            local += *v;
            taken.fetch_add(1);
            if (rng.below(2) == 0) break;  // leave leftovers to thieves
          }
        }
        while (auto v = d.pop()) {
          local += *v;
          taken.fetch_add(1);
        }
      } else {
        while (taken.load(std::memory_order_relaxed) < kItems) {
          if (auto v = d.steal()) {
            local += *v;
            taken.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
      }
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), kItems * (kItems + 1) / 2) << "round " << round;
  }
}

// Ring growth while thieves hold pointers into the old ring: starts at the
// minimum capacity so push() doubles repeatedly mid-steal, exercising the
// array_ publication and the retired-ring reclamation rule.
TEST(TsanStress, WsDequeGrowthUnderActiveSteals) {
  thread_pool pool(kThreads);
  for (int round = 0; round < kRounds; ++round) {
    micg::rt::ws_deque<std::int64_t> d(8);
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> taken{0};
    pool.run(kThreads, [&](int w) {
      std::int64_t local = 0;
      if (w == 0) {
        // Push everything before draining: forces growth to kItems slots.
        for (std::int64_t i = 1; i <= kItems; ++i) d.push(i);
        while (auto v = d.pop()) {
          local += *v;
          taken.fetch_add(1);
        }
      } else {
        while (taken.load(std::memory_order_relaxed) < kItems) {
          if (auto v = d.steal()) {
            local += *v;
            taken.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
      }
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), kItems * (kItems + 1) / 2) << "round " << round;
  }
}

// --- scheduler --------------------------------------------------------------

// Seeded fork trees whose tasks write non-atomic payloads: the stolen-task
// payload is exactly the data whose happens-before edge rides on the deque
// publication order, so TSan validates the whole spawn -> steal -> execute
// chain, not just the counters.
TEST(TsanStress, SchedulerSeededForkTreesWithPayload) {
  thread_pool pool(kThreads);
  micg::rt::task_scheduler sched(pool, kThreads);
  for (int round = 0; round < kRounds; ++round) {
    constexpr int kLeaves = 256;
    std::vector<std::int64_t> payload(kLeaves, -1);  // non-atomic on purpose
    std::atomic<int> next{0};
    std::function<void(int)> tree = [&](int depth) {
      if (depth == 0) {
        const int slot = next.fetch_add(1, std::memory_order_relaxed);
        payload[static_cast<std::size_t>(slot)] = slot;
        return;
      }
      micg::rt::task_group g(sched);
      g.spawn([&, depth] { tree(depth - 1); });
      g.spawn([&, depth] { tree(depth - 1); });
      g.wait();
    };
    sched.run([&] { tree(8); });  // 2^8 leaves
    ASSERT_EQ(next.load(), kLeaves);
    for (int i = 0; i < kLeaves; ++i) {
      ASSERT_GE(payload[static_cast<std::size_t>(i)], 0) << "leaf " << i;
    }
  }
  const auto stats = sched.stats();
  EXPECT_EQ(stats.executed, stats.spawned);
}

// --- barrier ----------------------------------------------------------------

// Generation reuse: two barriers per thread per phase, non-atomic per-phase
// payload handed across the barrier. The payload reads are racy unless
// arrive_and_wait() really publishes (release) and observes (acquire) the
// generation counter.
TEST(TsanStress, BarrierGenerationsPublishPayload) {
  thread_pool pool(kThreads);
  micg::rt::sense_barrier gate(kThreads);
  micg::rt::sense_barrier gate2(kThreads);
  std::vector<micg::padded<std::int64_t>> cell(kThreads);
  std::atomic<std::int64_t> mismatches{0};
  const int phases = kRounds * 10;
  pool.run(kThreads, [&](int w) {
    for (int p = 0; p < phases; ++p) {
      cell[static_cast<std::size_t>(w)].value = p;  // non-atomic write
      gate.arrive_and_wait();
      // Read the neighbor's cell: safe only via the barrier's ordering.
      const int peer = (w + 1) % kThreads;
      if (cell[static_cast<std::size_t>(peer)].value != p) {
        mismatches.fetch_add(1);
      }
      gate2.arrive_and_wait();
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// --- spinlock ---------------------------------------------------------------

TEST(TsanStress, SpinlockProtectsPlainData) {
  thread_pool pool(kThreads);
  micg::rt::spinlock mu;
  std::int64_t counter = 0;  // non-atomic; protected by mu only
  const std::int64_t per = kItems / 4;
  pool.run(kThreads, [&](int) {
    for (std::int64_t i = 0; i < per; ++i) {
      std::lock_guard<micg::rt::spinlock> lock(mu);
      ++counter;
    }
  });
  EXPECT_EQ(counter, per * kThreads);
}

// --- reducers / scan --------------------------------------------------------

TEST(TsanStress, ReducerMaxAcrossBackends) {
  const std::int64_t n = kItems;
  for (auto kind : {micg::rt::backend::omp_dynamic,
                    micg::rt::backend::cilk_holder,
                    micg::rt::backend::tbb_simple}) {
    micg::rt::exec e;
    e.kind = kind;
    e.threads = kThreads;
    e.chunk = 16;
    micg::rt::reducer_max<std::int64_t> best(kThreads, -1);
    micg::rt::for_range(e, n, [&](std::int64_t b, std::int64_t en, int) {
      for (std::int64_t i = b; i < en; ++i) {
        best.update((i * 2654435761u) % n);  // scrambled so max moves around
      }
    });
    EXPECT_EQ(best.get(), n - 1) << micg::rt::backend_name(kind);
  }
}

TEST(TsanStress, ParallelScanMatchesSequential) {
  micg::xoshiro256ss rng(4242);
  std::vector<std::int64_t> values(static_cast<std::size_t>(kItems));
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(100));
  std::vector<std::int64_t> expect = values;
  std::int64_t running = 0;
  for (auto& v : expect) {
    const auto next = running + v;
    v = running;
    running = next;
  }
  for (auto kind : {micg::rt::backend::omp_static,
                    micg::rt::backend::tbb_simple}) {
    micg::rt::exec e;
    e.kind = kind;
    e.threads = kThreads;
    e.chunk = 37;  // deliberately unaligned chunking
    std::vector<std::int64_t> got = values;
    const auto total = micg::rt::parallel_exclusive_scan(e, got);
    EXPECT_EQ(total, running) << micg::rt::backend_name(kind);
    EXPECT_EQ(got, expect) << micg::rt::backend_name(kind);
  }
}

// --- frontier structures ----------------------------------------------------

// The BFS driver's per-level life cycle: parallel pushes, flush, consume,
// swap cur/next, reset — repeated. The swap is the satellite fix: it must
// be safe between levels and checked against misuse during one.
TEST(TsanStress, BlockQueueSwapResetLevelCycles) {
  thread_pool pool(kThreads);
  const std::size_t cap = static_cast<std::size_t>(kItems) * 2 +
                          static_cast<std::size_t>(kThreads) * 64;
  micg::bfs::block_queue cur(cap, 4, kThreads);
  micg::bfs::block_queue next(cap, 4, kThreads);
  for (int level = 0; level < kRounds; ++level) {
    const vertex_t per = static_cast<vertex_t>(kItems / kThreads);
    pool.run(kThreads, [&](int w) {
      for (vertex_t i = 0; i < per; ++i) {
        next.push(w, static_cast<vertex_t>(w) * per + i);
      }
    });
    next.flush_all();
    ASSERT_EQ(next.count_valid(),
              static_cast<std::size_t>(per) * kThreads)
        << "level " << level;
    swap(cur, next);
    next.reset();
    // Consume cur (sequentially, as the driver does between levels).
    std::int64_t sum = 0;
    for (auto v : cur.raw()) {
      if (v != micg::graph::invalid_vertex) sum += v;
    }
    const std::int64_t total = static_cast<std::int64_t>(per) * kThreads;
    ASSERT_EQ(sum, total * (total - 1) / 2) << "level " << level;
    cur.reset();
  }
}

// Swap during a level (open, unflushed block) is a checked precondition
// violation, not silent corruption.
TEST(TsanStress, BlockQueueSwapWithOpenBlockIsRejected) {
  micg::bfs::block_queue q(64, 4, 2);
  micg::bfs::block_queue r(64, 4, 2);
  q.push(0, 7);  // opens worker 0's block; never flushed
  EXPECT_THROW(q.swap(r), micg::check_error);
  EXPECT_THROW(r.swap(q), micg::check_error);
  q.flush_all();
  EXPECT_NO_THROW(q.swap(r));
  ASSERT_EQ(r.count_valid(), 1u);
}

TEST(TsanStress, TlsFrontierMergeCycles) {
  thread_pool pool(kThreads);
  micg::bfs::tls_frontier f(kThreads);
  std::vector<vertex_t> merged;
  for (int level = 0; level < kRounds; ++level) {
    const vertex_t per = static_cast<vertex_t>(kItems / kThreads);
    pool.run(kThreads, [&](int w) {
      for (vertex_t i = 0; i < per; ++i) {
        f.push(w, static_cast<vertex_t>(w) * per + i);
      }
    });
    ASSERT_EQ(f.total_size(), static_cast<std::size_t>(per) * kThreads);
    f.merge_into(merged);
    ASSERT_EQ(merged.size(), static_cast<std::size_t>(per) * kThreads);
    std::int64_t sum = 0;
    for (auto v : merged) sum += v;
    const std::int64_t total = static_cast<std::int64_t>(per) * kThreads;
    ASSERT_EQ(sum, total * (total - 1) / 2) << "level " << level;
    ASSERT_EQ(f.total_size(), 0u);
  }
}

TEST(TsanStress, BagPerWorkerInsertAbsorbTraverse) {
  constexpr int kBagThreads = 4;
  thread_pool pool(kBagThreads);
  micg::rt::task_scheduler sched(pool, kBagThreads);
  const std::int64_t n = kItems;
  std::vector<micg::bfs::vertex_bag> bags;
  for (int t = 0; t < kBagThreads; ++t) bags.emplace_back(16);
  sched.run([&] {
    micg::rt::cilk_for(sched, 0, n, 32,
                       [&](std::int64_t b, std::int64_t e, int worker) {
                         for (std::int64_t i = b; i < e; ++i) {
                           bags[static_cast<std::size_t>(worker)].insert(
                               static_cast<vertex_t>(i));
                         }
                       });
  });
  micg::bfs::vertex_bag merged(16);
  for (auto& b : bags) merged.absorb(std::move(b));
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(n));
  // Parallel traversal touches every pennant node as a stolen task.
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(n));
  sched.run([&] {
    merged.traverse_parallel(
        sched, [&](std::span<const vertex_t> vs, int) {
          for (auto v : vs) seen[static_cast<std::size_t>(v)].fetch_add(1);
        });
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "vertex " << i;
  }
}

// --- iterative coloring -----------------------------------------------------

// The speculate-and-repair loop is the paper's central benign-race kernel;
// under TSan this proves the races are exactly the declared (atomic) ones.
TEST(TsanStress, IterativeColoringSpeculationRaces) {
#if MICG_TSAN
  const auto g = micg::graph::make_erdos_renyi(1200, 8.0, 99);
#else
  const auto g = micg::graph::make_erdos_renyi(4000, 12.0, 99);
#endif
  for (auto kind : {micg::rt::backend::omp_dynamic,
                    micg::rt::backend::cilk_holder,
                    micg::rt::backend::tbb_simple}) {
    micg::color::iterative_options opt;
    opt.ex.kind = kind;
    opt.ex.threads = kThreads;
    opt.ex.chunk = 8;  // tiny chunks maximize conflicting speculation
    const auto r = micg::color::iterative_color(g, opt);
    ASSERT_TRUE(micg::color::is_valid_coloring(g, r.color))
        << micg::rt::backend_name(kind);
  }
}

}  // namespace
