// Fault-injection suite for the untrusted-input readers (io_binary, io_mm).
//
// Contract under test: *every* corruption of a serialized graph — byte
// truncation, bit flips, over-reported header fields, injected I/O errors,
// forced allocation failure — either raises micg::check_error or yields a
// graph that passes full validation. Never a crash, hang, out-of-bounds
// access (the ASan job runs this same binary), or a silently wrong graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "micg/graph/builder.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/io_mm.hpp"
#include "micg/qa/failpoint.hpp"
#include "micg/qa/faulty_stream.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::check_error;
using micg::graph::any_csr;
using micg::graph::csr_graph;
using micg::graph::vertex_t;
using micg::qa::fault_mode;
using micg::qa::faulty_stream;

// Binary v2 header layout (io_binary.cpp): magic @0, version @8,
// vid_bytes @12, eid_bytes @14, num_vertices @16, adj_size @24.
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffVidBytes = 12;
constexpr std::size_t kOffEidBytes = 14;
constexpr std::size_t kOffNumVertices = 16;
constexpr std::size_t kOffAdjSize = 24;
constexpr std::size_t kHeaderBytes = 32;

/// Ring graph: every vertex has degree exactly 2, so xadj is strictly
/// increasing — which makes every header-field corruption detectable.
csr_graph ring_graph(vertex_t n) {
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<vertex_t>((v + 1) % n));
  }
  return micg::graph::csr_from_edges(n, edges);
}

std::string binary_image(const csr_graph& g) {
  std::ostringstream os;
  micg::graph::write_binary(os, g);
  return os.str();
}

enum class outcome { threw_check, parsed_valid };

/// The only two acceptable fates of a corrupted stream.
outcome read_binary_outcome(std::istream& in) {
  try {
    any_csr g = micg::graph::read_binary_any(in);
    g.visit([](const auto& c) { c.validate(); });
    return outcome::parsed_valid;
  } catch (const check_error&) {
    return outcome::threw_check;
  }
  // Anything else escapes and fails the test.
}

outcome read_mm_outcome(std::istream& in) {
  try {
    csr_graph g = micg::graph::read_matrix_market(in);
    g.validate();
    return outcome::parsed_valid;
  } catch (const check_error&) {
    return outcome::threw_check;
  }
}

// ---------------------------------------------------------------------------
// MatrixMarket: malformed-input regressions
// ---------------------------------------------------------------------------

std::string mm_file(const std::string& size_line,
                    const std::string& entries,
                    const std::string& banner =
                        "%%MatrixMarket matrix coordinate pattern symmetric") {
  return banner + "\n% comment\n" + size_line + "\n" + entries;
}

TEST(FaultInjectionMM, ValidFileParses) {
  std::istringstream in(mm_file("4 4 3", "1 2\n2 3\n3 4\n"));
  const auto g = micg::graph::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
}

// The headline regression: "100 100" used to leave nnz == 0 unreported and
// produce a silently empty 100-vertex graph.
TEST(FaultInjectionMM, SizeLineMissingNnzIsRejected) {
  std::istringstream in(mm_file("100 100", "1 2\n"));
  EXPECT_THROW(micg::graph::read_matrix_market(in), check_error);
}

TEST(FaultInjectionMM, SizeLineRejectsBadShapes) {
  const char* bad[] = {
      "",               // blank line where the size line should be
      "100",            // rows only
      "100 100 abc",    // non-numeric nnz
      "abc def ghi",    // all garbage
      "100 100 3 7",    // trailing garbage
      "100 100 3 x",    // trailing non-numeric garbage
      "100 90 3",       // rectangular
      "-4 -4 2",        // negative dims
      "0 0 0",          // empty matrix (rows must be positive)
      "4 4 -1",         // negative nnz
      "1e2 1e2 3",      // exponent notation leaves trailing garbage
  };
  for (const char* size_line : bad) {
    std::istringstream in(mm_file(size_line, "1 2\n2 3\n3 4\n"));
    EXPECT_THROW(micg::graph::read_matrix_market(in), check_error)
        << "size line: '" << size_line << "'";
  }
}

TEST(FaultInjectionMM, EntryListRejectsBadEntries) {
  const char* bad[] = {
      "0 1\n",    // 0-based index
      "5 1\n",    // row out of range (rows = 4)
      "1 5\n",    // col out of range
      "1\n",      // missing column
      "x y\n",    // garbage
      "",         // empty body: truncated entry list
  };
  for (const char* entries : bad) {
    std::istringstream in(mm_file("4 4 1", entries));
    EXPECT_THROW(micg::graph::read_matrix_market(in), check_error)
        << "entries: '" << entries << "'";
  }
}

TEST(FaultInjectionMM, RealFieldRequiresValues) {
  const std::string banner =
      "%%MatrixMarket matrix coordinate real symmetric";
  {
    std::istringstream in(mm_file("4 4 2", "1 2 1.5\n2 3 2.5\n", banner));
    const auto g = micg::graph::read_matrix_market(in);
    EXPECT_EQ(g.num_edges(), 2);
  }
  {
    // Second entry lost its value: malformed, not a pattern entry.
    std::istringstream in(mm_file("4 4 2", "1 2 1.5\n2 3\n", banner));
    EXPECT_THROW(micg::graph::read_matrix_market(in), check_error);
  }
}

// nnz over-reported by nine orders of magnitude: must fail fast on the
// entry check, not allocate terabytes for the reservation.
TEST(FaultInjectionMM, HugeOverReportedNnzFailsFast) {
  std::istringstream in(mm_file("4 4 4000000000000000000", "1 2\n2 3\n"));
  EXPECT_THROW(micg::graph::read_matrix_market(in), check_error);
}

TEST(FaultInjectionMM, TruncationAtEveryByteIsCaught) {
  const std::string image = mm_file("4 4 4", "1 2\n2 3\n3 4\n4 1\n");
  // Stop one short: losing only the final '\n' still parses (getline
  // accepts the last entry at EOF), which is correct, not a fault.
  for (std::size_t len = 0; len + 1 < image.size(); ++len) {
    faulty_stream in(image, fault_mode::eof_at, len);
    EXPECT_EQ(read_mm_outcome(in), outcome::threw_check) << "len " << len;
  }
}

TEST(FaultInjectionMM, IoErrorAtEveryByteIsCaught) {
  const std::string image = mm_file("4 4 4", "1 2\n2 3\n3 4\n4 1\n");
  for (std::size_t at = 0; at + 1 < image.size(); ++at) {
    faulty_stream in(image, fault_mode::error_at, at);
    EXPECT_EQ(read_mm_outcome(in), outcome::threw_check) << "at " << at;
  }
}

// Streams configured to throw (exceptions() mask) must still surface as
// check_error, not leak std::ios_base::failure through the reader API.
TEST(FaultInjectionMM, ThrowingStreamSurfacesAsCheckError) {
  std::istringstream in(mm_file("4 4 4", "1 2\n2 3\n"));  // truncated
  in.exceptions(std::ios::badbit | std::ios::failbit);
  EXPECT_THROW(micg::graph::read_matrix_market(in), check_error);
}

TEST(FaultInjectionMM, FailpointsExerciseStreamDeathMidParse) {
  const std::string image = mm_file("4 4 3", "1 2\n2 3\n3 4\n");
  {
    micg::qa::failpoint_scope fp("io_mm.size_line",
                                 micg::qa::fail_action::fail_stream);
    std::istringstream in(image);
    EXPECT_THROW(micg::graph::read_matrix_market(in), check_error);
    EXPECT_EQ(fp.fired(), 1);
  }
  {
    // Die after the second entry, not the first.
    micg::qa::failpoint_scope fp("io_mm.entry",
                                 micg::qa::fail_action::fail_stream,
                                 /*skip=*/1);
    std::istringstream in(image);
    EXPECT_THROW(micg::graph::read_matrix_market(in), check_error);
    EXPECT_EQ(fp.fired(), 1);
  }
  // Nothing armed: the same image parses.
  std::istringstream in(image);
  EXPECT_EQ(micg::graph::read_matrix_market(in).num_edges(), 3);
}

// ---------------------------------------------------------------------------
// Binary format: corruption sweeps
// ---------------------------------------------------------------------------

TEST(FaultInjectionBinary, RoundTripControl) {
  const auto g = ring_graph(8);
  const std::string image = binary_image(g);
  std::istringstream in(image);
  const auto back = micg::graph::read_binary_any(in);
  EXPECT_EQ(back.num_vertices(), 8);
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

TEST(FaultInjectionBinary, TruncationAtEveryByteIsCaught) {
  const std::string image = binary_image(ring_graph(8));
  for (std::size_t len = 0; len < image.size(); ++len) {
    // Seekable path (header cross-checked against real payload size).
    std::istringstream seekable(micg::qa::truncated(image, len));
    EXPECT_EQ(read_binary_outcome(seekable), outcome::threw_check)
        << "seekable, len " << len;
    // Non-seekable path (incremental checks only).
    faulty_stream pipe(image, fault_mode::eof_at, len);
    EXPECT_EQ(read_binary_outcome(pipe), outcome::threw_check)
        << "pipe, len " << len;
  }
}

TEST(FaultInjectionBinary, IoErrorAtEveryByteIsCaught) {
  const std::string image = binary_image(ring_graph(8));
  for (std::size_t at = 0; at < image.size(); ++at) {
    faulty_stream in(image, fault_mode::error_at, at);
    EXPECT_EQ(read_binary_outcome(in), outcome::threw_check) << "at " << at;
  }
}

TEST(FaultInjectionBinary, HeaderBitFlipsAreAllCaught) {
  const std::string image = binary_image(ring_graph(8));
  for (std::size_t byte = 0; byte < kHeaderBytes; ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::istringstream in(micg::qa::bit_flipped(image, byte, bit));
      // Degree-2 everywhere makes xadj strictly increasing, so any header
      // damage is structurally detectable — a flip may not hide in slack.
      EXPECT_EQ(read_binary_outcome(in), outcome::threw_check)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(FaultInjectionBinary, PayloadBitFlipsNeverEscapeValidation) {
  const std::string image = binary_image(ring_graph(8));
  int rejected = 0;
  for (std::size_t byte = kHeaderBytes; byte < image.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::istringstream in(micg::qa::bit_flipped(image, byte, bit));
      // Either fate is allowed (a flip could in principle produce another
      // structurally valid graph) but nothing may crash or escape as a
      // non-check exception; in practice validation rejects them all.
      if (read_binary_outcome(in) == outcome::threw_check) ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(FaultInjectionBinary, OverReportedHeaderFieldsAreRejected) {
  const std::string image = binary_image(ring_graph(8));
  const std::int64_t absurd = std::int64_t{1} << 50;  // above the 2^48 cap
  for (std::size_t off : {kOffNumVertices, kOffAdjSize}) {
    // Implausible sizes are rejected before any allocation, on both the
    // seekable and the non-seekable path.
    std::istringstream seekable(micg::qa::with_pod_at(image, off, absurd));
    EXPECT_EQ(read_binary_outcome(seekable), outcome::threw_check);
    faulty_stream pipe(micg::qa::with_pod_at(image, off, absurd));
    EXPECT_EQ(read_binary_outcome(pipe), outcome::threw_check);
  }
  // Plausible but still lying (one vertex too many): seekable streams
  // reject on the payload-size cross-check, pipes on the truncated read.
  for (std::size_t off : {kOffNumVertices, kOffAdjSize}) {
    std::int64_t value = 0;
    std::memcpy(&value, image.data() + off, sizeof(value));
    const auto lied = micg::qa::with_pod_at(image, off, value + 1);
    std::istringstream seekable(lied);
    EXPECT_EQ(read_binary_outcome(seekable), outcome::threw_check);
    faulty_stream pipe(lied);
    EXPECT_EQ(read_binary_outcome(pipe), outcome::threw_check);
  }
}

TEST(FaultInjectionBinary, NegativeHeaderFieldsAreRejected) {
  const std::string image = binary_image(ring_graph(8));
  for (std::size_t off : {kOffNumVertices, kOffAdjSize}) {
    std::istringstream in(
        micg::qa::with_pod_at(image, off, std::int64_t{-1}));
    EXPECT_EQ(read_binary_outcome(in), outcome::threw_check);
  }
}

// Regression for the validate() ordering fix: a corrupt xadj whose first
// offsets point far past the adjacency array must be rejected by the
// monotonicity pass *before* any neighbors() access touches adj_ (the ASan
// job proves no out-of-bounds read happens on this exact input).
TEST(FaultInjectionBinary, CorruptXadjOffsetsDoNotReadOutOfBounds) {
  const std::string image = binary_image(ring_graph(8));
  // xadj[1] lives right after the header (csr_graph stores 8-byte offsets).
  const auto corrupt =
      micg::qa::with_pod_at(image, kHeaderBytes + 8, std::int64_t{1000});
  std::istringstream in(corrupt);
  EXPECT_EQ(read_binary_outcome(in), outcome::threw_check);
}

TEST(FaultInjectionBinary, Version1CompatAndCorruption) {
  const std::string v2 = binary_image(ring_graph(8));
  // A version-1 writer stored the same arrays with a zero reserved word
  // where the widths now live.
  auto v1 = micg::qa::with_pod_at(v2, kOffVersion, std::uint32_t{1});
  v1 = micg::qa::with_pod_at(v1, kOffVidBytes, std::uint16_t{0});
  v1 = micg::qa::with_pod_at(v1, kOffEidBytes, std::uint16_t{0});
  {
    std::istringstream in(v1);
    const auto g = micg::graph::read_binary_any(in);
    EXPECT_EQ(g.num_vertices(), 8);
  }
  {
    // Version 1 with nonzero widths is contradictory, not trusted.
    std::istringstream in(
        micg::qa::with_pod_at(v1, kOffVidBytes, std::uint16_t{4}));
    EXPECT_THROW(micg::graph::read_binary_any(in), check_error);
  }
}

TEST(FaultInjectionBinary, EmptyAndForeignStreamsAreRejected) {
  {
    std::istringstream in("");
    EXPECT_THROW(micg::graph::read_binary_any(in), check_error);
  }
  {
    std::istringstream in("this is not a micgraph file at all........");
    EXPECT_THROW(micg::graph::read_binary_any(in), check_error);
  }
}

TEST(FaultInjectionBinary, FailpointsCoverEveryReadSite) {
  const std::string image = binary_image(ring_graph(8));
  for (const char* site :
       {"io_binary.header", "io_binary.xadj", "io_binary.adj"}) {
    micg::qa::failpoint_scope fp(site, micg::qa::fail_action::fail_stream);
    std::istringstream in(image);
    EXPECT_THROW(micg::graph::read_binary_any(in), check_error) << site;
    EXPECT_EQ(fp.fired(), 1) << site;
  }
}

// An I/O error raised as an exception mid-parse (a stream with
// exceptions() enabled dies between two reads) converts to check_error.
TEST(FaultInjectionBinary, ThrownIoErrorConvertsToCheckError) {
  const std::string image = binary_image(ring_graph(8));
  micg::qa::failpoint_scope fp("io_binary.adj",
                               micg::qa::fail_action::throw_io_error);
  std::istringstream in(image);
  EXPECT_THROW(micg::graph::read_binary_any(in), check_error);
  EXPECT_EQ(fp.fired(), 1);
}

// Allocation exhaustion mid-parse propagates cleanly (std::bad_alloc, no
// corrupted state) and the reader stays usable afterwards.
TEST(FaultInjectionBinary, AllocationFailureMidParseIsClean) {
  const std::string image = binary_image(ring_graph(8));
  {
    micg::qa::failpoint_scope fp("io_binary.xadj",
                                 micg::qa::fail_action::throw_bad_alloc);
    std::istringstream in(image);
    EXPECT_THROW(micg::graph::read_binary_any(in), std::bad_alloc);
  }
  std::istringstream in(image);
  EXPECT_EQ(micg::graph::read_binary_any(in).num_vertices(), 8);
}

TEST(FaultInjectionBinary, MissingFileIsACheckError) {
  EXPECT_THROW(micg::graph::load_binary_any("/nonexistent/graph.bin"),
               check_error);
  EXPECT_THROW(micg::graph::load_matrix_market("/nonexistent/graph.mtx"),
               check_error);
}

// ---------------------------------------------------------------------------
// faulty_stream self-tests (the harness must be trustworthy too)
// ---------------------------------------------------------------------------

TEST(FaultyStream, EofAtStopsExactlyThere) {
  faulty_stream in("abcdef", fault_mode::eof_at, 3);
  char buf[8] = {};
  in.read(buf, 6);
  EXPECT_FALSE(in.good());
  EXPECT_TRUE(in.eof());
  EXPECT_EQ(in.gcount(), 3);
  EXPECT_EQ(std::string(buf, 3), "abc");
}

TEST(FaultyStream, ErrorAtSetsBadbitNotEof) {
  faulty_stream in("abcdef", fault_mode::error_at, 3);
  char buf[8] = {};
  in.read(buf, 6);
  EXPECT_TRUE(in.bad());
  EXPECT_EQ(std::string(buf, 3), "abc");
}

TEST(FaultyStream, NoFaultServesWholeImage) {
  faulty_stream in("abcdef");
  std::string all(6, '\0');
  in.read(all.data(), 6);
  EXPECT_TRUE(in.good());
  EXPECT_EQ(all, "abcdef");
}

}  // namespace
