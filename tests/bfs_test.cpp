// Tests for the BFS module: sequential reference, block-accessed queue,
// TLS frontier, Leiserson-Schardl bag, all six layered parallel variants,
// validation, and the direction-optimizing extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "micg/bfs/bag.hpp"
#include "micg/bfs/block_queue.hpp"
#include "micg/bfs/direction.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/bfs/tls_queue.hpp"
#include "micg/bfs/validate.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/permute.hpp"
#include "micg/graph/suite.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::bfs::bfs_variant;
using micg::graph::csr_graph;
using micg::graph::invalid_vertex;
using micg::graph::vertex_t;

// --------------------------------------------------------------------- seq

TEST(SeqBfs, ChainLevels) {
  auto g = micg::graph::make_chain(5);
  const auto r = micg::bfs::seq_bfs(g, 0);
  EXPECT_EQ(r.level, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.num_levels, 5);
  EXPECT_EQ(r.reached, 5u);
  EXPECT_EQ(r.frontier_sizes, (std::vector<std::size_t>{1, 1, 1, 1, 1}));
}

TEST(SeqBfs, StarFromCenterAndLeaf) {
  auto g = micg::graph::make_star(6);
  const auto center = micg::bfs::seq_bfs(g, 0);
  EXPECT_EQ(center.num_levels, 2);
  EXPECT_EQ(center.frontier_sizes, (std::vector<std::size_t>{1, 5}));
  const auto leaf = micg::bfs::seq_bfs(g, 3);
  EXPECT_EQ(leaf.num_levels, 3);
  EXPECT_EQ(leaf.frontier_sizes, (std::vector<std::size_t>{1, 1, 4}));
}

TEST(SeqBfs, DisconnectedVerticesStayUnreached) {
  micg::graph::graph_builder b(4);
  b.add_edge(0, 1);
  auto g = std::move(b).build();
  const auto r = micg::bfs::seq_bfs(g, 0);
  EXPECT_EQ(r.level[2], -1);
  EXPECT_EQ(r.level[3], -1);
  EXPECT_EQ(r.reached, 2u);
}

TEST(SeqBfs, TreeLevelsMatchDepth) {
  auto g = micg::graph::make_kary_tree(3, 4);
  const auto r = micg::bfs::seq_bfs(g, 0);
  EXPECT_EQ(r.num_levels, 4);
  EXPECT_EQ(r.frontier_sizes, (std::vector<std::size_t>{1, 3, 9, 27}));
}

TEST(SeqBfs, RejectsBadSource) {
  auto g = micg::graph::make_chain(3);
  EXPECT_THROW(micg::bfs::seq_bfs(g, 5), micg::check_error);
  EXPECT_THROW(micg::bfs::seq_bfs(g, -1), micg::check_error);
}

// ------------------------------------------------------------- block queue

TEST(BlockQueue, PushAndFlushPadsWithSentinels) {
  micg::bfs::block_queue q(256, /*block=*/8, /*workers=*/2);
  for (vertex_t v = 0; v < 5; ++v) q.push(0, v);
  q.flush_all();
  // One block handed out: 5 vertices + 3 sentinels.
  EXPECT_EQ(q.size_with_sentinels(), 8u);
  EXPECT_EQ(q.count_valid(), 5u);
  auto raw = q.raw();
  EXPECT_EQ(raw[4], 4);
  EXPECT_EQ(raw[5], invalid_vertex);
}

TEST(BlockQueue, MultipleBlocksPerWorker) {
  micg::bfs::block_queue q(256, 4, 1);
  for (vertex_t v = 0; v < 10; ++v) q.push(0, v);
  q.flush_all();
  EXPECT_EQ(q.size_with_sentinels(), 12u);  // 3 blocks of 4
  EXPECT_EQ(q.count_valid(), 10u);
}

TEST(BlockQueue, ResetReusesStorage) {
  micg::bfs::block_queue q(64, 4, 1);
  for (vertex_t v = 0; v < 6; ++v) q.push(0, v);
  q.flush_all();
  q.reset();
  EXPECT_EQ(q.size_with_sentinels(), 0u);
  q.push(0, 42);
  q.flush_all();
  EXPECT_EQ(q.count_valid(), 1u);
  EXPECT_EQ(q.raw()[0], 42);
}

TEST(BlockQueue, ConcurrentPushesKeepEveryVertex) {
  constexpr int kWorkers = 8;
  constexpr vertex_t kPerWorker = 1000;
  micg::bfs::block_queue q(kWorkers * kPerWorker + kWorkers * 16 + 64, 16,
                           kWorkers);
  micg::rt::thread_pool pool(kWorkers);
  pool.run(kWorkers, [&](int w) {
    for (vertex_t i = 0; i < kPerWorker; ++i) {
      q.push(w, static_cast<vertex_t>(w) * kPerWorker + i);
    }
  });
  q.flush_all();
  EXPECT_EQ(q.count_valid(),
            static_cast<std::size_t>(kWorkers) * kPerWorker);
  std::set<vertex_t> seen;
  for (auto v : q.raw()) {
    if (v != invalid_vertex) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kWorkers) * kPerWorker);
}

TEST(BlockQueue, OverflowThrows) {
  micg::bfs::block_queue q(8, 8, 1);
  for (vertex_t v = 0; v < 8; ++v) q.push(0, v);
  EXPECT_THROW(q.push(0, 9), micg::check_error);
}

TEST(BlockQueue, SwapExchangesContents) {
  micg::bfs::block_queue a(64, 4, 1), b(64, 4, 1);
  a.push(0, 7);
  a.flush_all();
  a.swap(b);
  EXPECT_EQ(a.size_with_sentinels(), 0u);
  EXPECT_EQ(b.count_valid(), 1u);
}

// ------------------------------------------------------------ tls frontier

TEST(TlsFrontier, MergeConcatenatesAndClears) {
  micg::bfs::tls_frontier f(3);
  f.push(0, 1);
  f.push(1, 2);
  f.push(1, 3);
  f.push(2, 4);
  EXPECT_EQ(f.total_size(), 4u);
  std::vector<vertex_t> out;
  f.merge_into(out);
  EXPECT_EQ(out, (std::vector<vertex_t>{1, 2, 3, 4}));
  EXPECT_EQ(f.total_size(), 0u);
}

// --------------------------------------------------------------------- bag

TEST(Bag, InsertAndSize) {
  micg::bfs::vertex_bag bag(4);
  EXPECT_TRUE(bag.empty());
  for (vertex_t v = 0; v < 20; ++v) bag.insert(v);
  EXPECT_EQ(bag.size(), 20u);
  // 20 items at grain 4 = 5 full nodes = binary 101 -> 2 pennants.
  EXPECT_EQ(bag.backbone_pennants(), 2u);
}

TEST(Bag, ForEachVisitsEverythingOnce) {
  micg::bfs::vertex_bag bag(8);
  for (vertex_t v = 0; v < 100; ++v) bag.insert(v);
  std::set<vertex_t> seen;
  bag.for_each([&](vertex_t v) { EXPECT_TRUE(seen.insert(v).second); });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Bag, AbsorbMergesCounts) {
  micg::bfs::vertex_bag a(4), b(4);
  for (vertex_t v = 0; v < 13; ++v) a.insert(v);
  for (vertex_t v = 100; v < 117; ++v) b.insert(v);
  a.absorb(std::move(b));
  EXPECT_EQ(a.size(), 30u);
  EXPECT_TRUE(b.empty());
  std::set<vertex_t> seen;
  a.for_each([&](vertex_t v) { EXPECT_TRUE(seen.insert(v).second); });
  EXPECT_EQ(seen.size(), 30u);
}

TEST(Bag, AbsorbIntoEmpty) {
  micg::bfs::vertex_bag a(4), b(4);
  for (vertex_t v = 0; v < 9; ++v) b.insert(v);
  a.absorb(std::move(b));
  EXPECT_EQ(a.size(), 9u);
}

TEST(Bag, GrainMismatchThrows) {
  micg::bfs::vertex_bag a(4), b(8);
  EXPECT_THROW(a.absorb(std::move(b)), micg::check_error);
}

TEST(Bag, MoveSemantics) {
  micg::bfs::vertex_bag a(4);
  for (vertex_t v = 0; v < 10; ++v) a.insert(v);
  micg::bfs::vertex_bag b(std::move(a));
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
  a = std::move(b);
  EXPECT_EQ(a.size(), 10u);
}

TEST(Bag, ParallelTraversalCoversAll) {
  micg::bfs::vertex_bag bag(16);
  constexpr vertex_t kN = 5000;
  for (vertex_t v = 0; v < kN; ++v) bag.insert(v);
  micg::rt::thread_pool pool(4);
  micg::rt::task_scheduler sched(pool, 4);
  std::vector<std::atomic<int>> hits(kN);
  sched.run([&] {
    bag.traverse_parallel(sched,
                          [&](std::span<const vertex_t> items, int) {
                            for (vertex_t v : items) {
                              hits[static_cast<std::size_t>(v)].fetch_add(1);
                            }
                          });
  });
  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(hits[static_cast<std::size_t>(v)].load(), 1) << v;
  }
}

// ------------------------------------------------------------ layered bfs

struct BfsCase {
  bfs_variant variant;
  int threads;
};

class LayeredBfs : public ::testing::TestWithParam<BfsCase> {};

TEST_P(LayeredBfs, MatchesSequentialOnStructuredGraphs) {
  const auto p = GetParam();
  micg::bfs::parallel_bfs_options opt;
  opt.variant = p.variant;
  opt.ex.threads = p.threads;
  opt.ex.chunk = 16;
  opt.block = 8;

  const struct {
    csr_graph g;
    vertex_t source;
  } cases[] = {
      {micg::graph::make_chain(500), 0},
      {micg::graph::make_chain(500), 250},
      {micg::graph::make_star(200), 0},
      {micg::graph::make_kary_tree(3, 6), 0},
      {micg::graph::make_grid_2d(30, 30), 17},
      {micg::graph::make_cycle(101), 3},
  };
  for (const auto& c : cases) {
    const auto seq = micg::bfs::seq_bfs(c.g, c.source);
    const auto par = micg::bfs::parallel_bfs(c.g, c.source, opt);
    EXPECT_EQ(par.level, seq.level);
    EXPECT_EQ(par.num_levels, seq.num_levels);
    EXPECT_EQ(par.frontier_sizes, seq.frontier_sizes);
    EXPECT_EQ(par.reached, seq.reached);
  }
}

TEST_P(LayeredBfs, MatchesSequentialOnIrregularGraphs) {
  const auto p = GetParam();
  micg::bfs::parallel_bfs_options opt;
  opt.variant = p.variant;
  opt.ex.threads = p.threads;
  opt.block = 32;

  auto er = micg::graph::make_erdos_renyi(4000, 8.0, 77);
  auto seq = micg::bfs::seq_bfs(er, 0);
  auto par = micg::bfs::parallel_bfs(er, 0, opt);
  EXPECT_EQ(par.level, seq.level);

  auto rmat = micg::graph::make_rmat(11, 8, 0.57, 0.19, 0.19, 5);
  // Pick a vertex in the big component as source.
  vertex_t src = 0;
  for (vertex_t v = 0; v < rmat.num_vertices(); ++v) {
    if (rmat.degree(v) > 0) {
      src = v;
      break;
    }
  }
  seq = micg::bfs::seq_bfs(rmat, src);
  par = micg::bfs::parallel_bfs(rmat, src, opt);
  EXPECT_EQ(par.level, seq.level);
  EXPECT_TRUE(micg::bfs::is_valid_bfs_levels(rmat, src, par.level));
}

TEST_P(LayeredBfs, MatchesSequentialOnSuiteStandIn) {
  const auto p = GetParam();
  const auto& entry = micg::graph::suite_entry_by_name("pwtk");
  auto g = micg::graph::make_suite_graph(entry, 0.01);
  const vertex_t src = g.num_vertices() / 2;
  micg::bfs::parallel_bfs_options opt;
  opt.variant = p.variant;
  opt.ex.threads = p.threads;
  const auto seq = micg::bfs::seq_bfs(g, src);
  const auto par = micg::bfs::parallel_bfs(g, src, opt);
  EXPECT_EQ(par.level, seq.level);
}

std::vector<BfsCase> bfs_cases() {
  std::vector<BfsCase> cases;
  for (auto v : micg::bfs::all_bfs_variants()) {
    cases.push_back({v, 1});
    cases.push_back({v, 4});
  }
  cases.push_back({bfs_variant::omp_block_relaxed, 16});
  cases.push_back({bfs_variant::cilk_bag_relaxed, 8});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, LayeredBfs, ::testing::ValuesIn(bfs_cases()),
    [](const auto& info) {
      std::string n = micg::bfs::bfs_variant_name(info.param.variant);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_t" + std::to_string(info.param.threads);
    });

TEST(LayeredBfsDetails, BlockVariantReportsQueueSlots) {
  auto g = micg::graph::make_grid_2d(40, 40);
  micg::bfs::parallel_bfs_options opt;
  opt.variant = bfs_variant::omp_block_relaxed;
  opt.ex.threads = 4;
  opt.block = 8;
  const auto r = micg::bfs::parallel_bfs(g, 0, opt);
  ASSERT_FALSE(r.queue_slots_per_level.empty());
  // Slots (with sentinels) are at least the frontier size and a multiple
  // of nothing in general, but never exceed frontier + threads*block.
  for (std::size_t l = 0; l < r.queue_slots_per_level.size(); ++l) {
    EXPECT_GE(r.queue_slots_per_level[l], r.frontier_sizes[l]);
    EXPECT_LE(r.queue_slots_per_level[l],
              r.frontier_sizes[l] + 4u * 8u + 8u);
  }
}

TEST(LayeredBfsDetails, OptionsValidated) {
  auto g = micg::graph::make_chain(4);
  micg::bfs::parallel_bfs_options opt;
  opt.ex.threads = 0;
  EXPECT_THROW(micg::bfs::parallel_bfs(g, 0, opt), micg::check_error);
  opt.ex.threads = 1;
  opt.block = 0;
  EXPECT_THROW(micg::bfs::parallel_bfs(g, 0, opt), micg::check_error);
  opt.block = 8;
  EXPECT_THROW(micg::bfs::parallel_bfs(g, 99, opt), micg::check_error);
}

// ---------------------------------------------------------------- validate

TEST(Validate, AcceptsCorrectAndRejectsCorrupt) {
  auto g = micg::graph::make_grid_2d(10, 10);
  auto r = micg::bfs::seq_bfs(g, 0);
  EXPECT_TRUE(micg::bfs::is_valid_bfs_levels(g, 0, r.level));
  auto corrupt = r.level;
  corrupt[50] += 1;
  EXPECT_FALSE(micg::bfs::is_valid_bfs_levels(g, 0, corrupt));
  corrupt = r.level;
  corrupt[0] = 1;  // source must be level 0
  EXPECT_FALSE(micg::bfs::is_valid_bfs_levels(g, 0, corrupt));
}

// --------------------------------------------------------------- direction

TEST(DirectionBfs, MatchesSequentialOnMesh) {
  auto g = micg::graph::make_grid_2d(40, 40);
  micg::bfs::direction_options opt;
  opt.ex.threads = 4;
  const auto seq = micg::bfs::seq_bfs(g, 5);
  const auto dir = micg::bfs::direction_optimizing_bfs(g, 5, opt);
  EXPECT_EQ(dir.level, seq.level);
  // One step per processed frontier, including the deepest level whose
  // expansion discovers nothing.
  EXPECT_EQ(dir.top_down_steps + dir.bottom_up_steps, seq.num_levels);
}

TEST(DirectionBfs, SwitchesToBottomUpOnRmat) {
  auto g = micg::graph::make_rmat(12, 16, 0.57, 0.19, 0.19, 3);
  vertex_t src = 0;
  while (g.degree(src) == 0) ++src;
  micg::bfs::direction_options opt;
  opt.ex.threads = 4;
  opt.alpha = 50.0;  // aggressive switch for the test
  const auto seq = micg::bfs::seq_bfs(g, src);
  const auto dir = micg::bfs::direction_optimizing_bfs(g, src, opt);
  EXPECT_EQ(dir.level, seq.level);
  EXPECT_GT(dir.bottom_up_steps, 0);
}

// The word-scan bitmap frontier is a pure representation change: levels,
// step counts, and direction-switch sequences must match the queue path
// exactly, under either partitioning, on every CSR layout.
TEST(DirectionBfs, BitmapMatchesQueuePathExactly) {
  struct Case {
    csr_graph g;
    vertex_t source;
    double alpha;
  };
  const Case cases[] = {
      {micg::graph::make_rmat(12, 16, 0.57, 0.19, 0.19, 3), 0, 50.0},
      {micg::graph::make_grid_2d(50, 50), 17, 14.0},
      {micg::graph::make_star(3000), 1, 14.0},
  };
  for (const auto& c : cases) {
    vertex_t src = c.source;
    while (c.g.degree(src) == 0) ++src;
    micg::bfs::direction_options queue_opt;
    queue_opt.ex.threads = 4;
    queue_opt.alpha = c.alpha;
    queue_opt.bitmap = false;
    const auto ref = micg::bfs::direction_optimizing_bfs(c.g, src, queue_opt);
    for (auto part : {micg::rt::partition_mode::vertex,
                      micg::rt::partition_mode::edge}) {
      micg::bfs::direction_options opt = queue_opt;
      opt.bitmap = true;
      opt.partition = part;
      const auto bm = micg::bfs::direction_optimizing_bfs(c.g, src, opt);
      const char* label = micg::rt::partition_mode_name(part);
      EXPECT_EQ(bm.level, ref.level) << label;
      EXPECT_EQ(bm.top_down_steps, ref.top_down_steps) << label;
      EXPECT_EQ(bm.bottom_up_steps, ref.bottom_up_steps) << label;
      EXPECT_EQ(bm.reached, ref.reached) << label;
      EXPECT_TRUE(micg::bfs::is_valid_bfs_levels(c.g, src, bm.level))
          << label;
    }
  }
}

TEST(DirectionBfs, BitmapMatchesOnAllLayouts) {
  const auto g = micg::graph::make_rmat(11, 12, 0.57, 0.19, 0.19, 9);
  vertex_t src = 0;
  while (g.degree(src) == 0) ++src;
  const auto g32 = micg::graph::convert_csr<micg::graph::csr32>(g);
  const auto g64 = micg::graph::convert_csr<micg::graph::csr64>(g);
  micg::bfs::direction_options opt;
  opt.ex.threads = 4;
  opt.alpha = 30.0;
  const auto ref = micg::bfs::direction_optimizing_bfs(g, src, opt);
  const auto r32 = micg::bfs::direction_optimizing_bfs(
      g32, static_cast<std::int32_t>(src), opt);
  const auto r64 = micg::bfs::direction_optimizing_bfs(
      g64, static_cast<std::int64_t>(src), opt);
  EXPECT_EQ(r32.level, ref.level);
  EXPECT_EQ(r64.level, ref.level);
  EXPECT_EQ(r32.bottom_up_steps, ref.bottom_up_steps);
  EXPECT_EQ(r64.bottom_up_steps, ref.bottom_up_steps);
}

// Bouncing back to top-down after bottom-up exercises the bitmap -> queue
// frontier unpack; beta makes the final sparse tail switch back.
TEST(DirectionBfs, BitmapHandlesDirectionBounce) {
  auto g = micg::graph::make_rmat(12, 8, 0.57, 0.19, 0.19, 21);
  vertex_t src = 0;
  while (g.degree(src) == 0) ++src;
  micg::bfs::direction_options queue_opt;
  queue_opt.ex.threads = 4;
  queue_opt.alpha = 100.0;  // switch down early...
  queue_opt.beta = 2.0;     // ...and back up as the frontier thins
  queue_opt.bitmap = false;
  const auto ref = micg::bfs::direction_optimizing_bfs(g, src, queue_opt);
  micg::bfs::direction_options opt = queue_opt;
  opt.bitmap = true;
  const auto bm = micg::bfs::direction_optimizing_bfs(g, src, opt);
  EXPECT_EQ(bm.level, ref.level);
  EXPECT_EQ(bm.top_down_steps, ref.top_down_steps);
  EXPECT_EQ(bm.bottom_up_steps, ref.bottom_up_steps);
}

}  // namespace
