// Tests for the irregular-computation module: Algorithm 5 kernel (both
// modes), PageRank, heat diffusion, SpMV.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "micg/graph/builder.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/irregular/heat.hpp"
#include "micg/irregular/kernel.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/spmv.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/rng.hpp"

namespace {

using micg::graph::csr_graph;
using micg::graph::vertex_t;
using micg::rt::backend;

std::vector<double> random_state(vertex_t n, std::uint64_t seed) {
  micg::xoshiro256ss rng(seed);
  std::vector<double> s(static_cast<std::size_t>(n));
  for (auto& x : s) x = rng.uniform() * 100.0;
  return s;
}

// ------------------------------------------------------------------ kernel

TEST(Kernel, SingleThreadInPlaceMatchesSequential) {
  auto g = micg::graph::make_grid_2d(20, 20);
  const auto state = random_state(g.num_vertices(), 1);
  micg::irregular::kernel_options opt;
  opt.ex.kind = backend::omp_static;
  opt.ex.threads = 1;
  opt.ex.chunk = 1 << 30;  // single chunk: exact natural order
  opt.iterations = 3;
  const auto par = micg::irregular::irregular_kernel(g, state, opt);
  const auto seq = micg::irregular::irregular_kernel_seq(g, state, 3);
  EXPECT_EQ(par, seq);
}

class KernelBackend : public ::testing::TestWithParam<backend> {};

TEST_P(KernelBackend, ConvexityBoundsHold) {
  // Every update is a convex combination of current states, so the state
  // stays within the initial [min, max] under any interleaving.
  auto g = micg::graph::make_erdos_renyi(2000, 8.0, 3);
  const auto state = random_state(g.num_vertices(), 2);
  const auto [mn, mx] = std::minmax_element(state.begin(), state.end());
  micg::irregular::kernel_options opt;
  opt.ex.kind = GetParam();
  opt.ex.threads = 4;
  opt.ex.chunk = 64;
  opt.iterations = 5;
  const auto out = micg::irregular::irregular_kernel(g, state, opt);
  for (double x : out) {
    EXPECT_GE(x, *mn - 1e-12);
    EXPECT_LE(x, *mx + 1e-12);
  }
}

TEST_P(KernelBackend, JacobiModeIsDeterministicAcrossThreads) {
  auto g = micg::graph::make_grid_2d(30, 30);
  const auto state = random_state(g.num_vertices(), 7);
  micg::irregular::kernel_options opt;
  opt.ex.kind = GetParam();
  opt.ex.chunk = 32;
  opt.iterations = 2;
  opt.mode = micg::irregular::kernel_mode::jacobi;
  opt.ex.threads = 1;
  const auto one = micg::irregular::irregular_kernel(g, state, opt);
  opt.ex.threads = 8;
  const auto eight = micg::irregular::irregular_kernel(g, state, opt);
  EXPECT_EQ(one, eight);
}

INSTANTIATE_TEST_SUITE_P(Backends, KernelBackend,
                         ::testing::Values(backend::omp_dynamic,
                                           backend::omp_guided,
                                           backend::cilk_holder,
                                           backend::tbb_simple,
                                           backend::tbb_affinity),
                         [](const auto& info) {
                           std::string n =
                               micg::rt::backend_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Kernel, IterationsAmplifyComputationNotResultScale) {
  // More iterations smooth harder but never escape the convex hull.
  auto g = micg::graph::make_cycle(50);
  std::vector<double> state(50, 0.0);
  state[0] = 50.0;
  micg::irregular::kernel_options opt;
  opt.ex.threads = 1;
  opt.iterations = 10;
  const auto out = micg::irregular::irregular_kernel(g, state, opt);
  const double total_before =
      std::accumulate(state.begin(), state.end(), 0.0);
  for (double x : out) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 50.0);
  }
  // Averaging does not conserve the sum but stays bounded by it here
  // (single spike smears outward).
  const double total_after = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_LE(total_after, total_before + 1e-9);
}

TEST(Kernel, RejectsBadOptions) {
  auto g = micg::graph::make_chain(4);
  std::vector<double> state(4, 1.0);
  micg::irregular::kernel_options opt;
  opt.iterations = 0;
  EXPECT_THROW(micg::irregular::irregular_kernel(g, state, opt),
               micg::check_error);
  opt.iterations = 1;
  std::vector<double> short_state(2, 1.0);
  EXPECT_THROW(micg::irregular::irregular_kernel(g, short_state, opt),
               micg::check_error);
}

// ---------------------------------------------------------------- pagerank

TEST(Pagerank, SumsToOneAndConverges) {
  auto g = micg::graph::make_erdos_renyi(1000, 10.0, 21);
  micg::irregular::pagerank_options opt;
  opt.ex.kind = backend::omp_dynamic;
  opt.ex.threads = 4;
  const auto r = micg::irregular::pagerank(g, opt);
  EXPECT_TRUE(r.converged);
  const double total =
      std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double x : r.rank) EXPECT_GT(x, 0.0);
}

TEST(Pagerank, RegularGraphIsUniform) {
  auto g = micg::graph::make_cycle(100);  // 2-regular
  micg::irregular::pagerank_options opt;
  opt.ex.threads = 2;
  const auto r = micg::irregular::pagerank(g, opt);
  for (double x : r.rank) EXPECT_NEAR(x, 0.01, 1e-9);
}

TEST(Pagerank, HubOutranksLeaves) {
  auto g = micg::graph::make_star(50);
  micg::irregular::pagerank_options opt;
  opt.ex.threads = 2;
  const auto r = micg::irregular::pagerank(g, opt);
  for (std::size_t v = 1; v < r.rank.size(); ++v) {
    EXPECT_GT(r.rank[0], r.rank[v]);
  }
}

TEST(Pagerank, HandlesIsolatedVertices) {
  micg::graph::graph_builder b(4);
  b.add_edge(0, 1);
  auto g = std::move(b).build();  // 2 and 3 isolated (dangling)
  micg::irregular::pagerank_options opt;
  opt.ex.threads = 2;
  const auto r = micg::irregular::pagerank(g, opt);
  const double total =
      std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Pagerank, DeterministicAcrossThreadCounts) {
  auto g = micg::graph::make_grid_2d(15, 15);
  micg::irregular::pagerank_options opt;
  opt.ex.kind = backend::omp_static;
  opt.ex.threads = 1;
  const auto a = micg::irregular::pagerank(g, opt);
  opt.ex.threads = 4;
  const auto b = micg::irregular::pagerank(g, opt);
  ASSERT_EQ(a.rank.size(), b.rank.size());
  for (std::size_t i = 0; i < a.rank.size(); ++i) {
    EXPECT_NEAR(a.rank[i], b.rank[i], 1e-12);
  }
}

// -------------------------------------------------------------------- heat

TEST(Heat, ConservesTotalHeat) {
  auto g = micg::graph::make_grid_2d(25, 25);
  auto state = random_state(g.num_vertices(), 5);
  const double before =
      std::accumulate(state.begin(), state.end(), 0.0);
  micg::irregular::heat_options opt;
  opt.ex.threads = 4;
  opt.alpha = 0.1;
  opt.steps = 20;
  const auto out = micg::irregular::heat_diffusion(g, state, opt);
  const double after = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_NEAR(after, before, 1e-6 * std::abs(before));
}

TEST(Heat, ConvergesToUniform) {
  auto g = micg::graph::make_complete(16);
  std::vector<double> state(16, 0.0);
  state[0] = 16.0;
  micg::irregular::heat_options opt;
  opt.ex.threads = 2;
  opt.alpha = 0.05;  // Delta = 15, stable
  opt.steps = 500;
  const auto out = micg::irregular::heat_diffusion(g, state, opt);
  for (double x : out) EXPECT_NEAR(x, 1.0, 1e-3);
}

TEST(Heat, ZeroStepsIsIdentity) {
  auto g = micg::graph::make_chain(8);
  const auto state = random_state(8, 9);
  micg::irregular::heat_options opt;
  opt.steps = 0;
  const auto out = micg::irregular::heat_diffusion(g, state, opt);
  EXPECT_EQ(out, state);
}

// -------------------------------------------------------------------- spmv

TEST(Spmv, MatchesDenseReference) {
  auto g = micg::graph::make_erdos_renyi(64, 6.0, 13);
  const auto x = random_state(64, 11);
  micg::rt::exec ex;
  ex.kind = backend::omp_dynamic;
  ex.threads = 4;
  ex.chunk = 8;
  const auto y = micg::irregular::spmv(g, x, ex);
  // Dense reference.
  for (vertex_t v = 0; v < 64; ++v) {
    double expect = 0.0;
    for (vertex_t w : g.neighbors(v)) {
      expect += x[static_cast<std::size_t>(w)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(v)], expect, 1e-9);
  }
}

TEST(Spmv, RandomWalkMatrixRowsAverage) {
  auto g = micg::graph::make_star(5);
  std::vector<double> x{0.0, 1.0, 2.0, 3.0, 4.0};
  micg::rt::exec ex;
  ex.threads = 1;
  const auto y = micg::irregular::spmv(
      g, x, ex, micg::irregular::spmv_matrix::random_walk);
  EXPECT_NEAR(y[0], (1.0 + 2.0 + 3.0 + 4.0) / 4.0, 1e-12);
  EXPECT_NEAR(y[1], 0.0, 1e-12);  // leaf sees only the center
}

// ------------------------------------------------- fast-path knob parity
//
// The whole point of the striped gather_sum design is that flipping any
// memory-hierarchy knob (SIMD, prefetch distance, partitioning) changes
// performance only: results must be *bit-identical*, on every CSR layout.

const std::vector<micg::rt::mem_opts>& knob_grid() {
  static std::vector<micg::rt::mem_opts> grid = [] {
    std::vector<micg::rt::mem_opts> g;
    for (bool simd : {false, true}) {
      for (int dist : {0, 16}) {
        for (auto part : {micg::rt::partition_mode::vertex,
                          micg::rt::partition_mode::edge}) {
          g.push_back({part, dist, simd});
        }
      }
    }
    return g;
  }();
  return grid;
}

std::string knob_label(const micg::rt::mem_opts& m) {
  return std::string(micg::rt::partition_mode_name(m.partition)) +
         "/pf" + std::to_string(m.prefetch_distance) +
         (m.simd ? "/simd" : "/scalar");
}

TEST(Spmv, KnobsAreBitIdenticalAcrossLayouts) {
  const auto g = micg::graph::make_rmat(10, 8, 0.57, 0.19, 0.19, 99);
  const auto x = random_state(g.num_vertices(), 31);
  const auto g32 = micg::graph::convert_csr<micg::graph::csr32>(g);
  const auto g64 = micg::graph::convert_csr<micg::graph::csr64>(g);
  for (auto matrix : {micg::irregular::spmv_matrix::adjacency,
                      micg::irregular::spmv_matrix::random_walk}) {
    micg::irregular::spmv_options base;
    base.ex.kind = backend::omp_dynamic;
    base.ex.threads = 4;
    base.ex.chunk = 32;
    base.matrix = matrix;
    base.mem = micg::rt::scalar_mem_opts();
    const auto ref = micg::irregular::spmv(g, x, base);
    for (const auto& mem : knob_grid()) {
      auto opt = base;
      opt.mem = mem;
      EXPECT_EQ(micg::irregular::spmv(g, x, opt), ref) << knob_label(mem);
      EXPECT_EQ(micg::irregular::spmv(g32, x, opt), ref)
          << "csr32 " << knob_label(mem);
      EXPECT_EQ(micg::irregular::spmv(g64, x, opt), ref)
          << "csr64 " << knob_label(mem);
    }
  }
}

TEST(Spmv, LegacyOverloadUsesFastDefaults) {
  const auto g = micg::graph::make_erdos_renyi(500, 8.0, 17);
  const auto x = random_state(g.num_vertices(), 23);
  micg::rt::exec ex;
  ex.threads = 2;
  micg::irregular::spmv_options opt;
  opt.ex = ex;
  EXPECT_EQ(micg::irregular::spmv(g, x, ex),
            micg::irregular::spmv(g, x, opt));
}

TEST(Pagerank, KnobsAreBitIdenticalAcrossLayouts) {
  const auto g = micg::graph::make_rmat(10, 8, 0.57, 0.19, 0.19, 5);
  const auto g32 = micg::graph::convert_csr<micg::graph::csr32>(g);
  const auto g64 = micg::graph::convert_csr<micg::graph::csr64>(g);
  micg::irregular::pagerank_options base;
  base.ex.kind = backend::tbb_auto;
  base.ex.threads = 4;
  base.max_iterations = 30;
  base.mem = micg::rt::scalar_mem_opts();
  const auto ref = micg::irregular::pagerank(g, base);
  for (const auto& mem : knob_grid()) {
    auto opt = base;
    opt.mem = mem;
    const auto r = micg::irregular::pagerank(g, opt);
    EXPECT_EQ(r.rank, ref.rank) << knob_label(mem);
    EXPECT_EQ(r.iterations, ref.iterations) << knob_label(mem);
    EXPECT_EQ(micg::irregular::pagerank(g32, opt).rank, ref.rank)
        << "csr32 " << knob_label(mem);
    EXPECT_EQ(micg::irregular::pagerank(g64, opt).rank, ref.rank)
        << "csr64 " << knob_label(mem);
  }
}

TEST(Heat, KnobsAreBitIdentical) {
  const auto g = micg::graph::make_rmat(9, 8, 0.45, 0.22, 0.22, 7);
  const auto state = random_state(g.num_vertices(), 41);
  micg::irregular::heat_options base;
  base.ex.threads = 4;
  base.alpha = 0.001;
  base.steps = 5;
  base.mem = micg::rt::scalar_mem_opts();
  const auto ref = micg::irregular::heat_diffusion(g, state, base);
  for (const auto& mem : knob_grid()) {
    auto opt = base;
    opt.mem = mem;
    EXPECT_EQ(micg::irregular::heat_diffusion(g, state, opt), ref)
        << knob_label(mem);
  }
}

TEST(Kernel, JacobiKnobsAreBitIdentical) {
  const auto g = micg::graph::make_rmat(9, 8, 0.57, 0.19, 0.19, 3);
  const auto state = random_state(g.num_vertices(), 43);
  micg::irregular::kernel_options base;
  base.ex.threads = 4;
  base.iterations = 3;
  base.mode = micg::irregular::kernel_mode::jacobi;
  base.mem = micg::rt::scalar_mem_opts();
  const auto ref = micg::irregular::irregular_kernel(g, state, base);
  for (const auto& mem : knob_grid()) {
    auto opt = base;
    opt.mem = mem;
    EXPECT_EQ(micg::irregular::irregular_kernel(g, state, opt), ref)
        << knob_label(mem);
  }
}

TEST(Spmv, ConsistentAcrossBackends) {
  auto g = micg::graph::make_grid_2d(12, 12);
  const auto x = random_state(g.num_vertices(), 3);
  micg::rt::exec a;
  a.kind = backend::omp_static;
  a.threads = 1;
  const auto ya = micg::irregular::spmv(g, x, a);
  for (backend b : micg::rt::all_backends()) {
    micg::rt::exec e;
    e.kind = b;
    e.threads = 4;
    e.chunk = 16;
    const auto yb = micg::irregular::spmv(g, x, e);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::size_t i = 0; i < ya.size(); ++i) {
      ASSERT_NEAR(ya[i], yb[i], 1e-12) << micg::rt::backend_name(b);
    }
  }
}

}  // namespace
