// Tests for the second extension batch: parallel connected components,
// Jones-Plassmann coloring, and the colored Gauss-Seidel smoother.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "micg/color/iterative.hpp"
#include "micg/color/jones_plassmann.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/components.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/props.hpp"
#include "micg/graph/suite.hpp"
#include "micg/irregular/gauss_seidel.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/rng.hpp"

namespace {

using micg::graph::csr_graph;
using micg::graph::vertex_t;
using micg::rt::backend;

// ---------------------------------------------------------------- components

micg::rt::exec exec4(backend b = backend::omp_dynamic) {
  micg::rt::exec e;
  e.kind = b;
  e.threads = 4;
  e.chunk = 64;
  return e;
}

TEST(Components, MatchesSequentialCount) {
  micg::graph::graph_builder b(10);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(4, 5);
  b.add_edge(7, 8);
  auto g = std::move(b).build();
  const auto r = micg::graph::parallel_components(g, exec4());
  // {0,1,2} {3} {4,5} {6} {7,8} {9} -> 6 components.
  EXPECT_EQ(r.num_components, 6);
  EXPECT_EQ(r.num_components, micg::graph::count_components(g));
}

TEST(Components, LabelsAreCanonicalMinima) {
  micg::graph::graph_builder b(6);
  b.add_edge(5, 3);
  b.add_edge(3, 4);
  b.add_edge(0, 2);
  auto g = std::move(b).build();
  const auto r = micg::graph::parallel_components(g, exec4());
  EXPECT_EQ(r.label[5], 3);
  EXPECT_EQ(r.label[4], 3);
  EXPECT_EQ(r.label[3], 3);
  EXPECT_EQ(r.label[0], 0);
  EXPECT_EQ(r.label[2], 0);
  EXPECT_EQ(r.label[1], 1);
}

TEST(Components, LabelsRespectEdges) {
  auto g = micg::graph::make_erdos_renyi(2000, 1.5, 11);  // fragmented
  const auto r = micg::graph::parallel_components(g, exec4());
  EXPECT_EQ(r.num_components, micg::graph::count_components(g));
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (vertex_t w : g.neighbors(v)) {
      ASSERT_EQ(r.label[static_cast<std::size_t>(v)],
                r.label[static_cast<std::size_t>(w)]);
    }
  }
}

TEST(Components, ChainConvergesByPointerJumping) {
  auto g = micg::graph::make_chain(4096);
  const auto r = micg::graph::parallel_components(g, exec4());
  EXPECT_EQ(r.num_components, 1);
  // Pointer jumping keeps rounds logarithmic-ish, far below n.
  EXPECT_LT(r.rounds, 64);
}

TEST(Components, WorksAcrossBackends) {
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("auto"), 0.01);
  for (backend b : {backend::omp_static, backend::cilk_holder,
                    backend::tbb_simple}) {
    const auto r = micg::graph::parallel_components(g, exec4(b));
    EXPECT_EQ(r.num_components, 1) << micg::rt::backend_name(b);
  }
}

// ------------------------------------------------------------ jones-plassmann

TEST(JonesPlassmann, ValidColoringNoConflictsEver) {
  auto g = micg::graph::make_erdos_renyi(3000, 10.0, 42);
  micg::color::jp_options opt;
  opt.ex = exec4();
  const auto r = micg::color::jones_plassmann_color(g, opt);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, r.color));
  for (auto c : r.conflicts_per_round) EXPECT_EQ(c, 0u);
  EXPECT_LE(r.num_colors, static_cast<int>(g.max_degree()) + 1);
}

TEST(JonesPlassmann, MoreRoundsThanIterative) {
  // The trade-off the ablation quantifies: JP needs many priority rounds;
  // speculation needs very few repair rounds.
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("hood"), 0.01);
  micg::color::jp_options jp;
  jp.ex = exec4();
  const auto rjp = micg::color::jones_plassmann_color(g, jp);
  micg::color::iterative_options it;
  it.ex = exec4();
  const auto rit = micg::color::iterative_color(g, it);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, rjp.color));
  EXPECT_GT(rjp.rounds, rit.rounds);
}

TEST(JonesPlassmann, DeterministicPerSeed) {
  auto g = micg::graph::make_grid_2d(20, 20);
  micg::color::jp_options opt;
  opt.ex = exec4();
  opt.ex.threads = 1;  // single thread: fully deterministic
  const auto a = micg::color::jones_plassmann_color(g, opt);
  const auto b = micg::color::jones_plassmann_color(g, opt);
  EXPECT_EQ(a.color, b.color);
  opt.seed = 99;
  const auto c = micg::color::jones_plassmann_color(g, opt);
  EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
}

TEST(JonesPlassmann, HandlesStructuredGraphs) {
  for (auto g : {micg::graph::make_complete(12),
                 micg::graph::make_star(40),
                 micg::graph::make_chain(200)}) {
    micg::color::jp_options opt;
    opt.ex = exec4(backend::tbb_simple);
    const auto r = micg::color::jones_plassmann_color(g, opt);
    EXPECT_TRUE(micg::color::is_valid_coloring(g, r.color));
  }
}

// ---------------------------------------------------------------- colored GS

TEST(GaussSeidel, ParallelMatchesSequentialExactly) {
  auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("msdoor"), 0.01);
  micg::color::iterative_options copt;
  copt.ex = exec4();
  const auto coloring = micg::color::iterative_color(g, copt);

  std::vector<double> state(static_cast<std::size_t>(g.num_vertices()));
  micg::xoshiro256ss rng(3);
  for (auto& x : state) x = rng.uniform();

  micg::irregular::gauss_seidel_options opt;
  opt.ex = exec4(backend::cilk_holder);
  opt.sweeps = 3;
  const auto par =
      micg::irregular::colored_gauss_seidel(g, coloring.color, state, opt);
  const auto seq = micg::irregular::gauss_seidel_seq(
      g, coloring.color, state, opt.sweeps, opt.self_weight);
  // Bit-exact: within a color class updates are independent, so thread
  // interleaving cannot change any arithmetic.
  EXPECT_EQ(par, seq);
}

TEST(GaussSeidel, SmoothsTowardsLocalAverage) {
  auto g = micg::graph::make_grid_2d(20, 20);
  const auto coloring = micg::color::greedy_color(g);
  std::vector<double> state(400, 0.0);
  state[210] = 400.0;
  micg::irregular::gauss_seidel_options opt;
  opt.ex = exec4();
  opt.sweeps = 50;
  const auto out =
      micg::irregular::colored_gauss_seidel(g, coloring.color, state, opt);
  // The spike must have spread: its height drops by >10x and neighbors
  // rise above zero.
  EXPECT_LT(out[210], 40.0);
  EXPECT_GT(out[209], 0.0);
}

TEST(GaussSeidel, RejectsInvalidColoring) {
  auto g = micg::graph::make_chain(4);
  std::vector<int> bad{1, 1, 1, 1};
  std::vector<double> state(4, 1.0);
  micg::irregular::gauss_seidel_options opt;
  EXPECT_THROW(
      micg::irregular::colored_gauss_seidel(g, bad, state, opt),
      micg::check_error);
}

TEST(GaussSeidel, ZeroSweepsIsIdentity) {
  auto g = micg::graph::make_cycle(8);
  const auto coloring = micg::color::greedy_color(g);
  std::vector<double> state{1, 2, 3, 4, 5, 6, 7, 8};
  micg::irregular::gauss_seidel_options opt;
  opt.sweeps = 0;
  const auto out =
      micg::irregular::colored_gauss_seidel(g, coloring.color, state, opt);
  EXPECT_EQ(out, state);
}

}  // namespace
