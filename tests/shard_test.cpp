// Unit tests for the sharding layers: the partition/remap machinery
// (graph/shard.hpp), the BSP execution primitives (rt/shard_exec.hpp),
// and small end-to-end runs of the sharded kernels. The broad
// differential-oracle coverage (all layouts x shard counts x generator
// families) lives in property_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "micg/bfs/seq.hpp"
#include "micg/bfs/sharded.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/shard.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/sharded_pagerank.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/shard_model.hpp"
#include "micg/rt/shard_exec.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::make_sharded;
using micg::graph::make_shard_plan;
using micg::graph::sharded_csr;

any_csr rmat_graph() {
  return any_csr(micg::graph::make_rmat(9, 8, 0.57, 0.19, 0.19, 7));
}

// ------------------------------------------------------------ shard_plan

TEST(ShardPlan, CoversVerticesAndBalancesEdges) {
  const any_csr g = rmat_graph();
  for (const int shards : {1, 2, 3, 4, 7, 16}) {
    const auto plan = make_shard_plan(g, shards);
    ASSERT_EQ(plan.shards(), shards);
    EXPECT_EQ(plan.starts.front(), 0);
    EXPECT_EQ(plan.starts.back(), g.num_vertices());
    for (int s = 0; s < shards; ++s) {
      EXPECT_LE(plan.starts[static_cast<std::size_t>(s)],
                plan.starts[static_cast<std::size_t>(s) + 1]);
    }
    // owner() agrees with the ranges.
    for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
      const int s = plan.owner(v);
      EXPECT_GE(v, plan.starts[static_cast<std::size_t>(s)]);
      EXPECT_LT(v, plan.starts[static_cast<std::size_t>(s) + 1]);
    }
  }
}

TEST(ShardPlan, EdgeBalanceWithinOneRow) {
  const any_csr g = rmat_graph();
  const int shards = 4;
  const auto sg = make_sharded(g, shards);
  // Each shard's owned adjacency entries are within max_degree of the
  // ideal share (rows are never split, so that is the tight bound).
  const std::int64_t ideal = g.num_directed_edges() / shards;
  for (int s = 0; s < shards; ++s) {
    EXPECT_NEAR(static_cast<double>(sg.part(s).owned_directed_edges),
                static_cast<double>(ideal),
                static_cast<double>(g.max_degree()) + 1.0);
  }
}

TEST(ShardPlan, RejectsBadCounts) {
  const any_csr g = rmat_graph();
  EXPECT_THROW(make_shard_plan(g, 0), micg::check_error);
  EXPECT_THROW(make_shard_plan(g, micg::graph::max_shards + 1),
               micg::check_error);
}

// ----------------------------------------------------------- sharded_csr

TEST(ShardedCsr, ValidatesAcrossFamiliesAndCounts) {
  using namespace micg::graph;
  const std::vector<any_csr> graphs = {
      any_csr(make_chain(100)),      any_csr(make_star(64)),
      any_csr(make_grid_2d(12, 9)),  rmat_graph(),
      any_csr(make_complete(17)),
  };
  for (const auto& g : graphs) {
    for (const int shards : {1, 2, 4, 7}) {
      const auto sg = make_sharded(g, shards);
      EXPECT_EQ(sg.num_vertices(), g.num_vertices());
      EXPECT_EQ(sg.num_edges(), g.num_edges());
      EXPECT_NO_THROW(sg.validate(g));
    }
  }
}

TEST(ShardedCsr, SingleShardHasNoCut) {
  const any_csr g = rmat_graph();
  const auto sg = make_sharded(g, 1);
  EXPECT_EQ(sg.cut_edges(), 0);
  EXPECT_EQ(sg.cut_fraction(), 0.0);
  EXPECT_EQ(sg.part(0).num_owned(), g.num_vertices());
  EXPECT_EQ(sg.part(0).num_local(), g.num_vertices());
}

TEST(ShardedCsr, EdgelessGraphSplitsEvenly) {
  // 10 isolated vertices: the edge balance falls back to a vertex split.
  micg::graph::basic_builder<std::int32_t, std::int32_t> b(10);
  const any_csr g = micg::graph::build_auto(std::move(b));
  const auto sg = make_sharded(g, 4);
  EXPECT_NO_THROW(sg.validate(g));
  std::int64_t covered = 0;
  for (int s = 0; s < 4; ++s) covered += sg.part(s).num_owned();
  EXPECT_EQ(covered, 10);
  EXPECT_EQ(sg.cut_edges(), 0);
}

TEST(ShardedCsr, RemapRoundTripsAndStaysMonotone) {
  const any_csr g = rmat_graph();
  const auto sg = make_sharded(g, 5);
  for (int s = 0; s < sg.shards(); ++s) {
    const auto& p = sg.part(s);
    std::int64_t prev = -1;
    for (std::int64_t lv = 0; lv < p.num_local(); ++lv) {
      const std::int64_t gv = p.global_of_local(lv);
      EXPECT_GT(gv, prev);
      prev = gv;
      EXPECT_EQ(p.local_of_global(gv), lv);
    }
  }
}

// --------------------------------------------------------- rt primitives

TEST(BspBarrier, HooksRunOncePerGeneration) {
  micg::rt::bsp_barrier barrier(4);
  std::atomic<int> hook_runs{0};
  std::atomic<int> sum{0};
  micg::rt::shard_group group(4, micg::rt::exec{});
  group.run([&](int s) {
    for (int round = 0; round < 50; ++round) {
      sum.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait(
          s == 0 ? std::function<void()>([&] {
            // Inside the hook every party is parked: all four increments
            // of this generation are visible and none of the next.
            EXPECT_EQ(sum.load(std::memory_order_relaxed) % 4, 0);
            hook_runs.fetch_add(1);
          })
                 : std::function<void()>());
    }
  });
  EXPECT_EQ(hook_runs.load(), 50);
}

TEST(MailboxGrid, SwapPublishesAndDrainClears) {
  micg::rt::mailbox_grid<int> mail(3, 2);
  mail.outbox(0, 2, 0).push_back(10);
  mail.outbox(0, 2, 1).push_back(11);
  mail.outbox(1, 2, 0).push_back(12);
  mail.outbox(1, 0, 0).push_back(99);
  mail.swap();
  EXPECT_EQ(mail.last_swap_messages(), 4u);

  std::vector<int> got;
  mail.drain(2, [&](int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12}));
  // Drained buffers are empty; undrained ones still hold their message.
  mail.drain(2, [&](int) { FAIL() << "buffers must be cleared"; });
  EXPECT_EQ(mail.inbox(1, 0, 0).size(), 1u);

  // Next generation: previously drained staging buffers come back empty.
  mail.outbox(2, 2, 1).push_back(7);
  mail.inbox(1, 0, 0).clear();
  mail.swap();
  EXPECT_EQ(mail.last_swap_messages(), 1u);
  got.clear();
  mail.drain(2, [&](int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{7}));
}

TEST(ShardGroup, RunsEveryShardAndPropagatesExceptions) {
  micg::rt::exec proto;
  proto.threads = 2;
  micg::rt::shard_group group(3, proto);
  std::vector<int> seen(3, 0);
  group.run([&](int s) { seen[static_cast<std::size_t>(s)] = s + 1; });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_THROW(group.run([&](int s) {
    MICG_CHECK(s != 2, "boom from shard 2");
  }),
               micg::check_error);
}

// -------------------------------------------------------- sharded kernels

TEST(ShardedKernels, BfsMatchesSeqOnDisconnectedGraph) {
  // erdos_renyi at low degree has many components; unreachable vertices
  // must stay -1 across shards.
  const any_csr g(micg::graph::make_erdos_renyi(400, 1.5, 11));
  const auto sg = make_sharded(g, 3);
  micg::bfs::sharded_bfs_options opt;
  opt.ex.threads = 2;
  const auto r = micg::bfs::sharded_bfs(sg, 0, opt);
  g.visit([&](const auto& cg) {
    const auto ref = micg::bfs::seq_bfs(cg, 0);
    ASSERT_EQ(r.level.size(), ref.level.size());
    for (std::size_t v = 0; v < ref.level.size(); ++v) {
      EXPECT_EQ(r.level[v], ref.level[v]) << "vertex " << v;
    }
    EXPECT_EQ(r.num_levels, ref.num_levels);
    EXPECT_EQ(r.reached, ref.reached);
    EXPECT_EQ(r.frontier_sizes, ref.frontier_sizes);
  });
}

TEST(ShardedKernels, PagerankTracksSingleShardTrajectory) {
  const any_csr g = rmat_graph();
  micg::irregular::pagerank_options opt;
  opt.ex.threads = 2;
  opt.tolerance = 1e-10;
  std::vector<double> ref;
  int ref_iters = 0;
  g.visit([&](const auto& cg) {
    const auto res = micg::irregular::pagerank(cg, opt);
    ref = res.rank;
    ref_iters = res.iterations;
  });
  for (const int shards : {2, 4, 7}) {
    const auto sg = make_sharded(g, shards);
    const auto res = micg::irregular::sharded_pagerank(sg, opt);
    EXPECT_EQ(res.iterations, ref_iters) << shards << " shards";
    ASSERT_EQ(res.rank.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v) {
      EXPECT_NEAR(res.rank[v], ref[v], 1e-12)
          << shards << " shards, vertex " << v;
    }
  }
}

// ------------------------------------------------------------ shard model

TEST(ShardModel, SpeedupPeaksAtSocketCountAndBarriersCapScaling) {
  const auto m = micg::model::machine_config::multi_socket();
  ASSERT_EQ(m.sockets, 4);
  // A round-heavy traversal: enough rounds that the linear barrier term
  // outweighs the shrinking exchange term past the socket count.
  micg::model::shard_workload w;
  w.directed_edges = 16.0 * 1024 * 1024;
  w.cut_fraction = 0.03;
  w.rounds = 50;
  const double s1 = micg::model::shard_model_speedup(m, w, 1);
  const double s4 = micg::model::shard_model_speedup(m, w, 4);
  const double s8 = micg::model::shard_model_speedup(m, w, 8);
  EXPECT_DOUBLE_EQ(s1, 1.0);
  EXPECT_GT(s4, 1.5);  // sockets add bandwidth
  EXPECT_LT(s8, s4);   // past the socket count only costs grow
  // A cut-free workload scales better than a heavily cut one.
  micg::model::shard_workload heavy = w;
  heavy.cut_fraction = 0.9;
  EXPECT_GT(micg::model::shard_model_speedup(m, w, 4),
            micg::model::shard_model_speedup(m, heavy, 4));
}

TEST(ShardModel, RejectsMalformedWorkloads) {
  const auto m = micg::model::machine_config::multi_socket();
  micg::model::shard_workload w;
  EXPECT_THROW(micg::model::shard_time(m, w, 0), micg::check_error);
  w.cut_fraction = 2.0;
  EXPECT_THROW(micg::model::shard_time(m, w, 2), micg::check_error);
}

}  // namespace
