// Golden-file regression tests for the CLI (docs/testing.md).
//
// Each case runs the installed `micg` binary on the committed fixture
// graph and compares its stdout — and, for the metrics cases, its
// micg.metrics.v1 JSON — against files under tests/golden/. Timing is the
// only intended nondeterminism, so comparison is modulo timing: elapsed
// "N ms" substrings are masked in stdout, and metrics documents are
// canonicalized by parsing them with obs::from_json, zeroing every timer
// and span duration, and re-serializing.
//
// To update the goldens after an intended output change:
//   MICG_UPDATE_GOLDENS=1 ./tests/golden_test    (or tools/update_goldens.sh)
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "micg/obs/emit.hpp"

namespace {

std::string golden_dir() { return MICG_GOLDEN_DIR; }
std::string cli_path() { return MICG_CLI_PATH; }

bool update_mode() {
  const char* v = std::getenv("MICG_UPDATE_GOLDENS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Run a shell command (from inside the golden directory, so fixture paths
/// in the output are relative) and capture its stdout. MICG_TUNE is
/// pinned to fixed so the goldens stay meaningful when the ambient
/// environment opts into auto-tuning (which may legitimately change the
/// reported BFS variant name, though never any result).
std::string run_cli(const std::string& args) {
  const std::string cmd = "cd '" + golden_dir() + "' && MICG_TUNE=fixed '" +
                          cli_path() + "' " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  char buf[4096];
  while (pipe != nullptr && fgets(buf, sizeof buf, pipe) != nullptr) {
    out += buf;
  }
  if (pipe != nullptr) {
    const int rc = pclose(pipe);
    EXPECT_EQ(rc, 0) << cmd << "\n" << out;
  }
  return out;
}

/// Mask elapsed-time substrings and drop the metrics-path line (it names a
/// temp file).
std::string normalize_stdout(std::string out) {
  static const std::regex ms_re(R"(\b[0-9]+(\.[0-9]+)? ms\b)");
  out = std::regex_replace(out, ms_re, "<ms> ms");
  std::istringstream in(out);
  std::ostringstream kept;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("wrote metrics to ", 0) == 0) continue;
    kept << line << "\n";
  }
  return kept.str();
}

/// Parse a metrics file and zero the fields whose values depend on the
/// clock: every timer and every span duration. Everything else (meta,
/// counters, gauges, span structure) must be deterministic at one thread.
std::string canonicalize_metrics(const std::string& json) {
  auto records = micg::obs::records_from_json(json);
  for (auto& rec : records) {
    for (auto& [name, seconds] : rec.timers) seconds = 0.0;
    for (auto& span : rec.spans) span.seconds = 0.0;
  }
  return micg::obs::to_json(records);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path
                         << " (run MICG_UPDATE_GOLDENS=1 to create it)";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << content;
}

/// Compare `actual` against the golden file, or rewrite it in update mode.
void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_dir() + "/" + name;
  if (update_mode()) {
    write_file(path, actual);
    SUCCEED() << "updated " << path;
    return;
  }
  EXPECT_EQ(actual, read_file(path))
      << "golden mismatch for " << name
      << " — if the change is intended, run MICG_UPDATE_GOLDENS=1 "
         "./tests/golden_test and review the diff";
}

TEST(Golden, InfoStdout) {
  check_golden("info_tiny.golden",
               normalize_stdout(run_cli("info tiny.mtx")));
}

TEST(Golden, BfsStdout) {
  check_golden(
      "bfs_tiny.golden",
      normalize_stdout(run_cli("bfs tiny.mtx --source 0 --threads 1")));
}

TEST(Golden, MsbfsStdout) {
  check_golden("msbfs_tiny.golden",
               normalize_stdout(run_cli(
                   "msbfs tiny.mtx --sources 8 --lanes 4 --threads 1")));
}

TEST(Golden, BcStdout) {
  check_golden(
      "bc_tiny.golden",
      normalize_stdout(run_cli("bc tiny.mtx --threads 1 --top 3")));
}

TEST(Golden, ColorStdout) {
  check_golden(
      "color_tiny.golden",
      normalize_stdout(run_cli("color tiny.mtx --threads 1")));
}

TEST(Golden, SsspStdout) {
  // Weights derive from (--weights seed, endpoints), so distances are a
  // pure function of the fixture and the flags; one thread pins bucket
  // traversal order (docs/workloads.md).
  check_golden("sssp_tiny.golden",
               normalize_stdout(run_cli(
                   "sssp tiny.mtx --source 0 --delta 16 --threads 1")));
}

TEST(Golden, CcStdout) {
  check_golden("cc_tiny.golden",
               normalize_stdout(run_cli("cc tiny.mtx --threads 1")));
}

struct metrics_case {
  const char* golden;
  const char* args;  ///< CLI invocation without the --metrics-json flag
};

class GoldenMetrics : public ::testing::TestWithParam<metrics_case> {};

TEST_P(GoldenMetrics, CanonicalJson) {
  const auto& [golden, args] = GetParam();
  // Name the scratch file after the golden: ctest runs each parameterized
  // case as its own process, and a shared path races under `ctest -j`.
  const std::string tmp =
      ::testing::TempDir() + "/micg_golden_" + golden + ".json";
  run_cli(std::string(args) + " --metrics-json '" + tmp + "'");
  check_golden(golden, canonicalize_metrics(read_file(tmp)));
  std::remove(tmp.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Cli, GoldenMetrics,
    ::testing::Values(
        metrics_case{"bfs_tiny.metrics.golden",
                     "bfs tiny.mtx --source 0 --threads 1"},
        metrics_case{"msbfs_tiny.metrics.golden",
                     "msbfs tiny.mtx --sources 8 --lanes 4 --threads 1"},
        metrics_case{"bc_tiny.metrics.golden",
                     "bc tiny.mtx --threads 1 --samples 6"},
        metrics_case{"sssp_tiny.metrics.golden",
                     "sssp tiny.mtx --source 0 --delta 16 --threads 1"},
        metrics_case{"cc_tiny.metrics.golden", "cc tiny.mtx --threads 1"}),
    [](const auto& info) {
      std::string n = info.param.golden;
      return n.substr(0, n.find('_'));
    });

}  // namespace
