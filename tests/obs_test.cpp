// Unit tests for the obs subsystem: counter merging under the thread
// pool, span nesting, snapshot shape, and the JSON round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "micg/obs/emit.hpp"
#include "micg/obs/obs.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/support/assert.hpp"

namespace {

std::uint64_t counter_value(const micg::obs::snapshot& s,
                            const std::string& name) {
  for (const auto& [k, v] : s.counters) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

// ------------------------------------------------------------- counters

TEST(ObsCounter, MergesPerWorkerSlots) {
  micg::obs::counter c("test");
  for (int w = 0; w < 200; ++w) c.add(w, static_cast<std::uint64_t>(w));
  std::uint64_t expect = 0;
  for (int w = 0; w < 200; ++w) expect += static_cast<std::uint64_t>(w);
  EXPECT_EQ(c.total(), expect);
  c.inc(-1);  // negative ids fold to slot 0 instead of invoking UB
  EXPECT_EQ(c.total(), expect + 1);
}

TEST(ObsCounter, IncIsExactlyAddOne) {
  // add(w, v) used to default v to 1, so `add(w)` — meaning "count one
  // event" — read as "add w". inc(w) is the unambiguous spelling; add()
  // now always takes an explicit amount.
  micg::obs::counter c("test");
  c.inc(3);
  EXPECT_EQ(c.total(), 1u);  // one event, regardless of the worker id
  c.add(3, 41);
  EXPECT_EQ(c.total(), 42u);
}

class ObsCounterUnderPool : public ::testing::TestWithParam<int> {};

TEST_P(ObsCounterUnderPool, ExactTotalAcrossWorkers) {
  const int workers = GetParam();
  auto& pool = micg::rt::thread_pool::global();
  pool.reserve(workers);

  micg::obs::recorder rec;
  micg::obs::counter& c = rec.get_counter("pool.items");
  constexpr std::uint64_t kPerWorker = 10000;
  pool.run(workers, [&](int w) {
    for (std::uint64_t i = 0; i < kPerWorker; ++i) c.inc(w);
  });
  EXPECT_EQ(c.total(), kPerWorker * static_cast<std::uint64_t>(workers));
  EXPECT_EQ(counter_value(rec.take(), "pool.items"),
            kPerWorker * static_cast<std::uint64_t>(workers));
}

INSTANTIATE_TEST_SUITE_P(Widths, ObsCounterUnderPool,
                         ::testing::Values(1, 4, 16));

TEST(ObsTimer, AccumulatesSeconds) {
  micg::obs::phase_timer t("test");
  t.add_seconds(0, 0.5);
  t.add_seconds(3, 0.25);
  EXPECT_NEAR(t.total_seconds(), 0.75, 1e-9);
}

// ---------------------------------------------------------------- spans

TEST(ObsSpan, RecordsNestingDepthAndValues) {
  micg::obs::recorder rec;
  {
    micg::obs::span outer = rec.start_span("outer", 7);
    outer.value("width", 3.0);
    {
      micg::obs::span inner = rec.start_span("inner");
      inner.value("k", 1.0);
    }  // inner finishes first
  }
  const auto snap = rec.take();
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans[0].name, "inner");
  EXPECT_EQ(snap.spans[0].index, -1);
  EXPECT_EQ(snap.spans[0].depth, 1);
  EXPECT_EQ(snap.spans[1].name, "outer");
  EXPECT_EQ(snap.spans[1].index, 7);
  EXPECT_EQ(snap.spans[1].depth, 0);
  ASSERT_EQ(snap.spans[1].values.size(), 1u);
  EXPECT_EQ(snap.spans[1].values[0].first, "width");
  EXPECT_EQ(snap.spans[1].values[0].second, 3.0);
}

TEST(ObsSpan, NullRecorderSpanIsNoop) {
  micg::obs::span s;  // default: no recorder
  s.value("ignored", 1.0);
  s.finish();  // must not crash
}

TEST(ObsSpan, MoveTransfersOwnership) {
  micg::obs::recorder rec;
  {
    micg::obs::span a = rec.start_span("phase");
    micg::obs::span b = std::move(a);
    a.finish();  // moved-from: no record
  }
  EXPECT_EQ(rec.take().spans.size(), 1u);
}

// --------------------------------------------------------------- global

TEST(ObsGlobal, ScopedInstallAndRestore) {
  EXPECT_EQ(micg::obs::recorder::global(), nullptr);
  micg::obs::recorder rec;
  {
    micg::obs::scoped_global guard(rec);
    EXPECT_EQ(micg::obs::recorder::global(), &rec);
  }
  EXPECT_EQ(micg::obs::recorder::global(), nullptr);
}

TEST(ObsGlobal, PoolPublishesRegionCounters) {
  micg::obs::recorder rec;
  auto& pool = micg::rt::thread_pool::global();
  pool.reserve(4);
  {
    micg::obs::scoped_global guard(rec);
    pool.run(4, [](int) {});
    pool.run(2, [](int) {});
  }
  const auto snap = rec.take();
  EXPECT_EQ(counter_value(snap, "rt.regions"), 2u);
  EXPECT_EQ(counter_value(snap, "rt.region_workers"), 6u);
}

// ----------------------------------------------------------- round trip

TEST(ObsEmit, JsonRoundTripsRecord) {
  micg::obs::recorder rec;
  rec.set_meta("kernel", "unit_test");
  rec.set_meta("quoted", "a\"b\\c\n");
  rec.get_counter("c.one").add(0, 42);
  rec.get_timer("t.one").add_seconds(0, 0.125);
  rec.set_value("v.one", -1.5);
  {
    micg::obs::span s = rec.start_span("phase", 3);
    s.value("width", 9.0);
  }
  const auto snap = rec.take();

  const auto parsed = micg::obs::from_json(micg::obs::to_json(snap));
  EXPECT_EQ(parsed.meta, snap.meta);
  EXPECT_EQ(parsed.counters, snap.counters);
  ASSERT_EQ(parsed.timers.size(), snap.timers.size());
  for (std::size_t i = 0; i < parsed.timers.size(); ++i) {
    EXPECT_EQ(parsed.timers[i].first, snap.timers[i].first);
    EXPECT_DOUBLE_EQ(parsed.timers[i].second, snap.timers[i].second);
  }
  EXPECT_EQ(parsed.values, snap.values);
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].name, "phase");
  EXPECT_EQ(parsed.spans[0].index, 3);
  EXPECT_EQ(parsed.spans[0].depth, 0);
  ASSERT_EQ(parsed.spans[0].values.size(), 1u);
  EXPECT_EQ(parsed.spans[0].values[0].first, "width");
  EXPECT_EQ(parsed.spans[0].values[0].second, 9.0);
}

TEST(ObsEmit, JsonRoundTripsMetricsFile) {
  micg::obs::recorder a;
  a.set_meta("run", "1");
  micg::obs::recorder b;
  b.set_meta("run", "2");
  b.get_counter("n").add(0, 7);

  const std::vector<micg::obs::snapshot> records{a.take(), b.take()};
  const auto parsed =
      micg::obs::records_from_json(micg::obs::to_json(records));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].meta, records[0].meta);
  EXPECT_EQ(parsed[1].counters, records[1].counters);
}

TEST(ObsEmit, RejectsMalformedInput) {
  EXPECT_THROW(micg::obs::from_json("{"), micg::check_error);
  EXPECT_THROW(micg::obs::from_json("{\"schema\": \"other.v9\"}"),
               micg::check_error);
  EXPECT_THROW(micg::obs::records_from_json("[]"), micg::check_error);
}

TEST(ObsEmit, CsvListsScalarsAndSpans) {
  micg::obs::recorder rec;
  rec.get_counter("c").add(0, 5);
  { micg::obs::span s = rec.start_span("p", 1); }
  const auto csv = micg::obs::to_csv(rec.take());
  EXPECT_NE(csv.find("counter,c,5"), std::string::npos);
  EXPECT_NE(csv.find("span,p,1"), std::string::npos);
}

// ---------------------------------------------------------------- reset

TEST(ObsRecorder, ResetDropsEverything) {
  micg::obs::recorder rec;
  rec.get_counter("c").inc(0);
  rec.set_meta("k", "v");
  rec.reset();
  const auto snap = rec.take();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.meta.empty());
  EXPECT_TRUE(snap.spans.empty());
}

}  // namespace
