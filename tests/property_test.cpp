// Property-based differential-oracle suite (docs/testing.md).
//
// One seeded sweep: every generator family x all three CSR layouts x the
// runtime backends, checked against the sequential oracles —
//   * every parallel BFS variant (layered, direction-optimizing, batched
//     multi-source) produces bfs::seq_bfs's levels exactly;
//   * every coloring algorithm passes color::verify on every backend;
//   * pagerank/spmv/heat match naive textbook references within 1e-12.
// The sweep seed comes from MICG_PROPERTY_SEED (default 48879); every
// assertion is wrapped in SCOPED_TRACE carrying the generator name and
// seed, so a CI failure line is reproducible locally with
//   MICG_PROPERTY_SEED=<seed> ./tests/property_test
//
// The final section pins the portable RNG's raw streams and generator
// fingerprints: the generators must draw only from support/rng.hpp
// (splitmix64/xoshiro/Lemire), never from libstdc++ distributions, so the
// same seed yields the same graph on every platform and standard library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "micg/bfs/direction.hpp"
#include "micg/bfs/landmark.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/msbfs.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/bfs/sharded.hpp"
#include "micg/bfs/sssp.hpp"
#include "micg/graph/components.hpp"
#include "micg/graph/weighted.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/jones_plassmann.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/shard.hpp"
#include "micg/irregular/heat.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/sharded_pagerank.hpp"
#include "micg/irregular/spmv.hpp"
#include "micg/support/rng.hpp"

namespace {

using micg::graph::csr32;
using micg::graph::csr64;
using micg::graph::csr_graph;

std::uint64_t property_seed() {
  if (const char* v = std::getenv("MICG_PROPERTY_SEED")) {
    return std::strtoull(v, nullptr, 10);
  }
  return 48879;
}

struct generated_graph {
  std::string name;
  csr_graph g;
};

/// The sweep's generator families, with seed-perturbed shapes so different
/// seeds explore different sizes, degrees and structures.
std::vector<generated_graph> generate_sweep(std::uint64_t seed) {
  using namespace micg::graph;
  micg::splitmix64 mix(seed);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(mix.next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  };
  std::vector<generated_graph> out;
  out.push_back({"chain", make_chain(pick(50, 300))});
  out.push_back({"star", make_star(pick(50, 300))});
  out.push_back({"kary_tree", make_kary_tree(pick(2, 4), pick(4, 6))});
  out.push_back({"grid_2d", make_grid_2d(pick(8, 24), pick(8, 24))});
  out.push_back({"erdos_renyi",
                 make_erdos_renyi(pick(200, 800), 1.0 + 5.0 * (seed % 3),
                                  seed)});
  out.push_back({"rmat", make_rmat(pick(8, 10), 8, 0.57, 0.19, 0.19, seed)});
  fem_params fp;
  fp.sx = static_cast<vertex_t>(pick(4, 8));
  fp.sy = static_cast<vertex_t>(pick(4, 8));
  fp.sz = static_cast<vertex_t>(pick(3, 6));
  fp.stencil_pairs = pick(3, 13);
  fp.hub_degree = 8;
  fp.num_hubs = 4;
  out.push_back({"fem_like", make_fem_like(fp)});
  return out;
}

/// Run `fn(g, layout_name)` for the graph in all three shipped layouts.
template <typename F>
void for_each_layout(const csr_graph& g, F&& fn) {
  fn(micg::graph::convert_csr<csr32>(g), "csr32");
  fn(g, "csr32e64");
  fn(micg::graph::convert_csr<csr64>(g), "csr64");
}

class PropertySweep : public ::testing::Test {
 protected:
  static std::uint64_t seed_;
  static std::vector<generated_graph> graphs_;
  static void SetUpTestSuite() {
    seed_ = property_seed();
    graphs_ = generate_sweep(seed_);
  }
  static std::string trace(const generated_graph& gg,
                           const char* layout = nullptr) {
    std::string t = "generator=" + gg.name +
                    " seed=" + std::to_string(seed_);
    if (layout != nullptr) t += std::string(" layout=") + layout;
    return t;
  }
};
std::uint64_t PropertySweep::seed_ = 0;
std::vector<generated_graph> PropertySweep::graphs_;

// ------------------------------------------------- BFS differential oracle

TEST_F(PropertySweep, ParallelBfsVariantsMatchSeq) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      using VId = typename std::decay_t<decltype(g)>::vertex_type;
      const auto n = g.num_vertices();
      for (const VId source :
           {static_cast<VId>(0), static_cast<VId>(n / 2)}) {
        const auto ref = micg::bfs::seq_bfs(g, source);
        for (const auto variant : micg::bfs::all_bfs_variants()) {
          SCOPED_TRACE(std::string("variant=") +
                       micg::bfs::bfs_variant_name(variant) +
                       " source=" + std::to_string(source));
          micg::bfs::parallel_bfs_options opt;
          opt.variant = variant;
          opt.ex.threads = 4;
          const auto r = micg::bfs::parallel_bfs(g, source, opt);
          ASSERT_EQ(r.level, ref.level);
          EXPECT_EQ(r.num_levels, ref.num_levels);
          EXPECT_EQ(r.reached, ref.reached);
        }
        for (const bool bitmap : {true, false}) {
          SCOPED_TRACE(std::string("variant=direction bitmap=") +
                       (bitmap ? "on" : "off") +
                       " source=" + std::to_string(source));
          micg::bfs::direction_options opt;
          opt.ex.threads = 4;
          opt.bitmap = bitmap;
          const auto r =
              micg::bfs::direction_optimizing_bfs(g, source, opt);
          ASSERT_EQ(r.level, ref.level);
        }
      }
    });
  }
}

TEST_F(PropertySweep, MsbfsLanesMatchSeqAcrossLaneCountsAndThreads) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      using VId = typename std::decay_t<decltype(g)>::vertex_type;
      const auto n = g.num_vertices();
      // 17 sources spanning the id range, with a duplicate pair: forces
      // batch tiling at every lane count and checks lane independence.
      std::vector<VId> sources;
      for (int i = 0; i < 16; ++i) {
        sources.push_back(static_cast<VId>(
            static_cast<std::int64_t>(i) * n / 16));
      }
      sources.push_back(sources[8]);
      for (const int lanes : {1, 3, 64}) {
        for (const int threads : {1, 4}) {
          SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                       " threads=" + std::to_string(threads));
          micg::bfs::msbfs_pool::options opt;
          opt.ex.threads = threads;
          opt.lanes = lanes;
          const micg::bfs::msbfs_pool pool(opt);
          const auto levels = pool.run_levels(
              g, std::span<const VId>(sources));
          ASSERT_EQ(levels.size(), sources.size());
          for (std::size_t s = 0; s < sources.size(); ++s) {
            const auto ref = micg::bfs::seq_bfs(g, sources[s]);
            ASSERT_EQ(levels[s], ref.level)
                << "source index " << s << " = " << sources[s];
          }
        }
      }
    });
  }
}

TEST_F(PropertySweep, MsbfsPoolTilesOver64SourcesMatchingSeq) {
  // Regression for the msbfs_pool tiling path: a batch list longer than
  // one 64-lane word must split into multiple batches whose lanes still
  // match a per-source seq_bfs exactly (including duplicate sources that
  // land in different batches).
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      using VId = typename std::decay_t<decltype(g)>::vertex_type;
      const auto n = g.num_vertices();
      std::vector<VId> sources;
      for (int i = 0; i < 70; ++i) {
        sources.push_back(static_cast<VId>(
            static_cast<std::int64_t>(i) * n / 70));
      }
      sources.push_back(sources[0]);   // duplicate across batch boundary
      sources.push_back(sources[65]);
      for (const int threads : {1, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        micg::bfs::msbfs_pool::options opt;
        opt.ex.threads = threads;
        opt.lanes = micg::bfs::msbfs_max_lanes;
        const micg::bfs::msbfs_pool pool(opt);
        const auto levels =
            pool.run_levels(g, std::span<const VId>(sources));
        ASSERT_EQ(levels.size(), sources.size());
        for (std::size_t s = 0; s < sources.size(); ++s) {
          const auto ref = micg::bfs::seq_bfs(g, sources[s]);
          ASSERT_EQ(levels[s], ref.level)
              << "source index " << s << " = " << sources[s];
        }
      }
    });
  }
}

// ---------------------------------------------- landmark distance bounds

TEST_F(PropertySweep, LandmarkBoundsBracketSeqDistances) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      using VId = typename std::decay_t<decltype(g)>::vertex_type;
      const auto n = static_cast<std::int64_t>(g.num_vertices());
      micg::bfs::landmark_options lo;
      lo.count = 8;
      lo.ex.threads = 4;
      const auto idx = micg::bfs::build_landmarks(g, lo);
      ASSERT_GE(idx.count(), 1);
      ASSERT_EQ(idx.num_vertices(), n);

      // Pivot rows are exactly the pivot's seq_bfs levels.
      const auto p0 = idx.pivots().front();
      const auto pref = micg::bfs::seq_bfs(g, static_cast<VId>(p0));
      for (std::int64_t v = 0; v < n; v += std::max<std::int64_t>(n / 7, 1)) {
        ASSERT_EQ(idx.pivot_level(0, v),
                  pref.level[static_cast<std::size_t>(v)]);
      }

      // Sampled pairs: the estimate must bracket the true distance and
      // its exact/disjoint claims must be right.
      const std::int64_t stride = std::max<std::int64_t>(n / 5, 1);
      for (std::int64_t u = 0; u < n; u += stride) {
        const auto ref = micg::bfs::seq_bfs(g, static_cast<VId>(u));
        for (std::int64_t v = 0; v < n; v += stride) {
          SCOPED_TRACE("u=" + std::to_string(u) + " v=" + std::to_string(v));
          const auto est = idx.estimate(u, v);
          const int d = ref.level[static_cast<std::size_t>(v)];
          if (est.disjoint) {
            EXPECT_EQ(d, -1);
            EXPECT_TRUE(est.exact);
          } else if (d >= 0) {
            if (est.upper >= 0) {
              EXPECT_LE(est.lower, d);
              EXPECT_GE(est.upper, d);
            }
            if (est.exact) {
              EXPECT_EQ(est.upper, d);
            }
          }
          if (u == v) {
            EXPECT_TRUE(est.exact);
            EXPECT_EQ(est.upper, 0);
          }
        }
      }
    });
  }
}

// ------------------------------------------------------- coloring oracles

TEST_F(PropertySweep, EveryColoringAlgorithmIsValidOnEveryBackend) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      const int bound = static_cast<int>(g.max_degree()) + 1;
      auto check = [&](const std::vector<int>& color, int num_colors,
                       const std::string& algo) {
        SCOPED_TRACE("algorithm=" + algo);
        EXPECT_TRUE(micg::color::is_valid_coloring(g, color));
        EXPECT_TRUE(micg::color::find_conflicts(g, color).empty());
        EXPECT_LE(num_colors, bound);
        if (g.num_edges() > 0) EXPECT_GE(num_colors, 2);
      };
      const auto greedy = micg::color::greedy_color(g);
      check(greedy.color, greedy.num_colors, "greedy");
      for (const auto b : micg::rt::all_backends()) {
        micg::color::iterative_options opt;
        opt.ex.kind = b;
        opt.ex.threads = 4;
        opt.ex.chunk = 64;
        const auto it = micg::color::iterative_color(g, opt);
        check(it.color, it.num_colors,
              std::string("iterative/") + micg::rt::backend_name(b));
      }
      micg::color::jp_options jp;
      jp.ex.threads = 4;
      jp.seed = seed_ + 1;
      const auto j = micg::color::jones_plassmann_color(g, jp);
      check(j.color, j.num_colors, "jones_plassmann");
    });
  }
}

// --------------------------------------------- irregular-kernel references

/// Textbook power iteration with the library's exact update rule
/// (dangling mass redistributed, L1 convergence test).
std::vector<double> naive_pagerank(const csr_graph& g, double damping,
                                   double tolerance, int max_iterations) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < max_iterations; ++it) {
    double dangling = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (g.degree(static_cast<std::int32_t>(v)) == 0) dangling += rank[v];
    }
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const auto w : g.neighbors(static_cast<std::int32_t>(v))) {
        sum += rank[static_cast<std::size_t>(w)] /
               static_cast<double>(g.degree(w));
      }
      next[v] = base + damping * sum;
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

std::vector<double> seeded_vector(std::size_t n, std::uint64_t seed) {
  micg::xoshiro256ss rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform();
  return x;
}

TEST_F(PropertySweep, PagerankMatchesNaiveReference) {
  for (const auto& gg : graphs_) {
    const auto ref = naive_pagerank(gg.g, 0.85, 1e-10, 50);
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      for (const auto kind :
           {micg::rt::backend::omp_dynamic, micg::rt::backend::tbb_simple}) {
        SCOPED_TRACE(trace(gg, layout) + " backend=" +
                     micg::rt::backend_name(kind));
        micg::irregular::pagerank_options opt;
        opt.ex.kind = kind;
        opt.ex.threads = 4;
        opt.tolerance = 1e-10;
        opt.max_iterations = 50;
        const auto r = micg::irregular::pagerank(g, opt);
        ASSERT_EQ(r.rank.size(), ref.size());
        for (std::size_t v = 0; v < ref.size(); ++v) {
          ASSERT_NEAR(r.rank[v], ref[v], 1e-12) << "vertex " << v;
        }
      }
    });
  }
}

TEST_F(PropertySweep, SpmvMatchesNaiveReference) {
  for (const auto& gg : graphs_) {
    const auto n = static_cast<std::size_t>(gg.g.num_vertices());
    const auto x = seeded_vector(n, seed_ + 17);
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      using VId = typename std::decay_t<decltype(g)>::vertex_type;
      for (const auto matrix : {micg::irregular::spmv_matrix::adjacency,
                                micg::irregular::spmv_matrix::random_walk}) {
        micg::rt::exec ex;
        ex.threads = 4;
        const auto y = micg::irregular::spmv(g, x, ex, matrix);
        ASSERT_EQ(y.size(), n);
        for (std::size_t v = 0; v < n; ++v) {
          const auto vid = static_cast<VId>(v);
          double sum = 0.0;
          for (const auto w : g.neighbors(vid)) {
            sum += x[static_cast<std::size_t>(w)];
          }
          if (matrix == micg::irregular::spmv_matrix::random_walk &&
              g.degree(vid) > 0) {
            sum /= static_cast<double>(g.degree(vid));
          }
          ASSERT_NEAR(y[v], sum, 1e-12) << "vertex " << v;
        }
      }
    });
  }
}

TEST_F(PropertySweep, HeatDiffusionMatchesNaiveReference) {
  for (const auto& gg : graphs_) {
    const auto n = static_cast<std::size_t>(gg.g.num_vertices());
    const auto init = seeded_vector(n, seed_ + 23);
    // Naive explicit Euler, double-buffered.
    std::vector<double> ref = init;
    std::vector<double> buf(n);
    const double alpha = 0.04;
    const int steps = 3;
    for (int s = 0; s < steps; ++s) {
      for (std::size_t v = 0; v < n; ++v) {
        double acc = 0.0;
        for (const auto w :
             gg.g.neighbors(static_cast<std::int32_t>(v))) {
          acc += ref[static_cast<std::size_t>(w)] - ref[v];
        }
        buf[v] = ref[v] + alpha * acc;
      }
      ref.swap(buf);
    }
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      micg::irregular::heat_options opt;
      opt.ex.threads = 4;
      opt.alpha = alpha;
      opt.steps = steps;
      const auto u = micg::irregular::heat_diffusion(g, init, opt);
      ASSERT_EQ(u.size(), n);
      for (std::size_t v = 0; v < n; ++v) {
        ASSERT_NEAR(u[v], ref[v], 1e-12) << "vertex " << v;
      }
    });
  }
}

// -------------------------------------- sharded execution vs single-shard

// Every generator family x all three layouts x shard counts {1, 2, 4, 7}:
// the bulk-synchronous sharded drivers must reproduce the single-shard
// kernels — BFS levels exactly, pagerank ranks within 1e-12 (the monotone
// local remap keeps per-row gather sums bit-identical; only the
// dangling/delta reductions reorder).

TEST_F(PropertySweep, ShardedBfsMatchesSeqAcrossShardCounts) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      const micg::graph::any_csr ag(g);
      const auto n = ag.num_vertices();
      for (const int shards : {1, 2, 4, 7}) {
        const auto sg = micg::graph::make_sharded(ag, shards);
        ASSERT_NO_THROW(sg.validate(ag)) << "shards=" << shards;
        for (const std::int64_t source : {std::int64_t{0}, n / 2}) {
          SCOPED_TRACE("shards=" + std::to_string(shards) +
                       " source=" + std::to_string(source));
          const auto ref = micg::bfs::seq_bfs(
              g, static_cast<
                     typename std::decay_t<decltype(g)>::vertex_type>(
                     source));
          micg::bfs::sharded_bfs_options opt;
          opt.ex.threads = 2;
          const auto r = micg::bfs::sharded_bfs(sg, source, opt);
          ASSERT_EQ(r.level, ref.level);
          EXPECT_EQ(r.num_levels, ref.num_levels);
          EXPECT_EQ(r.reached, ref.reached);
          EXPECT_EQ(r.frontier_sizes, ref.frontier_sizes);
        }
      }
    });
  }
}

TEST_F(PropertySweep, ShardedPagerankMatchesSingleShardAcrossShardCounts) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      // Fixed iteration count (tolerance no run can reach) so both paths
      // walk the same power-iteration trajectory step for step.
      micg::irregular::pagerank_options opt;
      opt.ex.threads = 2;
      opt.tolerance = 1e-300;
      opt.max_iterations = 30;
      const auto ref = micg::irregular::pagerank(g, opt);
      const micg::graph::any_csr ag(g);
      for (const int shards : {1, 2, 4, 7}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const auto sg = micg::graph::make_sharded(ag, shards);
        const auto r = micg::irregular::sharded_pagerank(sg, opt);
        EXPECT_EQ(r.iterations, ref.iterations);
        EXPECT_EQ(r.converged, ref.converged);
        ASSERT_EQ(r.rank.size(), ref.rank.size());
        for (std::size_t v = 0; v < ref.rank.size(); ++v) {
          ASSERT_NEAR(r.rank[v], ref.rank[v], 1e-12) << "vertex " << v;
        }
      }
    });
  }
}

// ------------------------------------- weighted workloads (SSSP and CC)

// Delta-stepping is exact for ANY bucket width (bfs/sssp.hpp): every
// family x every layout x (backend, threads) combos x deltas spanning
// Dijkstra-with-buckets (1) to Bellman-Ford (2^20) must reproduce the
// sequential Dijkstra oracle's int64 distances EXACTLY — integer weights,
// EXPECT_EQ, no tolerance.
TEST_F(PropertySweep, DeltaSteppingMatchesDijkstraAcrossBackendsAndDeltas) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      using VId = typename std::decay_t<decltype(g)>::vertex_type;
      micg::graph::weight_params wp;
      wp.seed = seed_ + 31;
      const auto w = micg::graph::generate_weights(g, wp);
      ASSERT_NO_THROW(micg::graph::validate_weights(
          g, std::span<const micg::graph::weight_t>(w)));
      const auto source = static_cast<VId>(g.num_vertices() / 2);
      const auto ref = micg::bfs::seq_dijkstra(
          g, source, std::span<const micg::graph::weight_t>(w));
      struct combo {
        micg::rt::backend kind;
        int threads;
      };
      for (const combo c : {combo{micg::rt::backend::omp_dynamic, 1},
                            combo{micg::rt::backend::omp_dynamic, 4},
                            combo{micg::rt::backend::tbb_simple, 4}}) {
        for (const std::int64_t delta :
             {std::int64_t{1}, std::int64_t{7}, std::int64_t{1} << 20}) {
          SCOPED_TRACE(std::string("backend=") +
                       micg::rt::backend_name(c.kind) +
                       " threads=" + std::to_string(c.threads) +
                       " delta=" + std::to_string(delta));
          micg::bfs::sssp_options opt;
          opt.ex.kind = c.kind;
          opt.ex.threads = c.threads;
          opt.delta = delta;
          const auto r = micg::bfs::delta_stepping_sssp(
              g, source, std::span<const micg::graph::weight_t>(w), opt);
          ASSERT_EQ(r.dist, ref);
          EXPECT_EQ(r.delta, delta);
          EXPECT_GE(r.buckets, 1);
        }
      }
    });
  }
}

// The knob invariance the api layer relies on: whatever
// tune::pick_sssp_delta would choose, and whatever order buckets are
// drained in across thread counts, the distance vector is one fixed
// function of (graph, weights, source).
TEST_F(PropertySweep, SsspDistancesInvariantAcrossDeltaAndThreads) {
  for (const auto& gg : graphs_) {
    SCOPED_TRACE(trace(gg));
    micg::graph::weight_params wp;
    wp.seed = seed_ + 37;
    wp.max_weight = 31;  // narrow range: many ties, adversarial ordering
    const auto w = micg::graph::generate_weights(gg.g, wp);
    const auto source =
        static_cast<std::int32_t>(gg.g.num_vertices() / 3);
    std::vector<std::int64_t> first;
    for (const std::int64_t delta : {std::int64_t{1}, std::int64_t{5},
                                     std::int64_t{64}}) {
      for (const int threads : {1, 3, 4}) {
        SCOPED_TRACE("delta=" + std::to_string(delta) +
                     " threads=" + std::to_string(threads));
        micg::bfs::sssp_options opt;
        opt.ex.threads = threads;
        opt.delta = delta;
        const auto r = micg::bfs::delta_stepping_sssp(
            gg.g, source, std::span<const micg::graph::weight_t>(w), opt);
        if (first.empty()) {
          first = r.dist;
        } else {
          ASSERT_EQ(r.dist, first);
        }
      }
    }
  }
}

/// Sequential union-find with the same canonical labeling the parallel
/// kernel promises: label[v] = smallest vertex id in v's component.
template <class G>
std::vector<typename G::vertex_type> union_find_labels(const G& g) {
  using VId = typename G::vertex_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::size_t> parent(n);
  for (std::size_t v = 0; v < n; ++v) parent[v] = v;
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto u : g.neighbors(static_cast<VId>(v))) {
      const auto a = find(v);
      const auto b = find(static_cast<std::size_t>(u));
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  // Ascending scan: the first vertex hitting a root is the component's
  // smallest member, i.e. the canonical label.
  std::vector<VId> label(n);
  std::vector<VId> canon(n, VId{-1});
  for (std::size_t v = 0; v < n; ++v) {
    const auto r = find(v);
    if (canon[r] < 0) canon[r] = static_cast<VId>(v);
    label[v] = canon[r];
  }
  return label;
}

TEST_F(PropertySweep, ParallelComponentsMatchUnionFindOracle) {
  for (const auto& gg : graphs_) {
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(trace(gg, layout));
      const auto ref = union_find_labels(g);
      std::size_t expected = 0;
      for (std::size_t v = 0; v < ref.size(); ++v) {
        if (ref[v] == static_cast<std::int64_t>(v)) ++expected;
      }
      for (const auto kind :
           {micg::rt::backend::omp_dynamic, micg::rt::backend::tbb_simple}) {
        for (const int threads : {1, 4}) {
          SCOPED_TRACE(std::string("backend=") +
                       micg::rt::backend_name(kind) +
                       " threads=" + std::to_string(threads));
          micg::rt::exec ex;
          ex.kind = kind;
          ex.threads = threads;
          const auto r = micg::graph::parallel_components(g, ex);
          ASSERT_EQ(r.label, ref);
          EXPECT_EQ(static_cast<std::size_t>(r.num_components), expected);
        }
      }
    });
  }
}

// The weight stream is a pure function of {seed, endpoint pair}: equal in
// every layout (the oracle equality above depends on it) and across
// regeneration — the property the serving layer's compaction-stable
// weighted snapshots rest on.
TEST_F(PropertySweep, WeightStreamIsLayoutInvariantAndSymmetric) {
  for (const auto& gg : graphs_) {
    SCOPED_TRACE(trace(gg));
    micg::graph::weight_params wp;
    wp.seed = seed_ + 41;
    const auto ref = micg::graph::generate_weights(gg.g, wp);
    for_each_layout(gg.g, [&](const auto& g, const char* layout) {
      SCOPED_TRACE(std::string("layout=") + layout);
      const auto w = micg::graph::generate_weights(g, wp);
      ASSERT_EQ(w, ref);
      ASSERT_NO_THROW(micg::graph::validate_weights(
          g, std::span<const micg::graph::weight_t>(w)));
    });
    // A different seed must actually move the stream.
    micg::graph::weight_params other = wp;
    other.seed = wp.seed + 1;
    if (gg.g.num_directed_edges() > 0) {
      EXPECT_NE(micg::graph::generate_weights(gg.g, other), ref);
    }
  }
}

// ------------------------------------------------ portable-RNG lock-in

// Raw stream pins: these values are the output of the repo's own
// splitmix64/xoshiro256**/Lemire implementations, which depend on no
// standard-library distribution. If any of these change, seeded graphs
// (and every golden file derived from them) silently change too.
TEST(RngLockIn, Splitmix64Stream) {
  micg::splitmix64 sm(42);
  EXPECT_EQ(sm.next(), 13679457532755275413ULL);
  EXPECT_EQ(sm.next(), 2949826092126892291ULL);
  EXPECT_EQ(sm.next(), 5139283748462763858ULL);
}

TEST(RngLockIn, Xoshiro256Stream) {
  micg::xoshiro256ss x(7);
  EXPECT_EQ(x.next(), 12923355070828475994ULL);
  EXPECT_EQ(x.next(), 5142052590334782674ULL);
  EXPECT_EQ(x.below(1000), 839u);
  EXPECT_EQ(x.below(1000), 981u);
  EXPECT_DOUBLE_EQ(x.uniform(), 0.99086027883306826);
}

std::uint64_t fnv1a(std::span<const std::int32_t> values) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto v : values) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(RngLockIn, SeededGeneratorsAreStable) {
  const auto er = micg::graph::make_erdos_renyi(500, 5.0, 99);
  EXPECT_EQ(er.num_directed_edges(), 2474);
  EXPECT_EQ(fnv1a(er.adj()), 14348883548823013793ULL);
  const auto rm = micg::graph::make_rmat(9, 8, 0.57, 0.19, 0.19, 99);
  EXPECT_EQ(rm.num_vertices(), 512);
  EXPECT_EQ(rm.num_directed_edges(), 5506);
  EXPECT_EQ(fnv1a(rm.adj()), 3245604257454180762ULL);
}

// Weight-stream pins: edge weights are one splitmix64 step over the
// seeded endpoint-pair hash (graph/weighted.hpp). If any of these change,
// every weighted golden and BENCH_sssp.json figure silently changes too.
// Failures reproduce locally with MICG_PROPERTY_SEED=<seed> (the weighted
// sweep above); these raw pins are seed-independent.
TEST(RngLockIn, WeightStreamIsStable) {
  const micg::graph::weight_params wp;  // seed=1, range [1, 255]
  EXPECT_EQ(micg::graph::edge_weight(wp, 0, 1), 162);
  EXPECT_EQ(micg::graph::edge_weight(wp, 1, 0), 162);  // symmetric by def.
  EXPECT_EQ(micg::graph::edge_weight(wp, 0, 2), 206);
  EXPECT_EQ(micg::graph::edge_weight(wp, 123456789, 987654321), 71);
  micg::graph::weight_params other = wp;
  other.seed = 2;
  EXPECT_EQ(micg::graph::edge_weight(other, 0, 1), 209);

  const auto er = micg::graph::make_erdos_renyi(500, 5.0, 99);
  const auto w = micg::graph::generate_weights(er, wp);
  ASSERT_EQ(w.size(), 2474u);
  EXPECT_EQ(fnv1a(std::span<const std::int32_t>(w)),
            546347147370484235ULL);
}

TEST(RngLockIn, SameSeedSameGraphDifferentSeedDifferentGraph) {
  const auto a = micg::graph::make_erdos_renyi(400, 6.0, 5);
  const auto b = micg::graph::make_erdos_renyi(400, 6.0, 5);
  const auto c = micg::graph::make_erdos_renyi(400, 6.0, 6);
  EXPECT_EQ(fnv1a(a.adj()), fnv1a(b.adj()));
  EXPECT_NE(fnv1a(a.adj()), fnv1a(c.adj()));
}

}  // namespace
