// Concurrency stress tests: hammer the lock-free and low-level structures
// with oversubscribed thread counts and adversarial interleavings. These
// are the tests that catch memory-ordering bugs the functional suites
// miss (CP.9: use tools/tests to validate concurrent code).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "micg/bfs/bag.hpp"
#include "micg/bfs/block_queue.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/generators.hpp"
#include "micg/rt/barrier.hpp"
#include "micg/rt/cilk_for.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/rt/ws_deque.hpp"
#include "micg/support/cacheline.hpp"
#include "micg/support/rng.hpp"

namespace {

using micg::graph::vertex_t;
using micg::rt::thread_pool;

// Oversubscription level: far more threads than this machine has cores,
// mirroring the paper's 121-threads-on-31-cores regime.
constexpr int kStressThreads = 16;
constexpr int kStressRounds = 30;

TEST(Stress, WsDequeOwnerVsManyThieves) {
  // Repeated rounds with randomized push/pop bursts against thieves.
  thread_pool pool(kStressThreads);
  for (int round = 0; round < kStressRounds; ++round) {
    micg::rt::ws_deque<std::int64_t> d;
    constexpr std::int64_t kItems = 4000;
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> taken{0};
    pool.run(kStressThreads, [&](int w) {
      micg::xoshiro256ss rng(
          static_cast<std::uint64_t>(w) * 7919 + round);
      if (w == 0) {
        std::int64_t pushed = 0;
        std::int64_t local = 0;
        while (pushed < kItems) {
          // Bursty owner: push a few, pop a few.
          const auto burst =
              static_cast<std::int64_t>(1 + rng.below(16));
          for (std::int64_t i = 0; i < burst && pushed < kItems; ++i) {
            d.push(++pushed);
          }
          if (rng.below(2) == 0) {
            if (auto v = d.pop()) {
              local += *v;
              taken.fetch_add(1);
            }
          }
        }
        while (auto v = d.pop()) {
          local += *v;
          taken.fetch_add(1);
        }
        sum.fetch_add(local);
      } else {
        std::int64_t local = 0;
        while (taken.load(std::memory_order_relaxed) < kItems) {
          if (auto v = d.steal()) {
            local += *v;
            taken.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
        sum.fetch_add(local);
      }
    });
    ASSERT_EQ(sum.load(), kItems * (kItems + 1) / 2) << "round " << round;
  }
}

TEST(Stress, SchedulerRandomForkTrees) {
  thread_pool pool(kStressThreads);
  micg::rt::task_scheduler sched(pool, kStressThreads);
  for (int round = 0; round < kStressRounds; ++round) {
    std::atomic<std::int64_t> leaves{0};
    // Irregular fork tree: arity varies by node, depth 6.
    std::function<void(std::uint64_t, int)> tree = [&](std::uint64_t seed,
                                                       int depth) {
      if (depth == 0) {
        leaves.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      micg::splitmix64 sm(seed);
      const int arity = 1 + static_cast<int>(sm.next() % 3);
      micg::rt::task_group g(sched);
      for (int c = 0; c < arity; ++c) {
        const std::uint64_t child_seed = sm.next();
        g.spawn([&, child_seed, depth] { tree(child_seed, depth - 1); });
      }
      g.wait();
    };
    std::int64_t expect = 0;
    std::function<std::int64_t(std::uint64_t, int)> count =
        [&](std::uint64_t seed, int depth) -> std::int64_t {
      if (depth == 0) return 1;
      micg::splitmix64 sm(seed);
      const int arity = 1 + static_cast<int>(sm.next() % 3);
      std::int64_t total = 0;
      for (int c = 0; c < arity; ++c) total += count(sm.next(), depth - 1);
      return total;
    };
    expect = count(static_cast<std::uint64_t>(round), 6);
    sched.run([&] { tree(static_cast<std::uint64_t>(round), 6); });
    ASSERT_EQ(leaves.load(), expect) << "round " << round;
  }
}

TEST(Stress, CilkForNestedInsideCilkFor) {
  thread_pool pool(8);
  micg::rt::task_scheduler sched(pool, 8);
  std::vector<std::atomic<int>> hits(64 * 64);
  sched.run([&] {
    micg::rt::cilk_for(sched, 0, 64, 4,
                       [&](std::int64_t ob, std::int64_t oe, int) {
                         for (std::int64_t o = ob; o < oe; ++o) {
                           micg::rt::cilk_for(
                               sched, 0, 64, 8,
                               [&, o](std::int64_t ib, std::int64_t ie,
                                      int) {
                                 for (std::int64_t i = ib; i < ie; ++i) {
                                   hits[static_cast<std::size_t>(o * 64 +
                                                                 i)]
                                       .fetch_add(1);
                                 }
                               });
                         }
                       });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Stress, BlockQueueManyWritersManyBlocksizes) {
  thread_pool pool(kStressThreads);
  for (int block : {1, 3, 7, 32}) {
    constexpr vertex_t kPer = 2000;
    micg::bfs::block_queue q(
        static_cast<std::size_t>(kStressThreads) * kPer +
            static_cast<std::size_t>(kStressThreads * block) + 64,
        block, kStressThreads);
    pool.run(kStressThreads, [&](int w) {
      for (vertex_t i = 0; i < kPer; ++i) {
        q.push(w, static_cast<vertex_t>(w) * kPer + i);
      }
    });
    q.flush_all();
    ASSERT_EQ(q.count_valid(),
              static_cast<std::size_t>(kStressThreads) * kPer)
        << "block " << block;
    // Sum check: every value exactly once.
    std::int64_t sum = 0;
    for (auto v : q.raw()) {
      if (v != micg::graph::invalid_vertex) sum += v;
    }
    const std::int64_t total = static_cast<std::int64_t>(kStressThreads) *
                               kPer;
    ASSERT_EQ(sum, total * (total - 1) / 2);
  }
}

TEST(Stress, BarrierManyThreadsManyPhases) {
  thread_pool pool(kStressThreads);
  micg::rt::sense_barrier barrier(kStressThreads);
  std::vector<micg::padded<int>> phase(kStressThreads);
  std::atomic<bool> skew{false};
  pool.run(kStressThreads, [&](int w) {
    for (int p = 0; p < 200; ++p) {
      phase[static_cast<std::size_t>(w)].value = p;
      barrier.arrive_and_wait();
      // All threads must be at the same phase now.
      for (int u = 0; u < kStressThreads; ++u) {
        if (phase[static_cast<std::size_t>(u)].value < p) skew.store(true);
      }
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(skew.load());
}

TEST(Stress, ColoringUnderHeavyOversubscription) {
  // 16 threads on (possibly) 1 core, many rounds, result always valid.
  auto g = micg::graph::make_erdos_renyi(5000, 20.0, 777);
  for (auto kind : {micg::rt::backend::omp_dynamic,
                    micg::rt::backend::cilk_holder,
                    micg::rt::backend::tbb_simple}) {
    micg::color::iterative_options opt;
    opt.ex.kind = kind;
    opt.ex.threads = kStressThreads;
    opt.ex.chunk = 8;  // tiny chunks maximize interleaving
    const auto r = micg::color::iterative_color(g, opt);
    ASSERT_TRUE(micg::color::is_valid_coloring(g, r.color))
        << micg::rt::backend_name(kind);
  }
}

TEST(Stress, BfsAllVariantsTinyBlocks) {
  auto g = micg::graph::make_rmat(12, 8, 0.57, 0.19, 0.19, 31);
  vertex_t src = 0;
  while (g.degree(src) == 0) ++src;
  const auto ref = micg::bfs::seq_bfs(g, src);
  for (auto variant : micg::bfs::all_bfs_variants()) {
    micg::bfs::parallel_bfs_options opt;
    opt.variant = variant;
    opt.ex.threads = kStressThreads;
    opt.ex.chunk = 4;
    opt.block = 2;  // adversarial: maximal atomic traffic
    opt.bag_grain = 4;
    const auto r = micg::bfs::parallel_bfs(g, src, opt);
    ASSERT_EQ(r.level, ref.level) << micg::bfs::bfs_variant_name(variant);
  }
}

TEST(Stress, BagConcurrentPerWorkerInsertAndMerge) {
  thread_pool pool(8);
  micg::rt::task_scheduler sched(pool, 8);
  for (int round = 0; round < 10; ++round) {
    std::vector<micg::bfs::vertex_bag> bags;
    for (int t = 0; t < 8; ++t) bags.emplace_back(8);
    sched.run([&] {
      micg::rt::cilk_for(sched, 0, 8000, 50,
                         [&](std::int64_t b, std::int64_t e, int worker) {
                           for (std::int64_t i = b; i < e; ++i) {
                             bags[static_cast<std::size_t>(worker)].insert(
                                 static_cast<vertex_t>(i));
                           }
                         });
    });
    micg::bfs::vertex_bag merged(8);
    std::size_t total = 0;
    for (auto& b : bags) {
      total += b.size();
      merged.absorb(std::move(b));
    }
    ASSERT_EQ(total, 8000u);
    ASSERT_EQ(merged.size(), 8000u);
    std::vector<bool> seen(8000, false);
    merged.for_each([&](vertex_t v) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
    });
  }
}

}  // namespace
