// Unit tests for the micg::api layer: the JSON document type, the shared
// CLI parsing helpers, and the request/response structs every front end
// (CLI flags, wire JSON, direct struct use) funnels through.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "micg/api/api.hpp"
#include "micg/api/json.hpp"
#include "micg/api/parse.hpp"
#include "micg/graph/generators.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::api::arg_parser;
using micg::api::json;
using micg::api::json_array;
using micg::api::json_object;

micg::graph::any_csr grid() {
  return micg::graph::to_narrowest(micg::graph::make_grid_2d(8, 8));
}

// ---------------------------------------------------------------------------
// json

TEST(ApiJson, ParseScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(json::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(ApiJson, Int64RoundTripExact) {
  const std::int64_t big = 9007199254740993;  // not representable in double
  EXPECT_EQ(json::parse(std::to_string(big)).as_int(), big);
  EXPECT_EQ(json(big).dump(), std::to_string(big));
}

TEST(ApiJson, ObjectPreservesInsertionOrder) {
  json v(json_object{{"b", json(1)}, {"a", json(2)}});
  EXPECT_EQ(v.dump(), "{\"b\":1,\"a\":2}");
  // parse/dump round trip is byte-stable
  EXPECT_EQ(json::parse(v.dump()).dump(), v.dump());
}

TEST(ApiJson, MalformedInputsThrow) {
  const char* bad[] = {
      "",      "{",        "[1,",      "tru",        "\"unterminated",
      "01",    "1e",       "{\"a\"}",  "{\"a\":1,}", "[1 2]",
      "nul",   "\"\\x\"",  "{1:2}",    "1 2",        "{\"a\":}",
  };
  for (const char* s : bad) {
    EXPECT_THROW((void)json::parse(s), micg::check_error) << s;
  }
}

TEST(ApiJson, RejectsTrailingGarbageAndDeepNesting) {
  EXPECT_THROW((void)json::parse("{} x"), micg::check_error);
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)json::parse(deep), micg::check_error);
  EXPECT_NO_THROW((void)json::parse(deep, 128));
}

TEST(ApiJson, CheckedAccessorsThrowOnMismatch) {
  const json v = json::parse("{\"a\": [1, 2]}");
  EXPECT_THROW((void)v.as_int(), micg::check_error);
  EXPECT_THROW((void)v.at("missing"), micg::check_error);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
  EXPECT_THROW((void)v.at("a").as_object(), micg::check_error);
}

TEST(ApiJson, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(json(std::numeric_limits<double>::infinity()).dump(), "null");
}

// ---------------------------------------------------------------------------
// parse helpers

TEST(ApiParse, StrictInt) {
  EXPECT_EQ(micg::api::parse_int("123"), 123);
  EXPECT_EQ(micg::api::parse_int("-7"), -7);
  EXPECT_THROW((void)micg::api::parse_int("12abc"), micg::api::usage_error);
  EXPECT_THROW((void)micg::api::parse_int(""), micg::api::usage_error);
  EXPECT_THROW((void)micg::api::parse_int("1.5"), micg::api::usage_error);
  EXPECT_THROW((void)micg::api::parse_int_in("9", 1, 8, "x"),
               micg::api::usage_error);
}

TEST(ApiParse, StrictDouble) {
  EXPECT_DOUBLE_EQ(micg::api::parse_double("2.5"), 2.5);
  EXPECT_THROW((void)micg::api::parse_double("2.5x"),
               micg::api::usage_error);
  EXPECT_THROW((void)micg::api::parse_double("inf"), micg::api::usage_error);
}

TEST(ApiParse, ArgParserSplitsFlagsAndPositionals) {
  const arg_parser args(
      std::vector<std::string>{"file.mtx", "--threads", "4", "-o", "out.micg",
                               "--graph", "a", "--graph", "b"});
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "file.mtx");
  EXPECT_EQ(args.flag_int("threads", 1), 4);
  EXPECT_EQ(args.flag("out", ""), "out.micg");
  EXPECT_EQ(args.flag_all("graph"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(args.has_flag("missing"));
}

TEST(ApiParse, FlagNeedsValueIsAUsageError) {
  EXPECT_THROW(arg_parser(std::vector<std::string>{"--threads"}),
               micg::api::usage_error);
  EXPECT_THROW(arg_parser(std::vector<std::string>{"x", "-o"}),
               micg::api::usage_error);
}

TEST(ApiParse, LastFlagOccurrenceWins) {
  const arg_parser args(
      std::vector<std::string>{"--threads", "2", "--threads", "8"});
  EXPECT_EQ(args.flag_int("threads", 1), 8);
}

TEST(ApiParse, BadFlagNumberNamesTheFlag) {
  const arg_parser args(std::vector<std::string>{"--threads", "4x"});
  try {
    (void)args.flag_int("threads", 1);
    FAIL() << "expected usage_error";
  } catch (const micg::api::usage_error& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos);
  }
}

TEST(ApiParse, GraphFormatFromPath) {
  EXPECT_EQ(micg::api::graph_format_from_path("a/b.mtx"),
            micg::api::graph_format::matrix_market);
  EXPECT_EQ(micg::api::graph_format_from_path("g.micg"),
            micg::api::graph_format::binary);
  EXPECT_THROW((void)micg::api::graph_format_from_path("g.txt"),
               micg::api::usage_error);
}

// ---------------------------------------------------------------------------
// status envelope

TEST(ApiStatus, NamesRoundTrip) {
  using micg::api::status;
  for (status s : {status::ok, status::bad_request, status::not_found,
                   status::too_large, status::overloaded,
                   status::deadline_exceeded, status::shutting_down,
                   status::internal}) {
    EXPECT_EQ(micg::api::status_from_name(micg::api::status_name(s)), s);
  }
  EXPECT_THROW((void)micg::api::status_from_name("nope"), micg::check_error);
}

// ---------------------------------------------------------------------------
// requests: flags and wire JSON parse into identical structs

TEST(ApiRequest, BfsFlagAndJsonPathsAgree) {
  const arg_parser args(std::vector<std::string>{
      "g.mtx", "--source", "3", "--threads", "2", "--variant",
      "OpenMP-Queue", "--block", "16"});
  const auto from_args = micg::api::bfs_request_from_args(args);
  const auto from_json = micg::api::bfs_request_from_json(json::parse(
      R"({"source":3,"threads":2,"variant":"OpenMP-Queue","block":16})"));
  EXPECT_EQ(from_args.source, from_json.source);
  EXPECT_EQ(from_args.ex.threads, from_json.ex.threads);
  EXPECT_EQ(from_args.variant, from_json.variant);
  EXPECT_EQ(from_args.block, from_json.block);
}

TEST(ApiRequest, DefaultsMatchHistoricalCli) {
  const arg_parser empty(std::vector<std::string>{});
  const auto bfs = micg::api::bfs_request_from_args(empty);
  EXPECT_EQ(bfs.ex.threads, 4);
  EXPECT_EQ(bfs.variant, "OpenMP-Block-relaxed");
  EXPECT_EQ(bfs.block, 32);
  EXPECT_EQ(bfs.source, -1);  // resolves to |V|/2 at run()
  const auto color = micg::api::color_request_from_args(empty);
  EXPECT_EQ(color.ex.chunk, 100);
  EXPECT_EQ(color.ex.backend, "OpenMP-dynamic");
  const auto msbfs = micg::api::msbfs_request_from_args(empty);
  EXPECT_EQ(msbfs.sources, 64);
  EXPECT_EQ(msbfs.lanes, 64);
  const auto bc = micg::api::bc_request_from_args(empty);
  EXPECT_TRUE(bc.batched);
  EXPECT_EQ(bc.top, 5);
}

TEST(ApiRequest, UnknownJsonFieldsAreIgnored) {
  EXPECT_NO_THROW((void)micg::api::bfs_request_from_json(
      json::parse(R"({"source":1,"future_field":true})")));
}

TEST(ApiRequest, DistRequestParsesAndDefaults) {
  const auto full = micg::api::dist_request_from_json(
      json::parse(R"({"source":3,"target":9,"exact":true})"));
  EXPECT_EQ(full.source, 3);
  EXPECT_EQ(full.target, 9);
  EXPECT_TRUE(full.exact);
  const auto defaults = micg::api::dist_request_from_json(json::parse("{}"));
  EXPECT_EQ(defaults.source, -1);  // resolves to |V|/2 serving-side
  EXPECT_EQ(defaults.target, 0);
  EXPECT_FALSE(defaults.exact);
  EXPECT_THROW((void)micg::api::dist_request_from_json(
                   json::parse(R"({"target":"nine"})")),
               micg::check_error);
}

TEST(ApiRequest, DistResponseSerializesBoundsOnlyWhenApproximate) {
  micg::api::dist_response exact;
  exact.source = 0;
  exact.target = 5;
  exact.distance = 5;
  const json je = micg::api::to_json(exact);
  EXPECT_EQ(je.at("distance").as_int(), 5);
  EXPECT_FALSE(je.at("approximate").as_bool());
  EXPECT_EQ(je.find("lower"), nullptr);
  EXPECT_EQ(je.find("upper"), nullptr);

  micg::api::dist_response approx = exact;
  approx.approximate = true;
  approx.lower = 3;
  approx.upper = 5;
  approx.landmarks = 16;
  const json ja = micg::api::to_json(approx);
  EXPECT_TRUE(ja.at("approximate").as_bool());
  EXPECT_EQ(ja.at("lower").as_int(), 3);
  EXPECT_EQ(ja.at("upper").as_int(), 5);
  EXPECT_EQ(ja.at("landmarks").as_int(), 16);
}

TEST(ApiRequest, WrongTypedJsonFieldThrows) {
  EXPECT_THROW((void)micg::api::bfs_request_from_json(
                   json::parse(R"({"source":"zero"})")),
               micg::check_error);
  EXPECT_THROW((void)micg::api::bfs_request_from_json(json::parse("[1]")),
               micg::check_error);
}

// ---------------------------------------------------------------------------
// run(): validation and correctness on a known graph

TEST(ApiRun, InfoMatchesGraph) {
  const auto g = grid();
  const auto r = micg::api::run(g, micg::api::info_request{});
  EXPECT_EQ(r.num_vertices, 64);
  EXPECT_EQ(r.num_edges, 112);
  EXPECT_EQ(r.components, 1);
  EXPECT_EQ(r.min_degree, 2);
  EXPECT_EQ(r.max_degree, 4);
  EXPECT_EQ(r.layout, "csr32");
  // Default shard report: one trivial shard, no cut, unversioned.
  EXPECT_EQ(r.shards, 1);
  ASSERT_EQ(r.shard_vertices.size(), 1u);
  EXPECT_EQ(r.shard_vertices[0], 64);
  ASSERT_EQ(r.shard_edges.size(), 1u);
  EXPECT_EQ(r.shard_edges[0], 224);  // directed adjacency entries
  EXPECT_EQ(r.cut_edges, 0);
  EXPECT_EQ(r.epoch, -1);
}

TEST(ApiRun, InfoShardReportIsConsistent) {
  const auto g = grid();
  micg::api::info_request req;
  req.shards = 4;
  const auto r = micg::api::run(g, req);
  EXPECT_EQ(r.shards, 4);
  ASSERT_EQ(r.shard_vertices.size(), 4u);
  ASSERT_EQ(r.shard_edges.size(), 4u);
  std::int64_t vtx = 0, adj = 0;
  for (int s = 0; s < 4; ++s) {
    vtx += r.shard_vertices[static_cast<std::size_t>(s)];
    adj += r.shard_edges[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(vtx, r.num_vertices);
  EXPECT_EQ(adj, 2 * r.num_edges);
  EXPECT_GT(r.cut_edges, 0);  // a split grid always cuts rows
  EXPECT_GT(r.cut_fraction, 0.0);
  EXPECT_LE(r.cut_fraction, 1.0);
  // JSON round trip carries the report; "epoch" only appears versioned.
  const json j = micg::api::to_json(r);
  EXPECT_EQ(j.at("shards").as_int(), 4);
  EXPECT_EQ(j.at("shard_vertices").as_array().size(), 4u);
  EXPECT_EQ(j.find("epoch"), nullptr);
  micg::api::info_request bad;
  bad.shards = 0;
  EXPECT_THROW((void)micg::api::run(g, bad), micg::check_error);
}

TEST(ApiRun, ShardedExecMatchesPlainThroughDispatch) {
  const auto g = grid();
  micg::api::run_context ctx;
  const json plain_bfs = micg::api::dispatch_query(
      g, "bfs", json::parse(R"({"threads":1})"), ctx);
  const json shard_bfs = micg::api::dispatch_query(
      g, "bfs", json::parse(R"({"threads":2,"shards":3})"), ctx);
  EXPECT_EQ(shard_bfs.at("variant").as_string(), "BSP-sharded");
  EXPECT_EQ(shard_bfs.at("num_levels").as_int(),
            plain_bfs.at("num_levels").as_int());
  EXPECT_EQ(shard_bfs.at("reached").as_int(),
            plain_bfs.at("reached").as_int());

  const json plain_pr = micg::api::dispatch_query(
      g, "pagerank", json::parse(R"({"threads":1})"), ctx);
  const json shard_pr = micg::api::dispatch_query(
      g, "pagerank", json::parse(R"({"threads":2,"shards":3})"), ctx);
  EXPECT_EQ(shard_pr.at("iterations").as_int(),
            plain_pr.at("iterations").as_int());
  EXPECT_EQ(shard_pr.at("top").as_array().size(),
            plain_pr.at("top").as_array().size());
}

TEST(ApiRun, BfsDefaultsAndTargets) {
  const auto g = grid();
  micg::api::bfs_request req;
  req.ex.threads = 1;
  req.targets = {0, 63};
  const auto r = micg::api::run(g, req);
  EXPECT_EQ(r.source, 32);  // |V|/2 default
  EXPECT_EQ(r.reached, 64);
  ASSERT_EQ(r.target_levels.size(), 2u);
  EXPECT_GE(r.target_levels[0], 0);
}

TEST(ApiRun, BfsValidatesInput) {
  const auto g = grid();
  micg::api::bfs_request req;
  req.source = 64;
  EXPECT_THROW((void)micg::api::run(g, req), micg::check_error);
  req.source = 0;
  req.targets = {-1};
  EXPECT_THROW((void)micg::api::run(g, req), micg::check_error);
  req.targets.clear();
  req.ex.threads = 0;
  EXPECT_THROW((void)micg::api::run(g, req), micg::check_error);
  req.ex.threads = 1;
  req.variant = "not-a-variant";
  EXPECT_THROW((void)micg::api::run(g, req), micg::check_error);
}

TEST(ApiRun, MsbfsExplicitSourceListOverridesCount) {
  const auto g = grid();
  micg::api::msbfs_request req;
  req.ex.threads = 1;
  req.lanes = 4;
  req.sources = 64;
  req.source_list = {0, 1, 2};
  const auto r = micg::api::run(g, req);
  EXPECT_EQ(r.sources, 3);
  EXPECT_EQ(r.batches, 1);
  EXPECT_EQ(r.reached_total, 3 * 64);
}

TEST(ApiRun, PagerankValidatesAndRanks) {
  const auto g = micg::graph::to_narrowest(micg::graph::make_star(16));
  micg::api::pagerank_request req;
  req.ex.threads = 1;
  req.top = 1;
  const auto r = micg::api::run(g, req);
  ASSERT_EQ(r.top.size(), 1u);
  EXPECT_EQ(r.top[0].vertex, 0);  // the hub dominates a star
  req.damping = 1.5;
  EXPECT_THROW((void)micg::api::run(g, req), micg::check_error);
}

// ---------------------------------------------------------------------------
// dispatch_query: the server's single entry point equals the direct path

TEST(ApiDispatch, MatchesDirectRun) {
  const auto g = grid();
  const json params = json::parse(R"({"threads":1,"source":0})");
  const json via_dispatch = micg::api::dispatch_query(g, "bfs", params);
  micg::api::bfs_request req = micg::api::bfs_request_from_json(params);
  const json direct = micg::api::to_json(micg::api::run(g, req));
  EXPECT_EQ(via_dispatch.dump(), direct.dump());
}

TEST(ApiDispatch, UnknownOpThrows) {
  EXPECT_FALSE(micg::api::is_query_op("frobnicate"));
  EXPECT_THROW(
      (void)micg::api::dispatch_query(grid(), "frobnicate", json()),
      micg::check_error);
}

}  // namespace
