// Tests for the extension algorithms: coloring orderings, betweenness
// centrality, parent-array BFS with Graph500 validation, and binary I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "micg/bfs/centrality.hpp"
#include "micg/bfs/parents.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/ordering.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/permute.hpp"
#include "micg/graph/suite.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

// ---------------------------------------------------------------- orderings

TEST(Ordering, LargestFirstSortsByDegree) {
  auto g = micg::graph::make_star(10);  // center degree 9, leaves 1
  const auto order = micg::color::largest_first_order(g);
  ASSERT_EQ(order.size(), 10u);
  EXPECT_EQ(order[0], 0);  // the hub first
  std::vector<vertex_t> check(order.begin(), order.end());
  EXPECT_TRUE(micg::graph::is_permutation(check));
}

TEST(Ordering, AllOrdersArePermutations) {
  auto g = micg::graph::make_erdos_renyi(500, 8.0, 3);
  for (auto order : {micg::color::largest_first_order(g),
                     micg::color::smallest_last_order(g),
                     micg::color::incidence_order(g)}) {
    std::vector<vertex_t> check(order.begin(), order.end());
    EXPECT_TRUE(micg::graph::is_permutation(check));
  }
}

TEST(Ordering, DegeneracyOfKnownGraphs) {
  EXPECT_EQ(micg::color::degeneracy(micg::graph::make_chain(10)), 1);
  EXPECT_EQ(micg::color::degeneracy(micg::graph::make_cycle(10)), 2);
  EXPECT_EQ(micg::color::degeneracy(micg::graph::make_complete(6)), 5);
  EXPECT_EQ(micg::color::degeneracy(micg::graph::make_star(20)), 1);
  EXPECT_EQ(micg::color::degeneracy(micg::graph::make_grid_2d(8, 8)), 2);
}

TEST(Ordering, SmallestLastBoundsColorsByDegeneracy) {
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    auto g = micg::graph::make_erdos_renyi(800, 10.0, seed);
    const int d = micg::color::degeneracy(g);
    const auto order = micg::color::smallest_last_order(g);
    const auto c = micg::color::greedy_color(g, order);
    EXPECT_TRUE(micg::color::is_valid_coloring(g, c.color));
    EXPECT_LE(c.num_colors, d + 1);
    // And degeneracy+1 <= Delta+1, usually much less.
    EXPECT_LE(d, static_cast<int>(g.max_degree()));
  }
}

TEST(Ordering, DegreeOrdersHelpOnSkewedGraphs) {
  // On RMAT graphs, smallest-last typically beats natural order.
  auto g = micg::graph::make_rmat(11, 8, 0.57, 0.19, 0.19, 7);
  const auto natural = micg::color::greedy_color(g);
  const auto sl = micg::color::greedy_color(
      g, micg::color::smallest_last_order(g));
  EXPECT_LE(sl.num_colors, natural.num_colors);
}

TEST(Ordering, IncidenceStartsConnected) {
  auto g = micg::graph::make_grid_2d(10, 10);
  const auto order = micg::color::incidence_order(g);
  // After the first vertex, every visited vertex (within the component)
  // must touch an earlier one.
  std::vector<bool> seen(static_cast<std::size_t>(g.num_vertices()),
                         false);
  seen[static_cast<std::size_t>(order[0])] = true;
  for (std::size_t i = 1; i < order.size(); ++i) {
    bool touches = false;
    for (vertex_t w : g.neighbors(order[i])) {
      if (seen[static_cast<std::size_t>(w)]) touches = true;
    }
    EXPECT_TRUE(touches) << "vertex " << order[i] << " at position " << i;
    seen[static_cast<std::size_t>(order[i])] = true;
  }
}

// --------------------------------------------------------------- centrality

TEST(Centrality, PathGraphClosedForm) {
  // Path 0-1-2-3-4: BC(v) = #pairs whose shortest path passes through v:
  // vertex 2 carries pairs {0,1}x{3,4} plus {1}x{3},... closed form for
  // path P_n: bc(i) = i*(n-1-i).
  auto g = micg::graph::make_chain(5);
  const auto bc = micg::bfs::betweenness_centrality_seq(g);
  ASSERT_EQ(bc.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(bc[static_cast<std::size_t>(i)],
                static_cast<double>(i * (4 - i)), 1e-9)
        << i;
  }
}

TEST(Centrality, StarCenterCarriesAllPairs) {
  auto g = micg::graph::make_star(8);  // 7 leaves
  const auto bc = micg::bfs::betweenness_centrality_seq(g);
  // Center: C(7,2) = 21 leaf pairs; leaves 0.
  EXPECT_NEAR(bc[0], 21.0, 1e-9);
  for (std::size_t v = 1; v < bc.size(); ++v) EXPECT_NEAR(bc[v], 0.0, 1e-9);
}

TEST(Centrality, CompleteGraphAllZero) {
  auto g = micg::graph::make_complete(6);
  for (double x : micg::bfs::betweenness_centrality_seq(g)) {
    EXPECT_NEAR(x, 0.0, 1e-9);
  }
}

TEST(Centrality, ParallelMatchesSequential) {
  auto g = micg::graph::make_erdos_renyi(300, 6.0, 17);
  const auto seq = micg::bfs::betweenness_centrality_seq(g);
  for (auto kind : {micg::rt::backend::omp_dynamic,
                    micg::rt::backend::cilk_holder,
                    micg::rt::backend::tbb_simple}) {
    micg::bfs::centrality_options opt;
    opt.ex.kind = kind;
    opt.ex.threads = 4;
    opt.ex.chunk = 8;
    const auto par = micg::bfs::betweenness_centrality(g, opt);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t v = 0; v < seq.size(); ++v) {
      ASSERT_NEAR(par[v], seq[v], 1e-6) << "vertex " << v;
    }
  }
}

TEST(Centrality, SampledApproximatesExact) {
  auto g = micg::graph::make_grid_2d(16, 16);
  const auto exact = micg::bfs::betweenness_centrality_seq(g);
  micg::bfs::centrality_options opt;
  opt.ex.threads = 2;
  opt.sample_sources = 64;  // every fourth vertex
  const auto approx = micg::bfs::betweenness_centrality(g, opt);
  // Same argmax region: compare total mass within 30%.
  const double me = std::accumulate(exact.begin(), exact.end(), 0.0);
  const double ma = std::accumulate(approx.begin(), approx.end(), 0.0);
  EXPECT_NEAR(ma / me, 1.0, 0.3);
}

// ------------------------------------------------------------- parent BFS

TEST(ParentBfs, ValidTreeOnVariousGraphs) {
  const struct {
    csr_graph g;
    vertex_t source;
  } cases[] = {
      {micg::graph::make_chain(100), 42},
      {micg::graph::make_grid_2d(20, 20), 7},
      {micg::graph::make_rmat(10, 8, 0.57, 0.19, 0.19, 3), 1},
      {micg::graph::make_kary_tree(3, 6), 0},
  };
  for (const auto& c : cases) {
    vertex_t src = c.source;
    while (c.g.degree(src) == 0) ++src;
    micg::bfs::parallel_bfs_options opt;
    opt.ex.threads = 4;
    opt.block = 16;
    const auto r = micg::bfs::parallel_bfs_parents(c.g, src, opt);
    EXPECT_TRUE(micg::bfs::validate_parent_tree(c.g, src, r.parent));
    EXPECT_EQ(r.parent[static_cast<std::size_t>(src)], src);
  }
}

TEST(ParentBfs, ValidatorRejectsCorruptTrees) {
  auto g = micg::graph::make_grid_2d(10, 10);
  micg::bfs::parallel_bfs_options opt;
  opt.ex.threads = 2;
  auto r = micg::bfs::parallel_bfs_parents(g, 0, opt);
  ASSERT_TRUE(micg::bfs::validate_parent_tree(g, 0, r.parent));
  auto bad = r.parent;
  bad[50] = 99;  // non-adjacent parent
  EXPECT_FALSE(micg::bfs::validate_parent_tree(g, 0, bad));
  bad = r.parent;
  bad[0] = 1;  // source must self-parent
  EXPECT_FALSE(micg::bfs::validate_parent_tree(g, 0, bad));
  bad = r.parent;
  bad[99] = micg::graph::invalid_vertex;  // reached vertex marked unreached
  EXPECT_FALSE(micg::bfs::validate_parent_tree(g, 0, bad));
}

TEST(ParentBfs, UnreachedStayUnparented) {
  micg::graph::graph_builder b(5);
  b.add_edge(0, 1);
  b.add_edge(3, 4);
  auto g = std::move(b).build();
  micg::bfs::parallel_bfs_options opt;
  opt.ex.threads = 2;
  const auto r = micg::bfs::parallel_bfs_parents(g, 0, opt);
  EXPECT_EQ(r.reached, 2u);
  EXPECT_EQ(r.parent[3], micg::graph::invalid_vertex);
  EXPECT_TRUE(micg::bfs::validate_parent_tree(g, 0, r.parent));
}

// ---------------------------------------------------------------- binary io

TEST(IoBinary, RoundTrip) {
  auto g = micg::graph::make_erdos_renyi(500, 7.0, 23);
  std::stringstream ss;
  micg::graph::write_binary(ss, g);
  const auto h = micg::graph::read_binary(ss);
  EXPECT_EQ(g.xadj(), h.xadj());
  EXPECT_EQ(g.adj(), h.adj());
}

TEST(IoBinary, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(micg::graph::read_binary(empty), micg::check_error);
  std::stringstream wrong("not a graph at all, definitely not magic");
  EXPECT_THROW(micg::graph::read_binary(wrong), micg::check_error);
  EXPECT_THROW(micg::graph::load_binary("/nonexistent/x.micg"),
               micg::check_error);
}

TEST(IoBinary, TruncatedStreamDetected) {
  auto g = micg::graph::make_grid_2d(10, 10);
  std::stringstream ss;
  micg::graph::write_binary(ss, g);
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() / 2));
  EXPECT_THROW(micg::graph::read_binary(cut), micg::check_error);
}

}  // namespace
