// Race-hunting workload for the sharded BSP machinery, built and run
// under -fsanitize=thread by the TSan CI job (alongside tsan_stress_test
// and serve_stress_test).
//
// The interleavings that matter here are the ones the sharding design
// claims are safe by construction: many workers appending to exclusive
// mailbox staging buffers while other shards drain the published
// generation, the swap running inside the barrier hook with every other
// shard parked, barrier generation reuse across hundreds of rounds, and
// whole sharded kernels racing each other from independent driver
// threads. Workloads shrink under MICG_TSAN so the suite stays fast
// despite the ~10x sanitizer slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "micg/bfs/seq.hpp"
#include "micg/bfs/sharded.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/shard.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/sharded_pagerank.hpp"
#include "micg/rt/exec.hpp"
#include "micg/rt/shard_exec.hpp"
#include "micg/support/tsan.hpp"

namespace {

#if MICG_TSAN
constexpr int kRounds = 40;
constexpr int kKernelRepeats = 2;
constexpr int kGraphScale = 8;
#else
constexpr int kRounds = 200;
constexpr int kKernelRepeats = 4;
constexpr int kGraphScale = 9;
#endif

// Hammer the exchange protocol itself: every round, every worker of every
// shard stages messages to every other shard; one barrier publishes, the
// drain sums, a second barrier fences reuse. Any missing happens-before
// edge between a staging push_back and the consumer's read is a TSan
// report; any lost or duplicated message breaks the checksum.
TEST(ShardStress, ExchangeChurnAcrossRoundsAndWorkers) {
  const int shards = 4;
  micg::rt::exec proto;
  proto.threads = 3;
  micg::rt::shard_group group(shards, proto);
  micg::rt::mailbox_grid<std::int64_t> mail(shards, proto.threads);
  std::vector<std::int64_t> received(static_cast<std::size_t>(shards), 0);
  std::atomic<std::int64_t> total{0};

  group.run([&](int s) {
    micg::rt::exec ex = group.shard_exec(s);
    for (int round = 0; round < kRounds; ++round) {
      // Each worker mails (worker+1) copies of a tagged payload to every
      // peer shard; items-per-round varies so buffers grow and shrink.
      micg::rt::for_range(
          ex, static_cast<std::int64_t>(ex.threads),
          [&](std::int64_t b, std::int64_t e, int worker) {
            for (std::int64_t i = b; i < e; ++i) {
              for (int t = 0; t < shards; ++t) {
                if (t == s) continue;
                for (int k = 0; k <= worker % 3; ++k) {
                  mail.outbox(s, t, worker).push_back(
                      s * 1000 + t + round % 7);
                }
              }
            }
          });
      group.barrier().arrive_and_wait(
          s == 0 ? std::function<void()>([&] { mail.swap(); })
                 : std::function<void()>());
      std::int64_t sum = 0;
      mail.drain(s, [&](std::int64_t v) { sum += v; });
      received[static_cast<std::size_t>(s)] += sum;
      total.fetch_add(sum, std::memory_order_relaxed);
      group.barrier().arrive_and_wait();  // fence drained buffers
    }
  });

  std::int64_t check = 0;
  for (const std::int64_t r : received) check += r;
  EXPECT_EQ(check, total.load());
  EXPECT_GT(check, 0);
}

// Barrier generation reuse with a rotating hook registrant: every shard
// takes turns owning the swap hook, so the hook vector is written and
// cleared from different threads across generations.
TEST(ShardStress, BarrierHookRotation) {
  const int shards = 5;
  micg::rt::shard_group group(shards, micg::rt::exec{});
  std::vector<int> hook_owner(static_cast<std::size_t>(kRounds), -1);
  group.run([&](int s) {
    for (int round = 0; round < kRounds; ++round) {
      const bool owns = round % shards == s;
      group.barrier().arrive_and_wait(
          owns ? std::function<void()>([&, round, s] {
            hook_owner[static_cast<std::size_t>(round)] = s;
          })
               : std::function<void()>());
      // Every shard observes the hook's write after the barrier.
      EXPECT_EQ(hook_owner[static_cast<std::size_t>(round)],
                round % shards);
    }
  });
}

// Whole kernels under contention: independent driver threads each run a
// complete sharded BFS / pagerank (private shard_groups, pools and
// mailboxes) against shared read-only sharded_csr views, and the results
// must still match the sequential oracles.
TEST(ShardStress, ConcurrentShardedKernelsStayCorrect) {
  const micg::graph::any_csr g(
      micg::graph::make_rmat(kGraphScale, 8, 0.57, 0.19, 0.19, 1234));
  const auto sg3 = micg::graph::make_sharded(g, 3);
  const auto sg4 = micg::graph::make_sharded(g, 4);

  std::vector<int> ref_level;
  g.visit([&](const auto& cg) { ref_level = micg::bfs::seq_bfs(cg, 0).level; });
  micg::irregular::pagerank_options popt;
  popt.ex.threads = 2;
  popt.tolerance = 1e-300;
  popt.max_iterations = 10;
  std::vector<double> ref_rank;
  g.visit([&](const auto& cg) {
    ref_rank = micg::irregular::pagerank(cg, popt).rank;
  });

  std::atomic<int> failures{0};
  auto bfs_driver = [&](const micg::graph::sharded_csr& sg) {
    micg::bfs::sharded_bfs_options opt;
    opt.ex.threads = 2;
    for (int i = 0; i < kKernelRepeats; ++i) {
      if (micg::bfs::sharded_bfs(sg, 0, opt).level != ref_level) {
        failures.fetch_add(1);
      }
    }
  };
  auto pr_driver = [&](const micg::graph::sharded_csr& sg) {
    for (int i = 0; i < kKernelRepeats; ++i) {
      const auto r = micg::irregular::sharded_pagerank(sg, popt);
      for (std::size_t v = 0; v < ref_rank.size(); ++v) {
        if (std::abs(r.rank[v] - ref_rank[v]) > 1e-12) {
          failures.fetch_add(1);
          break;
        }
      }
    }
  };

  std::vector<std::thread> drivers;
  drivers.emplace_back(bfs_driver, std::cref(sg3));
  drivers.emplace_back(bfs_driver, std::cref(sg4));
  drivers.emplace_back(pr_driver, std::cref(sg3));
  drivers.emplace_back(pr_driver, std::cref(sg4));
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
