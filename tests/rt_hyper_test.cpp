// Tests for the hyperobject reducers, parallel_reduce, and the TBB-style
// pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "micg/rt/hyperobject.hpp"
#include "micg/rt/loop.hpp"
#include "micg/rt/parallel_reduce.hpp"
#include "micg/rt/pipeline.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::rt::thread_pool;

// ------------------------------------------------------------- hyperobject

TEST(Reducer, OpaddSumsAcrossWorkers) {
  thread_pool pool(4);
  micg::rt::reducer_opadd<std::int64_t> sum(4);
  micg::rt::omp_parallel_for(pool, 4, 100000,
                             {micg::rt::omp_schedule::dynamic, 256},
                             [&](std::int64_t b, std::int64_t e, int) {
                               std::int64_t local = 0;
                               for (std::int64_t i = b; i < e; ++i) {
                                 local += i;
                               }
                               sum.combine(local);
                             });
  EXPECT_EQ(sum.get(), 99999LL * 100000LL / 2);
}

TEST(Reducer, CustomMonoid) {
  thread_pool pool(4);
  micg::rt::reducer<int, micg::rt::min_monoid<int>> rmin(
      4, micg::rt::min_monoid<int>{1 << 30});
  micg::rt::omp_parallel_for(pool, 4, 10000,
                             {micg::rt::omp_schedule::dynamic, 64},
                             [&](std::int64_t b, std::int64_t e, int) {
                               for (std::int64_t i = b; i < e; ++i) {
                                 rmin.combine(
                                     static_cast<int>((i * 7919) % 100003));
                               }
                             });
  // 7919 is coprime with 100003, i ranges over 10000 values; compute the
  // true minimum for comparison.
  int expect = 1 << 30;
  for (std::int64_t i = 0; i < 10000; ++i) {
    expect = std::min(expect, static_cast<int>((i * 7919) % 100003));
  }
  EXPECT_EQ(rmin.get(), expect);
}

TEST(Reducer, ClearResetsViews) {
  thread_pool pool(2);
  micg::rt::reducer_opadd<int> sum(2);
  pool.run(1, [&](int) { sum.combine(5); });
  EXPECT_EQ(sum.get(), 5);
  sum.clear();
  EXPECT_EQ(sum.get(), 0);
}

TEST(Reducer, AppendCollectsEverything) {
  thread_pool pool(4);
  micg::rt::reducer_append<int> bag(4);
  micg::rt::omp_parallel_for(pool, 4, 1000,
                             {micg::rt::omp_schedule::dynamic, 16},
                             [&](std::int64_t b, std::int64_t e, int) {
                               for (std::int64_t i = b; i < e; ++i) {
                                 bag.view().push_back(static_cast<int>(i));
                               }
                             });
  auto all = bag.get();
  EXPECT_EQ(all.size(), 1000u);
  std::set<int> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(OrderedListReducer, RecoversSequentialOrder) {
  thread_pool pool(4);
  micg::rt::ordered_list_reducer<std::string> list(4);
  micg::rt::omp_parallel_for(pool, 4, 100,
                             {micg::rt::omp_schedule::dynamic, 4},
                             [&](std::int64_t b, std::int64_t e, int) {
                               for (std::int64_t i = b; i < e; ++i) {
                                 list.append(i, "item" + std::to_string(i));
                               }
                             });
  const auto out = list.get();
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], "item" + std::to_string(i));
  }
}

// --------------------------------------------------------- parallel_reduce

TEST(ParallelReduce, SumMatchesSerial) {
  micg::rt::exec e;
  e.kind = micg::rt::backend::omp_dynamic;
  e.threads = 4;
  e.chunk = 128;
  const auto total = micg::rt::parallel_sum<std::int64_t>(
      e, 50000, [](std::int64_t b, std::int64_t en) {
        std::int64_t s = 0;
        for (std::int64_t i = b; i < en; ++i) s += i * i;
        return s;
      });
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < 50000; ++i) expect += i * i;
  EXPECT_EQ(total, expect);
}

TEST(ParallelReduce, MaxWithCustomOp) {
  micg::rt::exec e;
  e.kind = micg::rt::backend::cilk_holder;
  e.threads = 4;
  e.chunk = 64;
  const auto best = micg::rt::parallel_reduce<double>(
      e, 10000, 0.0,
      [](std::int64_t b, std::int64_t en) {
        double m = 0.0;
        for (std::int64_t i = b; i < en; ++i) {
          m = std::max(m, static_cast<double>((i * 31) % 9973));
        }
        return m;
      },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(best, 9972.0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  micg::rt::exec e;
  e.threads = 2;
  EXPECT_EQ(micg::rt::parallel_sum<int>(
                e, 0, [](std::int64_t, std::int64_t) { return 1; }),
            0);
}

// ----------------------------------------------------------------- pipeline

TEST(Pipeline, ThreeStagesProcessEverythingInOrder) {
  thread_pool pool(4);
  micg::rt::pipeline p;
  int produced = 0;
  constexpr int kItems = 200;
  // Source: serial, emits 1..kItems.
  p.add_filter(micg::rt::filter_mode::serial_in_order, [&](void*) -> void* {
    if (produced == kItems) return nullptr;
    return new int(++produced);
  });
  // Middle: parallel transform.
  p.add_filter(micg::rt::filter_mode::parallel, [](void* d) -> void* {
    auto* x = static_cast<int*>(d);
    *x *= 2;
    return x;
  });
  // Sink: serial in-order; checks ordering and collects.
  std::vector<int> out;
  p.add_filter(micg::rt::filter_mode::serial_in_order,
               [&](void* d) -> void* {
                 std::unique_ptr<int> x(static_cast<int*>(d));
                 out.push_back(*x);
                 return nullptr;
               });
  p.run(pool, 4, /*max_tokens=*/8);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * (i + 1));
  }
}

TEST(Pipeline, SerialOutOfOrderStillSeesAllItems) {
  thread_pool pool(4);
  micg::rt::pipeline p;
  int produced = 0;
  p.add_filter(micg::rt::filter_mode::serial_in_order, [&](void*) -> void* {
    if (produced == 100) return nullptr;
    return new int(produced++);
  });
  std::set<int> seen;
  p.add_filter(micg::rt::filter_mode::serial_out_of_order,
               [&](void* d) -> void* {
                 std::unique_ptr<int> x(static_cast<int*>(d));
                 seen.insert(*x);  // serial stage: no lock needed
                 return nullptr;
               });
  p.run(pool, 4, 4);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Pipeline, SingleTokenDegeneratesToSequential) {
  thread_pool pool(2);
  micg::rt::pipeline p;
  int produced = 0;
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};
  p.add_filter(micg::rt::filter_mode::serial_in_order, [&](void*) -> void* {
    if (produced == 50) return nullptr;
    return new int(produced++);
  });
  p.add_filter(micg::rt::filter_mode::parallel, [&](void* d) -> void* {
    if (in_flight.fetch_add(1) > 0) overlapped.store(true);
    in_flight.fetch_sub(1);
    return d;
  });
  std::vector<int> out;
  p.add_filter(micg::rt::filter_mode::serial_in_order,
               [&](void* d) -> void* {
                 std::unique_ptr<int> x(static_cast<int*>(d));
                 out.push_back(*x);
                 return nullptr;
               });
  p.run(pool, 2, /*max_tokens=*/1);
  EXPECT_EQ(out.size(), 50u);
  EXPECT_FALSE(overlapped.load());  // one token: never two items at once
}

TEST(Pipeline, RejectsDegenerateConfigs) {
  thread_pool pool(2);
  micg::rt::pipeline p;
  EXPECT_THROW(p.run(pool, 2, 4), micg::check_error);  // no filters
  p.add_filter(micg::rt::filter_mode::parallel, [](void*) -> void* {
    return nullptr;
  });
  EXPECT_THROW(p.run(pool, 2, 4), micg::check_error);  // only a source
  p.add_filter(micg::rt::filter_mode::parallel, [](void* d) { return d; });
  EXPECT_THROW(p.run(pool, 2, 0), micg::check_error);  // no tokens
  EXPECT_THROW(p.add_filter(micg::rt::filter_mode::parallel, nullptr),
               micg::check_error);
}

TEST(Pipeline, WorksSingleThreaded) {
  thread_pool pool(1);
  micg::rt::pipeline p;
  int produced = 0;
  p.add_filter(micg::rt::filter_mode::serial_in_order, [&](void*) -> void* {
    if (produced == 10) return nullptr;
    return new int(produced++);
  });
  int sum = 0;
  p.add_filter(micg::rt::filter_mode::serial_in_order,
               [&](void* d) -> void* {
                 std::unique_ptr<int> x(static_cast<int*>(d));
                 sum += *x;
                 return nullptr;
               });
  p.run(pool, 1, 4);
  EXPECT_EQ(sum, 45);
}

}  // namespace
