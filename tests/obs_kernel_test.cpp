// Pins the obs-published telemetry to the legacy result-struct fields:
// both views of a run must agree, for coloring and for the block-queue
// BFS, via both sink routes (explicit exec.rec and the global recorder).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/color/iterative.hpp"
#include "micg/graph/generators.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/assert.hpp"

namespace {

std::uint64_t counter_value(const micg::obs::snapshot& s,
                            const std::string& name) {
  for (const auto& [k, v] : s.counters) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

double gauge_value(const micg::obs::snapshot& s, const std::string& name) {
  for (const auto& [k, v] : s.values) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "value not found: " << name;
  return 0.0;
}

std::string meta_value(const micg::obs::snapshot& s,
                       const std::string& key) {
  for (const auto& [k, v] : s.meta) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "meta not found: " << key;
  return "";
}

std::size_t spans_named(const micg::obs::snapshot& s,
                        const std::string& name) {
  std::size_t n = 0;
  for (const auto& sp : s.spans) {
    if (sp.name == name) ++n;
  }
  return n;
}

TEST(ObsKernel, IterativeColorPublishesLegacyFields) {
  auto g = micg::graph::make_erdos_renyi(3000, 12.0, 11);
  micg::obs::recorder rec;
  micg::color::iterative_options opt;
  opt.ex.kind = micg::rt::backend::omp_dynamic;
  opt.ex.threads = 4;
  opt.ex.chunk = 64;
  opt.ex.rec = &rec;  // explicit sink route
  const auto r = micg::color::iterative_color(g, opt);

  const auto snap = rec.take();
  EXPECT_EQ(meta_value(snap, "kernel"), "iterative_color");
  EXPECT_EQ(meta_value(snap, "backend"), "OpenMP-dynamic");
  EXPECT_EQ(counter_value(snap, "color.rounds"),
            static_cast<std::uint64_t>(r.rounds));
  std::uint64_t conflicts = 0;
  for (std::size_t c : r.conflicts_per_round) conflicts += c;
  EXPECT_EQ(counter_value(snap, "color.conflicts"), conflicts);
  EXPECT_EQ(gauge_value(snap, "color.num_colors"),
            static_cast<double>(r.num_colors));
  // Every vertex gets a tentative color in round 1; repairs add more.
  EXPECT_GE(counter_value(snap, "color.tentative_colorings"),
            static_cast<std::uint64_t>(g.num_vertices()));
  // One span per round, each carrying the visited count.
  EXPECT_EQ(spans_named(snap, "color.round"),
            static_cast<std::size_t>(r.rounds));
}

TEST(ObsKernel, BlockQueueBfsPublishesLegacyFields) {
  auto g = micg::graph::make_grid_2d(60, 60);
  micg::obs::recorder rec;
  micg::bfs::parallel_bfs_options opt;
  opt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
  opt.ex.threads = 4;
  opt.block = 8;
  opt.ex.rec = &rec;
  const auto r = micg::bfs::parallel_bfs(g, 0, opt);

  const auto snap = rec.take();
  EXPECT_EQ(meta_value(snap, "kernel"), "parallel_bfs");
  EXPECT_EQ(meta_value(snap, "variant"), "OpenMP-Block-relaxed");
  EXPECT_EQ(counter_value(snap, "bfs.levels"),
            static_cast<std::uint64_t>(r.num_levels));
  EXPECT_EQ(counter_value(snap, "bfs.reached"),
            static_cast<std::uint64_t>(r.reached));
  std::uint64_t slots = 0;
  for (auto s : r.queue_slots_per_level) slots += s;
  EXPECT_EQ(counter_value(snap, "bfs.queue_slots"), slots);
  EXPECT_EQ(spans_named(snap, "bfs.level"),
            static_cast<std::size_t>(r.num_levels));
}

TEST(ObsKernel, GlobalRecorderRouteMatchesExplicit) {
  auto g = micg::graph::make_kary_tree(3, 8);
  micg::bfs::parallel_bfs_options opt;
  opt.variant = micg::bfs::bfs_variant::omp_tls;
  opt.ex.threads = 2;

  micg::obs::recorder rec;
  micg::bfs::parallel_bfs_result r;
  {
    micg::obs::scoped_global guard(rec);
    r = micg::bfs::parallel_bfs(g, 0, opt);
  }
  const auto snap = rec.take();
  EXPECT_EQ(counter_value(snap, "bfs.levels"),
            static_cast<std::uint64_t>(r.num_levels));
  EXPECT_EQ(counter_value(snap, "bfs.reached"),
            static_cast<std::uint64_t>(r.reached));
}

TEST(ObsKernel, NoRecorderMeansNoObservableState) {
  auto g = micg::graph::make_chain(100);
  micg::bfs::parallel_bfs_options opt;
  opt.ex.threads = 2;
  const auto ref = micg::bfs::seq_bfs(g, 0);
  const auto r = micg::bfs::parallel_bfs(g, 0, opt);  // no sink installed
  EXPECT_EQ(r.level, ref.level);
  EXPECT_EQ(micg::obs::recorder::global(), nullptr);
}

TEST(ObsKernel, VariantNamesRoundTrip) {
  for (auto v : micg::bfs::all_bfs_variants()) {
    EXPECT_EQ(micg::bfs::bfs_variant_from_name(
                  micg::bfs::bfs_variant_name(v)),
              v);
  }
  EXPECT_THROW(micg::bfs::bfs_variant_from_name("no-such-variant"),
               micg::check_error);
}

}  // namespace
