// Tests for the exec facade's reusable-state paths: a caller-provided
// task_scheduler shared across loops, persistent affinity_partitioner
// placement, and a caller-provided thread pool. These are the paths the
// BFS driver and the coloring rounds use in production.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "micg/rt/exec.hpp"
#include "micg/rt/partitioner.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/thread_pool.hpp"

namespace {

using micg::rt::backend;
using micg::rt::exec;

TEST(ExecReuse, SharedSchedulerAcrossManyLoops) {
  micg::rt::thread_pool pool(4);
  micg::rt::task_scheduler sched(pool, 4);
  exec e;
  e.kind = backend::cilk_holder;
  e.threads = 4;
  e.chunk = 16;
  e.pool = &pool;
  e.sched = &sched;
  std::atomic<std::int64_t> total{0};
  // Many loops through one scheduler (the BFS per-level pattern).
  for (int level = 0; level < 50; ++level) {
    micg::rt::for_range(e, 200, [&](std::int64_t b, std::int64_t en, int) {
      total.fetch_add(en - b, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 200);
  // The shared scheduler accumulated spawns across all loops.
  EXPECT_GT(sched.stats().spawned, 0u);
}

TEST(ExecReuse, SharedSchedulerWithTbbBackends) {
  micg::rt::thread_pool pool(4);
  micg::rt::task_scheduler sched(pool, 4);
  for (backend kind : {backend::tbb_simple, backend::tbb_auto}) {
    exec e;
    e.kind = kind;
    e.threads = 4;
    e.chunk = 8;
    e.pool = &pool;
    e.sched = &sched;
    std::vector<std::atomic<int>> hits(500);
    micg::rt::for_range(e, 500, [&](std::int64_t b, std::int64_t en, int) {
      for (std::int64_t i = b; i < en; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (auto& h : hits) {
      ASSERT_EQ(h.load(), 1) << micg::rt::backend_name(kind);
    }
  }
}

TEST(ExecReuse, PersistentAffinityStateThroughExec) {
  micg::rt::affinity_partitioner ap;
  exec e;
  e.kind = backend::tbb_affinity;
  e.threads = 4;
  e.chunk = 16;
  e.affinity = &ap;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> hits(1000);
    micg::rt::for_range(e, 1000,
                        [&](std::int64_t b, std::int64_t en, int) {
                          for (std::int64_t i = b; i < en; ++i) {
                            hits[static_cast<std::size_t>(i)].fetch_add(1);
                          }
                        });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "round " << round;
  }
  // Placement memory survived the loops.
  EXPECT_FALSE(ap.placement().empty());
}

TEST(ExecReuse, ExplicitPoolIsUsed) {
  micg::rt::thread_pool pool(2);
  exec e;
  e.kind = backend::omp_dynamic;
  e.threads = 2;
  e.pool = &pool;
  EXPECT_EQ(&e.pool_or_global(), &pool);
  std::atomic<int> hits{0};
  micg::rt::for_range(e, 100, [&](std::int64_t b, std::int64_t en, int) {
    hits.fetch_add(static_cast<int>(en - b));
  });
  EXPECT_EQ(hits.load(), 100);
  exec d;
  EXPECT_EQ(&d.pool_or_global(), &micg::rt::thread_pool::global());
}

TEST(ExecReuse, GrainZeroMeansAutoForWorkStealing) {
  exec e;
  e.kind = backend::cilk_tid;
  e.threads = 4;
  e.chunk = 0;  // auto grain
  std::atomic<std::int64_t> sum{0};
  micg::rt::for_range(e, 10000, [&](std::int64_t b, std::int64_t en, int) {
    std::int64_t s = 0;
    for (std::int64_t i = b; i < en; ++i) s += i;
    sum.fetch_add(s, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 9999LL * 10000 / 2);
}

}  // namespace
