// Race-hunting stress for the serving layer; the TSan CI job builds and
// runs this binary with -fsanitize=thread (alongside tsan_stress_test).
//
// The invariants under attack:
//  * a pinned snapshot is immutable and stays alive while any number of
//    compactions swap the current snapshot under it;
//  * the admission gate keeps its slot accounting straight with ≥32
//    requests in flight while a writer mutates and compacts;
//  * per-slot thread pools may run multi-threaded kernels concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "micg/api/json.hpp"
#include "micg/graph/generators.hpp"
#include "micg/serve/service.hpp"
#include "micg/serve/store.hpp"

namespace {

using micg::api::json;
using micg::serve::graph_store;
using micg::serve::service;
using micg::serve::service_options;
using micg::serve::versioned_graph;

micg::graph::any_csr grid16() {
  return micg::graph::to_narrowest(micg::graph::make_grid_2d(16, 16));
}

/// Order-independent fingerprint of the adjacency of a snapshot.
std::uint64_t fingerprint(const micg::graph::any_csr& g) {
  std::uint64_t h = 0;
  g.visit([&](const auto& csr) {
    using VId = typename std::decay_t<decltype(csr)>::vertex_type;
    for (VId u = 0; u < csr.num_vertices(); ++u) {
      for (const VId w : csr.neighbors(u)) {
        h += static_cast<std::uint64_t>(u) * 1000003u +
             static_cast<std::uint64_t>(w);
      }
    }
  });
  return h;
}

TEST(ServeStress, ReadersStayPinnedAcrossEpochFlips) {
  versioned_graph vg(grid16());
  std::atomic<bool> stop{false};
  std::atomic<bool> corrupted{false};
  std::atomic<int> started{0};
  std::atomic<std::int64_t> flips_seen{0};

  std::vector<std::thread> readers;
  readers.reserve(6);
  for (int i = 0; i < 6; ++i) {
    readers.emplace_back([&] {
      started.fetch_add(1);
      std::int64_t last_epoch = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        const versioned_graph::pin pin = vg.snapshot();
        // A pinned snapshot must read identically no matter how many
        // compactions retire it while we hold it.
        const std::uint64_t before = fingerprint(*pin.graph);
        std::this_thread::yield();
        if (fingerprint(*pin.graph) != before ||
            pin.epoch < last_epoch) {
          corrupted.store(true);
        }
        if (pin.epoch != last_epoch) flips_seen.fetch_add(1);
        last_epoch = pin.epoch;
      }
    });
  }

  // Mutate only while every reader is live, and pace the flips so the
  // readers observe many distinct epochs instead of one final state.
  while (started.load() < 6) std::this_thread::yield();
  for (int k = 0; k < 60; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Toggle a clique among the first 8 vertices plus a growing tail.
    for (int u = 0; u < 8; ++u) {
      for (int v = u + 1; v < 8; ++v) {
        if ((k + u + v) % 2 == 0) {
          vg.insert(u, v);
        } else {
          vg.erase(u, v);
        }
      }
    }
    vg.insert(255, 256 + k);  // vertex growth every round
    vg.compact();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(corrupted.load());
  EXPECT_EQ(vg.epoch(), 60);
  EXPECT_GE(flips_seen.load(), 6);  // every reader observed at least one
  EXPECT_EQ(vg.snapshot().graph->num_vertices(), 256 + 60);
}

TEST(ServeStress, ThirtyTwoInFlightQueriesDuringMutationAndCompaction) {
  graph_store store;
  store.add("g", grid16());
  service svc(store, {.max_inflight = 32, .max_waiting = 64,
                      .threads_per_query = 1, .compact_every = 6});

  constexpr int kReaders = 32;
  constexpr int kQueriesEach = 8;
  std::atomic<int> ready{0};
  std::atomic<int> bad{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kReaders + 1) std::this_thread::yield();
      for (int k = 0; k < kQueriesEach; ++k) {
        const char* line =
            (i + k) % 3 == 0
                ? R"({"op":"bfs","graph":"g","params":{"threads":1}})"
                : (i + k) % 3 == 1
                      ? R"({"op":"color","graph":"g","params":{"threads":1}})"
                      : R"({"op":"list"})";
        const json resp = json::parse(svc.handle_line(line));
        if (resp.at("status").as_string() != "ok") bad.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    ready.fetch_add(1);
    while (ready.load() < kReaders + 1) std::this_thread::yield();
    for (int k = 0; k < 48; ++k) {
      const std::string op = k % 2 == 0 ? "insert" : "erase";
      const std::string line = R"({"op":")" + op +
                               R"(","graph":"g","params":{"edges":[[)" +
                               std::to_string(k % 16) + "," +
                               std::to_string(16 + k % 16) + "]]}}";
      const json resp = json::parse(svc.handle_line(line));
      if (resp.at("status").as_string() != "ok") bad.fetch_add(1);
    }
    writer_done.store(true);
  });

  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(bad.load(), 0);

  // Settled state is consistent: compact folds any tail, queries serve it.
  const json comp =
      json::parse(svc.handle_line(R"({"op":"compact","graph":"g"})"));
  EXPECT_EQ(comp.at("status").as_string(), "ok");
  EXPECT_EQ(comp.at("result").at("pending").as_int(), 0);
  const json bfs = json::parse(svc.handle_line(
      R"({"op":"bfs","graph":"g","params":{"threads":1}})"));
  EXPECT_EQ(bfs.at("status").as_string(), "ok");
}

TEST(ServeStress, WeightedQueriesStayExactWhileWriterFlipsSnapshots) {
  // sssp regenerates the weight array from the pinned snapshot on every
  // request, so a writer compacting underneath races against that O(E)
  // generation pass as well as the kernel. Distances through the stable
  // half of the grid (the writer only touches vertices < 32) must come
  // out identical on every flip — TSan guards the pin, this guards the
  // answers.
  graph_store store;
  store.add("g", grid16());
  service svc(store, {.max_inflight = 16, .max_waiting = 64,
                      .threads_per_query = 2, .compact_every = 4});

  // The baseline answered before any mutation: source and targets sit in
  // the bottom-right quadrant, far from the writer's toggles, and the
  // grid metric keeps every shortest path inside that quadrant.
  const json base = json::parse(svc.handle_line(
      R"({"op":"sssp","graph":"g","params":{"threads":1,"source":255,)"
      R"("delta":16,"targets":[136,170,204,238]}})"));
  ASSERT_EQ(base.at("status").as_string(), "ok");
  const std::string base_dists = base.at("result").at("target_dists").dump();

  std::atomic<int> ready{0};
  std::atomic<int> bad{0};
  std::atomic<int> moved{0};
  constexpr int kClients = 12;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kClients + 1) std::this_thread::yield();
      for (int k = 0; k < 8; ++k) {
        const char* line =
            (i + k) % 3 == 0
                ? R"({"op":"cc","graph":"g","params":{"threads":2}})"
                : R"({"op":"sssp","graph":"g","params":{"threads":2,)"
                  R"("source":255,"delta":16,"targets":[136,170,204,238]}})";
        const json resp = json::parse(svc.handle_line(line));
        if (resp.at("status").as_string() != "ok") {
          bad.fetch_add(1);
          continue;
        }
        if ((i + k) % 3 != 0 &&
            resp.at("result").at("target_dists").dump() != base_dists) {
          moved.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    ready.fetch_add(1);
    while (ready.load() < kClients + 1) std::this_thread::yield();
    for (int k = 0; k < 40; ++k) {
      const std::string op = k % 2 == 0 ? "insert" : "erase";
      const std::string line = R"({"op":")" + op +
                               R"(","graph":"g","params":{"edges":[[)" +
                               std::to_string(k % 16) + "," +
                               std::to_string(16 + k % 16) + "]]}}";
      const json resp = json::parse(svc.handle_line(line));
      if (resp.at("status").as_string() != "ok") bad.fetch_add(1);
    }
  });
  for (auto& t : clients) t.join();
  writer.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(moved.load(), 0)
      << "weighted distances moved under snapshot flips";
}

TEST(ServeStress, ConcurrentMultiThreadedKernelsOnPrivatePools) {
  graph_store store;
  store.add("g", grid16());
  // threads_per_query = 2: every admitted request runs its kernel on its
  // slot's private pool, so this drives concurrent *multi-threaded* OpenMP
  // regions — the shape the global pool forbids by design.
  service svc(store, {.max_inflight = 8, .max_waiting = 32,
                      .threads_per_query = 2});
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      for (int k = 0; k < 10; ++k) {
        const char* line =
            (i + k) % 2 == 0
                ? R"({"op":"bfs","graph":"g","params":{"threads":2}})"
                : R"({"op":"msbfs","graph":"g","params":{"threads":2,"sources":8,"lanes":8}})";
        const json resp = json::parse(svc.handle_line(line));
        if (resp.at("status").as_string() != "ok") bad.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
