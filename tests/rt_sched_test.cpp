// Tests for the work-stealing deque, the Cilk-style scheduler, cilk_for,
// and the TBB-style partitioners.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "micg/rt/cilk_for.hpp"
#include "micg/rt/partitioner.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/rt/ws_deque.hpp"
#include "micg/support/cacheline.hpp"

namespace {

using micg::rt::blocked_range;
using micg::rt::task_group;
using micg::rt::task_scheduler;
using micg::rt::thread_pool;
using micg::rt::ws_deque;

// ---------------------------------------------------------------- ws_deque

TEST(WsDeque, LifoForOwner) {
  ws_deque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.pop().value(), 3);
  EXPECT_EQ(d.pop().value(), 2);
  EXPECT_EQ(d.pop().value(), 1);
  EXPECT_FALSE(d.pop().has_value());
}

TEST(WsDeque, FifoForThief) {
  ws_deque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal().value(), 1);
  EXPECT_EQ(d.steal().value(), 2);
  EXPECT_EQ(d.steal().value(), 3);
  EXPECT_FALSE(d.steal().has_value());
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  ws_deque<int> d(8);
  for (int i = 0; i < 1000; ++i) d.push(i);
  EXPECT_EQ(d.size_approx(), 1000u);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop().value(), i);
}

TEST(WsDeque, ConcurrentStealersGetEveryItemOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 4;
  ws_deque<std::int64_t> d;
  thread_pool pool(kThieves + 1);
  std::vector<micg::padded<std::int64_t>> sums(kThieves + 1);
  std::atomic<int> taken{0};
  pool.run(kThieves + 1, [&](int w) {
    if (w == 0) {
      // Owner: push everything, then pop what the thieves leave behind.
      for (int i = 1; i <= kItems; ++i) d.push(i);
      while (auto v = d.pop()) {
        sums[0].value += *v;
        taken.fetch_add(1);
      }
    } else {
      // Thieves race the owner the whole time.
      while (taken.load(std::memory_order_relaxed) < kItems) {
        if (auto v = d.steal()) {
          sums[static_cast<std::size_t>(w)].value += *v;
          taken.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  std::int64_t total = 0;
  for (const auto& s : sums) total += s.value;
  // Sum 1..kItems is preserved iff every item was handed out exactly once.
  EXPECT_EQ(total, static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
  EXPECT_EQ(taken.load(), kItems);
}

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, RunsRootToCompletion) {
  thread_pool pool(4);
  task_scheduler sched(pool, 4);
  bool ran = false;
  sched.run([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(Scheduler, SpawnedTasksAllExecute) {
  thread_pool pool(4);
  task_scheduler sched(pool, 4);
  std::atomic<int> count{0};
  sched.run([&] {
    task_group g(sched);
    for (int i = 0; i < 100; ++i) {
      g.spawn([&] { count.fetch_add(1); });
    }
    g.wait();
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, NestedSpawnsComplete) {
  thread_pool pool(4);
  task_scheduler sched(pool, 4);
  std::atomic<int> leaves{0};
  // Recursive fibonacci-style fork tree of depth 8 -> 2^8 leaves.
  std::function<void(int)> tree = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    task_group g(sched);
    g.spawn([&, depth] { tree(depth - 1); });
    tree(depth - 1);
    g.wait();
  };
  sched.run([&] { tree(8); });
  EXPECT_EQ(leaves.load(), 256);
}

TEST(Scheduler, ParallelInvokeRunsBoth) {
  thread_pool pool(2);
  task_scheduler sched(pool, 2);
  std::atomic<int> mask{0};
  sched.run([&] {
    micg::rt::parallel_invoke(
        sched, [&] { mask.fetch_or(1); }, [&] { mask.fetch_or(2); });
  });
  EXPECT_EQ(mask.load(), 3);
}

TEST(Scheduler, SingleThreadStillCorrect) {
  thread_pool pool(1);
  task_scheduler sched(pool, 1);
  std::atomic<int> count{0};
  sched.run([&] {
    task_group g(sched);
    for (int i = 0; i < 50; ++i) g.spawn([&] { count.fetch_add(1); });
    g.wait();
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(Scheduler, StatsCountSpawns) {
  thread_pool pool(2);
  task_scheduler sched(pool, 2);
  sched.run([&] {
    task_group g(sched);
    for (int i = 0; i < 10; ++i) g.spawn([] {});
    g.wait();
  });
  const auto stats = sched.stats();
  EXPECT_EQ(stats.spawned, 10u);
  EXPECT_EQ(stats.executed, 10u);
  EXPECT_LE(stats.stolen, stats.executed);
}

// ---------------------------------------------------------------- cilk_for

TEST(CilkFor, CoversRangeExactlyOnce) {
  thread_pool pool(4);
  task_scheduler sched(pool, 4);
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  micg::rt::cilk_parallel_for(
      sched, 0, kN, 16, [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]
            .fetch_add(1);
      });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(CilkFor, RespectsGrainSize) {
  thread_pool pool(2);
  task_scheduler sched(pool, 2);
  std::atomic<std::int64_t> max_chunk{0};
  micg::rt::cilk_parallel_for(
      sched, 0, 1000, 64, [&](std::int64_t b, std::int64_t e, int) {
        std::int64_t len = e - b;
        std::int64_t cur = max_chunk.load();
        while (len > cur && !max_chunk.compare_exchange_weak(cur, len)) {
        }
      });
  EXPECT_LE(max_chunk.load(), 64);
}

TEST(CilkFor, EmptyRangeIsNoop) {
  thread_pool pool(2);
  task_scheduler sched(pool, 2);
  bool touched = false;
  micg::rt::cilk_parallel_for(sched, 5, 5, 1,
                              [&](std::int64_t, std::int64_t, int) {
                                touched = true;
                              });
  EXPECT_FALSE(touched);
}

TEST(CilkFor, DefaultGrainProportionalToThreads) {
  EXPECT_EQ(micg::rt::cilk_default_grain(800, 10), 10);
  EXPECT_GE(micg::rt::cilk_default_grain(1, 128), 1);
}

// ------------------------------------------------------------ blocked_range

TEST(BlockedRange, SplitHalves) {
  blocked_range r(0, 100, 10);
  EXPECT_TRUE(r.is_divisible());
  blocked_range right = r.split();
  EXPECT_EQ(r.begin(), 0);
  EXPECT_EQ(r.end(), 50);
  EXPECT_EQ(right.begin(), 50);
  EXPECT_EQ(right.end(), 100);
}

TEST(BlockedRange, NotDivisibleAtGrain) {
  blocked_range r(0, 10, 10);
  EXPECT_FALSE(r.is_divisible());
}

// -------------------------------------------------------------- partitioners

template <typename Partitioner>
void expect_full_coverage(Partitioner&& p, int nthreads) {
  thread_pool pool(nthreads);
  task_scheduler sched(pool, nthreads);
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  micg::rt::parallel_for(
      sched, blocked_range(0, kN, 32),
      [&](const blocked_range& r, int) {
        for (std::int64_t i = r.begin(); i < r.end(); ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      },
      std::forward<Partitioner>(p));
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(Partitioner, SimpleCoversRange) {
  expect_full_coverage(micg::rt::simple_partitioner{}, 4);
}

TEST(Partitioner, AutoCoversRange) {
  expect_full_coverage(micg::rt::auto_partitioner{}, 4);
}

TEST(Partitioner, AffinityCoversRange) {
  micg::rt::affinity_partitioner ap;
  expect_full_coverage(ap, 4);
}

TEST(Partitioner, AffinityReplayKeepsCoverage) {
  micg::rt::affinity_partitioner ap;
  // Same loop three times through one partitioner: placement is replayed.
  for (int round = 0; round < 3; ++round) {
    expect_full_coverage(ap, 4);
  }
  EXPECT_FALSE(ap.placement().empty());
}

TEST(Partitioner, SingleThreadAllPartitioners) {
  expect_full_coverage(micg::rt::simple_partitioner{}, 1);
  expect_full_coverage(micg::rt::auto_partitioner{}, 1);
  micg::rt::affinity_partitioner ap;
  expect_full_coverage(ap, 1);
}

}  // namespace
