// Tests for parallel scan, the compacting frontier (the paper's rejected
// alternative, §IV-C), array-notation operations, and a validation of the
// scheduling model against the real schedulers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "micg/bfs/compact_frontier.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/suite.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/sched_model.hpp"
#include "micg/rt/array_ops.hpp"
#include "micg/rt/loop.hpp"
#include "micg/rt/scan.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/support/cacheline.hpp"
#include "micg/support/rng.hpp"

namespace {

using micg::rt::backend;
using micg::rt::exec;

exec make_exec(backend b, int threads, std::int64_t chunk = 64) {
  exec e;
  e.kind = b;
  e.threads = threads;
  e.chunk = chunk;
  return e;
}

// --------------------------------------------------------------------- scan

class ScanBackend : public ::testing::TestWithParam<backend> {};

TEST_P(ScanBackend, MatchesSequentialScan) {
  micg::xoshiro256ss rng(5);
  for (std::size_t n : {0u, 1u, 7u, 100u, 4097u, 50000u}) {
    std::vector<std::int64_t> values(n);
    for (auto& v : values) v = static_cast<std::int64_t>(rng.below(100));
    std::vector<std::int64_t> expect(values);
    std::int64_t total = 0;
    for (auto& v : expect) {
      const auto x = v;
      v = total;
      total += x;
    }
    auto parallel = values;
    const auto ptotal = micg::rt::parallel_exclusive_scan(
        make_exec(GetParam(), 4, 128), parallel);
    EXPECT_EQ(parallel, expect) << "n=" << n;
    EXPECT_EQ(ptotal, total) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ScanBackend,
                         ::testing::Values(backend::omp_dynamic,
                                           backend::omp_static,
                                           backend::cilk_holder,
                                           backend::tbb_simple),
                         [](const auto& info) {
                           std::string n =
                               micg::rt::backend_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Scan, DoubleValuesWork) {
  std::vector<double> v{0.5, 1.5, 2.0, 4.0};
  const double total = micg::rt::parallel_exclusive_scan(
      make_exec(backend::omp_dynamic, 2, 2), v);
  EXPECT_DOUBLE_EQ(total, 8.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 4.0);
}

// --------------------------------------------------------- compact frontier

TEST(CompactFrontier, CompactionIsDenseAndComplete) {
  micg::rt::thread_pool pool(4);
  micg::bfs::compact_frontier f(4);
  pool.run(4, [&](int w) {
    for (int i = 0; i < 100 * (w + 1); ++i) {
      f.push(w, w * 1000 + i);
    }
  });
  EXPECT_EQ(f.total_size(), 100u + 200u + 300u + 400u);
  const auto out = f.compact(make_exec(backend::omp_dynamic, 4));
  EXPECT_EQ(out.size(), 1000u);
  // Worker segments appear contiguously in worker order.
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[100], 1000);
  EXPECT_EQ(out[300], 2000);
  EXPECT_EQ(out[600], 3000);
  // Frontier reusable afterwards.
  EXPECT_EQ(f.total_size(), 0u);
}

TEST(CompactBfs, MatchesSequentialLevels) {
  const struct {
    micg::graph::csr_graph g;
    micg::graph::vertex_t source;
  } cases[] = {
      {micg::graph::make_grid_2d(30, 30), 17},
      {micg::graph::make_rmat(11, 8, 0.57, 0.19, 0.19, 5), 1},
      {micg::graph::make_suite_graph(
           micg::graph::suite_entry_by_name("hood"), 0.01),
       100},
  };
  for (const auto& c : cases) {
    micg::graph::vertex_t src = c.source;
    while (c.g.degree(src) == 0) ++src;
    const auto ref = micg::bfs::seq_bfs(c.g, src);
    micg::bfs::compact_bfs_options opt;
    opt.ex.threads = 4;
    const auto r = micg::bfs::parallel_bfs_compact(c.g, src, opt);
    EXPECT_EQ(r.level, ref.level);
    EXPECT_EQ(r.num_levels, ref.num_levels);
    EXPECT_EQ(r.reached, ref.reached);
  }
}

// ---------------------------------------------------------------- array ops

TEST(ArrayOps, AxpbyMatchesScalarLoop) {
  const std::size_t n = 10000;
  std::vector<double> x(n), y(n), w(n);
  micg::xoshiro256ss rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  micg::rt::axpby(make_exec(backend::tbb_simple, 4, 512), 2.0, x, -3.0, y,
                  w);
  for (std::size_t i = 0; i < n; i += 997) {
    EXPECT_DOUBLE_EQ(w[i], 2.0 * x[i] - 3.0 * y[i]);
  }
}

TEST(ArrayOps, DotAndNorm) {
  std::vector<double> x{3.0, 4.0};
  std::vector<double> y{1.0, 2.0};
  const auto e = make_exec(backend::omp_dynamic, 2, 1);
  EXPECT_DOUBLE_EQ(micg::rt::dot(e, x, y), 11.0);
  EXPECT_DOUBLE_EQ(micg::rt::norm2(e, x), 5.0);
}

TEST(ArrayOps, FillScaleMap) {
  std::vector<double> w(1000);
  const auto e = make_exec(backend::cilk_holder, 4, 64);
  micg::rt::fill(e, w, 3.0);
  for (double v : w) ASSERT_DOUBLE_EQ(v, 3.0);
  micg::rt::scale(e, w, 2.0);
  for (double v : w) ASSERT_DOUBLE_EQ(v, 6.0);
  std::vector<double> out(1000);
  micg::rt::map_elemental(e, w, out,
                          [](double v) { return v * v + 1.0; });
  for (double v : out) ASSERT_DOUBLE_EQ(v, 37.0);
}

TEST(ArrayOps, SizeMismatchThrows) {
  std::vector<double> a(3), b(4), w(3);
  const auto e = make_exec(backend::omp_dynamic, 1);
  EXPECT_THROW(micg::rt::axpby(e, 1.0, a, 1.0, b, w), micg::check_error);
  EXPECT_THROW(micg::rt::dot(e, a, b), micg::check_error);
}

// --------------------------------------- scheduling model vs real scheduler

TEST(SchedModelValidation, StaticAssignmentMatchesRealScheduler) {
  // The model's omp_static split must equal the real scheduler's: count
  // real items per worker and compare against assign_step's item counts.
  constexpr int kThreads = 5;
  constexpr std::int64_t kN = 1234;
  micg::rt::thread_pool pool(kThreads);
  std::vector<micg::padded<std::int64_t>> real_items(kThreads);
  micg::rt::omp_parallel_for(pool, kThreads, kN,
                             {micg::rt::omp_schedule::static_even, 1},
                             [&](std::int64_t b, std::int64_t e, int w) {
                               real_items[static_cast<std::size_t>(w)]
                                   .value += e - b;
                             });

  micg::model::parallel_step step;
  step.items.assign(kN, micg::model::work_item{1.0, 0.0, 0.0});
  auto m = micg::model::machine_config::knf();
  m.thread_jitter = 0.0;  // compare raw assignment, not noise
  const auto loads = micg::model::assign_step(
      step, backend::omp_static, kThreads, 1, m);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(w)].cpu_ops,
                     static_cast<double>(
                         real_items[static_cast<std::size_t>(w)].value))
        << "worker " << w;
  }
}

TEST(SchedModelValidation, ChunkedAssignmentMatchesRealScheduler) {
  constexpr int kThreads = 4;
  constexpr std::int64_t kN = 1000;
  constexpr std::int64_t kChunk = 64;
  micg::rt::thread_pool pool(kThreads);
  std::vector<micg::padded<std::int64_t>> real_items(kThreads);
  micg::rt::omp_parallel_for(pool, kThreads, kN,
                             {micg::rt::omp_schedule::static_chunked,
                              kChunk},
                             [&](std::int64_t b, std::int64_t e, int w) {
                               real_items[static_cast<std::size_t>(w)]
                                   .value += e - b;
                             });
  micg::model::parallel_step step;
  step.items.assign(kN, micg::model::work_item{1.0, 0.0, 0.0});
  auto m = micg::model::machine_config::knf();
  m.thread_jitter = 0.0;
  const auto loads = micg::model::assign_step(
      step, backend::omp_static_chunked, kThreads, kChunk, m);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(w)].cpu_ops,
                     static_cast<double>(
                         real_items[static_cast<std::size_t>(w)].value))
        << "worker " << w;
  }
}

TEST(SchedModelValidation, DynamicConservesItemsLikeRealScheduler) {
  constexpr int kThreads = 6;
  constexpr std::int64_t kN = 5000;
  micg::model::parallel_step step;
  step.items.assign(kN, micg::model::work_item{1.0, 0.0, 0.0});
  const auto m = micg::model::machine_config::knf();
  const auto loads = micg::model::assign_step(
      step, backend::omp_dynamic, kThreads, 64, m);
  double total = 0.0;
  for (const auto& ld : loads) total += ld.cpu_ops;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kN));
}

}  // namespace
