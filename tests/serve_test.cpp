// micg::serve unit + end-to-end tests: NDJSON framing against faulty
// streams (truncation, I/O errors, oversized frames — structured errors,
// never crashes), snapshot/epoch semantics of the store, admission
// control (shedding, deadlines, control-op bypass), and a full
// unix-socket session with concurrent clients and a mutating writer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "micg/api/json.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/graph/builder.hpp"
#include "micg/graph/generators.hpp"
#include "micg/obs/obs.hpp"
#include "micg/qa/faulty_stream.hpp"
#include "micg/serve/client.hpp"
#include "micg/serve/protocol.hpp"
#include "micg/serve/server.hpp"
#include "micg/serve/service.hpp"
#include "micg/serve/store.hpp"
#include "micg/support/assert.hpp"

namespace {

using micg::api::json;
using micg::api::json_object;
using micg::qa::fault_mode;
using micg::qa::faulty_stream;
using micg::serve::frame_status;
using micg::serve::graph_store;
using micg::serve::read_frame;
using micg::serve::service;
using micg::serve::service_options;
using micg::serve::versioned_graph;

micg::graph::any_csr grid() {
  return micg::graph::to_narrowest(micg::graph::make_grid_2d(8, 8));
}

json parse(const std::string& line) { return json::parse(line); }

std::string status_of(const std::string& response_line) {
  return parse(response_line).at("status").as_string();
}

// ---------------------------------------------------------------------------
// Framing

TEST(Framing, SplitsLinesAndStripsCr) {
  faulty_stream in("{\"a\":1}\r\n\n{\"b\":2}");
  std::string line;
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::ok);
  EXPECT_EQ(line, "{\"a\":1}");  // \r stripped
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::ok);
  EXPECT_EQ(line, "");  // blank line is a frame; caller skips it
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::ok);
  EXPECT_EQ(line, "{\"b\":2}");  // unterminated final line still a frame
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::eof);
}

TEST(Framing, OversizedFrameReportsTooLarge) {
  faulty_stream in(std::string(200, 'x') + "\n");
  std::string line;
  EXPECT_EQ(read_frame(in, line, 64), frame_status::too_large);
}

TEST(Framing, IoErrorMidLineReportsIoError) {
  faulty_stream in("{\"op\":\"ping\"}\n", fault_mode::error_at, 5);
  std::string line;
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::io_error);
}

TEST(Framing, TruncationIsAFrameThenEof) {
  faulty_stream in("{\"op\":\"pi", fault_mode::eof_at, 9);
  std::string line;
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::ok);
  EXPECT_EQ(line, "{\"op\":\"pi");  // caller's JSON parse rejects it
  EXPECT_EQ(read_frame(in, line, 1024), frame_status::eof);
}

// ---------------------------------------------------------------------------
// Request envelope

TEST(Envelope, ParsesAllFields) {
  const auto req = micg::serve::parse_request(
      R"({"id":"q1","op":"bfs","graph":"g","deadline_ms":250,"params":{"source":3}})");
  EXPECT_EQ(req.id, "q1");
  EXPECT_EQ(req.op, "bfs");
  EXPECT_EQ(req.graph, "g");
  EXPECT_EQ(req.deadline_ms, 250);
  EXPECT_EQ(req.params.at("source").as_int(), 3);
}

TEST(Envelope, RejectsMalformedEnvelopes) {
  const char* bad[] = {
      "[]",                          // not an object
      "{}",                          // no op
      R"({"op":""})",                // empty op
      R"({"op":"bfs","id":""})",     // empty id
      R"({"op":"bfs","id":7})",      // id not a string
      R"({"op":"bfs","deadline_ms":-1})",
      R"({"op":"bfs","params":[1]})",  // params not an object
      "not json at all",
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)micg::serve::parse_request(line), micg::check_error)
        << line;
  }
}

TEST(Envelope, ErrorResponsesStripServerSourcePaths) {
  const std::string resp = micg::serve::error_response(
      "q", micg::api::status::bad_request,
      "MICG_CHECK failed: (false) at /src/x.cpp:1 -- source out of range");
  const json doc = parse(resp);
  EXPECT_EQ(doc.at("error").as_string(), "source out of range");
  EXPECT_EQ(doc.at("id").as_string(), "q");
  EXPECT_EQ(doc.at("status").as_string(), "bad_request");
}

// ---------------------------------------------------------------------------
// Store: snapshot isolation and epochs

TEST(Store, PinsSurviveCompaction) {
  versioned_graph vg(grid());
  const versioned_graph::pin old_pin = vg.snapshot();
  EXPECT_EQ(old_pin.epoch, 0);
  const std::int64_t old_edges = old_pin.graph->num_edges();

  vg.insert(0, 63);
  EXPECT_EQ(vg.pending_ops(), 1u);
  // Buffered but not yet visible:
  EXPECT_EQ(vg.snapshot().graph->num_edges(), old_edges);

  EXPECT_EQ(vg.compact(), 1);
  EXPECT_EQ(vg.pending_ops(), 0u);
  EXPECT_EQ(vg.snapshot().epoch, 1);
  EXPECT_EQ(vg.snapshot().graph->num_edges(), old_edges + 1);
  // The old pin still reads the pre-compaction world:
  EXPECT_EQ(old_pin.graph->num_edges(), old_edges);
}

TEST(Store, EmptyCompactionDoesNotBumpEpoch) {
  versioned_graph vg(grid());
  EXPECT_EQ(vg.compact(), 0);
  EXPECT_EQ(vg.epoch(), 0);
  vg.insert(0, 1);  // edge already present: still a buffered op
  EXPECT_EQ(vg.compact(), 1);
}

TEST(Store, NamesAreUniqueAndLookupIsStable) {
  graph_store store;
  store.add("g", grid());
  EXPECT_THROW(store.add("g", grid()), micg::check_error);
  EXPECT_THROW(store.add("", grid()), micg::check_error);
  EXPECT_EQ(store.find("nope"), nullptr);
  ASSERT_NE(store.find("g"), nullptr);
  EXPECT_EQ(store.names(), std::vector<std::string>{"g"});
}

// ---------------------------------------------------------------------------
// Service dispatch (no socket)

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() { store_.add("g", grid()); }

  service_options opts_ = {.max_inflight = 2,
                           .max_waiting = 2,
                           .threads_per_query = 1};
  graph_store store_;
};

TEST_F(ServiceTest, MalformedLinesNeverThrow) {
  service svc(store_, opts_);
  const char* bad[] = {
      "garbage",
      "{\"op\":\"bfs\"}",                       // no graph
      R"({"op":"bfs","graph":"g","params":{"source":1000}})",  // out of range
      R"({"op":"bfs","graph":"g","params":{"threads":"x"}})",
      R"({"op":"insert","graph":"g","params":{"edges":[[0]]}})",
      R"({"op":"sleep","params":{"ms":-5}})",
  };
  for (const char* line : bad) {
    EXPECT_EQ(status_of(svc.handle_line(line)), "bad_request") << line;
  }
}

TEST_F(ServiceTest, UnknownNamesAreNotFound) {
  service svc(store_, opts_);
  EXPECT_EQ(status_of(svc.handle_line(
                R"({"op":"bfs","graph":"missing"})")),
            "not_found");
  EXPECT_EQ(status_of(svc.handle_line(
                R"({"op":"frobnicate","graph":"g"})")),
            "not_found");
}

TEST_F(ServiceTest, QueryCarriesEpochAndEchoesId) {
  service svc(store_, opts_);
  const json resp = parse(svc.handle_line(
      R"({"id":"q7","op":"bfs","graph":"g","params":{"source":0,"threads":1}})"));
  EXPECT_EQ(resp.at("id").as_string(), "q7");
  EXPECT_EQ(resp.at("status").as_string(), "ok");
  EXPECT_EQ(resp.at("epoch").as_int(), 0);
  EXPECT_EQ(resp.at("result").at("reached").as_int(), 64);
}

TEST_F(ServiceTest, MutationCompactionQueryFlow) {
  service svc(store_, opts_);
  // 0 and 63 are opposite grid corners: 14 hops apart at epoch 0.
  const json before = parse(svc.handle_line(
      R"({"op":"bfs","graph":"g","params":{"source":0,"threads":1,"targets":[63]}})"));
  EXPECT_EQ(before.at("result").at("target_levels").as_array()[0].as_int(),
            14);

  const json ins = parse(svc.handle_line(
      R"({"op":"insert","graph":"g","params":{"edges":[[0,63]]}})"));
  EXPECT_EQ(ins.at("status").as_string(), "ok");
  EXPECT_EQ(ins.at("epoch").as_int(), 0);  // buffered, not yet visible
  EXPECT_EQ(ins.at("result").at("pending").as_int(), 1);
  EXPECT_FALSE(ins.at("result").at("compacted").as_bool());

  const json comp = parse(svc.handle_line(
      R"({"op":"compact","graph":"g"})"));
  EXPECT_EQ(comp.at("epoch").as_int(), 1);
  EXPECT_EQ(comp.at("result").at("num_edges").as_int(), 113);

  const json after = parse(svc.handle_line(
      R"({"op":"bfs","graph":"g","params":{"source":0,"threads":1,"targets":[63]}})"));
  EXPECT_EQ(after.at("epoch").as_int(), 1);
  EXPECT_EQ(after.at("result").at("target_levels").as_array()[0].as_int(), 1);
}

TEST_F(ServiceTest, AutoCompactionTriggersAtThreshold) {
  opts_.compact_every = 2;
  service svc(store_, opts_);
  const json one = parse(svc.handle_line(
      R"({"op":"erase","graph":"g","params":{"edges":[[0,1]]}})"));
  EXPECT_FALSE(one.at("result").at("compacted").as_bool());
  const json two = parse(svc.handle_line(
      R"({"op":"insert","graph":"g","params":{"edges":[[0,63]]}})"));
  EXPECT_TRUE(two.at("result").at("compacted").as_bool());
  EXPECT_EQ(two.at("epoch").as_int(), 1);
  EXPECT_EQ(two.at("result").at("pending").as_int(), 0);
}

TEST_F(ServiceTest, ListReportsEveryGraph) {
  store_.add("h", grid());
  service svc(store_, opts_);
  const json resp = parse(svc.handle_line(R"({"op":"list"})"));
  const auto& graphs = resp.at("result").at("graphs").as_array();
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].at("name").as_string(), "g");
  EXPECT_EQ(graphs[1].at("name").as_string(), "h");
  EXPECT_EQ(graphs[0].at("epoch").as_int(), 0);
  EXPECT_EQ(graphs[0].at("num_vertices").as_int(), 64);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Admission, ShedsWhenQueueIsFull) {
  graph_store store;
  service svc(store, {.max_inflight = 1, .max_waiting = 0,
                      .threads_per_query = 1});
  std::thread holder([&] {
    EXPECT_EQ(status_of(svc.handle_line(
                  R"({"op":"sleep","params":{"ms":600}})")),
              "ok");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Slot busy, queue capacity 0: immediate graceful shed.
  EXPECT_EQ(status_of(svc.handle_line(R"({"op":"sleep","params":{"ms":0}})")),
            "overloaded");
  // Control ops bypass the gate and answer while the server is full.
  EXPECT_EQ(status_of(svc.handle_line(R"({"op":"ping"})")), "ok");
  holder.join();
}

TEST(Admission, DeadlineBoundsQueueWait) {
  graph_store store;
  service svc(store, {.max_inflight = 1, .max_waiting = 2,
                      .threads_per_query = 1});
  std::thread holder([&] {
    (void)svc.handle_line(R"({"op":"sleep","params":{"ms":700}})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(status_of(svc.handle_line(
                R"({"op":"sleep","deadline_ms":100,"params":{"ms":0}})")),
            "deadline_exceeded");
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::milliseconds(500));  // gave up at ~100ms
  holder.join();
}

TEST(Admission, QueuedRequestRunsWhenASlotFrees) {
  graph_store store;
  service svc(store, {.max_inflight = 1, .max_waiting = 2,
                      .threads_per_query = 1});
  std::thread holder([&] {
    (void)svc.handle_line(R"({"op":"sleep","params":{"ms":300}})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // No deadline: waits out the holder, then runs.
  EXPECT_EQ(status_of(svc.handle_line(R"({"op":"sleep","params":{"ms":0}})")),
            "ok");
  holder.join();
}

TEST(Admission, ShutdownRejectsNewWorkButAnswersControlOps) {
  graph_store store;
  store.add("g", grid());
  service svc(store, {.max_inflight = 1, .max_waiting = 1,
                      .threads_per_query = 1});
  svc.begin_shutdown();
  EXPECT_EQ(status_of(svc.handle_line(
                R"({"op":"bfs","graph":"g","params":{"threads":1}})")),
            "shutting_down");
  EXPECT_EQ(status_of(svc.handle_line(R"({"op":"ping"})")), "ok");
  EXPECT_FALSE(svc.shutdown_requested());
  EXPECT_EQ(status_of(svc.handle_line(R"({"op":"shutdown"})")), "ok");
  EXPECT_TRUE(svc.shutdown_requested());
}

TEST(Admission, InvalidOptionsAreRejectedAtConstruction) {
  graph_store store;
  // A negative default deadline used to be silently treated as "use the
  // default" deeper in the stack; now every knob is validated up front.
  EXPECT_THROW(service(store, {.default_deadline_ms = -1}),
               micg::check_error);
  EXPECT_THROW(service(store, {.compact_every = -1}), micg::check_error);
  EXPECT_THROW(service(store, {.coalesce_window_ms = -1}),
               micg::check_error);
  EXPECT_THROW(service(store, {.coalesce_lanes = 0}), micg::check_error);
  EXPECT_THROW(service(store, {.coalesce_lanes = 65}), micg::check_error);
  EXPECT_THROW(service(store, {.landmark_count = 0}), micg::check_error);
  EXPECT_THROW(service(store, {.landmark_count = 65}), micg::check_error);
}

TEST(Admission, ClientRefusesToSendANegativeDeadline) {
  // The client used to drop deadline_ms <= 0 from the wire envelope, so a
  // typo like `--deadline-ms -5` silently meant "wait forever".
  EXPECT_THROW((void)micg::serve::make_request("ping", "", micg::api::json(),
                                               -5, ""),
               micg::check_error);
}

TEST_F(ServiceTest, NegativeWireDeadlineIsABadRequest) {
  service svc(store_, opts_);
  EXPECT_EQ(
      status_of(svc.handle_line(
          R"({"op":"bfs","graph":"g","deadline_ms":-1,"params":{"source":0}})")),
      "bad_request");
}

// ---------------------------------------------------------------------------
// Coalescing: concurrent bfs requests share one MSBFS traversal

TEST(Coalesce, WindowBatchesConcurrentRequestsAndDemuxesExactly) {
  graph_store store;
  store.add("g", grid());
  micg::obs::recorder rec;
  service svc(store,
              {.max_inflight = 2, .max_waiting = 2, .threads_per_query = 1,
               .coalesce_window_ms = 400},
              &rec);

  // The first request opens the batch and leads; the second lands well
  // inside the 400 ms window and joins. One MSBFS answers both.
  std::string ra, rb;
  std::thread a([&] {
    ra = svc.handle_line(
        R"({"id":"a","op":"bfs","graph":"g","params":{"source":0,"targets":[63]}})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::thread b([&] {
    rb = svc.handle_line(
        R"({"id":"b","op":"bfs","graph":"g","params":{"source":63,"targets":[0]}})");
  });
  a.join();
  b.join();

  const json ja = parse(ra);
  const json jb = parse(rb);
  ASSERT_EQ(ja.at("status").as_string(), "ok") << ra;
  ASSERT_EQ(jb.at("status").as_string(), "ok") << rb;
  EXPECT_EQ(ja.at("id").as_string(), "a");
  EXPECT_EQ(jb.at("id").as_string(), "b");
  EXPECT_EQ(ja.at("result").at("variant").as_string(), "MSBFS-coalesced");
  EXPECT_EQ(ja.at("result").at("target_levels").as_array()[0].as_int(), 14);
  EXPECT_EQ(jb.at("result").at("target_levels").as_array()[0].as_int(), 14);
  EXPECT_EQ(ja.at("result").at("reached").as_int(), 64);
  // One batch, two member requests, and the uniform request counter saw
  // both members.
  EXPECT_EQ(rec.get_counter("serve.coalesce.batches").total(), 1u);
  EXPECT_EQ(rec.get_counter("serve.coalesce.requests").total(), 2u);
  EXPECT_EQ(rec.get_counter("serve.requests").total(), 2u);
}

TEST(Coalesce, BadMemberFailsAloneWithoutPoisoningItsBatch) {
  graph_store store;
  store.add("g", grid());
  service svc(store, {.max_inflight = 2, .max_waiting = 2,
                      .threads_per_query = 1, .coalesce_window_ms = 400});

  std::string ra, rb;
  std::thread a([&] {
    ra = svc.handle_line(
        R"({"id":"a","op":"bfs","graph":"g","params":{"source":1000}})");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::thread b([&] {
    rb = svc.handle_line(
        R"({"id":"b","op":"bfs","graph":"g","params":{"source":0,"targets":[63]}})");
  });
  a.join();
  b.join();

  EXPECT_EQ(status_of(ra), "bad_request") << ra;
  const json jb = parse(rb);
  ASSERT_EQ(jb.at("status").as_string(), "ok") << rb;
  EXPECT_EQ(jb.at("result").at("target_levels").as_array()[0].as_int(), 14);
}

TEST(Coalesce, ShutdownShedsCoalescedRequests) {
  graph_store store;
  store.add("g", grid());
  service svc(store, {.max_inflight = 1, .max_waiting = 1,
                      .threads_per_query = 1, .coalesce_window_ms = 50});
  svc.begin_shutdown();
  // The leader's admission failure is every member's failure.
  EXPECT_EQ(status_of(svc.handle_line(
                R"({"op":"bfs","graph":"g","params":{"source":0}})")),
            "shutting_down");
}

// The coalesced path must answer exactly what per-request seq_bfs would,
// for every generator family and storage layout, regardless of how
// arrivals happen to group into batches.
TEST(Coalesce, DifferentialOracleAcrossFamiliesAndLayouts) {
  using micg::graph::csr_graph;
  using micg::graph::csr_layout;
  struct family {
    const char* name;
    csr_graph g;
  };
  std::vector<family> families;
  families.push_back({"grid", micg::graph::make_grid_2d(9, 7)});
  families.push_back({"er", micg::graph::make_erdos_renyi(96, 4.0, 7)});
  families.push_back(
      {"rmat", micg::graph::make_rmat(6, 6, 0.57, 0.19, 0.19, 11)});
  constexpr csr_layout kLayouts[] = {csr_layout::v32e32, csr_layout::v32e64,
                                     csr_layout::v64e64};

  graph_store store;
  std::vector<std::string> names;
  for (const auto& fam : families) {
    const micg::graph::any_csr base = micg::graph::to_narrowest(fam.g);
    for (const csr_layout lay : kLayouts) {
      std::string name =
          std::string(fam.name) + "/" + micg::graph::layout_name(lay);
      store.add(name, micg::graph::to_layout(base, lay));
      names.push_back(std::move(name));
    }
  }
  service svc(store, {.max_inflight = 4, .max_waiting = 64,
                      .threads_per_query = 1, .coalesce_window_ms = 25,
                      .coalesce_lanes = 8});

  for (std::size_t fi = 0; fi < families.size(); ++fi) {
    const csr_graph& g = families[fi].g;
    const std::int64_t n = g.num_vertices();
    const std::int64_t targets[3] = {0, n / 2, n - 1};
    for (std::size_t li = 0; li < 3; ++li) {
      const std::string& name = names[fi * 3 + li];
      // Four concurrent requests with distinct sources; batching is
      // timing-dependent, correctness must not be.
      constexpr int kQueries = 4;
      std::string responses[kQueries];
      std::vector<std::thread> threads;
      for (int q = 0; q < kQueries; ++q) {
        threads.emplace_back([&, q] {
          const std::int64_t source = q * n / kQueries;
          json_object params{
              {"source", json(source)},
              {"targets", json(micg::api::json_array{
                              json(targets[0]), json(targets[1]),
                              json(targets[2])})}};
          responses[q] = svc.handle_line(micg::serve::make_request(
                                             "bfs", name,
                                             json(std::move(params)))
                                             .dump());
        });
      }
      for (auto& t : threads) t.join();

      for (int q = 0; q < kQueries; ++q) {
        const std::int64_t source = q * n / kQueries;
        const micg::bfs::bfs_result oracle =
            micg::bfs::seq_bfs(g, static_cast<std::int32_t>(source));
        const json resp = parse(responses[q]);
        ASSERT_EQ(resp.at("status").as_string(), "ok")
            << name << " source " << source << ": " << responses[q];
        const json& r = resp.at("result");
        EXPECT_EQ(r.at("variant").as_string(), "MSBFS-coalesced");
        EXPECT_EQ(r.at("num_levels").as_int(), oracle.num_levels)
            << name << " source " << source;
        EXPECT_EQ(r.at("reached").as_int(),
                  static_cast<std::int64_t>(oracle.reached))
            << name << " source " << source;
        const auto& levels = r.at("target_levels").as_array();
        ASSERT_EQ(levels.size(), 3u);
        for (int t = 0; t < 3; ++t) {
          EXPECT_EQ(levels[t].as_int(), oracle.level[targets[t]])
              << name << " source " << source << " target " << targets[t];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// approx_dist: landmark estimates, exact fallback, epoch invalidation

namespace approx {

// Two disjoint 32-vertex chains: 0-1-...-31 and 32-33-...-63. All the
// top-degree pivots (degree 2, ties to the lower id) live in the first
// chain, so the second chain is invisible to the landmark index.
micg::graph::any_csr two_chains() {
  micg::graph::graph_builder64 b(64);
  for (std::int64_t i = 0; i + 1 < 32; ++i) b.add_edge(i, i + 1);
  for (std::int64_t i = 32; i + 1 < 64; ++i) b.add_edge(i, i + 1);
  return micg::graph::build_auto(std::move(b));
}

}  // namespace approx

TEST(ApproxDist, ChainBoundsBracketTheExactDistance) {
  graph_store store;
  store.add("c", micg::graph::to_narrowest(micg::graph::make_chain(32)));
  micg::obs::recorder rec;
  service svc(store,
              {.max_inflight = 2, .max_waiting = 2, .threads_per_query = 1},
              &rec);

  // Same vertex: trivially exact, never approximate.
  const json same = parse(svc.handle_line(
      R"({"op":"approx_dist","graph":"c","params":{"source":5,"target":5}})"));
  ASSERT_EQ(same.at("status").as_string(), "ok");
  EXPECT_EQ(same.at("result").at("distance").as_int(), 0);
  EXPECT_FALSE(same.at("result").at("approximate").as_bool());
  EXPECT_EQ(same.at("result").at("landmarks").as_int(), 16);

  // End to end on the chain (true distance 31): every pivot sits on the
  // one path, so the triangle upper bound is tight (31) while the best
  // lower bound |d(L,0)-d(L,31)| = 29 comes from pivot 1. Bounds do not
  // meet -> flagged approximate, and the answer upper-bounds the truth.
  const json est = parse(svc.handle_line(
      R"({"op":"approx_dist","graph":"c","params":{"source":0,"target":31}})"));
  ASSERT_EQ(est.at("status").as_string(), "ok");
  EXPECT_TRUE(est.at("result").at("approximate").as_bool());
  EXPECT_EQ(est.at("result").at("distance").as_int(), 31);
  EXPECT_EQ(est.at("result").at("upper").as_int(), 31);
  EXPECT_EQ(est.at("result").at("lower").as_int(), 29);

  // exact=true demands a real traversal: same number, no approximate
  // flag, and the fallback counter moves.
  const json exact = parse(svc.handle_line(
      R"({"op":"approx_dist","graph":"c","params":{"source":0,"target":31,"exact":true}})"));
  ASSERT_EQ(exact.at("status").as_string(), "ok");
  EXPECT_EQ(exact.at("result").at("distance").as_int(), 31);
  EXPECT_FALSE(exact.at("result").at("approximate").as_bool());
  EXPECT_EQ(rec.get_counter("serve.landmark.fallbacks").total(), 1u);
  EXPECT_EQ(rec.get_counter("serve.landmark.hits").total(), 2u);
  // One graph, one epoch: the index was built exactly once.
  EXPECT_EQ(rec.get_counter("serve.landmark.builds").total(), 1u);
}

TEST(ApproxDist, PivotBlindPairsFallBackToAnExactTraversal) {
  graph_store store;
  store.add("cc", approx::two_chains());
  micg::obs::recorder rec;
  service svc(store,
              {.max_inflight = 2, .max_waiting = 2, .threads_per_query = 1},
              &rec);

  // Both endpoints live in the chain no pivot can reach: the index knows
  // nothing, so the service silently runs the real traversal.
  const json resp = parse(svc.handle_line(
      R"({"op":"approx_dist","graph":"cc","params":{"source":40,"target":50}})"));
  ASSERT_EQ(resp.at("status").as_string(), "ok");
  EXPECT_EQ(resp.at("result").at("distance").as_int(), 10);
  EXPECT_FALSE(resp.at("result").at("approximate").as_bool());
  EXPECT_EQ(rec.get_counter("serve.landmark.fallbacks").total(), 1u);
  EXPECT_EQ(rec.get_counter("serve.landmark.hits").total(), 0u);
}

TEST(ApproxDist, CompactionInvalidatesTheLandmarkCache) {
  graph_store store;
  store.add("cc", approx::two_chains());
  micg::obs::recorder rec;
  service svc(store,
              {.max_inflight = 2, .max_waiting = 2, .threads_per_query = 1},
              &rec);

  // Epoch 0: a pivot reaches 0 but not 63, which proves the endpoints
  // sit in different components — definitive, not approximate.
  const json before = parse(svc.handle_line(
      R"({"op":"approx_dist","graph":"cc","params":{"source":0,"target":63}})"));
  ASSERT_EQ(before.at("status").as_string(), "ok");
  EXPECT_EQ(before.at("epoch").as_int(), 0);
  EXPECT_EQ(before.at("result").at("distance").as_int(), -1);
  EXPECT_FALSE(before.at("result").at("approximate").as_bool());

  // Bridge the chains and compact: epoch bumps, and the compaction
  // refreshes the cached index. A stale cache would still insist the
  // pair is unreachable.
  EXPECT_EQ(status_of(svc.handle_line(
                R"({"op":"insert","graph":"cc","params":{"edges":[[31,32]]}})")),
            "ok");
  const json comp =
      parse(svc.handle_line(R"({"op":"compact","graph":"cc"})"));
  ASSERT_EQ(comp.at("status").as_string(), "ok");
  EXPECT_EQ(comp.at("epoch").as_int(), 1);

  const json after = parse(svc.handle_line(
      R"({"op":"approx_dist","graph":"cc","params":{"source":0,"target":63}})"));
  ASSERT_EQ(after.at("status").as_string(), "ok");
  EXPECT_EQ(after.at("epoch").as_int(), 1);
  // The 64-chain end-to-end distance; every pivot's sum bound is tight.
  EXPECT_EQ(after.at("result").at("distance").as_int(), 63);
  EXPECT_TRUE(after.at("result").at("approximate").as_bool());
  EXPECT_EQ(after.at("result").at("upper").as_int(), 63);

  // Built once lazily at epoch 0, rebuilt eagerly by the compaction; the
  // post-compaction query hit the refreshed cache instead of building.
  EXPECT_EQ(rec.get_counter("serve.landmark.builds").total(), 2u);
}

// ---------------------------------------------------------------------------
// Sessions over faulty transports

TEST(Session, MalformedFramesGetErrorsAndTheSessionContinues) {
  graph_store store;
  store.add("g", grid());
  service svc(store, {.max_inflight = 1, .max_waiting = 1,
                      .threads_per_query = 1});
  faulty_stream in(
      "garbage\n"
      "\n"                                    // blank: ignored, no response
      "{\"op\":\"ping\",\"id\":\"p\"}\n");
  std::ostringstream out;
  svc.serve_session(in, out);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(status_of(line), "bad_request");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(status_of(line), "ok");
  EXPECT_EQ(parse(line).at("id").as_string(), "p");
  EXPECT_FALSE(std::getline(lines, line));  // exactly two responses
}

TEST(Session, OversizedFrameAnswersOnceAndCloses) {
  graph_store store;
  service svc(store, {.max_inflight = 1, .max_waiting = 1,
                      .threads_per_query = 1, .max_frame_bytes = 64});
  faulty_stream in(std::string(200, 'x') + "\n{\"op\":\"ping\"}\n");
  std::ostringstream out;
  svc.serve_session(in, out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(status_of(line), "too_large");
  EXPECT_FALSE(std::getline(lines, line));  // framing lost: closed
}

TEST(Session, IoErrorMidFrameClosesSilently) {
  graph_store store;
  service svc(store, {.max_inflight = 1, .max_waiting = 1,
                      .threads_per_query = 1});
  faulty_stream in("{\"op\":\"ping\"}\n{\"op\":\"pi", fault_mode::error_at,
                   18);
  std::ostringstream out;
  svc.serve_session(in, out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(status_of(line), "ok");  // the complete frame was served
  EXPECT_FALSE(std::getline(lines, line));  // the poisoned one was not
}

TEST(Session, TruncatedFinalFrameIsABadRequest) {
  graph_store store;
  service svc(store, {.max_inflight = 1, .max_waiting = 1,
                      .threads_per_query = 1});
  faulty_stream in(R"({"op":"ping)", fault_mode::eof_at, 12);
  std::ostringstream out;
  svc.serve_session(in, out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(status_of(line), "bad_request");
}

// ---------------------------------------------------------------------------
// End to end: unix socket, concurrent clients, a mutating writer

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/micg_serve_test_" + std::to_string(::getpid()) + ".sock";
    store_.add("g", grid());
  }

  std::string path_;
  graph_store store_;
};

TEST_F(EndToEnd, ThirtyTwoConcurrentInFlightRequests) {
  micg::serve::server_options opt;
  opt.listen = "unix:" + path_;
  opt.svc = {.max_inflight = 32, .max_waiting = 0, .threads_per_query = 1};
  micg::serve::server srv(store_, opt);
  srv.bind_and_listen();
  std::thread server_thread([&] { srv.run(); });

  // 32 clients connect, rendezvous, then hold a slot each for 400 ms.
  // max_waiting = 0 means any request that does NOT find a free slot is
  // shed with `overloaded` — so 32 ok responses prove 32 requests were
  // genuinely in flight at once.
  constexpr int kClients = 32;
  std::atomic<int> ready{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      micg::serve::client c(opt.listen);
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      const json resp = c.call(
          "sleep", "", json(json_object{{"ms", json(400)}}));
      if (resp.at("status").as_string() == "ok" &&
          resp.at("result").at("slept_ms").as_int() == 400) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);

  micg::serve::client c(opt.listen);
  EXPECT_EQ(c.call("shutdown", "").at("status").as_string(), "ok");
  server_thread.join();
  ::unlink(path_.c_str());
}

TEST_F(EndToEnd, ConcurrentQueriesWhileAWriterMutatesAndCompacts) {
  micg::serve::server_options opt;
  opt.listen = "unix:" + path_;
  opt.svc = {.max_inflight = 8, .max_waiting = 64, .threads_per_query = 1,
             .compact_every = 4};
  micg::serve::server srv(store_, opt);
  srv.bind_and_listen();
  std::thread server_thread([&] { srv.run(); });

  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    readers.emplace_back([&, i] {
      micg::serve::client c(opt.listen);
      for (int k = 0; k < 12; ++k) {
        const char* op = (i + k) % 2 == 0 ? "bfs" : "color";
        const json resp =
            c.call(op, "g", json(json_object{{"threads", json(1)}}));
        if (resp.at("status").as_string() != "ok" ||
            resp.at("epoch").as_int() < 0) {
          failed.store(true);
        }
      }
    });
  }
  std::thread writer([&] {
    micg::serve::client c(opt.listen);
    for (int k = 0; k < 24; ++k) {
      // Toggle an edge between corners; every 4th op auto-compacts.
      const char* op = k % 2 == 0 ? "insert" : "erase";
      json edges(micg::api::json_array{
          json(micg::api::json_array{json(0), json(63)})});
      const json resp = c.call(
          op, "g", json(json_object{{"edges", std::move(edges)}}));
      if (resp.at("status").as_string() != "ok") failed.store(true);
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(failed.load());

  // The store is consistent after the dust settles: compact and query.
  micg::serve::client c(opt.listen);
  const json comp = c.call("compact", "g");
  EXPECT_EQ(comp.at("status").as_string(), "ok");
  const json info = c.call("info", "g");
  EXPECT_EQ(info.at("status").as_string(), "ok");
  EXPECT_EQ(info.at("result").at("num_vertices").as_int(), 64);

  EXPECT_EQ(c.call("shutdown", "").at("status").as_string(), "ok");
  server_thread.join();
  ::unlink(path_.c_str());
}

TEST_F(EndToEnd, DialFailsCleanlyOnDeadEndpoint) {
  EXPECT_THROW(micg::serve::client("unix:" + path_ + ".nope"),
               micg::check_error);
}

}  // namespace
