#!/usr/bin/env bash
# End-to-end serving integration (ctest target serve_integration):
#
#  1. generate a graph and launch `micg serve` on a unix socket;
#  2. wait for the readiness line, then drive a scripted NDJSON mix —
#     queries, mutations, a compaction, error paths — through
#     `micg query --script` on one connection;
#  3. compare the response transcript byte-for-byte against
#     tests/golden/serve_session.golden (responses are deterministic:
#     no timing fields, canonical field order, sequential epochs);
#  4. shut the server down over the wire and validate the metrics file
#     it writes against the micg.metrics.v1 schema: per-request spans
#     named serve.<op>/<graph> carrying wait_ms/epoch values, and the
#     admission counters.
#
# Usage: serve_integration.sh MICG_BINARY GOLDEN_DIR
set -euo pipefail

MICG=$1
GOLDEN_DIR=$2

# The transcript golden assumes the untuned request path; a CI job that
# exports MICG_TUNE=auto must not change this script's expectations.
export MICG_TUNE=fixed

work=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

"$MICG" gen grid2d 8 8 -o "$work/g.micg"

sock="$work/serve.sock"
"$MICG" serve --listen "unix:$sock" --graph "g=$work/g.micg" \
  --compact-every 4 --threads-per-query 1 \
  --metrics-json "$work/metrics.json" >"$work/serve.log" 2>&1 &
server_pid=$!

ready=0
for _ in $(seq 1 200); do
  if grep -q "^serving 1 graph(s) on " "$work/serve.log" 2>/dev/null; then
    ready=1
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "FAIL: server exited before becoming ready" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  sleep 0.05
done
if [ "$ready" != 1 ]; then
  echo "FAIL: server never printed the readiness line" >&2
  cat "$work/serve.log" >&2
  exit 1
fi

# The scripted mix: happy-path queries, buffered mutation + explicit
# compaction, auto-compaction (compact-every 4), and the error paths
# (unknown graph, unknown op, malformed frame) — all on one connection.
cat >"$work/script.ndjson" <<'EOF'
{"id":"q01","op":"ping"}
{"id":"q02","op":"list"}
{"id":"q03","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
{"id":"q04","op":"insert","graph":"g","params":{"edges":[[0,63]]}}
{"id":"q05","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
{"id":"q06","op":"compact","graph":"g"}
{"id":"q07","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
{"id":"q08","op":"color","graph":"g","params":{"threads":1}}
{"id":"q09","op":"info","graph":"g"}
{"id":"q10","op":"bfs","graph":"missing"}
{"id":"q11","op":"frobnicate","graph":"g"}
not json
{"id":"q12","op":"bfs","graph":"g","params":{"source":9000}}
{"id":"q13","op":"erase","graph":"g","params":{"edges":[[0,63],[0,1],[1,8],[9,10]]}}
{"id":"q14","op":"list"}
{"id":"q15","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
EOF

"$MICG" query --connect "unix:$sock" --script "$work/script.ndjson" \
  >"$work/session.out"

if ! diff -u "$GOLDEN_DIR/serve_session.golden" "$work/session.out"; then
  echo "FAIL: session transcript diverged from golden" >&2
  echo "(MICG_UPDATE_GOLDENS: cp $work/session.out" \
       "tests/golden/serve_session.golden)" >&2
  exit 1
fi

"$MICG" query --connect "unix:$sock" shutdown >/dev/null
wait "$server_pid"
server_pid=""

grep -q "^shutdown complete$" "$work/serve.log"

python3 - "$work/metrics.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
assert len(records) == 1, f"one serving record expected, got {len(records)}"
r = records[0]
assert r["schema"] == "micg.metrics.v1"
assert r["meta"]["tool"] == "micg serve", r["meta"]
assert r["meta"]["listen"].startswith("unix:"), r["meta"]
assert all(isinstance(v, str) for v in r["meta"].values())
assert all(isinstance(v, int) and v >= 0 for v in r["counters"].values())

# Gated requests: q03..q13 and q15 (12); ping/list/shutdown bypass the
# gate and the malformed frame is rejected before admission.
assert r["counters"]["serve.requests"] == 12, r["counters"]
assert r["counters"].get("serve.shed", 0) == 0, r["counters"]

# The record interleaves per-request serve spans with the spans the
# kernels themselves emit (color.round etc.); the serving shape lives in
# the serve.* subset.
spans = [s for s in r["spans"] if s["name"].startswith("serve.")]
assert len(spans) == 12, f"one span per gated request, got {len(spans)}"
names = [s["name"] for s in spans]
assert names.count("serve.bfs/g") == 5, names
assert "serve.insert/g" in names and "serve.compact/g" in names, names
assert "serve.bfs/missing" in names, names
for s in spans:
    assert s["seconds"] >= 0
    assert "wait_ms" in s["values"], s
errors = [s for s in spans if s["values"].get("error") == 1.0]
assert len(errors) == 3, [s["name"] for s in errors]  # q10, q11, q12
epochs = [s["values"]["epoch"] for s in spans if "epoch" in s["values"]]
assert epochs and max(epochs) == 2.0, epochs  # compact + auto-compact
print(f"validated serving metrics: {len(spans)} spans, "
      f"{r['counters']['serve.requests']} requests, max epoch {max(epochs):.0f}")
EOF

# ---------------------------------------------------------------------------
# Part 2: the coalesced serving path. A second server runs with the
# coalescing window and the landmark cache on; the scripted mix is
# sequential, so every bfs forms a deterministic single-member batch
# (answered through the MSBFS demux path, variant "MSBFS-coalesced"),
# and the approx_dist answers exercise hit / exact-fallback / same-vertex
# / post-compaction-refresh — all byte-compared against a second golden.

sock2="$work/serve2.sock"
"$MICG" serve --listen "unix:$sock2" --graph "g=$work/g.micg" \
  --threads-per-query 1 --coalesce-window-ms 40 --coalesce-lanes 8 \
  --landmarks 16 --metrics-json "$work/metrics2.json" \
  >"$work/serve2.log" 2>&1 &
server_pid=$!

ready=0
for _ in $(seq 1 200); do
  if grep -q "^serving 1 graph(s) on " "$work/serve2.log" 2>/dev/null; then
    ready=1
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "FAIL: coalescing server exited before becoming ready" >&2
    cat "$work/serve2.log" >&2
    exit 1
  fi
  sleep 0.05
done
if [ "$ready" != 1 ]; then
  echo "FAIL: coalescing server never printed the readiness line" >&2
  cat "$work/serve2.log" >&2
  exit 1
fi

cat >"$work/script2.ndjson" <<'EOF'
{"id":"c01","op":"bfs","graph":"g","params":{"source":0,"targets":[63]}}
{"id":"c02","op":"approx_dist","graph":"g","params":{"source":0,"target":63}}
{"id":"c03","op":"approx_dist","graph":"g","params":{"source":0,"target":63,"exact":true}}
{"id":"c04","op":"approx_dist","graph":"g","params":{"source":5,"target":5}}
{"id":"c05","op":"insert","graph":"g","params":{"edges":[[0,63]]}}
{"id":"c06","op":"compact","graph":"g"}
{"id":"c07","op":"bfs","graph":"g","params":{"source":0,"targets":[63]}}
{"id":"c08","op":"approx_dist","graph":"g","params":{"source":0,"target":63}}
{"id":"c09","op":"bfs","graph":"g","params":{"source":9000}}
{"id":"c10","op":"approx_dist","graph":"g","params":{"target":9000}}
EOF

"$MICG" query --connect "unix:$sock2" --script "$work/script2.ndjson" \
  >"$work/session2.out"

if ! diff -u "$GOLDEN_DIR/serve_coalesce.golden" "$work/session2.out"; then
  echo "FAIL: coalesced session transcript diverged from golden" >&2
  echo "(MICG_UPDATE_GOLDENS: cp $work/session2.out" \
       "tests/golden/serve_coalesce.golden)" >&2
  exit 1
fi

"$MICG" query --connect "unix:$sock2" shutdown >/dev/null
wait "$server_pid"
server_pid=""

grep -q "^shutdown complete$" "$work/serve2.log"

python3 - "$work/metrics2.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
assert len(records) == 1, f"one serving record expected, got {len(records)}"
r = records[0]
c = r["counters"]

# c01/c07/c09 each form a single-member batch; the other seven gated
# requests take the ordinary path, and the request counter sees all ten
# uniformly.
assert c["serve.coalesce.batches"] == 3, c
assert c["serve.coalesce.requests"] == 3, c
assert c["serve.requests"] == 10, c

# approx_dist accounting: c02 (approximate), c04 (same vertex) and c08
# (post-compaction) answer from the index; c03 demands exact and falls
# back to one real traversal; c10 is rejected before the index is
# consulted. The index is built lazily at c02 and refreshed by the c06
# compaction.
assert c["serve.landmark.hits"] == 3, c
assert c["serve.landmark.fallbacks"] == 1, c
assert c["serve.landmark.builds"] == 2, c
assert c["landmark.builds"] == 2, c

spans = [s for s in r["spans"] if s["name"].startswith("serve.")]
names = [s["name"] for s in spans]
assert names.count("serve.coalesce/g") == 3, names
assert names.count("serve.approx_dist/g") == 5, names
batch_spans = [s for s in spans if s["name"] == "serve.coalesce/g"]
for s in batch_spans:
    assert s["values"]["members"] == 1.0, s
epochs = [s["values"]["epoch"] for s in spans if "epoch" in s["values"]]
assert epochs and max(epochs) == 1.0, epochs
print(f"validated coalesced metrics: {len(spans)} spans, "
      f"{c['serve.coalesce.batches']} batches, "
      f"{c['serve.landmark.builds']} landmark builds")
EOF

# ---------------------------------------------------------------------------
# Part 3: weighted workloads on the wire. A third server answers sssp and
# cc through the generic query path. Weights derive from (seed, endpoint
# pair) — never from storage order — so compactions that rewrite the CSR
# must not move a single distance. The proof: insert a shortcut and
# compact (distances move: the edge is real), then erase it and compact
# again. The edge set is back to the original but the CSR has been
# rewritten twice; the final sssp (s10) must equal the baseline (s01)
# byte-for-byte modulo the epoch stamp. The python check asserts that on
# top of the byte-compared golden.

sock3="$work/serve3.sock"
"$MICG" serve --listen "unix:$sock3" --graph "g=$work/g.micg" \
  --threads-per-query 1 --metrics-json "$work/metrics3.json" \
  >"$work/serve3.log" 2>&1 &
server_pid=$!

ready=0
for _ in $(seq 1 200); do
  if grep -q "^serving 1 graph(s) on " "$work/serve3.log" 2>/dev/null; then
    ready=1
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "FAIL: weighted server exited before becoming ready" >&2
    cat "$work/serve3.log" >&2
    exit 1
  fi
  sleep 0.05
done
if [ "$ready" != 1 ]; then
  echo "FAIL: weighted server never printed the readiness line" >&2
  cat "$work/serve3.log" >&2
  exit 1
fi

# s01/s02 baseline; s03 buffers a shortcut 0-63 (weight derived from the
# endpoints); s04 still answers from the pinned snapshot; s05 compacts
# and s06/s07 see the shortcut; s08+s09 undo it and compact again; s10
# is the pin proof; s11 is the error path; s12 shows a different weight
# seed answers differently.
cat >"$work/script3.ndjson" <<'EOF'
{"id":"s01","op":"sssp","graph":"g","params":{"threads":1,"source":0,"delta":16,"targets":[7,63]}}
{"id":"s02","op":"cc","graph":"g","params":{"threads":1}}
{"id":"s03","op":"insert","graph":"g","params":{"edges":[[0,63]]}}
{"id":"s04","op":"sssp","graph":"g","params":{"threads":1,"source":0,"delta":16,"targets":[7,63]}}
{"id":"s05","op":"compact","graph":"g"}
{"id":"s06","op":"sssp","graph":"g","params":{"threads":1,"source":0,"delta":16,"targets":[7,63]}}
{"id":"s07","op":"cc","graph":"g","params":{"threads":1}}
{"id":"s08","op":"erase","graph":"g","params":{"edges":[[0,63]]}}
{"id":"s09","op":"compact","graph":"g"}
{"id":"s10","op":"sssp","graph":"g","params":{"threads":1,"source":0,"delta":16,"targets":[7,63]}}
{"id":"s11","op":"sssp","graph":"g","params":{"source":9000}}
{"id":"s12","op":"sssp","graph":"g","params":{"threads":1,"source":0,"weights":5,"delta":16,"targets":[7,63]}}
EOF

"$MICG" query --connect "unix:$sock3" --script "$work/script3.ndjson" \
  >"$work/session3.out"

if ! diff -u "$GOLDEN_DIR/serve_sssp.golden" "$work/session3.out"; then
  echo "FAIL: weighted session transcript diverged from golden" >&2
  echo "(MICG_UPDATE_GOLDENS: cp $work/session3.out" \
       "tests/golden/serve_sssp.golden)" >&2
  exit 1
fi

"$MICG" query --connect "unix:$sock3" shutdown >/dev/null
wait "$server_pid"
server_pid=""

grep -q "^shutdown complete$" "$work/serve3.log"

python3 - "$work/session3.out" "$work/metrics3.json" <<'EOF'
import json
import sys

by_id = {}
with open(sys.argv[1]) as f:
    for line in f:
        msg = json.loads(line)
        by_id[msg["id"]] = msg

# Buffered mutations stay invisible until compaction: s04 answers from
# the same pinned snapshot as s01.
assert by_id["s04"]["result"] == by_id["s01"]["result"], (
    by_id["s01"], by_id["s04"])
assert by_id["s04"]["epoch"] == by_id["s01"]["epoch"]

# After compaction the shortcut is real: the weighted path to 63 (and
# through it, much of the grid) gets cheaper.
d_base = by_id["s01"]["result"]["target_dists"][1]
d_short = by_id["s06"]["result"]["target_dists"][1]
assert d_short < d_base, (d_base, d_short)

# The weighted-snapshot pin: erase + compact restores the original edge
# set after TWO CSR rewrites, and every distance — plus the one-thread
# relaxation/bucket trace — returns to the baseline exactly, because
# weights derive from endpoint pairs, never from adjacency slots.
assert by_id["s10"]["result"] == by_id["s01"]["result"], (
    by_id["s01"], by_id["s10"])
assert by_id["s10"]["epoch"] == by_id["s01"]["epoch"] + 2

# A different weight seed is a different metric space.
assert by_id["s12"]["result"]["target_dists"] != by_id["s10"]["result"]["target_dists"]

# cc agrees with itself across the flips (the grid stays one component).
assert by_id["s02"]["result"]["num_components"] == 1, by_id["s02"]
assert by_id["s07"]["result"] == by_id["s02"]["result"]

assert by_id["s11"]["status"] != "ok", by_id["s11"]

with open(sys.argv[2]) as f:
    doc = json.load(f)
r = doc["records"][0]
assert r["counters"]["serve.requests"] == 12, r["counters"]
spans = [s for s in r["spans"] if s["name"].startswith("serve.")]
names = [s["name"] for s in spans]
assert names.count("serve.sssp/g") == 6, names
assert names.count("serve.cc/g") == 2, names
errors = [s for s in spans if s["values"].get("error") == 1.0]
assert len(errors) == 1, [s["name"] for s in errors]  # s11
print(f"validated weighted serving: {names.count('serve.sssp/g')} sssp + "
      f"{names.count('serve.cc/g')} cc spans, pinned across compaction")
EOF

echo "serve_integration OK"
