#!/usr/bin/env bash
# End-to-end serving integration (ctest target serve_integration):
#
#  1. generate a graph and launch `micg serve` on a unix socket;
#  2. wait for the readiness line, then drive a scripted NDJSON mix —
#     queries, mutations, a compaction, error paths — through
#     `micg query --script` on one connection;
#  3. compare the response transcript byte-for-byte against
#     tests/golden/serve_session.golden (responses are deterministic:
#     no timing fields, canonical field order, sequential epochs);
#  4. shut the server down over the wire and validate the metrics file
#     it writes against the micg.metrics.v1 schema: per-request spans
#     named serve.<op>/<graph> carrying wait_ms/epoch values, and the
#     admission counters.
#
# Usage: serve_integration.sh MICG_BINARY GOLDEN_DIR
set -euo pipefail

MICG=$1
GOLDEN_DIR=$2

work=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

"$MICG" gen grid2d 8 8 -o "$work/g.micg"

sock="$work/serve.sock"
"$MICG" serve --listen "unix:$sock" --graph "g=$work/g.micg" \
  --compact-every 4 --threads-per-query 1 \
  --metrics-json "$work/metrics.json" >"$work/serve.log" 2>&1 &
server_pid=$!

ready=0
for _ in $(seq 1 200); do
  if grep -q "^serving 1 graph(s) on " "$work/serve.log" 2>/dev/null; then
    ready=1
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "FAIL: server exited before becoming ready" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  sleep 0.05
done
if [ "$ready" != 1 ]; then
  echo "FAIL: server never printed the readiness line" >&2
  cat "$work/serve.log" >&2
  exit 1
fi

# The scripted mix: happy-path queries, buffered mutation + explicit
# compaction, auto-compaction (compact-every 4), and the error paths
# (unknown graph, unknown op, malformed frame) — all on one connection.
cat >"$work/script.ndjson" <<'EOF'
{"id":"q01","op":"ping"}
{"id":"q02","op":"list"}
{"id":"q03","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
{"id":"q04","op":"insert","graph":"g","params":{"edges":[[0,63]]}}
{"id":"q05","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
{"id":"q06","op":"compact","graph":"g"}
{"id":"q07","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
{"id":"q08","op":"color","graph":"g","params":{"threads":1}}
{"id":"q09","op":"info","graph":"g"}
{"id":"q10","op":"bfs","graph":"missing"}
{"id":"q11","op":"frobnicate","graph":"g"}
not json
{"id":"q12","op":"bfs","graph":"g","params":{"source":9000}}
{"id":"q13","op":"erase","graph":"g","params":{"edges":[[0,63],[0,1],[1,8],[9,10]]}}
{"id":"q14","op":"list"}
{"id":"q15","op":"bfs","graph":"g","params":{"threads":1,"source":0,"targets":[63]}}
EOF

"$MICG" query --connect "unix:$sock" --script "$work/script.ndjson" \
  >"$work/session.out"

if ! diff -u "$GOLDEN_DIR/serve_session.golden" "$work/session.out"; then
  echo "FAIL: session transcript diverged from golden" >&2
  echo "(MICG_UPDATE_GOLDENS: cp $work/session.out" \
       "tests/golden/serve_session.golden)" >&2
  exit 1
fi

"$MICG" query --connect "unix:$sock" shutdown >/dev/null
wait "$server_pid"
server_pid=""

grep -q "^shutdown complete$" "$work/serve.log"

python3 - "$work/metrics.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
assert len(records) == 1, f"one serving record expected, got {len(records)}"
r = records[0]
assert r["schema"] == "micg.metrics.v1"
assert r["meta"]["tool"] == "micg serve", r["meta"]
assert r["meta"]["listen"].startswith("unix:"), r["meta"]
assert all(isinstance(v, str) for v in r["meta"].values())
assert all(isinstance(v, int) and v >= 0 for v in r["counters"].values())

# Gated requests: q03..q13 and q15 (12); ping/list/shutdown bypass the
# gate and the malformed frame is rejected before admission.
assert r["counters"]["serve.requests"] == 12, r["counters"]
assert r["counters"].get("serve.shed", 0) == 0, r["counters"]

# The record interleaves per-request serve spans with the spans the
# kernels themselves emit (color.round etc.); the serving shape lives in
# the serve.* subset.
spans = [s for s in r["spans"] if s["name"].startswith("serve.")]
assert len(spans) == 12, f"one span per gated request, got {len(spans)}"
names = [s["name"] for s in spans]
assert names.count("serve.bfs/g") == 5, names
assert "serve.insert/g" in names and "serve.compact/g" in names, names
assert "serve.bfs/missing" in names, names
for s in spans:
    assert s["seconds"] >= 0
    assert "wait_ms" in s["values"], s
errors = [s for s in spans if s["values"].get("error") == 1.0]
assert len(errors) == 3, [s["name"] for s in errors]  # q10, q11, q12
epochs = [s["values"]["epoch"] for s in spans if "epoch" in s["values"]]
assert epochs and max(epochs) == 2.0, epochs  # compact + auto-compact
print(f"validated serving metrics: {len(spans)} spans, "
      f"{r['counters']['serve.requests']} requests, max epoch {max(epochs):.0f}")
EOF

echo "serve_integration OK"
