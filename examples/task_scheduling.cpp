// The paper's motivating application for graph coloring (§I): "represent
// the tasks of a computation as the vertices of a graph, and an edge
// connects two vertices if these two vertices cannot be computed
// simultaneously. Finding a coloring of this graph allows to partition
// the tasks into sets that can be safely computed in parallel."
//
// We build a task conflict graph (tasks = mesh vertices; conflicts =
// shared state with neighbors), color it, then execute the tasks color
// class by color class in parallel — each class is an independent set, so
// updates within a class touch disjoint state without locks (a parallel
// Gauss–Seidel sweep). The result is compared against a sequential sweep
// over the same schedule.
#include <iostream>
#include <vector>

#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/generators.hpp"
#include "micg/rt/exec.hpp"

namespace {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

/// One Gauss–Seidel-style task: relax v from its neighbors, in place.
/// Safe to run concurrently for non-adjacent vertices.
void relax(const csr_graph& g, std::vector<double>& x, vertex_t v) {
  double sum = 2.0 * x[static_cast<std::size_t>(v)];
  for (vertex_t w : g.neighbors(v)) sum += x[static_cast<std::size_t>(w)];
  x[static_cast<std::size_t>(v)] =
      sum / (static_cast<double>(g.degree(v)) + 2.0);
}

}  // namespace

int main() {
  // Task graph: a 3-D mesh with a wide stencil (realistic FEM coupling).
  micg::graph::fem_params p;
  p.sx = p.sy = 20;
  p.sz = 40;
  p.stencil_pairs = 13;
  const auto g = micg::graph::make_fem_like(p);
  std::cout << "task graph: " << g.num_vertices() << " tasks, "
            << g.num_edges() << " conflicts\n";

  // Color the conflict graph: each color class is an independent set.
  micg::color::iterative_options copt;
  copt.ex.kind = micg::rt::backend::cilk_holder;
  copt.ex.threads = 4;
  copt.ex.chunk = 64;
  const auto coloring = micg::color::iterative_color(g, copt);
  std::cout << "schedule: " << coloring.num_colors
            << " parallel phases (colors), valid="
            << micg::color::is_valid_coloring(g, coloring.color) << "\n";

  // Group tasks by color.
  std::vector<std::vector<vertex_t>> classes(
      static_cast<std::size_t>(coloring.num_colors));
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    classes[static_cast<std::size_t>(
                coloring.color[static_cast<std::size_t>(v)] - 1)]
        .push_back(v);
  }

  // Reference: sequential sweep in schedule order.
  std::vector<double> seq(static_cast<std::size_t>(g.num_vertices()), 0.0);
  seq[0] = 100.0;
  for (const auto& cls : classes) {
    for (vertex_t v : cls) relax(g, seq, v);
  }

  // Parallel: each phase runs its independent set concurrently. Within a
  // class no two tasks are adjacent, so in-place updates cannot race —
  // the whole point of the coloring. The per-phase result is identical to
  // the sequential sweep because tasks in a class read only out-of-class
  // state.
  std::vector<double> par(static_cast<std::size_t>(g.num_vertices()), 0.0);
  par[0] = 100.0;
  micg::rt::exec ex;
  ex.kind = micg::rt::backend::omp_dynamic;
  ex.threads = 4;
  ex.chunk = 64;
  for (const auto& cls : classes) {
    micg::rt::for_range(
        ex, static_cast<std::int64_t>(cls.size()),
        [&](std::int64_t b, std::int64_t e, int) {
          for (std::int64_t i = b; i < e; ++i) {
            relax(g, par, cls[static_cast<std::size_t>(i)]);
          }
        });
  }

  double max_diff = 0.0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(seq[i] - par[i]));
  }
  std::cout << "parallel sweep matches sequential schedule: max |diff| = "
            << max_diff << (max_diff == 0.0 ? "  (exact)" : "") << "\n";
  std::cout << "phases executed: " << classes.size()
            << "  (fewer colors = fewer synchronization points)\n";
  return max_diff == 0.0 ? 0 : 1;
}
