// Quickstart: build a graph, color it in parallel, run a parallel BFS,
// smooth a vertex signal — the three kernels of the paper in ~60 lines.
//
//   ./quickstart [threads]
#include <cstdlib>
#include <iostream>

#include "micg/bfs/layered.hpp"
#include "micg/bfs/validate.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/suite.hpp"
#include "micg/irregular/kernel.hpp"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;

  // A scaled-down stand-in for the paper's `hood` FEM matrix.
  const auto& entry = micg::graph::suite_entry_by_name("hood");
  const auto g = micg::graph::make_suite_graph(entry, 0.05);
  std::cout << "graph: " << entry.name << "  |V|=" << g.num_vertices()
            << "  |E|=" << g.num_edges() << "  Delta=" << g.max_degree()
            << "\n";

  // 1. Iterative parallel greedy coloring (Algorithms 2-4).
  micg::color::iterative_options copt;
  copt.ex.kind = micg::rt::backend::omp_dynamic;  // pick any of the nine
  copt.ex.threads = threads;
  copt.ex.chunk = 100;
  const auto coloring = micg::color::iterative_color(g, copt);
  std::cout << "coloring: " << coloring.num_colors << " colors in "
            << coloring.rounds << " round(s), valid="
            << micg::color::is_valid_coloring(g, coloring.color) << "\n";

  // 2. Layered parallel BFS with the block-accessed queue (Algorithm 7).
  micg::bfs::parallel_bfs_options bopt;
  bopt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
  bopt.ex.threads = threads;
  bopt.block = 32;
  const auto source = g.num_vertices() / 2;
  const auto bfs = micg::bfs::parallel_bfs(g, source, bopt);
  std::cout << "bfs: " << bfs.num_levels << " levels, reached "
            << bfs.reached << " vertices, valid="
            << micg::bfs::is_valid_bfs_levels(g, source, bfs.level) << "\n";

  // 3. Irregular-computation kernel (Algorithm 5): neighbor averaging.
  std::vector<double> state(static_cast<std::size_t>(g.num_vertices()),
                            1.0);
  state[0] = 1000.0;  // a spike to smooth out
  micg::irregular::kernel_options kopt;
  kopt.ex = copt.ex;
  kopt.iterations = 3;
  const auto smoothed = micg::irregular::irregular_kernel(g, state, kopt);
  std::cout << "kernel: state[0] " << state[0] << " -> " << smoothed[0]
            << " after " << kopt.iterations << " averaging iterations\n";
  return 0;
}
