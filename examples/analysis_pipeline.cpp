// Streaming graph-analysis pipeline — the TBB flow-graph/pipeline pattern
// the paper describes (§II-C: "It allows to easily set up a pipeline of
// tasks that perform complex tasks such as, typically, video compression,
// graphical rendering, and data processing").
//
// Stage 1 (serial source): generate a stream of graphs of growing size.
// Stage 2 (parallel):      color each graph and compute its statistics
//                          (the expensive, independent middle stage).
// Stage 3 (serial sink):   print a report row, in stream order.
#include <iostream>
#include <memory>

#include "micg/color/iterative.hpp"
#include "micg/color/ordering.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/props.hpp"
#include "micg/rt/pipeline.hpp"
#include "micg/rt/thread_pool.hpp"
#include "micg/support/table.hpp"

namespace {

struct job {
  int index;
  micg::graph::csr_graph graph;
  // filled by stage 2:
  int colors = 0;
  int degeneracy = 0;
  micg::graph::vertex_t components = 0;
  bool valid = false;
};

}  // namespace

int main() {
  constexpr int kJobs = 12;
  micg::rt::thread_pool pool(4);

  micg::table_printer report("streamed graph analyses (3-stage pipeline)");
  report.header({"#", "|V|", "|E|", "colors", "degeneracy", "components",
                 "valid"});

  micg::rt::pipeline p;
  int produced = 0;
  // Source: one Erdos-Renyi graph per token, growing sizes.
  p.add_filter(micg::rt::filter_mode::serial_in_order, [&](void*) -> void* {
    if (produced == kJobs) return nullptr;
    auto* j = new job;
    j->index = produced;
    j->graph = micg::graph::make_erdos_renyi(
        500 + 400 * produced, 8.0,
        static_cast<std::uint64_t>(produced) + 1);
    ++produced;
    return j;
  });
  // Parallel analysis stage: several graphs in flight at once.
  p.add_filter(micg::rt::filter_mode::parallel, [](void* d) -> void* {
    auto* j = static_cast<job*>(d);
    micg::color::iterative_options opt;
    opt.ex.kind = micg::rt::backend::omp_dynamic;
    opt.ex.threads = 1;  // stage-level parallelism comes from the pipeline
    const auto coloring = micg::color::iterative_color(j->graph, opt);
    j->colors = coloring.num_colors;
    j->valid = micg::color::is_valid_coloring(j->graph, coloring.color);
    j->degeneracy = micg::color::degeneracy(j->graph);
    j->components = micg::graph::count_components(j->graph);
    return j;
  });
  // Sink: emit rows in stream order.
  p.add_filter(micg::rt::filter_mode::serial_in_order,
               [&](void* d) -> void* {
                 std::unique_ptr<job> j(static_cast<job*>(d));
                 report.row(
                     {std::to_string(j->index),
                      micg::table_printer::fmt(static_cast<long long>(
                          j->graph.num_vertices())),
                      micg::table_printer::fmt(static_cast<long long>(
                          j->graph.num_edges())),
                      micg::table_printer::fmt(
                          static_cast<long long>(j->colors)),
                      micg::table_printer::fmt(
                          static_cast<long long>(j->degeneracy)),
                      micg::table_printer::fmt(
                          static_cast<long long>(j->components)),
                      j->valid ? "yes" : "NO"});
                 return nullptr;
               });

  p.run(pool, 4, /*max_tokens=*/4);
  report.print(std::cout);
  std::cout << "\nprocessed " << kJobs
            << " graphs with up to 4 in flight; rows arrived in order\n";
  return 0;
}
