// What-if explorer for the machine model: how would the coloring kernel
// scale on hypothetical MIC designs? The paper closes with "the final
// commercial design, codenamed Knights Corner, will feature more than 50
// cores" — this example sweeps core count, SMT width and memory latency
// around the KNF description and prints the predicted speedup at full
// thread count, including a Knights-Corner-like 57-core configuration.
#include <iostream>

#include "micg/graph/suite.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/table.hpp"

namespace {

double speedup_full(const micg::model::work_trace& trace,
                    const micg::model::machine_config& m) {
  micg::model::exec_options o;
  o.policy = micg::rt::backend::omp_dynamic;
  o.threads = m.cores * m.smt - m.smt;  // paper style: leave one core out
  o.chunk = 100;
  return micg::model::model_speedup(trace, o, m);
}

}  // namespace

int main() {
  const auto g = micg::graph::make_suite_graph(
      micg::graph::suite_entry_by_name("hood"), 0.1);
  const auto nat = micg::model::coloring_trace(g, false);
  const auto shuf = micg::model::coloring_trace(g, true);

  micg::table_printer t(
      "Predicted coloring speedup at full thread count (hood stand-in)");
  t.header({"machine", "cores", "smt", "mem-lat", "natural", "shuffled"});

  auto row = [&](const std::string& name,
                 const micg::model::machine_config& m) {
    t.row({name, micg::table_printer::fmt(static_cast<long long>(m.cores)),
           micg::table_printer::fmt(static_cast<long long>(m.smt)),
           micg::table_printer::fmt(m.mem_latency, 0),
           micg::table_printer::fmt(speedup_full(nat, m)),
           micg::table_printer::fmt(speedup_full(shuf, m))});
  };

  const auto knf = micg::model::machine_config::knf();
  row("KNF (paper)", knf);

  row("KNC-like", micg::model::machine_config::knc());

  auto wide_smt = knf;
  wide_smt.smt = 8;
  row("KNF + 8-way SMT", wide_smt);

  auto slow_mem = knf;
  slow_mem.mem_latency *= 2.0;
  row("KNF, 2x memory latency", slow_mem);

  auto fast_mem = knf;
  fast_mem.mem_latency *= 0.5;
  row("KNF, 1/2 memory latency", fast_mem);

  row("Host Xeon (paper)", micg::model::machine_config::host_xeon());

  t.print(std::cout);
  std::cout << "\nReading: more cores keep paying off for the "
               "latency-bound shuffled case as long as SMT width covers "
               "the memory latency; compute-bound natural ordering "
               "saturates with core count.\n";
  return 0;
}
