// Unstructured-mesh simulation sketch (§I: "in simulations that use
// unstructured mesh computations, dependencies on neighboring mesh
// elements make the structure of computations irregular"): a heat pulse
// diffuses over an FEM-style mesh (conserving total energy), then
// PageRank identifies the structurally central elements, all on the same
// parallel substrate.
#include <iostream>
#include <numeric>
#include <vector>

#include "micg/graph/generators.hpp"
#include "micg/irregular/heat.hpp"
#include "micg/irregular/pagerank.hpp"

int main() {
  micg::graph::fem_params p;
  p.sx = p.sy = 16;
  p.sz = 64;
  p.stencil_pairs = 13;
  const auto mesh = micg::graph::make_fem_like(p);
  std::cout << "mesh: " << mesh.num_vertices() << " elements, "
            << mesh.num_edges() << " couplings\n";

  micg::rt::exec ex;
  ex.kind = micg::rt::backend::tbb_simple;
  ex.threads = 4;
  ex.chunk = 128;

  // Heat: inject a pulse in one corner, diffuse, check conservation.
  std::vector<double> heat(static_cast<std::size_t>(mesh.num_vertices()),
                           0.0);
  heat[0] = 1000.0;
  const double before = std::accumulate(heat.begin(), heat.end(), 0.0);
  micg::irregular::heat_options hopt;
  hopt.ex = ex;
  hopt.alpha = 1.0 / (2.0 * static_cast<double>(mesh.max_degree()));
  hopt.steps = 200;
  const auto diffused = micg::irregular::heat_diffusion(mesh, heat, hopt);
  const double after =
      std::accumulate(diffused.begin(), diffused.end(), 0.0);
  const auto hottest = static_cast<std::size_t>(
      std::max_element(diffused.begin(), diffused.end()) -
      diffused.begin());
  std::cout << "heat: total " << before << " -> " << after
            << " (conserved), peak moved from element 0 to " << hottest
            << " with value " << diffused[hottest] << "\n";

  // PageRank: central mesh elements (interior > boundary).
  micg::irregular::pagerank_options popt;
  popt.ex = ex;
  const auto pr = micg::irregular::pagerank(mesh, popt);
  const auto central = static_cast<std::size_t>(
      std::max_element(pr.rank.begin(), pr.rank.end()) - pr.rank.begin());
  std::cout << "pagerank: converged=" << pr.converged << " in "
            << pr.iterations << " iterations; most central element "
            << central << " (corner element 0 rank " << pr.rank[0]
            << " < center rank " << pr.rank[central] << ")\n";
  return pr.converged && std::abs(after - before) < 1e-6 * before ? 0 : 1;
}
