// Graph500-style BFS benchmark (the paper cites BFS as "one of the
// reference graph algorithm of the Graph 500 benchmark", §I): generate an
// RMAT graph, run several BFS roots with every frontier variant, and
// report harmonic-mean TEPS (traversed edges per second).
//
//   ./graph500_bfs [scale] [edge_factor] [threads]
#include <cstdlib>
#include <iostream>
#include <type_traits>
#include <vector>

#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/bfs/validate.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 15;
  const int edge_factor = argc > 2 ? std::atoi(argv[2]) : 16;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;
  constexpr int kRoots = 8;

  std::cout << "Generating RMAT scale=" << scale
            << " edge_factor=" << edge_factor << " ...\n";
  // Narrow to the smallest safe index layout and dispatch at runtime, the
  // way a production driver would handle graphs of unknown size.
  const micg::graph::any_csr ag = micg::graph::to_narrowest(
      micg::graph::make_rmat(scale, edge_factor, 0.57, 0.19, 0.19, 2026));
  std::cout << "|V|=" << ag.num_vertices() << " |E|=" << ag.num_edges()
            << " layout=" << micg::graph::layout_name(ag.layout())
            << "\n\n";

  micg::table_printer t("BFS on RMAT, " + std::to_string(threads) +
                        " threads, " + std::to_string(kRoots) + " roots");
  t.header({"variant", "harmonic-mean MTEPS", "validated"});
  ag.visit([&](const auto& g) {
    using VId = typename std::decay_t<decltype(g)>::vertex_type;

    // Sample roots with nonzero degree (Graph500 convention).
    micg::xoshiro256ss rng(1);
    std::vector<VId> roots;
    while (roots.size() < kRoots) {
      const auto v = static_cast<VId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      if (g.degree(v) > 0) roots.push_back(v);
    }

    for (auto variant : micg::bfs::all_bfs_variants()) {
      double inv_teps_sum = 0.0;
      bool valid = true;
      for (auto root : roots) {
        micg::bfs::parallel_bfs_options opt;
        opt.variant = variant;
        opt.ex.threads = threads;
        opt.block = 32;
        micg::stopwatch sw;
        const auto r = micg::bfs::parallel_bfs(g, root, opt);
        const double secs = sw.seconds();
        // Edges traversed: sum of degrees of reached vertices (counted
        // once per direction), the Graph500 counting rule.
        double edges = 0.0;
        for (VId v = 0; v < g.num_vertices(); ++v) {
          if (r.level[static_cast<std::size_t>(v)] >= 0) {
            edges += static_cast<double>(g.degree(v));
          }
        }
        edges /= 2.0;
        inv_teps_sum += secs / edges;
        valid = valid && micg::bfs::is_valid_bfs_levels(g, root, r.level);
      }
      const double hmean_teps = static_cast<double>(kRoots) / inv_teps_sum;
      t.row({micg::bfs::bfs_variant_name(variant),
             micg::table_printer::fmt(hmean_teps / 1e6),
             valid ? "yes" : "NO"});
    }
  });
  t.print(std::cout);
  return 0;
}
