#!/usr/bin/env bash
# Reproduce BENCH_baseline.json: run the figure/ablation benches in a
# smoke-sized configuration with structured metrics enabled, then merge
# the per-bench micg.metrics.v1 files into one baseline document.
#
# Also reproduces BENCH_serve.json: the serving-path latency series
# (bench/serve_latency, p50/p99 per arrival rate with and without a
# mutating writer) lands in a second document next to the baseline.
#
# Also reproduces BENCH_shard.json: the shard-scaling series
# (bench/fig_shard, measured 1/2/4/8-shard speedups plus the multi-socket
# model projection) lands in a third document. It gets its own larger
# scale (MICG_SHARD_SCALE) because on smoke-sized graphs the barrier term
# dominates everything the series is meant to show.
#
# Also reproduces BENCH_coalesce.json: the query-coalescing series
# (bench/serve_qps, achieved throughput and tail latency with the
# coalescing window off vs on, clustered vs adversarial request mixes)
# lands in a fourth document.
#
# Also reproduces BENCH_tune.json: the predicted-vs-measured auto-tuning
# sweep (bench/ablate_tune, the knob picker's choice against the true
# knob grid per (graph, kernel) pair), driven by a fresh `micg calibrate`
# profile of this host. That same host profile is stamped into every
# BENCH_*.json document (top-level "host_profile", a micg.calib.v1
# object) so committed numbers carry the machine they were measured on.
#
# Also reproduces BENCH_sssp.json: the weighted-workload series
# (bench/fig_sssp, delta-stepping against the sequential Dijkstra oracle
# on derived weights, plus the delta work/parallelism dial). Every record
# carries sssp.exact — the validator refuses a document where any timed
# configuration diverged from the oracle.
#
# Usage: tools/run_bench.sh [output.json] [serve_output.json] \
#                           [shard_output.json] [coalesce_output.json] \
#                           [tune_output.json] [sssp_output.json]
#   BUILD_DIR              build tree holding bench/ (default: build)
#   MICG_SCALE             model-series graph scale       (default: 0.05)
#   MICG_MEASURED_SCALE    measured-series graph scale    (default: 0.05)
#   MICG_MEMLAT_SCALE      measured scale for ablate_memlat only
#                          (default: 8.0 -> RMAT scale 19, large enough
#                          that the gathered vector falls out of L2 and
#                          the fast paths measurably win — see
#                          docs/performance.md)
#   MICG_MEMLAT_THREADS    thread sweep for ablate_memlat only (default:
#                          1,2,4,8 — it times at the sweep maximum, and
#                          latency-bound gathers need concurrency to show
#                          the fast-path win even on few-core hosts)
#   MICG_MEASURED_THREADS  thread sweep                   (default: host procs)
#   MICG_RUNS              repetitions per timing         (default: 4)
#
# The figure benches run smoke-sized; the memory-latency ablation gets
# its own larger scale because cache-resident runs show nothing.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_baseline.json}
SERVE_OUT=${2:-BENCH_serve.json}
SHARD_OUT=${3:-BENCH_shard.json}
COALESCE_OUT=${4:-BENCH_coalesce.json}
TUNE_OUT=${5:-BENCH_tune.json}
SSSP_OUT=${6:-BENCH_sssp.json}

if [ ! -x "$BUILD_DIR/bench/ablate_memlat" ]; then
  echo "error: $BUILD_DIR/bench/ablate_memlat not found — build with" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

export MICG_SCALE=${MICG_SCALE:-0.05}
export MICG_MEASURED_SCALE=${MICG_MEASURED_SCALE:-0.05}
export MICG_MEASURED_THREADS=${MICG_MEASURED_THREADS:-$(nproc)}
export MICG_RUNS=${MICG_RUNS:-4}
MICG_MEMLAT_SCALE=${MICG_MEMLAT_SCALE:-8.0}
MICG_MEMLAT_THREADS=${MICG_MEMLAT_THREADS:-1,2,4,8}
MICG_SHARD_SCALE=${MICG_SHARD_SCALE:-0.5}
MICG_TUNE_SCALE=${MICG_TUNE_SCALE:-8.0}
MICG_SSSP_SCALE=${MICG_SSSP_SCALE:-0.5}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== run_bench: scale=$MICG_SCALE measured_scale=$MICG_MEASURED_SCALE" \
     "memlat_scale=$MICG_MEMLAT_SCALE threads=$MICG_MEASURED_THREADS" \
     "runs=$MICG_RUNS =="

# Calibrate this host first: the tuning ablation picks knobs from this
# profile, and every BENCH document gets it stamped in so committed
# numbers say what machine produced them.
CALIB="$tmp/host.calib.json"
"$BUILD_DIR/tools/micg" calibrate --runs "$MICG_RUNS" -o "$CALIB"

"$BUILD_DIR/bench/fig3_irregular" --metrics-json "$tmp/fig3.json"
"$BUILD_DIR/bench/fig4_bfs" --metrics-json "$tmp/fig4.json"
"$BUILD_DIR/bench/fig5_msbfs" --metrics-json "$tmp/fig5.json"
MICG_MEASURED_SCALE="$MICG_MEMLAT_SCALE" \
MICG_MEASURED_THREADS="$MICG_MEMLAT_THREADS" \
  "$BUILD_DIR/bench/ablate_memlat" --metrics-json "$tmp/memlat.json"

python3 - "$OUT" "$tmp"/fig3.json "$tmp"/fig4.json "$tmp"/fig5.json \
    "$tmp"/memlat.json <<'EOF'
import json
import sys

out, *parts = sys.argv[1:]
records = []
for path in parts:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "micg.metrics.v1", (path, doc.get("schema"))
    records.extend(doc["records"])

with open(out, "w") as f:
    json.dump({"schema": "micg.metrics.v1", "records": records}, f, indent=1)
    f.write("\n")

memlat = [r for r in records if r["meta"].get("bench") == "ablate_memlat"]
assert memlat, "ablate_memlat emitted no records"
best = max(r["values"]["speedup_vs_baseline"] for r in memlat)
msbfs = [r for r in records if r["meta"].get("bench") == "fig5_msbfs"]
assert msbfs, "fig5_msbfs emitted no records"
best_ms = max(r["values"]["msbfs.throughput_speedup"] for r in msbfs)
print(f"wrote {out}: {len(records)} records "
      f"({len(memlat)} memlat, best fast-path speedup {best:.2f}x, "
      f"best msbfs throughput {best_ms:.2f}x)")
EOF

MICG_MEASURED_SCALE="$MICG_SHARD_SCALE" \
  "$BUILD_DIR/bench/fig_shard" --metrics-json "$SHARD_OUT"

python3 - "$SHARD_OUT" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
assert records, "fig_shard emitted no records"
shard_counts = set()
for r in records:
    assert r["meta"]["bench"] == "fig_shard", r["meta"]
    shard_counts.add(int(r["meta"]["shards"]))
    v = r["values"]
    assert v["shard.count"] == int(r["meta"]["shards"]), (r["meta"], v)
    assert v["shard.bfs_secs"] > 0 and v["shard.pagerank_secs"] > 0, v
    assert v["shard.bfs_speedup_vs_1shard"] > 0, v
    assert v["shard.model_bfs_speedup"] > 0, v
    assert 0 <= v["shard.cut_fraction"] <= 1, v
    if int(r["meta"]["shards"]) == 1:
        assert v["shard.cut_fraction"] == 0, v
    else:
        assert r["counters"]["shard.exchange.messages"] > 0, r["counters"]
assert shard_counts == {1, 2, 4, 8}, shard_counts
best = max(r["values"]["shard.model_bfs_speedup"] for r in records)
print(f"wrote {path}: {len(records)} shard records over "
      f"{sorted(shard_counts)} shards (best modeled BFS speedup {best:.2f}x)")
EOF

"$BUILD_DIR/bench/serve_latency" --metrics-json "$SERVE_OUT"

python3 - "$SERVE_OUT" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
rates = {r["meta"]["config"] for r in records}
steady = {c for c in rates if c.startswith("steady/")}
mutating = {c for c in rates if c.startswith("mutating/")}
assert len(steady) >= 3, f"need >=3 arrival rates, got {sorted(steady)}"
assert len(mutating) >= 3, sorted(mutating)
for r in records:
    v = r["values"]
    assert v["ok"] == v["requests"], (r["meta"], v)
    assert 0 < v["p50_ms"] <= v["p99_ms"] <= v["max_ms"], v
worst = max(r["values"]["p99_ms"] for r in records)
print(f"wrote {path}: {len(records)} serve records over "
      f"{len(steady)} rates (worst p99 {worst:.2f} ms)")
EOF

"$BUILD_DIR/bench/serve_qps" --metrics-json "$COALESCE_OUT"

python3 - "$COALESCE_OUT" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
assert records, "serve_qps emitted no records"
for r in records:
    v = r["values"]
    assert r["meta"]["bench"] == "serve_qps", r["meta"]
    assert r["meta"]["mix"] in ("clustered", "adversarial"), r["meta"]
    assert v["ok"] == v["requests"], (r["meta"], v)
    assert 0 < v["p50_ms"] <= v["p99_ms"] <= v["max_ms"], v
    assert v["achieved_rps"] > 0, v

# The coalescing claim the docs make: with a clustered mix past the
# saturation knee, the batched configuration beats the unbatched one on
# achieved throughput at every benched arrival rate (>= 2 rates).
def cell(mix, window, rate):
    for r in records:
        if (r["meta"]["mix"] == mix
                and r["values"]["window_ms"] == window
                and r["values"]["rate_rps"] == rate):
            return r["values"]
    raise AssertionError(f"missing cell {mix}/w{window}/{rate}")

rates = sorted({r["values"]["rate_rps"] for r in records
                if r["meta"]["mix"] == "clustered"})
assert len(rates) >= 2, rates
wins = 0
for rate in rates:
    off = cell("clustered", 0, rate)
    on = cell("clustered", 3, rate)
    if on["achieved_rps"] > off["achieved_rps"]:
        wins += 1
assert wins >= 2, (
    f"coalescing won at only {wins} of {len(rates)} arrival rates")
print(f"wrote {path}: {len(records)} qps records; batched beat unbatched "
      f"at {wins}/{len(rates)} clustered rates")
EOF

# Tuning ablation at its own larger scale (cache-resident runs show
# nothing, same reasoning as memlat), picking knobs from the profile
# calibrated above.
MICG_MEASURED_SCALE="$MICG_TUNE_SCALE" MICG_CALIB="$CALIB" \
  "$BUILD_DIR/bench/ablate_tune" --metrics-json "$TUNE_OUT"

python3 - "$TUNE_OUT" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
summaries = [r for r in records if r["meta"].get("config") == "summary"]
assert len(summaries) >= 4, f"expected >=4 (graph, kernel) summaries"

# The headline claim: the picker matches or beats the static defaults on
# a majority of pairs and is never materially (>5%) worse on any.
wins = 0
for r in summaries:
    v = r["values"]
    pair = (r["meta"]["graph"], r["meta"]["kernel"])
    assert v["tuned_ms"] <= v["default_ms"] * 1.05, (
        f"tuned >5% slower than default on {pair}: "
        f"{v['tuned_ms']:.2f} vs {v['default_ms']:.2f} ms")
    if v["tuned_speedup_vs_default"] >= 0.995:
        wins += 1
assert wins * 2 > len(summaries), (
    f"tuned matched/beat default on only {wins}/{len(summaries)} pairs")
best = max(r["values"]["tuned_speedup_vs_default"] for r in summaries)
print(f"wrote {path}: {len(records)} tune records; tuned matched/beat "
      f"default on {wins}/{len(summaries)} pairs (best {best:.2f}x)")
EOF

# Weighted workloads at the shard scale (smoke-sized graphs finish before
# the bucket structure the delta dial measures can form). The bench exits
# non-zero by itself if any timed run diverges from the Dijkstra oracle;
# the validator re-checks that from the emitted records.
MICG_MEASURED_SCALE="$MICG_SSSP_SCALE" \
  "$BUILD_DIR/bench/fig_sssp" --metrics-json "$SSSP_OUT"

python3 - "$SSSP_OUT" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["schema"] == "micg.metrics.v1", doc.get("schema")
records = doc["records"]
assert records, "fig_sssp emitted no records"
graphs, variants = set(), set()
for r in records:
    assert r["meta"]["bench"] == "fig_sssp", r["meta"]
    graphs.add(r["meta"]["graph"])
    variants.add(r["meta"]["variant"])
    v = r["values"]
    assert v["sssp.exact"] == 1.0, (
        f"timed run diverged from the Dijkstra oracle: {r['meta']}")
    assert v["sssp.secs"] > 0 and v["sssp.seq_dijkstra_secs"] > 0, v
    assert v["sssp.speedup_vs_dijkstra"] > 0, v
    assert r["counters"]["sssp.relaxations"] > 0, r["counters"]
    assert r["counters"]["sssp.reached"] > 0, r["counters"]
assert graphs == {"pwtk", "inline_1"}, graphs
assert len(variants) == 4, variants
best = max(r["values"]["sssp.speedup_vs_dijkstra"] for r in records)
print(f"wrote {path}: {len(records)} sssp records over {len(graphs)} "
      f"graphs x {len(variants)} variants, all oracle-exact "
      f"(best speedup vs Dijkstra {best:.2f}x)")
EOF

# Stamp the calibrated host profile into every document emitted above.
python3 - "$CALIB" "$OUT" "$SERVE_OUT" "$SHARD_OUT" "$COALESCE_OUT" \
    "$TUNE_OUT" "$SSSP_OUT" <<'EOF'
import json
import sys

calib, *outputs = sys.argv[1:]
with open(calib) as f:
    profile = json.load(f)
assert profile["schema"] == "micg.calib.v1", profile.get("schema")
for path in outputs:
    with open(path) as f:
        doc = json.load(f)
    doc["host_profile"] = profile
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
print(f"stamped host profile ({profile['host'] or 'unnamed'}, "
      f"isa={profile['isa']}) into {len(outputs)} documents")
EOF
