#!/usr/bin/env bash
# Regenerate the golden files under tests/golden/ after an intended CLI
# output change (docs/testing.md). Review the resulting diff like any
# other code change.
#
# Usage: tools/update_goldens.sh
#   BUILD_DIR   build tree holding tests/golden_test (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

if [ ! -x "$BUILD_DIR/tests/golden_test" ]; then
  echo "error: $BUILD_DIR/tests/golden_test not found — build with" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

MICG_UPDATE_GOLDENS=1 "$BUILD_DIR/tests/golden_test"
echo
git --no-pager diff --stat -- tests/golden/ || true
echo "goldens rewritten; review with: git diff tests/golden/"
