// micg — command-line front end for the micgraph library.
//
//   micg gen <family> [options] -o FILE     generate a graph
//   micg convert IN OUT                     convert between .mtx and .micg
//   micg info FILE                          structural statistics
//   micg color FILE [--threads N] [--backend NAME] [--chunk C] [--d2]
//   micg bfs FILE [--source V] [--variant NAME] [--threads N] [--block B]
//   micg msbfs FILE [--sources K] [--lanes L] [--threads N]
//   micg bc FILE [--samples K] [--threads N] [--top M] [--mode M] [--lanes L]
//   micg pagerank FILE [--damping D] [--tolerance T] [--iterations N]
//   micg sssp FILE [--source V] [--delta D] [--weights SEED] [--threads N]
//   micg cc FILE [--threads N]
//   micg serve --listen ADDR --graph NAME=PATH [...]
//   micg query --connect ADDR OP [--graph NAME] [--params JSON]
//
// Every kernel subcommand parses its flags into the same micg::api request
// struct the server deserializes from the wire, and runs it through the
// same api::run() overload — one code path whether a query arrives via
// argv or via a socket (docs/serving.md). The CLI owns only formatting.
//
// color/bfs/msbfs/bc/pagerank accept --metrics-json PATH (or
// MICG_METRICS_JSON in the environment) to write a micg.metrics.v1 record
// of the run; serve accepts the same flag and writes the serving-side
// record (per-request spans) at shutdown.
//
// Families for gen: chain N | cycle N | star N | complete N | tree K L |
// grid2d NX NY | er N AVGDEG SEED | rmat SCALE EDGEFACTOR SEED |
// suite NAME SCALE. File format chosen by extension: .mtx (MatrixMarket)
// or .micg (binary CSR).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "micg/api/api.hpp"
#include "micg/api/json.hpp"
#include "micg/api/parse.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/suite.hpp"
#include "micg/graph/weighted.hpp"
#include "micg/obs/emit.hpp"
#include "micg/obs/obs.hpp"
#include "micg/serve/client.hpp"
#include "micg/serve/server.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"
#include "micg/tune/calib.hpp"
#include "micg/tune/tune.hpp"

namespace {

using micg::api::arg_parser;
using micg::graph::any_csr;
using micg::graph::csr_graph;

[[noreturn]] void usage(const std::string& msg = "") {
  if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage:\n"
      "  micg gen <family> [params] -o FILE [--weights SEED [--max-weight W]]\n"
      "      families: chain N | cycle N | star N | complete N | tree K L\n"
      "                | grid2d NX NY | er N AVGDEG SEED\n"
      "                | rmat SCALE EDGEFACTOR SEED | suite NAME SCALE\n"
      "  micg convert IN OUT\n"
      "  micg info FILE [--shards N]\n"
      "  micg color FILE [--threads N] [--backend NAME] [--chunk C] [--d2]\n"
      "  micg bfs FILE [--source V] [--variant NAME] [--threads N] [--block B]\n"
      "          [--shards N]\n"
      "  micg msbfs FILE [--sources K] [--lanes L] [--threads N]\n"
      "  micg bc FILE [--samples K] [--threads N] [--top M]\n"
      "          [--mode batched|repeated] [--lanes L]\n"
      "  micg pagerank FILE [--damping D] [--tolerance T] [--iterations N]\n"
      "          [--top M] [--threads N] [--shards N]\n"
      "  micg sssp FILE [--source V] [--delta D] [--weights SEED]\n"
      "          [--max-weight W] [--threads N]\n"
      "  micg cc FILE [--threads N] [--backend NAME] [--chunk C]\n"
      "  micg calibrate [-o FILE] [--threads N] [--runs R] [--quick]\n"
      "bfs/pagerank: --shards N > 1 partitions the graph and runs the\n"
      "  bulk-synchronous sharded driver, N thread pools of --threads each\n"
      "bfs/msbfs/bc/color/pagerank/sssp: --tune fixed|auto|calibrate picks\n"
      "  memory/frontier/chunk knobs from a host profile ($MICG_CALIB, or\n"
      "  `micg calibrate -o`) + a graph probe; answers are bit-identical\n"
      "  across modes (docs/performance.md). Default: $MICG_TUNE, then fixed\n"
      "  micg serve --listen ADDR --graph NAME=PATH [--graph NAME=PATH ...]\n"
      "          [--max-inflight N] [--max-waiting N] [--threads-per-query N]\n"
      "          [--deadline-ms D] [--compact-every N] [--max-frame-bytes B]\n"
      "          [--coalesce-window-ms W] [--coalesce-lanes L] [--landmarks K]\n"
      "          [--tune MODE]\n"
      "  micg query --connect ADDR OP [--graph NAME] [--params JSON]\n"
      "          [--deadline-ms D] [--id TAG]\n"
      "  micg query --connect ADDR --script FILE|-\n"
      "sssp: edge weights are derived from --weights SEED (default 1) in\n"
      "  [1, --max-weight]; --delta 0 (default) picks the bucket width from\n"
      "  the graph's stats — any delta yields identical distances\n"
      "color/bfs/msbfs/bc/pagerank/sssp/cc/serve: --metrics-json PATH (or\n"
      "  MICG_METRICS_JSON) writes a micg.metrics.v1 record of the run\n"
      "ADDR: unix:PATH | PATH | HOST:PORT | :PORT (see docs/serving.md)\n"
      "file formats by extension: .mtx (MatrixMarket), .micg (binary)\n";
  std::exit(2);
}

/// Resolve the metrics output path: --metrics-json beats MICG_METRICS_JSON;
/// empty means metrics are off.
std::string metrics_path(const arg_parser& args) {
  const char* env = std::getenv("MICG_METRICS_JSON");
  return args.flag("metrics-json", env != nullptr ? env : "");
}

/// Run `body` with a recorder installed if `path` is non-empty, stamp
/// `meta`, and write a single-record micg.metrics.v1 file.
void run_with_metrics(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const std::function<void()>& body) {
  if (path.empty()) {
    body();
    return;
  }
  micg::obs::recorder rec;
  {
    micg::obs::scoped_global guard(rec);
    body();
  }
  for (const auto& [k, v] : meta) rec.set_meta(k, v);
  micg::obs::write_json_file(path, {rec.take()});
  std::cout << "wrote metrics to " << path << "\n";
}

std::vector<std::pair<std::string, std::string>> kernel_meta(
    const std::string& tool, const std::string& graph_path,
    const any_csr& g) {
  return {{"tool", tool},
          {"graph", graph_path},
          {"layout", std::string(micg::graph::layout_name(g.layout()))}};
}

int cmd_gen(const arg_parser& args) {
  if (args.positional.empty()) usage("gen needs a family");
  const auto& fam = args.positional[0];
  auto pos_int = [&](std::size_t i) -> long {
    if (i >= args.positional.size()) usage("missing parameter for " + fam);
    return static_cast<long>(micg::api::parse_int(args.positional[i]));
  };
  auto pos_double = [&](std::size_t i) -> double {
    if (i >= args.positional.size()) usage("missing parameter for " + fam);
    return micg::api::parse_double(args.positional[i]);
  };
  csr_graph g;
  if (fam == "chain") {
    g = micg::graph::make_chain(static_cast<int>(pos_int(1)));
  } else if (fam == "cycle") {
    g = micg::graph::make_cycle(static_cast<int>(pos_int(1)));
  } else if (fam == "star") {
    g = micg::graph::make_star(static_cast<int>(pos_int(1)));
  } else if (fam == "complete") {
    g = micg::graph::make_complete(static_cast<int>(pos_int(1)));
  } else if (fam == "tree") {
    g = micg::graph::make_kary_tree(static_cast<int>(pos_int(1)),
                                    static_cast<int>(pos_int(2)));
  } else if (fam == "grid2d") {
    g = micg::graph::make_grid_2d(static_cast<int>(pos_int(1)),
                                  static_cast<int>(pos_int(2)));
  } else if (fam == "er") {
    if (args.positional.size() < 4) usage("er needs N AVGDEG SEED");
    g = micg::graph::make_erdos_renyi(
        static_cast<int>(pos_int(1)), pos_double(2),
        static_cast<std::uint64_t>(pos_int(3)));
  } else if (fam == "rmat") {
    g = micg::graph::make_rmat(static_cast<int>(pos_int(1)),
                               static_cast<int>(pos_int(2)), 0.57, 0.19,
                               0.19, static_cast<std::uint64_t>(pos_int(3)));
  } else if (fam == "suite") {
    if (args.positional.size() < 3) usage("suite needs NAME SCALE");
    g = micg::graph::make_suite_graph(
        micg::graph::suite_entry_by_name(args.positional[1]), pos_double(2));
  } else {
    usage("unknown family: " + fam);
  }
  const auto out = args.flag("out", "");
  if (out.empty()) usage("gen needs -o FILE");
  const any_csr ag = micg::graph::to_narrowest(std::move(g));
  const auto wflag = args.flag("weights", "");
  if (!wflag.empty()) {
    // Weighted binary (format v3): topology plus the derived weight
    // stream for this seed, re-validated on load.
    if (out.size() < 5 || out.substr(out.size() - 5) != ".micg") {
      usage("--weights needs a .micg output (only the binary format v3 "
            "carries weights)");
    }
    micg::graph::weight_params wp;
    wp.seed = static_cast<std::uint64_t>(micg::api::parse_int(wflag));
    wp.max_weight = static_cast<micg::graph::weight_t>(
        args.flag_int("max-weight", wp.max_weight));
    const auto w = micg::graph::generate_weights(ag, wp);
    micg::graph::save_binary_weighted(out, ag, w);
    std::cout << "wrote " << out << " ["
              << micg::graph::layout_name(ag.layout())
              << " weighted seed=" << wp.seed
              << "]  |V|=" << ag.num_vertices() << " |E|=" << ag.num_edges()
              << "\n";
    return 0;
  }
  micg::api::save_graph(out, ag);
  std::cout << "wrote " << out << " [" << micg::graph::layout_name(ag.layout())
            << "]  |V|=" << ag.num_vertices() << " |E|=" << ag.num_edges()
            << "\n";
  return 0;
}

int cmd_convert(const arg_parser& args) {
  if (args.positional.size() != 2) usage("convert needs IN OUT");
  const auto g = micg::api::load_graph(args.positional[0]);
  micg::api::save_graph(args.positional[1], g);
  std::cout << "converted " << args.positional[0] << " -> "
            << args.positional[1] << "\n";
  return 0;
}

int cmd_info(const arg_parser& args) {
  if (args.positional.empty()) usage("info needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto r =
      micg::api::run(ag, micg::api::info_request_from_args(args));
  micg::table_printer t("graph info: " + args.positional[0]);
  t.header({"property", "value"});
  t.row({"layout", r.layout});
  t.row({"|V|", micg::table_printer::fmt(
                    static_cast<long long>(r.num_vertices))});
  t.row({"|E|", micg::table_printer::fmt(
                    static_cast<long long>(r.num_edges))});
  t.row({"min degree", micg::table_printer::fmt(
                           static_cast<long long>(r.min_degree))});
  t.row({"max degree (Delta)",
         micg::table_printer::fmt(static_cast<long long>(r.max_degree))});
  t.row({"avg degree", micg::table_printer::fmt(r.avg_degree)});
  t.row({"components", micg::table_printer::fmt(
                           static_cast<long long>(r.components))});
  t.row({"degeneracy", micg::table_printer::fmt(
                           static_cast<long long>(r.degeneracy))});
  t.row({"BFS levels from |V|/2",
         micg::table_printer::fmt(
             static_cast<long long>(r.bfs_levels_from_mid))});
  // Shard partition report, only when a partition was requested (the
  // default single-shard run keeps the historical table shape).
  if (r.shards > 1) {
    t.row({"shards", micg::table_printer::fmt(
                         static_cast<long long>(r.shards))});
    for (std::size_t s = 0; s < r.shard_vertices.size(); ++s) {
      t.row({"shard " + std::to_string(s) + " |V| / adj",
             micg::table_printer::fmt(
                 static_cast<long long>(r.shard_vertices[s])) +
                 " / " +
                 micg::table_printer::fmt(
                     static_cast<long long>(r.shard_edges[s]))});
    }
    t.row({"cut edges", micg::table_printer::fmt(
                            static_cast<long long>(r.cut_edges))});
    t.row({"cut fraction", micg::table_printer::fmt(r.cut_fraction)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_color(const arg_parser& args) {
  if (args.positional.empty()) usage("color needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::color_request_from_args(args);
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args), kernel_meta("micg color", args.positional[0], ag),
      [&] {
        const auto r = micg::api::run(ag, req);
        std::cout << (r.distance2 ? "distance-2 colors: " : "colors: ")
                  << r.num_colors << " in " << r.rounds << " rounds, "
                  << micg::table_printer::fmt(sw.millis())
                  << " ms, valid=" << (r.valid ? 1 : 0) << "\n";
      });
  return 0;
}

int cmd_bfs(const arg_parser& args) {
  if (args.positional.empty()) usage("bfs needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::bfs_request_from_args(args);
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args), kernel_meta("micg bfs", args.positional[0], ag),
      [&] {
        const auto r = micg::api::run(ag, req);
        std::cout << r.variant << ": " << r.num_levels << " levels, reached "
                  << r.reached << "/" << r.num_vertices << " in "
                  << micg::table_printer::fmt(sw.millis()) << " ms\n";
      });
  return 0;
}

int cmd_msbfs(const arg_parser& args) {
  if (args.positional.empty()) usage("msbfs needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::msbfs_request_from_args(args);
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args), kernel_meta("micg msbfs", args.positional[0], ag),
      [&] {
        const auto r = micg::api::run(ag, req);
        const auto k = std::max<std::int64_t>(r.sources, 1);
        std::cout << "msbfs: " << r.sources << " sources in " << r.batches
                  << " batches of <=" << r.lanes << " lanes, avg "
                  << micg::table_printer::fmt(
                         static_cast<double>(r.levels_total) /
                         static_cast<double>(k))
                  << " levels, avg reached "
                  << micg::table_printer::fmt(
                         static_cast<double>(r.reached_total) /
                         static_cast<double>(k))
                  << "/" << r.num_vertices << " in "
                  << micg::table_printer::fmt(sw.millis()) << " ms\n";
      });
  return 0;
}

int cmd_bc(const arg_parser& args) {
  if (args.positional.empty()) usage("bc needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::bc_request_from_args(args);
  micg::stopwatch sw;
  micg::api::bc_response r;
  run_with_metrics(
      metrics_path(args), kernel_meta("micg bc", args.positional[0], ag),
      [&] { r = micg::api::run(ag, req); });
  std::cout << "betweenness centrality ("
            << micg::table_printer::fmt(sw.millis()) << " ms):\n";
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    std::cout << "  #" << i + 1 << "  vertex " << r.top[i].vertex << "  bc="
              << micg::table_printer::fmt(r.top[i].score) << "\n";
  }
  return 0;
}

int cmd_pagerank(const arg_parser& args) {
  if (args.positional.empty()) usage("pagerank needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::pagerank_request_from_args(args);
  micg::stopwatch sw;
  micg::api::pagerank_response r;
  run_with_metrics(
      metrics_path(args),
      kernel_meta("micg pagerank", args.positional[0], ag),
      [&] { r = micg::api::run(ag, req); });
  std::cout << "pagerank: " << r.iterations << " iterations, converged="
            << (r.converged ? 1 : 0) << ", delta="
            << micg::table_printer::fmt(r.final_delta) << " in "
            << micg::table_printer::fmt(sw.millis()) << " ms\n";
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    std::cout << "  #" << i + 1 << "  vertex " << r.top[i].vertex << "  pr="
              << micg::table_printer::fmt(r.top[i].score) << "\n";
  }
  return 0;
}

int cmd_sssp(const arg_parser& args) {
  if (args.positional.empty()) usage("sssp needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::sssp_request_from_args(args);
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args), kernel_meta("micg sssp", args.positional[0], ag),
      [&] {
        const auto r = micg::api::run(ag, req);
        std::cout << "sssp: reached " << r.reached << "/" << r.num_vertices
                  << " from " << r.source << ", " << r.relaxations
                  << " relaxations in " << r.buckets
                  << " buckets (delta=" << r.delta << ") in "
                  << micg::table_printer::fmt(sw.millis()) << " ms\n";
      });
  return 0;
}

int cmd_cc(const arg_parser& args) {
  if (args.positional.empty()) usage("cc needs FILE");
  const auto ag = micg::api::load_graph(args.positional[0]);
  const auto req = micg::api::cc_request_from_args(args);
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args), kernel_meta("micg cc", args.positional[0], ag),
      [&] {
        const auto r = micg::api::run(ag, req);
        std::cout << "components: " << r.num_components << " (largest "
                  << r.largest << "/" << r.num_vertices << ") in " << r.rounds
                  << " rounds, " << micg::table_printer::fmt(sw.millis())
                  << " ms\n";
      });
  return 0;
}

int cmd_calibrate(const arg_parser& args) {
  micg::tune::calibrate_options copt;
  copt.threads = static_cast<int>(args.flag_int("threads", copt.threads));
  copt.repeats = static_cast<int>(args.flag_int("runs", copt.repeats));
  copt.quick = args.flag("quick", "no") != "no";
  const auto prof = micg::tune::calibrate(copt);

  micg::table_printer t("host calibration (micg.calib.v1)");
  t.header({"parameter", "value"});
  t.row({"isa", prof.isa});
  t.row({"threads", micg::table_printer::fmt(
                        static_cast<long long>(prof.threads))});
  t.row({"alu ns/op", micg::table_printer::fmt(prof.alu_ns)});
  t.row({"stream GB/s", micg::table_printer::fmt(prof.stream_gbps)});
  t.row({"gather latency ns", micg::table_printer::fmt(
                                  prof.gather_latency_ns)});
  t.row({"chunk claim ns", micg::table_printer::fmt(prof.chunk_claim_ns)});
  t.row({"task spawn ns", micg::table_printer::fmt(prof.spawn_ns)});
  for (const auto& pt : prof.gather) {
    t.row({"gather@" + std::to_string(pt.working_set_bytes >> 10) +
               "KiB GB/s (plain/simd/pf8/pf32)",
           micg::table_printer::fmt(pt.plain_gbps) + " / " +
               micg::table_printer::fmt(pt.simd_gbps) + " / " +
               micg::table_printer::fmt(pt.prefetch8_gbps) + " / " +
               micg::table_printer::fmt(pt.prefetch32_gbps)});
  }
  t.print(std::cout);

  const auto out = args.flag("out", "");
  if (!out.empty()) {
    micg::tune::save_profile(out, prof);
    std::cout << "wrote calibration profile to " << out
              << " (export MICG_CALIB=" << out
              << " to use it with --tune auto)\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// serve / query

/// The running server, for the signal handlers. request_shutdown() is one
/// shutdown(2) call, so it is safe from signal context.
std::atomic<micg::serve::server*> g_server{nullptr};

extern "C" void handle_stop_signal(int) {
  micg::serve::server* srv = g_server.load();
  if (srv != nullptr) srv->request_shutdown();
}

int cmd_serve(const arg_parser& args) {
  micg::serve::server_options opt;
  opt.listen = args.flag("listen", "");
  if (opt.listen.empty()) usage("serve needs --listen ADDR");
  opt.svc.max_inflight =
      static_cast<int>(args.flag_int("max-inflight", opt.svc.max_inflight));
  opt.svc.max_waiting =
      static_cast<int>(args.flag_int("max-waiting", opt.svc.max_waiting));
  opt.svc.threads_per_query = static_cast<int>(
      args.flag_int("threads-per-query", opt.svc.threads_per_query));
  opt.svc.default_deadline_ms =
      args.flag_int("deadline-ms", opt.svc.default_deadline_ms);
  opt.svc.compact_every =
      args.flag_int("compact-every", opt.svc.compact_every);
  opt.svc.max_frame_bytes = static_cast<std::size_t>(args.flag_int(
      "max-frame-bytes",
      static_cast<std::int64_t>(opt.svc.max_frame_bytes)));
  opt.svc.coalesce_window_ms =
      args.flag_int("coalesce-window-ms", opt.svc.coalesce_window_ms);
  opt.svc.coalesce_lanes = static_cast<int>(
      args.flag_int("coalesce-lanes", opt.svc.coalesce_lanes));
  opt.svc.landmark_count =
      static_cast<int>(args.flag_int("landmarks", opt.svc.landmark_count));
  opt.svc.tune = args.flag("tune", opt.svc.tune);

  micg::serve::graph_store store;
  for (const auto& spec : args.flag_all("graph")) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos) usage("--graph needs NAME=PATH: " + spec);
    store.add(spec.substr(0, eq), micg::api::load_graph(spec.substr(eq + 1)));
  }
  if (store.size() == 0) usage("serve needs at least one --graph NAME=PATH");

  const std::string mpath = metrics_path(args);
  micg::obs::recorder rec;
  micg::obs::recorder* recp = mpath.empty() ? nullptr : &rec;

  micg::serve::server srv(store, opt, recp);
  srv.bind_and_listen();
  g_server.store(&srv);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a hung-up client must not kill the server

  // The readiness line scripts wait for before dialing.
  std::cout << "serving " << store.size() << " graph(s) on "
            << srv.where().display() << std::endl;
  srv.run();
  g_server.store(nullptr);
  std::cout << "shutdown complete\n";
  if (recp != nullptr) {
    rec.set_meta("tool", "micg serve");
    rec.set_meta("listen", srv.where().display());
    micg::obs::write_json_file(mpath, {rec.take()});
    std::cout << "wrote metrics to " << mpath << "\n";
  }
  return 0;
}

int cmd_query(const arg_parser& args) {
  const auto addr = args.flag("connect", "");
  if (addr.empty()) usage("query needs --connect ADDR");
  std::signal(SIGPIPE, SIG_IGN);
  micg::serve::client cli(addr);

  const auto script = args.flag("script", "");
  if (!script.empty()) {
    // Raw NDJSON pass-through: one request per input line, one response
    // per output line — the integration tests' transport.
    std::ifstream file;
    std::istream* in = &std::cin;
    if (script != "-") {
      file.open(script);
      if (!file.good()) usage("cannot read script file: " + script);
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      if (line.empty()) continue;
      std::cout << cli.call_line(line) << "\n";
    }
    return 0;
  }

  if (args.positional.empty()) usage("query needs OP or --script FILE");
  micg::api::json params;
  const auto pstr = args.flag("params", "");
  if (!pstr.empty()) params = micg::api::json::parse(pstr);
  const auto resp =
      cli.call(args.positional[0], args.flag("graph", ""), std::move(params),
               args.flag_int("deadline-ms", 0), args.flag("id", ""));
  std::cout << resp.dump() << "\n";
  const micg::api::json* st = resp.find("status");
  return st != nullptr && st->is_string() && st->as_string() == "ok" ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const arg_parser args(argc, argv, 2);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "color") return cmd_color(args);
    if (cmd == "bfs") return cmd_bfs(args);
    if (cmd == "msbfs") return cmd_msbfs(args);
    if (cmd == "bc") return cmd_bc(args);
    if (cmd == "pagerank") return cmd_pagerank(args);
    if (cmd == "sssp") return cmd_sssp(args);
    if (cmd == "cc") return cmd_cc(args);
    if (cmd == "calibrate") return cmd_calibrate(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "query") return cmd_query(args);
  } catch (const micg::api::usage_error& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command: " + cmd);
}
