// micg — command-line front end for the micgraph library.
//
//   micg gen <family> [options] -o FILE     generate a graph
//   micg convert IN OUT                     convert between .mtx and .micg
//   micg info FILE                          structural statistics
//   micg color FILE [--threads N] [--backend NAME] [--chunk C] [--d2]
//   micg bfs FILE [--source V] [--variant NAME] [--threads N] [--block B]
//   micg msbfs FILE [--sources K] [--lanes L] [--threads N]
//   micg bc FILE [--samples K] [--threads N] [--top M] [--mode M] [--lanes L]
//
// color/bfs/msbfs/bc accept --metrics-json PATH (or MICG_METRICS_JSON in
// the environment) to write a micg.metrics.v1 record of the run.
//
// Families for gen: chain N | cycle N | star N | complete N | tree K L |
// grid2d NX NY | er N AVGDEG SEED | rmat SCALE EDGEFACTOR SEED |
// suite NAME SCALE. File format chosen by extension: .mtx (MatrixMarket)
// or .micg (binary CSR).
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "micg/bfs/centrality.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/msbfs.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/color/distance2.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/ordering.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/io_binary.hpp"
#include "micg/graph/io_mm.hpp"
#include "micg/graph/props.hpp"
#include "micg/graph/suite.hpp"
#include "micg/obs/emit.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::csr_graph;

[[noreturn]] void usage(const std::string& msg = "") {
  if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage:\n"
      "  micg gen <family> [params] -o FILE\n"
      "      families: chain N | cycle N | star N | complete N | tree K L\n"
      "                | grid2d NX NY | er N AVGDEG SEED\n"
      "                | rmat SCALE EDGEFACTOR SEED | suite NAME SCALE\n"
      "  micg convert IN OUT\n"
      "  micg info FILE\n"
      "  micg color FILE [--threads N] [--backend NAME] [--chunk C] [--d2]\n"
      "  micg bfs FILE [--source V] [--variant NAME] [--threads N] [--block B]\n"
      "  micg msbfs FILE [--sources K] [--lanes L] [--threads N]\n"
      "  micg bc FILE [--samples K] [--threads N] [--top M]\n"
      "          [--mode batched|repeated] [--lanes L]\n"
      "color/bfs/msbfs/bc: --metrics-json PATH (or MICG_METRICS_JSON) writes\n"
      "  a micg.metrics.v1 record of the run\n"
      "file formats by extension: .mtx (MatrixMarket), .micg (binary)\n";
  std::exit(2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Load into whichever layout the file needs (narrowest safe one); the
/// kernels below dispatch on it at runtime via visit().
any_csr load_graph(const std::string& path) {
  if (ends_with(path, ".micg")) return micg::graph::load_binary_any(path);
  if (ends_with(path, ".mtx")) {
    return micg::graph::load_matrix_market_any(path);
  }
  usage("unknown graph file extension: " + path);
}

void save_graph(const std::string& path, const any_csr& g) {
  if (ends_with(path, ".micg")) {
    micg::graph::save_binary(path, g);
  } else if (ends_with(path, ".mtx")) {
    micg::graph::save_matrix_market(path, g);
  } else {
    usage("unknown graph file extension: " + path);
  }
}

struct arg_parser {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  arg_parser(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        if (i + 1 >= argc) usage("flag " + a + " needs a value");
        flags.emplace_back(a.substr(2), argv[++i]);
      } else if (a == "-o") {
        if (i + 1 >= argc) usage("-o needs a value");
        flags.emplace_back("out", argv[++i]);
      } else {
        positional.push_back(std::move(a));
      }
    }
  }

  std::string flag(const std::string& name, const std::string& dflt) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return v;
    }
    return dflt;
  }
  long flag_int(const std::string& name, long dflt) const {
    const auto v = flag(name, "");
    return v.empty() ? dflt : std::atol(v.c_str());
  }
};

/// Resolve the metrics output path: --metrics-json beats MICG_METRICS_JSON;
/// empty means metrics are off.
std::string metrics_path(const arg_parser& args) {
  const char* env = std::getenv("MICG_METRICS_JSON");
  return args.flag("metrics-json", env != nullptr ? env : "");
}

/// Run `body` with a recorder installed if `path` is non-empty, stamp
/// `meta`, and write a single-record micg.metrics.v1 file.
void run_with_metrics(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const std::function<void()>& body) {
  if (path.empty()) {
    body();
    return;
  }
  micg::obs::recorder rec;
  {
    micg::obs::scoped_global guard(rec);
    body();
  }
  for (const auto& [k, v] : meta) rec.set_meta(k, v);
  micg::obs::write_json_file(path, {rec.take()});
  std::cout << "wrote metrics to " << path << "\n";
}

int cmd_gen(const arg_parser& args) {
  if (args.positional.empty()) usage("gen needs a family");
  const auto& fam = args.positional[0];
  auto pos_int = [&](std::size_t i) -> long {
    if (i >= args.positional.size()) usage("missing parameter for " + fam);
    return std::atol(args.positional[i].c_str());
  };
  csr_graph g;
  if (fam == "chain") {
    g = micg::graph::make_chain(static_cast<int>(pos_int(1)));
  } else if (fam == "cycle") {
    g = micg::graph::make_cycle(static_cast<int>(pos_int(1)));
  } else if (fam == "star") {
    g = micg::graph::make_star(static_cast<int>(pos_int(1)));
  } else if (fam == "complete") {
    g = micg::graph::make_complete(static_cast<int>(pos_int(1)));
  } else if (fam == "tree") {
    g = micg::graph::make_kary_tree(static_cast<int>(pos_int(1)),
                                    static_cast<int>(pos_int(2)));
  } else if (fam == "grid2d") {
    g = micg::graph::make_grid_2d(static_cast<int>(pos_int(1)),
                                  static_cast<int>(pos_int(2)));
  } else if (fam == "er") {
    if (args.positional.size() < 4) usage("er needs N AVGDEG SEED");
    g = micg::graph::make_erdos_renyi(
        static_cast<int>(pos_int(1)),
        std::atof(args.positional[2].c_str()),
        static_cast<std::uint64_t>(pos_int(3)));
  } else if (fam == "rmat") {
    g = micg::graph::make_rmat(static_cast<int>(pos_int(1)),
                               static_cast<int>(pos_int(2)), 0.57, 0.19,
                               0.19, static_cast<std::uint64_t>(pos_int(3)));
  } else if (fam == "suite") {
    if (args.positional.size() < 3) usage("suite needs NAME SCALE");
    g = micg::graph::make_suite_graph(
        micg::graph::suite_entry_by_name(args.positional[1]),
        std::atof(args.positional[2].c_str()));
  } else {
    usage("unknown family: " + fam);
  }
  const auto out = args.flag("out", "");
  if (out.empty()) usage("gen needs -o FILE");
  const any_csr ag = micg::graph::to_narrowest(std::move(g));
  save_graph(out, ag);
  std::cout << "wrote " << out << " [" << micg::graph::layout_name(ag.layout())
            << "]  |V|=" << ag.num_vertices() << " |E|=" << ag.num_edges()
            << "\n";
  return 0;
}

int cmd_convert(const arg_parser& args) {
  if (args.positional.size() != 2) usage("convert needs IN OUT");
  const auto g = load_graph(args.positional[0]);
  save_graph(args.positional[1], g);
  std::cout << "converted " << args.positional[0] << " -> "
            << args.positional[1] << "\n";
  return 0;
}

int cmd_info(const arg_parser& args) {
  if (args.positional.empty()) usage("info needs FILE");
  const auto ag = load_graph(args.positional[0]);
  micg::table_printer t("graph info: " + args.positional[0]);
  t.header({"property", "value"});
  t.row({"layout", std::string(micg::graph::layout_name(ag.layout()))});
  ag.visit([&](const auto& g) {
    const auto stats = micg::graph::compute_degree_stats(g);
    t.row({"|V|", micg::table_printer::fmt(
                      static_cast<long long>(g.num_vertices()))});
    t.row({"|E|", micg::table_printer::fmt(
                      static_cast<long long>(g.num_edges()))});
    t.row({"min degree", micg::table_printer::fmt(
                             static_cast<long long>(stats.min))});
    t.row({"max degree (Delta)",
           micg::table_printer::fmt(static_cast<long long>(stats.max))});
    t.row({"avg degree", micg::table_printer::fmt(stats.mean)});
    t.row({"components",
           micg::table_printer::fmt(static_cast<long long>(
               micg::graph::count_components(g)))});
    t.row({"degeneracy", micg::table_printer::fmt(static_cast<long long>(
                             micg::color::degeneracy(g)))});
    t.row({"BFS levels from |V|/2",
           micg::table_printer::fmt(static_cast<long long>(
               micg::graph::count_bfs_levels(
                   g, g.num_vertices() / 2)))});
  });
  t.print(std::cout);
  return 0;
}

int cmd_color(const arg_parser& args) {
  if (args.positional.empty()) usage("color needs FILE");
  const auto ag = load_graph(args.positional[0]);
  micg::color::iterative_options opt;
  opt.ex.kind = micg::rt::backend_from_name(
      args.flag("backend", "OpenMP-dynamic"));
  opt.ex.threads = static_cast<int>(args.flag_int("threads", 4));
  opt.ex.chunk = args.flag_int("chunk", 100);
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args),
      {{"tool", "micg color"},
       {"graph", args.positional[0]},
       {"layout", std::string(micg::graph::layout_name(ag.layout()))}},
      [&] {
        ag.visit([&](const auto& g) {
          if (args.flag("d2", "no") != "no") {  // pass --d2 yes for distance-2
            const auto r = micg::color::iterative_color_distance2(g, opt);
            std::cout << "distance-2 colors: " << r.num_colors << " in "
                      << r.rounds << " rounds, "
                      << micg::table_printer::fmt(sw.millis())
                      << " ms, valid="
                      << micg::color::is_valid_distance2_coloring(g, r.color)
                      << "\n";
          } else {
            const auto r = micg::color::iterative_color(g, opt);
            std::cout << "colors: " << r.num_colors << " in " << r.rounds
                      << " rounds, " << micg::table_printer::fmt(sw.millis())
                      << " ms, valid="
                      << micg::color::is_valid_coloring(g, r.color) << "\n";
          }
        });
      });
  return 0;
}

int cmd_bfs(const arg_parser& args) {
  if (args.positional.empty()) usage("bfs needs FILE");
  const auto ag = load_graph(args.positional[0]);
  micg::bfs::parallel_bfs_options opt;
  opt.ex.threads = static_cast<int>(args.flag_int("threads", 4));
  opt.block = static_cast<int>(args.flag_int("block", 32));
  const auto vname = args.flag("variant", "OpenMP-Block-relaxed");
  opt.variant = micg::bfs::bfs_variant_from_name(vname);
  const std::int64_t source =
      args.flag_int("source", static_cast<long>(ag.num_vertices() / 2));
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args),
      {{"tool", "micg bfs"},
       {"graph", args.positional[0]},
       {"layout", std::string(micg::graph::layout_name(ag.layout()))}},
      [&] {
        ag.visit([&](const auto& g) {
          using VId = typename std::decay_t<decltype(g)>::vertex_type;
          const auto r =
              micg::bfs::parallel_bfs(g, static_cast<VId>(source), opt);
          std::cout << micg::bfs::bfs_variant_name(opt.variant) << ": "
                    << r.num_levels << " levels, reached " << r.reached
                    << "/" << g.num_vertices() << " in "
                    << micg::table_printer::fmt(sw.millis()) << " ms\n";
        });
      });
  return 0;
}

int cmd_msbfs(const arg_parser& args) {
  if (args.positional.empty()) usage("msbfs needs FILE");
  const auto ag = load_graph(args.positional[0]);
  micg::bfs::msbfs_pool::options opt;
  opt.ex.threads = static_cast<int>(args.flag_int("threads", 4));
  opt.lanes = static_cast<int>(args.flag_int("lanes", 64));
  const auto nsources = static_cast<std::int64_t>(
      args.flag_int("sources", 64));
  micg::stopwatch sw;
  run_with_metrics(
      metrics_path(args),
      {{"tool", "micg msbfs"},
       {"graph", args.positional[0]},
       {"layout", std::string(micg::graph::layout_name(ag.layout()))}},
      [&] {
        ag.visit([&](const auto& g) {
          using VId = typename std::decay_t<decltype(g)>::vertex_type;
          const auto n = static_cast<std::int64_t>(g.num_vertices());
          const std::int64_t k = std::min(nsources, n);
          std::vector<VId> sources(static_cast<std::size_t>(k));
          for (std::int64_t i = 0; i < k; ++i) {
            sources[static_cast<std::size_t>(i)] =
                static_cast<VId>(i * n / std::max<std::int64_t>(k, 1));
          }
          const micg::bfs::msbfs_pool pool(opt);
          std::atomic<long long> batches{0};
          std::atomic<long long> reached{0};
          std::atomic<long long> levels{0};
          pool.for_each_batch(
              g, std::span<const VId>(sources),
              [&](const micg::bfs::msbfs_batch& batch,
                  const micg::bfs::msbfs_result& res) {
                batches.fetch_add(1, std::memory_order_relaxed);
                long long r = 0, l = 0;
                for (int lane = 0; lane < batch.lanes; ++lane) {
                  r += static_cast<long long>(
                      res.reached[static_cast<std::size_t>(lane)]);
                  l += res.num_levels[static_cast<std::size_t>(lane)];
                }
                reached.fetch_add(r, std::memory_order_relaxed);
                levels.fetch_add(l, std::memory_order_relaxed);
              });
          std::cout << "msbfs: " << k << " sources in " << batches.load()
                    << " batches of <=" << opt.lanes << " lanes, avg "
                    << micg::table_printer::fmt(
                           static_cast<double>(levels.load()) /
                           static_cast<double>(std::max<std::int64_t>(k, 1)))
                    << " levels, avg reached "
                    << micg::table_printer::fmt(
                           static_cast<double>(reached.load()) /
                           static_cast<double>(std::max<std::int64_t>(k, 1)))
                    << "/" << g.num_vertices() << " in "
                    << micg::table_printer::fmt(sw.millis()) << " ms\n";
        });
      });
  return 0;
}

int cmd_bc(const arg_parser& args) {
  if (args.positional.empty()) usage("bc needs FILE");
  const auto ag = load_graph(args.positional[0]);
  micg::bfs::centrality_options opt;
  opt.ex.threads = static_cast<int>(args.flag_int("threads", 4));
  opt.sample_sources = args.flag_int("samples", 0);
  opt.batched = args.flag("mode", "batched") != "repeated";
  opt.batch_lanes = static_cast<int>(args.flag_int("lanes", 64));
  micg::stopwatch sw;
  std::vector<double> bc;
  run_with_metrics(
      metrics_path(args),
      {{"tool", "micg bc"},
       {"graph", args.positional[0]},
       {"layout", std::string(micg::graph::layout_name(ag.layout()))}},
      [&] {
        ag.visit([&](const auto& g) {
          bc = micg::bfs::betweenness_centrality(g, opt);
        });
      });
  const auto top = static_cast<std::size_t>(args.flag_int("top", 5));
  std::vector<std::size_t> idx(bc.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(top, idx.size())),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return bc[a] > bc[b];
                    });
  std::cout << "betweenness centrality ("
            << micg::table_printer::fmt(sw.millis()) << " ms):\n";
  for (std::size_t i = 0; i < std::min(top, idx.size()); ++i) {
    std::cout << "  #" << i + 1 << "  vertex " << idx[i] << "  bc="
              << micg::table_printer::fmt(bc[idx[i]]) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const arg_parser args(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "color") return cmd_color(args);
    if (cmd == "bfs") return cmd_bfs(args);
    if (cmd == "msbfs") return cmd_msbfs(args);
    if (cmd == "bc") return cmd_bc(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command: " + cmd);
}
