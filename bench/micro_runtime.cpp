// Microbenchmarks (google-benchmark) for the runtime substrates: loop
// scheduling policies, recursive cilk_for grains, TBB-style partitioners,
// barrier, and fork-join region overhead — the per-event costs the
// machine model charges (machine_config's chunk_claim / task_spawn /
// barrier_per_thread).
#include <benchmark/benchmark.h>

#include <atomic>

#include "micg/obs/obs.hpp"
#include "micg/rt/barrier.hpp"
#include "micg/rt/cilk_for.hpp"
#include "micg/rt/exec.hpp"
#include "micg/rt/loop.hpp"
#include "micg/rt/partitioner.hpp"
#include "micg/rt/scheduler.hpp"
#include "micg/rt/thread_pool.hpp"

namespace {

constexpr std::int64_t kN = 1 << 16;

void run_backend(benchmark::State& state, micg::rt::backend kind) {
  micg::rt::exec e;
  e.kind = kind;
  e.threads = static_cast<int>(state.range(0));
  e.chunk = state.range(1);
  std::atomic<std::int64_t> sum{0};
  for (auto _ : state) {
    std::int64_t local = 0;
    micg::rt::for_range(e, kN,
                        [&](std::int64_t b, std::int64_t en, int) {
                          std::int64_t s = 0;
                          for (std::int64_t i = b; i < en; ++i) s += i;
                          sum.fetch_add(s, std::memory_order_relaxed);
                          benchmark::DoNotOptimize(local);
                        });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kN);
}

void bm_omp_static(benchmark::State& state) {
  run_backend(state, micg::rt::backend::omp_static);
}
void bm_omp_dynamic(benchmark::State& state) {
  run_backend(state, micg::rt::backend::omp_dynamic);
}
void bm_omp_guided(benchmark::State& state) {
  run_backend(state, micg::rt::backend::omp_guided);
}
void bm_cilk_for(benchmark::State& state) {
  run_backend(state, micg::rt::backend::cilk_holder);
}
void bm_tbb_simple(benchmark::State& state) {
  run_backend(state, micg::rt::backend::tbb_simple);
}
void bm_tbb_auto(benchmark::State& state) {
  run_backend(state, micg::rt::backend::tbb_auto);
}
void bm_tbb_affinity(benchmark::State& state) {
  run_backend(state, micg::rt::backend::tbb_affinity);
}

#define MICG_LOOP_ARGS ->Args({1, 256})->Args({4, 256})->Args({4, 64})
BENCHMARK(bm_omp_static) MICG_LOOP_ARGS;
BENCHMARK(bm_omp_dynamic) MICG_LOOP_ARGS;
BENCHMARK(bm_omp_guided) MICG_LOOP_ARGS;
BENCHMARK(bm_cilk_for) MICG_LOOP_ARGS;
BENCHMARK(bm_tbb_simple) MICG_LOOP_ARGS;
BENCHMARK(bm_tbb_auto) MICG_LOOP_ARGS;
BENCHMARK(bm_tbb_affinity) MICG_LOOP_ARGS;
#undef MICG_LOOP_ARGS

void bm_region_forkjoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto& pool = micg::rt::thread_pool::global();
  pool.reserve(threads);
  for (auto _ : state) {
    pool.run(threads, [](int) {});
  }
}
BENCHMARK(bm_region_forkjoin)->Arg(1)->Arg(4)->Arg(8);

// Same fork-join region with a global obs recorder installed: bounds the
// observability overhead (acceptance: <2% on the parallel-region bench —
// compare against bm_region_forkjoin).
void bm_region_forkjoin_observed(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto& pool = micg::rt::thread_pool::global();
  pool.reserve(threads);
  micg::obs::recorder rec;
  micg::obs::scoped_global guard(rec);
  for (auto _ : state) {
    pool.run(threads, [](int) {});
  }
}
BENCHMARK(bm_region_forkjoin_observed)->Arg(1)->Arg(4)->Arg(8);

// Hot-loop counter discipline: per-chunk add to a cacheline-padded slot.
void bm_obs_counter_add(benchmark::State& state) {
  micg::obs::recorder rec;
  micg::obs::counter& c = rec.get_counter("bench.items");
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) c.add(i & 7, 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(bm_obs_counter_add);

void bm_barrier_round(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto& pool = micg::rt::thread_pool::global();
  pool.reserve(threads);
  for (auto _ : state) {
    micg::rt::sense_barrier barrier(threads);
    pool.run(threads, [&](int) {
      for (int i = 0; i < 16; ++i) barrier.arrive_and_wait();
    });
  }
}
BENCHMARK(bm_barrier_round)->Arg(2)->Arg(4);

void bm_task_spawn(benchmark::State& state) {
  auto& pool = micg::rt::thread_pool::global();
  micg::rt::task_scheduler sched(pool, static_cast<int>(state.range(0)));
  std::atomic<int> count{0};
  for (auto _ : state) {
    sched.run([&] {
      micg::rt::task_group g(sched);
      for (int i = 0; i < 256; ++i) {
        g.spawn([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
      g.wait();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(bm_task_spawn)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
