// Shard-scaling series (extension): the bulk-synchronous sharded drivers
// against their single-shard counterparts, swept over 1/2/4/8 shards.
//
// The paper scales one kernel across the cores of one chip; the natural
// next axis is scaling across memory domains, where each shard streams
// its own CSR from its own controller and pays messages for cut edges.
// This harness measures that trade on one host — the per-shard pools all
// share the same silicon here, so the measured series isolates the
// *overhead* side (partition quality, exchange volume, barrier latency)
// while the multi-socket machine model projects the *bandwidth* side a
// real 4-socket box would add (docs/sharding.md).
//
// Hardware is held constant across the sweep: a run at S shards gives
// each shard max(1, T/S) workers, so every configuration uses ~T threads
// and the 1-shard row is the plain kernel at full parallelism.
//
// Reported per graph and shard count:
//   * measured — wall-clock speedup vs the 1-shard run of the same
//     kernel (BFS from |V|/2; pagerank at a fixed iteration count);
//   * model:MultiSocket — shard_model_speedup() for the same workload
//     (edges, measured cut fraction, measured round count) on the
//     4-socket preset.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/sharded.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/shard.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/sharded_pagerank.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/shard_model.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::benchkit::series;
using micg::graph::any_csr;
using micg::graph::csr_graph;

constexpr int kPagerankIters = 20;

/// Pagerank options pinned to a fixed iteration count so every
/// configuration does identical numerical work.
micg::irregular::pagerank_options pagerank_opts(int threads) {
  micg::irregular::pagerank_options opt;
  opt.ex.threads = threads;
  opt.tolerance = 0.0;  // never converges early
  opt.max_iterations = kPagerankIters;
  return opt;
}

struct shard_timing {
  double bfs_secs = 0.0;
  double pagerank_secs = 0.0;
  double bfs_rounds = 0.0;  ///< BSP rounds == BFS levels of the traversal
};

shard_timing run_sharded(const micg::graph::sharded_csr& sg,
                         std::int64_t source, int threads_per_shard,
                         int runs) {
  shard_timing t;
  micg::bfs::sharded_bfs_options bopt;
  bopt.ex.threads = threads_per_shard;
  t.bfs_rounds = static_cast<double>(
      micg::bfs::sharded_bfs(sg, source, bopt).num_levels);
  t.bfs_secs = micg::benchkit::time_stable(
      [&] { (void)micg::bfs::sharded_bfs(sg, source, bopt); }, runs);
  const auto popt = pagerank_opts(threads_per_shard);
  t.pagerank_secs = micg::benchkit::time_stable(
      [&] { (void)micg::irregular::sharded_pagerank(sg, popt); }, runs);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const int threads_total = cfg.measured_threads.back();
  const int runs = cfg.measured_runs;
  const std::vector<int> shard_counts{1, 2, 4, 8};

  // FEM suite plus an RMAT graph sized to the measured scale (the same
  // graph slate as the other figure benches).
  std::vector<std::pair<std::string, const csr_graph*>> graphs;
  for (const auto& entry : micg::graph::table1_suite()) {
    graphs.emplace_back(
        entry.name,
        &micg::benchkit::suite_graph(entry.name, cfg.measured_scale));
  }
  const int rmat_scale = std::max(
      10, static_cast<int>(
              std::lround(std::log2(cfg.measured_scale * 1048576.0))));
  const csr_graph rmat = micg::graph::make_rmat(rmat_scale, 8, 0.57, 0.19,
                                                0.19, 42);
  graphs.emplace_back("rmat" + std::to_string(rmat_scale), &rmat);

  std::cout << "Shard scaling: BSP sharded drivers vs single shard\n"
               "(total threads=" << threads_total
            << ", pagerank iterations=" << kPagerankIters
            << ", scale=" << cfg.measured_scale << ")\n\n";

  const auto model_machine = micg::model::machine_config::multi_socket();
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  std::vector<series> bfs_measured, pr_measured;
  std::vector<series> bfs_model, pr_model;
  std::vector<series> cut_series;
  for (const auto& [name, gp] : graphs) {
    const any_csr g(*gp);
    const std::int64_t source = g.num_vertices() / 2;
    std::vector<double> bfs_s, pr_s, bfs_m, pr_m, cuts;
    shard_timing base;
    for (const int shards : shard_counts) {
      const auto sg = micg::graph::make_sharded(g, shards);
      const int tps = std::max(1, threads_total / shards);
      const shard_timing t = run_sharded(sg, source, tps, runs);
      if (shards == 1) base = t;
      const double bfs_speedup =
          t.bfs_secs > 0.0 ? base.bfs_secs / t.bfs_secs : 0.0;
      const double pr_speedup =
          t.pagerank_secs > 0.0 ? base.pagerank_secs / t.pagerank_secs
                                : 0.0;
      bfs_s.push_back(bfs_speedup);
      pr_s.push_back(pr_speedup);
      cuts.push_back(sg.cut_fraction());

      micg::model::shard_workload w;
      w.directed_edges = static_cast<double>(g.num_directed_edges());
      w.cut_fraction = sg.cut_fraction();
      w.rounds = t.bfs_rounds;
      bfs_m.push_back(
          micg::model::shard_model_speedup(model_machine, w, shards));
      w.rounds = kPagerankIters;
      pr_m.push_back(
          micg::model::shard_model_speedup(model_machine, w, shards));

      if (sink.enabled()) {
        micg::benchkit::record_run(
            sink,
            {{"bench", "fig_shard"},
             {"graph", name},
             {"shards", std::to_string(shards)},
             {"threads_per_shard", std::to_string(tps)}},
            [&] {
              micg::bfs::sharded_bfs_options opt;
              opt.ex.threads = tps;
              (void)micg::bfs::sharded_bfs(sg, source, opt);
              if (auto* rec = micg::obs::recorder::global()) {
                rec->set_value("shard.cut_fraction", sg.cut_fraction());
                rec->set_value("shard.bfs_secs", t.bfs_secs);
                rec->set_value("shard.pagerank_secs", t.pagerank_secs);
                rec->set_value("shard.bfs_speedup_vs_1shard", bfs_speedup);
                rec->set_value("shard.pagerank_speedup_vs_1shard",
                               pr_speedup);
                rec->set_value("shard.model_bfs_speedup", bfs_m.back());
                rec->set_value("shard.model_pagerank_speedup",
                               pr_m.back());
              }
            });
      }
    }
    bfs_measured.push_back({name, std::move(bfs_s)});
    pr_measured.push_back({name, std::move(pr_s)});
    bfs_model.push_back({name, std::move(bfs_m)});
    pr_model.push_back({name, std::move(pr_m)});
    cut_series.push_back({name, std::move(cuts)});
  }

  micg::benchkit::print_figure(
      "Shard scaling measured: BFS speedup vs 1 shard (rows = shards)",
      shard_counts, bfs_measured);
  micg::benchkit::print_figure(
      "Shard scaling measured: pagerank speedup vs 1 shard (rows = shards)",
      shard_counts, pr_measured);
  micg::benchkit::print_figure(
      "Shard scaling model:MultiSocket: projected BFS speedup",
      shard_counts, bfs_model);
  micg::benchkit::print_figure(
      "Shard scaling model:MultiSocket: projected pagerank speedup",
      shard_counts, pr_model);
  micg::benchkit::print_figure(
      "Partition quality: cut fraction (rows = shards)", shard_counts,
      cut_series);

  std::cout << "[fig_shard] done in "
            << micg::table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
