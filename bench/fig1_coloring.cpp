// Figure 1: speedup of the iterative coloring on all (naturally ordered)
// graphs, threads 1..121 step 10, geometric mean over the seven suite
// graphs. Three panels, as in the paper:
//   (a) OpenMP static/dynamic/guided (paper-best chunks 40/100/100),
//   (b) Cilk worker-id vs holder variants (grain 100),
//   (c) TBB simple/auto/affinity partitioners (min chunk 40).
// Series: machine model on the KNF description, plus measured wall-clock
// runs of the real implementations on this host (small thread grid).
#include <iostream>

#include "micg/benchkit/benchkit.hpp"
#include "micg/color/iterative.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::benchkit::series;
using micg::rt::backend;

struct variant {
  backend kind;
  std::int64_t chunk;
};

series modeled(const std::string& name, const variant& v,
               const std::vector<int>& grid,
               const micg::model::machine_config& m, double scale,
               bool shuffled = false) {
  std::vector<std::vector<double>> per_graph;
  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, scale);
    const auto trace = micg::model::coloring_trace(g, shuffled);
    per_graph.push_back(
        micg::model::model_sweep(trace, v.kind, v.chunk, grid, m).speedup);
  }
  return micg::benchkit::geomean_series(name, per_graph);
}

series measured(const std::string& name, const variant& v,
                const std::vector<int>& grid, double scale, int runs) {
  std::vector<std::vector<double>> per_graph;
  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, scale);
    std::vector<double> curve;
    double t1 = 0.0;
    for (int t : grid) {
      micg::color::iterative_options opt;
      opt.ex.kind = v.kind;
      opt.ex.threads = t;
      opt.ex.chunk = v.chunk;
      const double secs = micg::benchkit::time_stable(
          [&] { micg::color::iterative_color(g, opt); }, runs);
      if (t == grid.front()) t1 = secs;
      curve.push_back(t1 / secs);
    }
    per_graph.push_back(std::move(curve));
  }
  return micg::benchkit::geomean_series(name, per_graph);
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  const auto knf = micg::model::machine_config::knf();
  const auto grid = micg::model::paper_thread_grid(121);

  std::cout << "Figure 1: coloring speedup, natural order, geomean over "
               "the 7-graph suite (scale="
            << scale << ")\n\n";

  micg::benchkit::print_figure("Fig 1(a): OpenMP schedules [model:KNF]", grid,
               {modeled("static(40)", {backend::omp_static, 40}, grid, knf,
                        scale),
                modeled("dynamic(100)", {backend::omp_dynamic, 100}, grid,
                        knf, scale),
                modeled("guided(100)", {backend::omp_guided, 100}, grid,
                        knf, scale)});

  micg::benchkit::print_figure("Fig 1(b): Cilk Plus variants [model:KNF]", grid,
               {modeled("CilkPlus(tid,100)", {backend::cilk_tid, 100},
                        grid, knf, scale),
                modeled("CilkPlus-holder(100)",
                        {backend::cilk_holder, 100}, grid, knf, scale)});

  micg::benchkit::print_figure("Fig 1(c): TBB partitioners [model:KNF]", grid,
               {modeled("simple(40)", {backend::tbb_simple, 40}, grid, knf,
                        scale),
                modeled("auto", {backend::tbb_auto, 40}, grid, knf, scale),
                modeled("affinity", {backend::tbb_affinity, 40}, grid, knf,
                        scale)});

  // Measured on this host: the real implementations, small thread grid.
  const auto& mgrid = cfg.measured_threads;
  const double mscale = cfg.measured_scale;
  micg::benchkit::print_figure(
      "Fig 1 (measured on this host, scale=" +
          micg::table_printer::fmt(mscale, 3) + ")",
      mgrid,
      {measured("OpenMP-dynamic", {backend::omp_dynamic, 100}, mgrid,
                mscale, cfg.measured_runs),
       measured("CilkPlus-holder", {backend::cilk_holder, 100}, mgrid,
                mscale, cfg.measured_runs),
       measured("TBB-simple", {backend::tbb_simple, 40}, mgrid, mscale,
                cfg.measured_runs)});

  // Structured metrics: one instrumented coloring per programming model.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    const auto& g = micg::benchkit::suite_graph("pwtk", mscale);
    for (const variant v : {variant{backend::omp_dynamic, 100},
                            variant{backend::cilk_holder, 100},
                            variant{backend::tbb_simple, 40}}) {
      micg::color::iterative_options opt;
      opt.ex.kind = v.kind;
      opt.ex.threads = mgrid.back();
      opt.ex.chunk = v.chunk;
      micg::benchkit::record_run(
          sink,
          {{"bench", "fig1_coloring"},
           {"graph", "pwtk"},
           {"threads", std::to_string(mgrid.back())}},
          [&] { micg::color::iterative_color(g, opt); });
    }
  }

  std::cout << "[fig1_coloring] done in "
            << micg::table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
