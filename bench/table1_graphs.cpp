// Regenerates Table I of the paper: the seven test graphs with |V|, |E|,
// max degree, sequential greedy color count, and BFS level count from
// vertex |V|/2 — paper value and the synthetic stand-in's measured value
// side by side. Also verifies the §V-B claim that the parallel coloring
// stays within 5% of the sequential color count.
#include <iostream>

#include "micg/benchkit/benchkit.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/props.hpp"
#include "micg/graph/suite.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

int main(int argc, char** argv) {
  using micg::table_printer;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  micg::stopwatch total;

  table_printer t("Table I: properties of the test graphs (paper -> measured stand-in, scale=" +
                  table_printer::fmt(scale, 2) + ")");
  t.header({"Name", "|V| paper", "|V|", "|E| paper", "|E|", "D paper", "D",
            "#Color paper", "#Color", "#Level paper", "#Level",
            "par#Color", "par/seq"});

  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, scale);
    const auto stats = micg::graph::compute_degree_stats(g);
    const auto seq = micg::color::greedy_color(g);
    const int levels =
        micg::graph::count_bfs_levels(g, g.num_vertices() / 2);

    micg::color::iterative_options opt;
    opt.ex.kind = micg::rt::backend::omp_dynamic;
    opt.ex.threads = 8;
    opt.ex.chunk = 100;
    const auto par = micg::color::iterative_color(g, opt);
    // The paper reports parallel color counts within 5% of sequential on
    // the UF matrices; the synthetic stand-ins are more order-sensitive
    // (smaller cliques), so we report the actual ratio (see
    // EXPERIMENTS.md).
    const double ratio = static_cast<double>(par.num_colors) /
                         static_cast<double>(seq.num_colors);

    t.row({entry.name, table_printer::human(entry.paper_vertices),
           table_printer::human(g.num_vertices()),
           table_printer::human(entry.paper_edges),
           table_printer::human(g.num_edges()),
           table_printer::fmt(static_cast<long long>(entry.paper_max_degree)),
           table_printer::fmt(static_cast<long long>(stats.max)),
           table_printer::fmt(static_cast<long long>(entry.paper_colors)),
           table_printer::fmt(static_cast<long long>(seq.num_colors)),
           table_printer::fmt(static_cast<long long>(entry.paper_levels)),
           table_printer::fmt(static_cast<long long>(levels)),
           table_printer::fmt(static_cast<long long>(par.num_colors)),
           table_printer::fmt(ratio)});
  }
  t.print(std::cout);

  // Structured metrics: one instrumented coloring of the first suite graph.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    const auto& g = micg::benchkit::suite_graph(
        micg::graph::table1_suite().front().name, scale);
    micg::color::iterative_options opt;
    opt.ex.kind = micg::rt::backend::omp_dynamic;
    opt.ex.threads = 8;
    opt.ex.chunk = 100;
    micg::benchkit::record_run(
        sink,
        {{"bench", "table1_graphs"},
         {"graph", micg::graph::table1_suite().front().name}},
        [&] { micg::color::iterative_color(g, opt); });
  }

  std::cout << "\n[table1_graphs] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
