// Ablation: index-width layout (csr32 / csr32e64 / csr64) versus kernel
// throughput. The paper's KNF card has 1-2 GB of GDDR and in-order cores
// that live or die by memory traffic (§II); halving the bytes per index
// is the kind of bandwidth lever §VI points at. This bench quantifies it:
// the same BFS / coloring / PageRank runs on the same graph stored at each
// shipped layout, reporting time and effective traversal rate per layout.
#include <iostream>
#include <vector>

#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/color/iterative.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::graph::any_csr;
using micg::graph::csr_layout;

constexpr csr_layout kLayouts[] = {csr_layout::v32e32, csr_layout::v32e64,
                                   csr_layout::v64e64};

}  // namespace

int main(int argc, char** argv) {
  using micg::table_printer;
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double mscale = cfg.measured_scale;
  const int threads = cfg.measured_threads.back();
  const int runs = cfg.measured_runs;
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  std::cout << "Ablation: CSR index layout (" << threads
            << " threads, scale=" << table_printer::fmt(mscale, 3)
            << ")\n\n";

  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& base = micg::benchkit::suite_graph(entry.name, mscale);
    const auto source =
        static_cast<micg::graph::vertex_t>(base.num_vertices() / 2);

    table_printer t(entry.name + "  |V|=" +
                    table_printer::fmt(
                        static_cast<long long>(base.num_vertices())) +
                    " |E|=" +
                    table_printer::fmt(
                        static_cast<long long>(base.num_edges())));
    t.header({"layout", "index MB", "bfs ms", "bfs MTEPS", "color ms",
              "pagerank ms"});

    for (csr_layout layout : kLayouts) {
      const any_csr ag = micg::graph::to_layout(any_csr(base), layout);
      const double edges = static_cast<double>(ag.num_edges());

      double bfs_ms = 0.0;
      double color_ms = 0.0;
      double pr_ms = 0.0;
      ag.visit([&](const auto& g) {
        using VId = typename std::decay_t<decltype(g)>::vertex_type;

        micg::bfs::parallel_bfs_options bopt;
        bopt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
        bopt.ex.threads = threads;
        bfs_ms = 1e3 * micg::benchkit::time_stable(
                           [&] {
                             micg::bfs::parallel_bfs(
                                 g, static_cast<VId>(source), bopt);
                           },
                           runs);

        micg::color::iterative_options copt;
        copt.ex.kind = micg::rt::backend::omp_dynamic;
        copt.ex.threads = threads;
        copt.ex.chunk = 100;
        color_ms = 1e3 * micg::benchkit::time_stable(
                             [&] { micg::color::iterative_color(g, copt); },
                             runs);

        micg::irregular::pagerank_options popt;
        popt.ex.threads = threads;
        popt.max_iterations = 20;
        popt.tolerance = 0.0;  // fixed work per run
        pr_ms = 1e3 * micg::benchkit::time_stable(
                          [&] { micg::irregular::pagerank(g, popt); }, runs);

        // Structured metrics: one instrumented BFS + coloring run per
        // (graph, layout) so the schema step can compare layouts.
        if (sink.enabled()) {
          micg::benchkit::record_run(
              sink,
              {{"bench", "ablate_layout"},
               {"graph", entry.name},
               {"layout", micg::graph::layout_name(layout)}},
              [&] {
                micg::bfs::parallel_bfs(g, static_cast<VId>(source), bopt);
                micg::color::iterative_color(g, copt);
              });
        }
      });

      const double mteps = edges / (bfs_ms * 1e-3) / 1e6;
      t.row({micg::graph::layout_name(layout),
             table_printer::fmt(
                 static_cast<double>(ag.index_bytes()) / 1e6, 1),
             table_printer::fmt(bfs_ms), table_printer::fmt(mteps),
             table_printer::fmt(color_ms), table_printer::fmt(pr_ms)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "[ablate_layout] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
