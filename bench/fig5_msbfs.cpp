// Figure 5 (extension): throughput of batched multi-source BFS.
//
// The paper benchmarks one traversal at a time; the deployment target is
// many concurrent queries over the same graph. This harness sweeps the
// number of sources (1, 8, 64, 256) and compares two ways of serving them
// with the same pool and thread count:
//   * repeated — msbfs_pool with 1-lane batches: one classic BFS per
//     source, whole traversals distributed across workers (the strongest
//     repeated-single-source throughput baseline);
//   * batched  — msbfs_pool with 64-lane batches: sources share edge
//     sweeps through per-vertex bitmasks.
// Reported numbers are throughput ratios batched/repeated (sources per
// second), per graph, alongside the batched analytical model's prediction
// (total per-source work over the union-frontier cost — the lane-sharing
// gain the model expects at the same thread count).
//
// Source placement matters: lanes share an edge sweep only where their
// wavefronts coincide, so the main sweep batches *consecutive* vertex ids
// (spatially local in mesh orderings — the related-query workload MS-BFS
// batching targets). A final panel re-runs 64 sources spread evenly over
// the id range, where FEM-mesh wavefronts never align and the sharing
// collapses.
#include <atomic>
#include <cmath>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/msbfs.hpp"
#include "micg/graph/generators.hpp"
#include "micg/model/bfs_model.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::benchkit::series;
using micg::graph::csr_graph;

constexpr int kBlock = 32;  // the paper's best block size (§V-D)

/// Consecutive vertex ids starting mid-graph: spatially local in mesh
/// orderings, so lanes' wavefronts coincide and edge sweeps are shared.
std::vector<std::int32_t> clustered_sources(const csr_graph& g, int count) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  std::vector<std::int32_t> sources(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    sources[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>((n / 2 + i) % n);
  }
  return sources;
}

/// Sources spread evenly over the id range (the sharing-hostile placement).
std::vector<std::int32_t> spread_sources(const csr_graph& g, int count) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  std::vector<std::int32_t> sources(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    sources[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(i * n / count);
  }
  return sources;
}

double run_secs(const csr_graph& g, std::span<const std::int32_t> sources,
                int lanes, int threads, int runs) {
  micg::bfs::msbfs_pool::options opt;
  opt.ex.threads = threads;
  opt.lanes = lanes;
  const micg::bfs::msbfs_pool pool(opt);
  return micg::benchkit::time_stable(
      [&] {
        pool.for_each_batch(g, sources,
                            [](const micg::bfs::msbfs_batch&,
                               const micg::bfs::msbfs_result&) {});
      },
      runs);
}

/// The batched model's predicted throughput gain of one 64-lane batch
/// over 64 repeated traversals at the same thread count: repeated charges
/// each source its own levels, the batch charges the union once.
double model_gain(const csr_graph& g,
                  std::span<const std::int32_t> sources, int threads) {
  micg::bfs::msbfs_options opt;
  opt.ex.threads = 1;
  const auto res = micg::bfs::msbfs(g, sources, opt);
  double work = 0.0;
  double repeated_cost = 0.0;
  for (int lane = 0; lane < res.lanes; ++lane) {
    // Rebuild the lane's frontier sizes from its levels.
    std::vector<std::size_t> fs(
        static_cast<std::size_t>(res.num_levels[static_cast<std::size_t>(
            lane)]),
        0);
    const auto lv = res.lane_levels(lane);
    for (const int d : lv) {
      if (d >= 0) {
        ++fs[static_cast<std::size_t>(d)];
        work += 1.0;
      }
    }
    for (std::size_t x : fs) {
      repeated_cost += micg::model::bfs_level_cost(x, threads, kBlock);
    }
  }
  const double batched = micg::model::msbfs_model_speedup(
      res.frontier_sizes, work, threads, kBlock);
  const double repeated = repeated_cost > 0.0 ? work / repeated_cost : 0.0;
  return repeated > 0.0 ? batched / repeated : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const int threads = cfg.measured_threads.back();
  const int runs = cfg.measured_runs;
  const std::vector<int> source_counts{1, 8, 64, 256};

  // FEM suite plus an RMAT graph sized to the measured scale
  // (2^20 * scale target vertices).
  std::vector<std::pair<std::string, const csr_graph*>> graphs;
  for (const auto& entry : micg::graph::table1_suite()) {
    graphs.emplace_back(
        entry.name,
        &micg::benchkit::suite_graph(entry.name, cfg.measured_scale));
  }
  const int rmat_scale = std::max(
      10, static_cast<int>(
              std::lround(std::log2(cfg.measured_scale * 1048576.0))));
  const csr_graph rmat = micg::graph::make_rmat(rmat_scale, 8, 0.57, 0.19,
                                                0.19, 42);
  graphs.emplace_back("rmat" + std::to_string(rmat_scale), &rmat);

  std::cout << "Figure 5: batched multi-source BFS throughput vs repeated "
               "single-source\n(threads="
            << threads << ", lanes=64, block=" << kBlock
            << ", scale=" << cfg.measured_scale << ")\n\n";

  // Measured ratios: rows = source counts, one column per graph.
  std::vector<series> measured;
  std::vector<std::vector<double>> fem_ratio_by_count(
      source_counts.size());
  for (const auto& [name, gp] : graphs) {
    const auto& g = *gp;
    std::vector<double> ratio;
    for (std::size_t si = 0; si < source_counts.size(); ++si) {
      const int s = source_counts[si];
      const auto sources = clustered_sources(g, s);
      const double repeated = run_secs(g, sources, 1, threads, runs);
      const double batched = run_secs(g, sources, 64, threads, runs);
      const double r = batched > 0.0 ? repeated / batched : 0.0;
      ratio.push_back(r);
      if (name.rfind("rmat", 0) != 0) {
        fem_ratio_by_count[si].push_back(r);
      }
    }
    measured.push_back({name, std::move(ratio)});
  }
  micg::benchkit::print_figure(
      "Fig 5: measured throughput ratio batched/repeated (rows = sources)",
      source_counts, measured);

  // Model prediction at 64 sources, per graph.
  std::vector<series> model;
  for (const auto& [name, gp] : graphs) {
    const auto sources = clustered_sources(*gp, 64);
    model.push_back({name, {model_gain(*gp, sources, threads)}});
  }
  micg::benchkit::print_figure(
      "Fig 5 model: predicted lane-sharing gain at 64 sources",
      std::vector<int>{64}, model);

  // Placement ablation: 64 spread sources — mesh wavefronts never align,
  // so the batched ratio collapses toward 1 while RMAT (low diameter)
  // keeps sharing.
  std::vector<series> spread;
  for (const auto& [name, gp] : graphs) {
    const auto sources = spread_sources(*gp, 64);
    const double repeated = run_secs(*gp, sources, 1, threads, runs);
    const double batched = run_secs(*gp, sources, 64, threads, runs);
    spread.push_back(
        {name, {batched > 0.0 ? repeated / batched : 0.0}});
  }
  micg::benchkit::print_figure(
      "Fig 5 ablation: spread sources, ratio at 64 sources",
      std::vector<int>{64}, spread);

  // Structured metrics: one instrumented batched run per graph at 64
  // sources, stamped with the measured repeated/batched times so the
  // throughput claim is reproducible from BENCH_*.json alone.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    for (const auto& [name, gp] : graphs) {
      const auto& g = *gp;
      const auto sources = clustered_sources(g, 64);
      const double repeated = run_secs(g, sources, 1, threads, runs);
      const double batched = run_secs(g, sources, 64, threads, runs);
      micg::benchkit::record_run(
          sink,
          {{"bench", "fig5_msbfs"},
           {"graph", name},
           {"sources", "64"},
           {"threads", std::to_string(threads)}},
          [&] {
            micg::bfs::msbfs_pool::options opt;
            opt.ex.threads = threads;
            opt.lanes = 64;
            const micg::bfs::msbfs_pool pool(opt);
            pool.for_each_batch(g, std::span<const std::int32_t>(sources),
                                [](const micg::bfs::msbfs_batch&,
                                   const micg::bfs::msbfs_result&) {});
            if (auto* rec = micg::obs::recorder::global()) {
              rec->set_value("msbfs.repeated_secs", repeated);
              rec->set_value("msbfs.batched_secs", batched);
              rec->set_value("msbfs.throughput_speedup",
                             batched > 0.0 ? repeated / batched : 0.0);
            }
          });
    }
  }

  // Geomean of the FEM-suite ratios at each source count (the acceptance
  // figure quotes the 64-source row).
  std::cout << "\nFEM-suite geomean throughput ratio:\n";
  for (std::size_t si = 0; si < source_counts.size(); ++si) {
    double logsum = 0.0;
    for (double r : fem_ratio_by_count[si]) logsum += std::log(r);
    const double gm = std::exp(
        logsum / static_cast<double>(fem_ratio_by_count[si].size()));
    std::cout << "  sources=" << source_counts[si] << "  "
              << micg::table_printer::fmt(gm) << "x\n";
  }

  std::cout << "[fig5_msbfs] done in "
            << micg::table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
