// Ablation: predicted vs measured auto-tuning — does the knob picker
// (micg::tune) choose the configuration the hardware actually prefers?
//
// For each (graph shape, kernel) pair this bench times the *true* knob
// grid the kernels can execute — the memory fast-path combinations, the
// chunk ladder, the BFS frontier representations — alongside the static
// default and the picker's choice for this host ($MICG_CALIB or the
// builtin profile). The summary row per pair reports the tuned pick, the
// empirical best, the tuned-vs-default speedup and the regret vs best.
// tools/run_bench.sh commits the result as BENCH_tune.json and asserts
// the headline claim: auto matches or beats the static defaults on a
// majority of pairs and is never materially worse.
//
// Configs are timed in interleaved rounds (round-robin, min per config)
// for the same drift-spreading reason as ablate_memlat.
#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/direction.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/graph/generators.hpp"
#include "micg/graph/stats.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/support/simd.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"
#include "micg/tune/calib.hpp"
#include "micg/tune/tune.hpp"

namespace {

using micg::table_printer;
using micg::rt::mem_opts;
using micg::rt::partition_mode;

/// RMAT scale from the measured-scale knob: 0.02 -> 10, 1.0 -> 16.
int rmat_scale(double mscale) {
  return std::max(10, 16 + static_cast<int>(std::lround(std::log2(mscale))));
}

/// One timed configuration: a label and a closure running the kernel.
struct timed_config {
  std::string name;
  std::function<void()> run;
};

/// Interleaved-min timing over `runs` rounds, ms per config.
std::vector<double> time_interleaved(const std::vector<timed_config>& cfgs,
                                     int runs) {
  std::vector<double> best(cfgs.size(),
                           std::numeric_limits<double>::infinity());
  for (int r = 0; r < runs; ++r) {
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      micg::stopwatch sw;
      cfgs[ci].run();
      best[ci] = std::min(best[ci], 1e3 * sw.seconds());
    }
  }
  return best;
}

/// Print one sweep table and emit per-config + summary metrics records.
/// Row 0 must be the static default; row 1 must be the tuned pick.
void report(const std::string& graph, const std::string& kernel,
            const micg::tune::knob_plan& plan,
            const std::vector<timed_config>& cfgs,
            const std::vector<double>& ms, micg::benchkit::metrics_sink& sink,
            int* tuned_wins, int* pairs) {
  const double default_ms = ms[0];
  const double tuned_ms = ms[1];
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    if (ms[i] < ms[best_i]) best_i = i;
  }
  table_printer t(graph + " / " + kernel + "  (tuned pick: " +
                  micg::tune::knobs_summary(plan) + ")");
  t.header({"config", "ms", "vs default"});
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    std::string name = cfgs[i].name;
    if (i == best_i) name += " *";
    t.row({name, table_printer::fmt(ms[i]),
           table_printer::fmt(default_ms / ms[i])});
    if (sink.enabled()) {
      micg::obs::recorder rec;
      rec.set_meta("bench", "ablate_tune");
      rec.set_meta("graph", graph);
      rec.set_meta("kernel", kernel);
      rec.set_meta("config", cfgs[i].name);
      rec.set_value("time_ms", ms[i]);
      rec.set_value("speedup_vs_default", default_ms / ms[i]);
      sink.record(rec.take());
    }
  }
  t.print(std::cout);
  std::cout << '\n';

  ++*pairs;
  if (tuned_ms <= default_ms * 1.005) ++*tuned_wins;
  if (sink.enabled()) {
    micg::obs::recorder rec;
    rec.set_meta("bench", "ablate_tune");
    rec.set_meta("graph", graph);
    rec.set_meta("kernel", kernel);
    rec.set_meta("config", "summary");
    rec.set_meta("tuned_config", cfgs[1].name);
    rec.set_meta("best_config", cfgs[best_i].name);
    rec.set_meta("tuned_knobs", micg::tune::knobs_summary(plan));
    rec.set_value("default_ms", default_ms);
    rec.set_value("tuned_ms", tuned_ms);
    rec.set_value("best_ms", ms[best_i]);
    rec.set_value("tuned_speedup_vs_default", default_ms / tuned_ms);
    rec.set_value("tuned_regret_vs_best", tuned_ms / ms[best_i]);
    sink.record(rec.take());
  }
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const int threads = cfg.measured_threads.back();
  const int runs = cfg.measured_runs;
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  const int scale = rmat_scale(cfg.measured_scale);
  const auto side =
      static_cast<micg::graph::vertex_t>(std::int64_t{1} << ((scale + 1) / 2));
  std::vector<std::pair<std::string, micg::graph::csr_graph>> graphs;
  graphs.emplace_back("rmat",
                      micg::graph::make_rmat(scale, 16, 0.57, 0.19, 0.19, 42));
  graphs.emplace_back("grid2d", micg::graph::make_grid_2d(side, side));

  const auto& prof = micg::tune::host_profile();
  std::cout << "Ablation: predicted vs measured tuning (" << threads
            << " threads, profile=" << (prof.synthetic ? "synthetic:" : "")
            << (prof.host.empty() ? "builtin" : prof.host)
            << ", isa=" << micg::simd::isa_name() << ", runs=" << runs
            << ")\n\n";

  int tuned_wins = 0, pairs = 0;
  for (const auto& [gname, g] : graphs) {
    const auto stats = micg::graph::compute_graph_stats(g);
    const auto plan = micg::tune::pick_knobs(prof, stats);

    // ------------------------------------------------------- pagerank
    {
      const auto run_pr = [&g, threads](const mem_opts& mem,
                                        std::int64_t chunk) {
        micg::irregular::pagerank_options opt;
        opt.ex.threads = threads;
        opt.ex.chunk = chunk;
        opt.max_iterations = 10;
        opt.tolerance = 0.0;  // fixed work per run
        opt.mem = mem;
        micg::irregular::pagerank(g, opt);
      };
      std::vector<timed_config> cfgs;
      cfgs.push_back({"default", [&run_pr] { run_pr(mem_opts{}, 64); }});
      cfgs.push_back({"tuned", [&run_pr, &plan] {
                        run_pr(plan.mem, plan.chunk > 0 ? plan.chunk : 64);
                      }});
      for (bool simd : {false, true}) {
        for (partition_mode part :
             {partition_mode::vertex, partition_mode::edge}) {
          for (int dist : {0, 8, 32}) {
            const mem_opts mem{.partition = part,
                               .prefetch_distance = dist,
                               .simd = simd};
            std::string name = std::string(simd ? "simd" : "scalar") + "/" +
                               micg::rt::partition_mode_name(part) + "/pf" +
                               std::to_string(dist);
            cfgs.push_back(
                {std::move(name), [&run_pr, mem] { run_pr(mem, 64); }});
          }
        }
      }
      for (std::int64_t chunk : {256, 1024, 4096}) {
        cfgs.push_back({"default/c" + std::to_string(chunk),
                        [&run_pr, chunk] { run_pr(mem_opts{}, chunk); }});
      }
      const auto ms = time_interleaved(cfgs, runs);
      report(gname, "pagerank", plan, cfgs, ms, sink, &tuned_wins, &pairs);
    }

    // ------------------------------------------------------------ bfs
    {
      micg::graph::vertex_t src = 0;
      while (g.degree(src) == 0) ++src;
      const auto run_queue = [&g, src, threads](std::int64_t chunk) {
        micg::bfs::parallel_bfs_options opt;
        opt.ex.threads = threads;
        opt.ex.chunk = chunk;
        micg::bfs::parallel_bfs(g, src, opt);
      };
      const auto run_dir = [&g, src, threads](partition_mode part,
                                              double alpha,
                                              std::int64_t chunk) {
        micg::bfs::direction_options opt;
        opt.ex.threads = threads;
        opt.ex.chunk = chunk;
        opt.partition = part;
        opt.alpha = alpha;
        micg::bfs::direction_optimizing_bfs(g, src, opt);
      };
      std::vector<timed_config> cfgs;
      cfgs.push_back({"queue/default", [&run_queue] { run_queue(64); }});
      if (plan.bfs_direction) {
        cfgs.push_back({"tuned", [&run_dir, &plan] {
                          run_dir(plan.bfs_partition, plan.bfs_alpha,
                                  plan.chunk > 0 ? plan.chunk : 64);
                        }});
      } else {
        cfgs.push_back({"tuned", [&run_queue, &plan] {
                          run_queue(plan.chunk > 0 ? plan.chunk : 64);
                        }});
      }
      cfgs.push_back({"dir/vertex", [&run_dir] {
                        run_dir(partition_mode::vertex, 14.0, 64);
                      }});
      cfgs.push_back({"dir/edge", [&run_dir] {
                        run_dir(partition_mode::edge, 14.0, 64);
                      }});
      cfgs.push_back({"dir/edge/alpha8", [&run_dir] {
                        run_dir(partition_mode::edge, 8.0, 64);
                      }});
      const auto ms = time_interleaved(cfgs, runs);
      report(gname, "bfs", plan, cfgs, ms, sink, &tuned_wins, &pairs);
    }
  }

  std::cout << "[ablate_tune] tuned matched/beat default on " << tuned_wins
            << "/" << pairs << " (graph, kernel) pairs; done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
