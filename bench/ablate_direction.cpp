// Ablation (beyond the paper, §VI future work): direction-optimizing BFS
// versus plain layered BFS. On the high-diameter FEM suite the bottom-up
// heuristic rarely fires; on RMAT graphs it collapses the few huge middle
// levels. Reports steps taken in each direction and measured runtimes.
#include <iostream>

#include "micg/bfs/direction.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/benchkit/benchkit.hpp"
#include "micg/graph/generators.hpp"
#include "micg/support/timer.hpp"

int main(int argc, char** argv) {
  using micg::table_printer;
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double mscale = cfg.measured_scale;
  const int runs = cfg.measured_runs;
  const int threads = cfg.measured_threads.back();
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  std::cout << "Ablation: direction-optimizing vs layered BFS ("
            << threads << " threads)\n\n";

  table_printer t("Direction-optimizing BFS");
  t.header({"graph", "levels", "top-down", "bottom-up", "layered ms",
            "dir-opt ms", "ratio"});

  struct case_t {
    std::string name;
    micg::graph::csr_graph g;
  };
  std::vector<case_t> cases;
  cases.push_back({"pwtk(mesh)", micg::graph::make_suite_graph(
                                     micg::graph::suite_entry_by_name(
                                         "pwtk"),
                                     mscale)});
  cases.push_back({"ldoor(mesh)", micg::graph::make_suite_graph(
                                      micg::graph::suite_entry_by_name(
                                          "ldoor"),
                                      mscale)});
  cases.push_back(
      {"rmat-15", micg::graph::make_rmat(15, 16, 0.57, 0.19, 0.19, 9)});

  for (auto& c : cases) {
    micg::graph::vertex_t src = c.g.num_vertices() / 2;
    while (c.g.degree(src) == 0) ++src;

    micg::bfs::parallel_bfs_options lopt;
    lopt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
    lopt.ex.threads = threads;
    const double layered_ms =
        1e3 * micg::benchkit::time_stable(
                  [&] { micg::bfs::parallel_bfs(c.g, src, lopt); }, runs);

    micg::bfs::direction_options dopt;
    dopt.ex.threads = threads;
    const auto dres = micg::bfs::direction_optimizing_bfs(c.g, src, dopt);
    const double dir_ms =
        1e3 * micg::benchkit::time_stable(
                  [&] { micg::bfs::direction_optimizing_bfs(c.g, src, dopt); },
                  runs);

    t.row({c.name,
           table_printer::fmt(static_cast<long long>(dres.num_levels)),
           table_printer::fmt(static_cast<long long>(dres.top_down_steps)),
           table_printer::fmt(
               static_cast<long long>(dres.bottom_up_steps)),
           table_printer::fmt(layered_ms), table_printer::fmt(dir_ms),
           table_printer::fmt(layered_ms / dir_ms)});

    // Structured metrics: one instrumented dir-opt run per case.
    if (sink.enabled()) {
      micg::benchkit::record_run(
          sink,
          {{"bench", "ablate_direction"}, {"graph", c.name}},
          [&] { micg::bfs::direction_optimizing_bfs(c.g, src, dopt); });
    }
  }
  t.print(std::cout);

  std::cout << "\n[ablate_direction] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
