// Figure 4: speedup of parallel layered BFS.
//   (a) pwtk on the MIC description — the outlier: narrow frontiers cap
//       the speedup and the model's slope breaks near 13 threads;
//   (b) inline_1 — about twice pwtk's peak;
//   (c) all graphs on KNF: paper model vs OpenMP-Block-relaxed,
//       TBB-Block-relaxed and CilkPlus-Bag-relaxed (plus the locked
//       OpenMP-Block to show relaxed > locked, §V-D);
//   (d) all graphs on the 12-core host, including OpenMP-TLS (SNAP).
// All variant curves share one baseline per graph (the fastest 1-thread
// configuration, §V-A), so costlier variants sit lower.
#include <iostream>

#include "micg/bfs/seq.hpp"
#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/direction.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/model/bfs_model.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::benchkit::series;
using micg::rt::backend;

constexpr int kBlock = 32;  // the paper's best block size (§V-D)

struct bfs_variant_spec {
  std::string name;
  micg::model::bfs_trace_options trace;
  backend policy;
  std::int64_t chunk;
};

std::vector<bfs_variant_spec> mic_variants() {
  using micg::model::bfs_frontier;
  return {
      {"OpenMP-Block-relaxed", {bfs_frontier::block, true},
       backend::omp_dynamic, kBlock},
      {"OpenMP-Block", {bfs_frontier::block, false}, backend::omp_dynamic,
       kBlock},
      {"TBB-Block-relaxed", {bfs_frontier::block, true},
       backend::tbb_simple, kBlock},
      {"CilkPlus-Bag-relaxed", {bfs_frontier::bag, true},
       backend::cilk_holder, 0},
  };
}

/// Model curves for one graph: the paper's analytical model plus the
/// machine model for each requested variant, all over one shared baseline.
std::vector<std::vector<double>> graph_curves(
    const micg::graph::csr_graph& g,
    const std::vector<bfs_variant_spec>& variants,
    const std::vector<int>& grid, const micg::model::machine_config& m,
    double solo_overlap) {
  const auto source = g.num_vertices() / 2;
  const auto ref = micg::bfs::seq_bfs(g, source);

  std::vector<std::vector<double>> curves;
  curves.push_back(
      micg::model::bfs_model_curve(ref.frontier_sizes, grid, kBlock));

  // Shared baseline: the relaxed block queue is the fastest 1-thread
  // configuration (evaluated with the same solo_overlap as the curves so
  // out-of-order hosts normalize consistently).
  micg::model::bfs_trace_options fastest;
  micg::model::exec_options base_opt;
  base_opt.policy = backend::omp_static;
  base_opt.threads = 1;
  base_opt.solo_overlap = solo_overlap;
  const double base = micg::model::trace_time(
      micg::model::bfs_trace(g, source, fastest), base_opt, m);

  for (const auto& v : variants) {
    const auto trace = micg::model::bfs_trace(g, source, v.trace);
    std::vector<double> curve;
    for (int t : grid) {
      micg::model::exec_options o;
      o.policy = v.policy;
      o.threads = t;
      o.chunk = v.chunk;
      o.solo_overlap = solo_overlap;
      curve.push_back(micg::model::model_speedup_vs(trace, o, m, base));
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

void single_graph_panel(const std::string& title, const std::string& name,
                        const std::vector<int>& grid,
                        const micg::model::machine_config& m,
                        double scale) {
  const auto& g = micg::benchkit::suite_graph(name, scale);
  std::vector<bfs_variant_spec> variants = {
      {"OpenMP-Block-relaxed",
       {micg::model::bfs_frontier::block, true}, backend::omp_dynamic,
       kBlock},
      {"OpenMP-Block", {micg::model::bfs_frontier::block, false},
       backend::omp_dynamic, kBlock},
  };
  const auto curves = graph_curves(g, variants, grid, m, 0.0);
  std::vector<series> out;
  out.push_back({"Model", curves[0]});
  out.push_back({"OpenMP-Block-relaxed", curves[1]});
  out.push_back({"OpenMP-Block", curves[2]});
  micg::benchkit::print_figure(title, grid, out);
}

void all_graphs_panel(const std::string& title,
                      const std::vector<bfs_variant_spec>& variants,
                      const std::vector<int>& grid,
                      const micg::model::machine_config& m,
                      double solo_overlap, double scale) {
  std::vector<std::vector<std::vector<double>>> per_graph;  // graph x curve
  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, scale);
    per_graph.push_back(graph_curves(g, variants, grid, m, solo_overlap));
  }
  std::vector<series> out;
  for (std::size_t c = 0; c < per_graph.front().size(); ++c) {
    std::vector<std::vector<double>> column;
    for (const auto& pg : per_graph) column.push_back(pg[c]);
    const std::string name =
        c == 0 ? "Model" : variants[c - 1].name;
    out.push_back(micg::benchkit::geomean_series(name, column));
  }
  micg::benchkit::print_figure(title, grid, out);
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  const auto knf = micg::model::machine_config::knf();
  const auto host = micg::model::machine_config::host_xeon();
  const auto grid = micg::model::paper_thread_grid(121);

  std::cout << "Figure 4: layered parallel BFS speedup (block size "
            << kBlock << ", scale=" << scale << ")\n\n";

  single_graph_panel("Fig 4(a): pwtk on KNF [model]", "pwtk", grid, knf,
                     scale);
  single_graph_panel("Fig 4(b): inline_1 on KNF [model]", "inline_1", grid,
                     knf, scale);
  all_graphs_panel("Fig 4(c): all graphs on KNF [model]", mic_variants(),
                   grid, knf, 0.0, scale);

  // Host panel: 1..24 threads, out-of-order cores, plus OpenMP-TLS.
  std::vector<int> host_grid;
  for (int t = 1; t <= 24; t += 1) host_grid.push_back(t);
  auto host_variants = mic_variants();
  host_variants.push_back({"OpenMP-TLS",
                           {micg::model::bfs_frontier::tls, false},
                           backend::omp_dynamic, kBlock});
  all_graphs_panel("Fig 4(d): all graphs on host CPU [model]",
                   host_variants, host_grid, host, 0.6, scale);

  // Measured: real BFS variants on this host.
  const auto& mgrid = cfg.measured_threads;
  const double mscale = cfg.measured_scale;
  const int runs = cfg.measured_runs;
  std::vector<series> measured;
  for (auto variant : micg::bfs::all_bfs_variants()) {
    std::vector<std::vector<double>> per_graph;
    for (const char* name : {"pwtk", "inline_1"}) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      const auto source = g.num_vertices() / 2;
      std::vector<double> curve;
      double t1 = 0.0;
      for (int t : mgrid) {
        micg::bfs::parallel_bfs_options opt;
        opt.variant = variant;
        opt.ex.threads = t;
        opt.block = kBlock;
        const double secs = micg::benchkit::time_stable(
            [&] { micg::bfs::parallel_bfs(g, source, opt); }, runs);
        if (t == mgrid.front()) t1 = secs;
        curve.push_back(t1 / secs);
      }
      per_graph.push_back(std::move(curve));
    }
    measured.push_back(micg::benchkit::geomean_series(
        micg::bfs::bfs_variant_name(variant), per_graph));
  }
  micg::benchkit::print_figure("Fig 4 (measured on this host, pwtk+inline_1)", mgrid,
               measured);

  // Measured: direction-optimizing BFS, bitmap word-scan frontier versus
  // the queue path (and the partitioning of the bitmap's bottom-up steps),
  // selected by --memopt. Levels are identical; only the frontier
  // representation and load balance change.
  struct dir_variant {
    const char* name;
    bool bitmap;
    micg::rt::partition_mode partition;
  };
  std::vector<dir_variant> dir_variants;
  if (cfg.run_fast()) {
    dir_variants.push_back(
        {"bitmap/edge", true, micg::rt::partition_mode::edge});
  }
  if (cfg.run_scalar()) {
    dir_variants.push_back(
        {"queue", false, micg::rt::partition_mode::vertex});
  }
  std::vector<series> dir_measured;
  for (const auto& v : dir_variants) {
    std::vector<std::vector<double>> per_graph;
    for (const char* name : {"pwtk", "inline_1"}) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      const auto source = g.num_vertices() / 2;
      std::vector<double> curve;
      double t1 = 0.0;
      for (int t : mgrid) {
        micg::bfs::direction_options opt;
        opt.ex.threads = t;
        opt.block = kBlock;
        opt.bitmap = v.bitmap;
        opt.partition = v.partition;
        const double secs = micg::benchkit::time_stable(
            [&] { micg::bfs::direction_optimizing_bfs(g, source, opt); },
            runs);
        if (t == mgrid.front()) t1 = secs;
        curve.push_back(t1 / secs);
      }
      per_graph.push_back(std::move(curve));
    }
    dir_measured.push_back(
        micg::benchkit::geomean_series(v.name, per_graph));
  }
  micg::benchkit::print_figure(
      "Fig 4 extra (measured direction-optimizing BFS, frontier paths)",
      mgrid, dir_measured);

  // Structured metrics: one instrumented run per BFS variant, plus the
  // direction-optimizing frontier paths.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    const auto& g = micg::benchkit::suite_graph("pwtk", mscale);
    const auto source = g.num_vertices() / 2;
    for (auto variant : micg::bfs::all_bfs_variants()) {
      micg::bfs::parallel_bfs_options opt;
      opt.variant = variant;
      opt.ex.threads = mgrid.back();
      opt.block = kBlock;
      micg::benchkit::record_run(
          sink,
          {{"bench", "fig4_bfs"},
           {"graph", "pwtk"},
           {"threads", std::to_string(mgrid.back())}},
          [&] { micg::bfs::parallel_bfs(g, source, opt); });
    }
    for (const auto& v : dir_variants) {
      micg::bfs::direction_options opt;
      opt.ex.threads = mgrid.back();
      opt.block = kBlock;
      opt.bitmap = v.bitmap;
      opt.partition = v.partition;
      micg::benchkit::record_run(
          sink,
          {{"bench", "fig4_bfs"},
           {"graph", "pwtk"},
           {"frontier", v.name},
           {"threads", std::to_string(mgrid.back())}},
          [&] { micg::bfs::direction_optimizing_bfs(g, source, opt); });
    }
  }

  std::cout << "[fig4_bfs] done in "
            << micg::table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
