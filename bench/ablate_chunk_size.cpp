// Ablation: coloring chunk size (§V-B: "Different chunk sizes (from 40 to
// 150) were tried and only the best results are reported" — dynamic and
// guided best at 100, static best at 40). Machine-model speedup at 121
// threads vs chunk size for the three OpenMP schedules, plus a measured
// sweep of the real implementation.
#include <iostream>

#include "micg/benchkit/benchkit.hpp"
#include "micg/color/iterative.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/stats.hpp"
#include "micg/support/timer.hpp"

int main(int argc, char** argv) {
  using micg::table_printer;
  using micg::rt::backend;
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  const auto knf = micg::model::machine_config::knf();
  const std::vector<std::int64_t> chunks{10, 20, 40, 70, 100, 150, 250,
                                         400};

  std::cout << "Ablation: coloring chunk size (geomean over suite, scale="
            << scale << ")\n\n";

  table_printer t("Machine-model speedup at 121 threads vs chunk size");
  std::vector<std::string> header{"schedule"};
  for (auto c : chunks) header.push_back("c=" + std::to_string(c));
  t.header(std::move(header));

  const struct {
    const char* name;
    backend kind;
  } schedules[] = {{"OpenMP-dynamic", backend::omp_dynamic},
                   {"OpenMP-static-chunked", backend::omp_static_chunked},
                   {"OpenMP-guided", backend::omp_guided},
                   {"TBB-simple", backend::tbb_simple},
                   {"CilkPlus", backend::cilk_holder}};

  // Traces are per-graph; reuse across schedules/chunks.
  std::vector<micg::model::work_trace> traces;
  for (const auto& entry : micg::graph::table1_suite()) {
    traces.push_back(micg::model::coloring_trace(
        micg::benchkit::suite_graph(entry.name, scale), false));
  }

  for (const auto& s : schedules) {
    std::vector<std::string> row{s.name};
    for (auto c : chunks) {
      std::vector<double> per_graph;
      for (const auto& trace : traces) {
        micg::model::exec_options o;
        o.policy = s.kind;
        o.threads = 121;
        o.chunk = c;
        per_graph.push_back(micg::model::model_speedup(trace, o, knf));
      }
      row.push_back(table_printer::fmt(micg::geometric_mean(per_graph)));
    }
    t.row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';

  // Measured: real iterative coloring, chunk sweep at a fixed thread
  // count on this host.
  const double mscale = cfg.measured_scale;
  const int runs = cfg.measured_runs;
  const auto& g = micg::benchkit::suite_graph("hood", mscale);
  table_printer mt("Measured runtime (ms) on this host, 8 threads, hood");
  std::vector<std::string> mheader{"schedule"};
  for (auto c : chunks) mheader.push_back("c=" + std::to_string(c));
  mt.header(std::move(mheader));
  for (const auto& s : schedules) {
    std::vector<std::string> row{s.name};
    for (auto c : chunks) {
      micg::color::iterative_options opt;
      opt.ex.kind = s.kind;
      opt.ex.threads = 8;
      opt.ex.chunk = c;
      const double secs = micg::benchkit::time_stable(
          [&] { micg::color::iterative_color(g, opt); }, runs);
      row.push_back(table_printer::fmt(secs * 1e3));
    }
    mt.row(std::move(row));
  }
  mt.print(std::cout);

  // Structured metrics: one instrumented coloring at the paper-best chunk.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    micg::color::iterative_options opt;
    opt.ex.kind = backend::omp_dynamic;
    opt.ex.threads = 8;
    opt.ex.chunk = 100;
    micg::benchkit::record_run(
        sink,
        {{"bench", "ablate_chunk_size"}, {"graph", "hood"}},
        [&] { micg::color::iterative_color(g, opt); });
  }

  std::cout << "\n[ablate_chunk_size] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
