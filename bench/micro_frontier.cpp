// Microbenchmarks (google-benchmark) for the BFS frontier data
// structures: block-accessed queue push/flush, TLS queues push+merge,
// Leiserson–Schardl bag insert/absorb/traverse, and the work-stealing
// deque — the cost hierarchy behind §IV-C.
#include <benchmark/benchmark.h>

#include <vector>

#include "micg/bfs/bag.hpp"
#include "micg/bfs/block_queue.hpp"
#include "micg/bfs/tls_queue.hpp"
#include "micg/rt/ws_deque.hpp"

namespace {

using micg::graph::vertex_t;

void bm_block_queue_push(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int block = static_cast<int>(state.range(1));
  micg::bfs::block_queue q(n + 2 * static_cast<std::size_t>(block), block,
                           1);
  for (auto _ : state) {
    q.reset();
    for (std::size_t i = 0; i < n; ++i) {
      q.push(0, static_cast<vertex_t>(i));
    }
    q.flush_all();
    benchmark::DoNotOptimize(q.size_with_sentinels());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_block_queue_push)
    ->Args({1 << 14, 8})
    ->Args({1 << 14, 32})
    ->Args({1 << 14, 256});

void bm_tls_push_merge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  micg::bfs::tls_frontier f(1);
  std::vector<vertex_t> out;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      f.push(0, static_cast<vertex_t>(i));
    }
    f.merge_into(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_tls_push_merge)->Arg(1 << 14);

void bm_bag_insert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int grain = static_cast<int>(state.range(1));
  for (auto _ : state) {
    micg::bfs::vertex_bag bag(grain);
    for (std::size_t i = 0; i < n; ++i) {
      bag.insert(static_cast<vertex_t>(i));
    }
    benchmark::DoNotOptimize(bag.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_bag_insert)->Args({1 << 14, 16})->Args({1 << 14, 128});

void bm_bag_absorb(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    micg::bfs::vertex_bag a(128), b(128);
    for (std::size_t i = 0; i < n; ++i) {
      a.insert(static_cast<vertex_t>(i));
      b.insert(static_cast<vertex_t>(i + n));
    }
    state.ResumeTiming();
    a.absorb(std::move(b));
    benchmark::DoNotOptimize(a.size());
  }
}
BENCHMARK(bm_bag_absorb)->Arg(1 << 12);

void bm_ws_deque_push_pop(benchmark::State& state) {
  micg::rt::ws_deque<vertex_t> d;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      d.push(static_cast<vertex_t>(i));
    }
    while (d.pop().has_value()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_ws_deque_push_pop)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
