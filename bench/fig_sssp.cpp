// Weighted SSSP figure (source of BENCH_sssp.json): delta-stepping over
// the suite graphs with derived edge weights (graph/weighted.hpp).
//
//   (a) measured speedup over the sequential Dijkstra oracle, by thread
//       count, for the auto-picked delta on both shipped backend
//       families plus the bucket extremes (delta=1 ~ Dijkstra with
//       buckets, delta=inf ~ Bellman-Ford);
//   (b) the work/parallelism dial: relaxations executed relative to
//       Dijkstra's optimum, and buckets processed, as delta widens at a
//       fixed thread count.
//
// Every timed run is also checked bit-exact against seq_dijkstra — a
// bench that silently benchmarks wrong answers is worse than no bench —
// and the exactness bit lands in the metrics record (sssp.exact).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/sssp.hpp"
#include "micg/graph/stats.hpp"
#include "micg/graph/suite.hpp"
#include "micg/graph/weighted.hpp"
#include "micg/support/timer.hpp"
#include "micg/tune/tune.hpp"

namespace {

using micg::benchkit::series;
using micg::rt::backend;

constexpr int kBlock = 32;  // the paper's best block size (§V-D)

struct sssp_variant_spec {
  std::string name;
  backend policy;
  std::int64_t delta;  ///< 0 = auto (tune::pick_sssp_delta)
};

std::vector<sssp_variant_spec> variants() {
  return {
      {"OpenMP-delta-auto", backend::omp_dynamic, 0},
      {"TBB-delta-auto", backend::tbb_simple, 0},
      {"OpenMP-delta-1", backend::omp_dynamic, 1},
      {"OpenMP-delta-inf", backend::omp_dynamic,
       std::int64_t{1} << 40},
  };
}

std::int64_t resolve_delta(const micg::graph::csr_graph& g,
                           std::int64_t delta) {
  if (delta > 0) return delta;
  return micg::tune::pick_sssp_delta(
      micg::graph::compute_graph_stats(g),
      micg::graph::weight_params{}.max_weight);
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const auto& mgrid = cfg.measured_threads;
  const double mscale = cfg.measured_scale;
  const int runs = cfg.measured_runs;

  std::cout << "Figure sssp: delta-stepping SSSP, derived weights "
            << "(block size " << kBlock << ", measured scale=" << mscale
            << ")\n\n";

  const std::vector<const char*> graphs = {"pwtk", "inline_1"};
  bool all_exact = true;

  // (a) measured speedup over sequential Dijkstra, geomean across graphs.
  std::vector<series> measured;
  for (const auto& v : variants()) {
    std::vector<std::vector<double>> per_graph;
    for (const char* name : graphs) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      const auto w =
          micg::graph::generate_weights(g, micg::graph::weight_params{});
      const auto source =
          static_cast<micg::graph::vertex_t>(g.num_vertices() / 2);
      const auto ref = micg::bfs::seq_dijkstra(
          g, source, {w.data(), w.size()});
      const double seq_secs = micg::benchkit::time_stable(
          [&] { micg::bfs::seq_dijkstra(g, source, {w.data(), w.size()}); },
          runs);
      std::vector<double> curve;
      for (int t : mgrid) {
        micg::bfs::sssp_options opt;
        opt.ex.kind = v.policy;
        opt.ex.threads = t;
        opt.block = kBlock;
        opt.delta = resolve_delta(g, v.delta);
        const auto r =
            micg::bfs::delta_stepping_sssp(g, source, {w.data(), w.size()},
                                           opt);
        if (r.dist != ref) all_exact = false;
        const double secs = micg::benchkit::time_stable(
            [&] {
              micg::bfs::delta_stepping_sssp(g, source,
                                             {w.data(), w.size()}, opt);
            },
            runs);
        curve.push_back(seq_secs / secs);
      }
      per_graph.push_back(std::move(curve));
    }
    measured.push_back(micg::benchkit::geomean_series(v.name, per_graph));
  }
  micg::benchkit::print_figure(
      "Fig sssp(a): delta-stepping speedup vs sequential Dijkstra "
      "(measured, pwtk+inline_1)",
      mgrid, measured);

  // (b) the delta dial at the sweep's top thread count: work amplification
  // (relaxations over Dijkstra's optimum, which does exactly one winning
  // relaxation per settled edge order) and bucket count.
  const std::vector<int> deltas = {1, 4, 16, 64, 256, 1024};
  std::vector<series> dial;
  {
    std::vector<std::vector<double>> ratio_pg, bucket_pg;
    for (const char* name : graphs) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      const auto w =
          micg::graph::generate_weights(g, micg::graph::weight_params{});
      const auto source =
          static_cast<micg::graph::vertex_t>(g.num_vertices() / 2);
      micg::bfs::sssp_options base;
      base.ex.threads = mgrid.back();
      base.block = kBlock;
      base.delta = 1;
      const auto opt_work = micg::bfs::delta_stepping_sssp(
          g, source, {w.data(), w.size()}, base);
      std::vector<double> ratio, buckets;
      for (int d : deltas) {
        micg::bfs::sssp_options opt = base;
        opt.delta = d;
        const auto r = micg::bfs::delta_stepping_sssp(
            g, source, {w.data(), w.size()}, opt);
        ratio.push_back(static_cast<double>(r.relaxations) /
                        static_cast<double>(opt_work.relaxations));
        buckets.push_back(static_cast<double>(r.buckets));
      }
      ratio_pg.push_back(std::move(ratio));
      bucket_pg.push_back(std::move(buckets));
    }
    dial.push_back(
        micg::benchkit::geomean_series("relaxations/delta1", ratio_pg));
    dial.push_back(micg::benchkit::geomean_series("buckets", bucket_pg));
  }
  micg::benchkit::print_figure(
      "Fig sssp(b): work and bucket count as delta widens (threads=" +
          std::to_string(mgrid.back()) + ")",
      deltas, dial);

  // Structured metrics: one instrumented run per variant at the top
  // thread count, carrying the kernel's own sssp.* counters plus the
  // bench-level speedup and correctness bit.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    for (const char* name : graphs) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      const auto w =
          micg::graph::generate_weights(g, micg::graph::weight_params{});
      const auto source =
          static_cast<micg::graph::vertex_t>(g.num_vertices() / 2);
      const auto ref = micg::bfs::seq_dijkstra(
          g, source, {w.data(), w.size()});
      const double seq_secs = micg::benchkit::time_stable(
          [&] { micg::bfs::seq_dijkstra(g, source, {w.data(), w.size()}); },
          runs);
      for (const auto& v : variants()) {
        micg::bfs::sssp_options opt;
        opt.ex.kind = v.policy;
        opt.ex.threads = mgrid.back();
        opt.block = kBlock;
        opt.delta = resolve_delta(g, v.delta);
        const double secs = micg::benchkit::time_stable(
            [&] {
              micg::bfs::delta_stepping_sssp(g, source,
                                             {w.data(), w.size()}, opt);
            },
            runs);
        micg::benchkit::record_run(
            sink,
            {{"bench", "fig_sssp"},
             {"graph", name},
             {"variant", v.name},
             {"threads", std::to_string(mgrid.back())}},
            [&] {
              const auto r = micg::bfs::delta_stepping_sssp(
                  g, source, {w.data(), w.size()}, opt);
              if (auto* rec = micg::obs::recorder::global()) {
                rec->set_value("sssp.exact",
                               r.dist == ref ? 1.0 : 0.0);
                rec->set_value("sssp.secs", secs);
                rec->set_value("sssp.seq_dijkstra_secs", seq_secs);
                rec->set_value("sssp.speedup_vs_dijkstra",
                               seq_secs / secs);
              }
            });
      }
    }
  }

  if (!all_exact) {
    std::cerr << "[fig_sssp] FAIL: a timed configuration diverged from "
                 "the Dijkstra oracle\n";
    return 1;
  }
  std::cout << "[fig_sssp] all timed configurations matched seq_dijkstra; "
            << "done in " << micg::table_printer::fmt(total.seconds(), 1)
            << "s\n";
  return 0;
}
