// Figure 3: speedup of the irregular-computation microbenchmark
// (Algorithm 5) on all graphs for iter in {1, 3, 5, 10}, one panel per
// programming model. Paper findings: OpenMP/TBB speedups *decrease* with
// the iteration count (FPU pressure), Cilk's *increases* (per-task
// overhead amortizes), and at iter=10 all three models converge; the best
// speedup is 49 at 121 threads versus 46 at 61 (SMT still pays).
#include <iostream>

#include "micg/benchkit/benchkit.hpp"
#include "micg/irregular/kernel.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::benchkit::series;
using micg::rt::backend;

series modeled(const std::string& name, backend kind, std::int64_t chunk,
               int iterations, const std::vector<int>& grid,
               const micg::model::machine_config& m, double scale) {
  std::vector<std::vector<double>> per_graph;
  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, scale);
    const auto trace = micg::model::irregular_trace(g, iterations);
    per_graph.push_back(
        micg::model::model_sweep(trace, kind, chunk, grid, m).speedup);
  }
  return micg::benchkit::geomean_series(name, per_graph);
}

std::vector<series> panel(backend kind, std::int64_t chunk,
                          const std::vector<int>& grid,
                          const micg::model::machine_config& m,
                          double scale) {
  std::vector<series> curves;
  for (int iter : {1, 3, 5, 10}) {
    curves.push_back(modeled(std::to_string(iter) + "-iter", kind, chunk,
                             iter, grid, m, scale));
  }
  return curves;
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  const auto knf = micg::model::machine_config::knf();
  const auto grid = micg::model::paper_thread_grid(121);

  std::cout << "Figure 3: irregular-computation speedup, all graphs "
               "(scale=" << scale << ")\n\n";

  micg::benchkit::print_figure("Fig 3(a): OpenMP-dynamic [model:KNF]", grid,
               panel(backend::omp_dynamic, 100, grid, knf, scale));
  micg::benchkit::print_figure("Fig 3(b): Cilk Plus [model:KNF]", grid,
               panel(backend::cilk_holder, 100, grid, knf, scale));
  micg::benchkit::print_figure("Fig 3(c): TBB-simple [model:KNF]", grid,
               panel(backend::tbb_simple, 0, grid, knf, scale));

  // Measured: run the real Algorithm 5 kernel (in-place mode), once per
  // memory-hierarchy path selected by --memopt (fast = SIMD gather +
  // prefetch + edge-balanced chunks, scalar = the pre-optimization loop —
  // results are bit-identical, so the pairs of curves isolate the memory
  // effects).
  const auto& mgrid = cfg.measured_threads;
  const double mscale = cfg.measured_scale;
  const int runs = cfg.measured_runs;
  struct mem_variant {
    const char* name;
    micg::rt::mem_opts mem;
  };
  std::vector<mem_variant> variants;
  if (cfg.run_fast()) variants.push_back({"fast", micg::rt::mem_opts{}});
  if (cfg.run_scalar()) {
    variants.push_back({"scalar", micg::rt::scalar_mem_opts()});
  }
  std::vector<series> curves;
  for (const auto& variant : variants) {
    for (int iter : {1, 10}) {
      std::vector<std::vector<double>> per_graph;
      for (const auto& entry : micg::graph::table1_suite()) {
        const auto& g = micg::benchkit::suite_graph(entry.name, mscale);
        std::vector<double> state(
            static_cast<std::size_t>(g.num_vertices()));
        micg::xoshiro256ss rng(7);
        for (auto& x : state) x = rng.uniform();
        std::vector<double> curve;
        double t1 = 0.0;
        for (int t : mgrid) {
          micg::irregular::kernel_options opt;
          opt.ex.kind = backend::omp_dynamic;
          opt.ex.threads = t;
          opt.ex.chunk = 100;
          opt.iterations = iter;
          opt.mem = variant.mem;
          const double secs = micg::benchkit::time_stable(
              [&] { micg::irregular::irregular_kernel(g, state, opt); },
              runs);
          if (t == mgrid.front()) t1 = secs;
          curve.push_back(t1 / secs);
        }
        per_graph.push_back(std::move(curve));
      }
      curves.push_back(micg::benchkit::geomean_series(
          std::to_string(iter) + "-iter/" + variant.name, per_graph));
    }
  }
  micg::benchkit::print_figure("Fig 3 (measured on this host, OpenMP-dynamic)", mgrid,
               curves);

  // Structured metrics: one instrumented kernel run per iteration count
  // and memory path.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    const auto& g = micg::benchkit::suite_graph("pwtk", mscale);
    for (const auto& variant : variants) {
      for (int iter : {1, 10}) {
        std::vector<double> state(
            static_cast<std::size_t>(g.num_vertices()));
        micg::xoshiro256ss rng(7);
        for (auto& x : state) x = rng.uniform();
        micg::irregular::kernel_options opt;
        opt.ex.kind = backend::omp_dynamic;
        opt.ex.threads = mgrid.back();
        opt.ex.chunk = 100;
        opt.iterations = iter;
        opt.mem = variant.mem;
        micg::benchkit::record_run(
            sink,
            {{"bench", "fig3_irregular"},
             {"graph", "pwtk"},
             {"iter", std::to_string(iter)},
             {"memopt", variant.name},
             {"threads", std::to_string(mgrid.back())}},
            [&] { micg::irregular::irregular_kernel(g, state, opt); });
      }
    }
  }

  std::cout << "[fig3_irregular] done in "
            << micg::table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
