// Ablation: speculate-and-repair (the paper's Algorithms 2-4) versus
// Jones-Plassmann, the classic conflict-free parallel coloring. The
// design question §III-A raises — is tolerating conflicts cheaper than
// preventing them? — quantified: rounds (synchronization points), color
// quality, and measured runtime; plus greedy color quality across visit
// orderings (natural / random / largest-first / smallest-last /
// incidence) against the degeneracy+1 bound.
#include <iostream>

#include "micg/benchkit/benchkit.hpp"
#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/jones_plassmann.hpp"
#include "micg/color/ordering.hpp"
#include "micg/color/verify.hpp"
#include "micg/graph/permute.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

int main(int argc, char** argv) {
  using micg::table_printer;
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double mscale = cfg.measured_scale;
  const int threads = cfg.measured_threads.back();
  const int runs = cfg.measured_runs;
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  std::cout << "Ablation: coloring algorithm & visit order (" << threads
            << " threads, scale=" << table_printer::fmt(mscale, 3)
            << ")\n\n";

  // --- speculate-and-repair vs Jones-Plassmann ---------------------------
  {
    table_printer t("Iterative (speculate+repair) vs Jones-Plassmann");
    t.header({"graph", "it-colors", "it-rounds", "it-ms", "jp-colors",
              "jp-rounds", "jp-ms"});
    for (const auto& entry : micg::graph::table1_suite()) {
      const auto& g = micg::benchkit::suite_graph(entry.name, mscale);

      micg::color::iterative_options iopt;
      iopt.ex.kind = micg::rt::backend::omp_dynamic;
      iopt.ex.threads = threads;
      iopt.ex.chunk = 100;
      const auto it = micg::color::iterative_color(g, iopt);
      const double it_ms =
          1e3 * micg::benchkit::time_stable(
                    [&] { micg::color::iterative_color(g, iopt); }, runs);

      micg::color::jp_options jopt;
      jopt.ex = iopt.ex;
      const auto jp = micg::color::jones_plassmann_color(g, jopt);
      const double jp_ms =
          1e3 *
          micg::benchkit::time_stable(
              [&] { micg::color::jones_plassmann_color(g, jopt); }, runs);

      // Structured metrics: instrumented speculate+repair run per graph.
      if (sink.enabled()) {
        micg::benchkit::record_run(
            sink,
            {{"bench", "ablate_coloring_algo"}, {"graph", entry.name}},
            [&] { micg::color::iterative_color(g, iopt); });
      }

      t.row({entry.name,
             table_printer::fmt(static_cast<long long>(it.num_colors)),
             table_printer::fmt(static_cast<long long>(it.rounds)),
             table_printer::fmt(it_ms),
             table_printer::fmt(static_cast<long long>(jp.num_colors)),
             table_printer::fmt(static_cast<long long>(jp.rounds)),
             table_printer::fmt(jp_ms)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // --- greedy quality across visit orders --------------------------------
  {
    table_printer t(
        "Sequential greedy #colors by visit order (degeneracy+1 is the "
        "smallest-last bound)");
    t.header({"graph", "degen+1", "natural", "random", "largest-first",
              "smallest-last", "incidence"});
    for (const auto& entry : micg::graph::table1_suite()) {
      const auto& g = micg::benchkit::suite_graph(entry.name, mscale);
      const auto rand_order =
          micg::graph::random_permutation(g.num_vertices(), 2026);
      t.row({entry.name,
             table_printer::fmt(static_cast<long long>(
                 micg::color::degeneracy(g) + 1)),
             table_printer::fmt(static_cast<long long>(
                 micg::color::greedy_color(g).num_colors)),
             table_printer::fmt(static_cast<long long>(
                 micg::color::greedy_color(g, rand_order).num_colors)),
             table_printer::fmt(static_cast<long long>(
                 micg::color::greedy_color(
                     g, micg::color::largest_first_order(g))
                     .num_colors)),
             table_printer::fmt(static_cast<long long>(
                 micg::color::greedy_color(
                     g, micg::color::smallest_last_order(g))
                     .num_colors)),
             table_printer::fmt(static_cast<long long>(
                 micg::color::greedy_color(
                     g, micg::color::incidence_order(g))
                     .num_colors))});
    }
    t.print(std::cout);
  }

  std::cout << "\n[ablate_coloring_algo] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
