// Serving-path latency: end-to-end round trips against a resident
// `micg serve` process over a unix socket, at several open-loop arrival
// rates, with and without a concurrent writer mutating + compacting the
// served graph. Reports p50/p99/max per rate; --metrics-json emits one
// micg.metrics.v1 record per (rate, writer) cell — the source of the
// committed BENCH_serve.json (tools/run_bench.sh).
//
//   MICG_SERVE_RATES     comma list of arrival rates, req/s (default
//                        "200,800,3200" — past the knee of a 4-slot gate)
//   MICG_SERVE_REQUESTS  requests per rate (default 240)
//   MICG_SERVE_CLIENTS   concurrent client connections (default 8)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "micg/api/json.hpp"
#include "micg/benchkit/benchkit.hpp"
#include "micg/graph/generators.hpp"
#include "micg/obs/obs.hpp"
#include "micg/serve/client.hpp"
#include "micg/serve/server.hpp"
#include "micg/serve/store.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::table_printer;
using micg::api::json;
using micg::api::json_object;

std::vector<double> rates_from_env() {
  const char* env = std::getenv("MICG_SERVE_RATES");
  std::string spec = env != nullptr ? env : "200,800,3200";
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) rates.push_back(std::stod(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return rates;
}

int int_from_env(const char* name, int dflt) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : dflt;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct rate_result {
  double rate = 0;
  int requests = 0;
  int ok = 0;
  double p50_ms = 0, p99_ms = 0, max_ms = 0;
};

/// Drive `num_requests` bfs queries at `rate` req/s, spread round-robin
/// over `num_clients` connections; each request is scheduled open-loop at
/// i/rate from the series start.
rate_result drive_rate(const std::string& address, double rate,
                       int num_requests, int num_clients) {
  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(num_clients));
  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(20);  // connect margin

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      micg::serve::client cli(address);
      for (int i = c; i < num_requests; i += num_clients) {
        const auto due =
            start + std::chrono::microseconds(
                        static_cast<std::int64_t>(1e6 * i / rate));
        std::this_thread::sleep_until(due);
        micg::stopwatch sw;
        const json resp = cli.call(
            "bfs", "g",
            json(json_object{{"threads", json(1)},
                             {"source", json(i % 4096)}}));
        lat[static_cast<std::size_t>(c)].push_back(1e3 * sw.seconds());
        if (resp.at("status").as_string() == "ok") ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  rate_result r;
  r.rate = rate;
  r.requests = num_requests;
  r.ok = ok.load();
  r.p50_ms = percentile(all, 0.50);
  r.p99_ms = percentile(all, 0.99);
  r.max_ms = all.empty() ? 0.0 : all.back();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  const std::vector<double> rates = rates_from_env();
  const int num_requests = int_from_env("MICG_SERVE_REQUESTS", 240);
  const int num_clients = int_from_env("MICG_SERVE_CLIENTS", 8);

  micg::serve::graph_store store;
  store.add("g", micg::graph::to_narrowest(
                     micg::graph::make_grid_2d(64, 64)));  // 4096 vertices

  micg::serve::server_options opt;
  opt.listen =
      "unix:/tmp/micg_serve_bench_" + std::to_string(::getpid()) + ".sock";
  opt.svc = {.max_inflight = 4, .max_waiting = 256, .threads_per_query = 1,
             .compact_every = 8};
  micg::serve::server srv(store, opt);
  srv.bind_and_listen();
  std::thread server_thread([&] { srv.run(); });

  for (const bool with_writer : {false, true}) {
    std::atomic<bool> stop_writer{false};
    std::thread writer;
    if (with_writer) {
      writer = std::thread([&] {
        micg::serve::client cli(opt.listen);
        // Toggle edges off the served grid; every 8th mutation triggers
        // a full compaction rebuild under the query load.
        for (int k = 0; !stop_writer.load(); ++k) {
          const std::string op = k % 2 == 0 ? "insert" : "erase";
          json edges(micg::api::json_array{json(micg::api::json_array{
              json(k % 4096), json((k + 4097) % 4096 + 1)})});
          (void)cli.call(op, "g",
                         json(json_object{{"edges", std::move(edges)}}));
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }

    table_printer t(std::string("serve latency: bfs round trips") +
                    (with_writer ? " (writer mutating + compacting)"
                                 : " (steady graph)"));
    t.header({"rate req/s", "requests", "ok", "p50 ms", "p99 ms", "max ms"});
    for (const double rate : rates) {
      const rate_result r =
          drive_rate(opt.listen, rate, num_requests, num_clients);
      t.row({table_printer::fmt(rate), std::to_string(r.requests),
             std::to_string(r.ok), table_printer::fmt(r.p50_ms),
             table_printer::fmt(r.p99_ms), table_printer::fmt(r.max_ms)});
      if (sink.enabled()) {
        micg::obs::recorder rec;
        rec.set_meta("bench", "serve_latency");
        rec.set_meta("config",
                     (with_writer ? "mutating/" : "steady/") +
                         table_printer::fmt(rate));
        rec.set_meta("writer", with_writer ? "yes" : "no");
        rec.set_value("rate_rps", rate);
        rec.set_value("requests", r.requests);
        rec.set_value("ok", r.ok);
        rec.set_value("p50_ms", r.p50_ms);
        rec.set_value("p99_ms", r.p99_ms);
        rec.set_value("max_ms", r.max_ms);
        sink.record(rec.take());
      }
    }
    t.print(std::cout);
    std::cout << '\n';

    if (with_writer) {
      stop_writer.store(true);
      writer.join();
    }
  }

  {
    micg::serve::client cli(opt.listen);
    (void)cli.call("shutdown", "");
  }
  server_thread.join();
  return 0;
}
