// Figure 2: speedup of coloring on the randomly ordered (shuffled)
// graphs — the best variant of each programming model. The paper reports
// OpenMP reaching a speedup of 153 "despite there are only 121 threads
// used" (super-linear: the 1-thread baseline is fully latency-bound),
// TBB 121 and Cilk Plus 98.
#include <iostream>

#include "micg/benchkit/benchkit.hpp"
#include "micg/color/iterative.hpp"
#include "micg/graph/permute.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::benchkit::series;
using micg::rt::backend;

series modeled(const std::string& name, backend kind, std::int64_t chunk,
               const std::vector<int>& grid,
               const micg::model::machine_config& m, double scale) {
  std::vector<std::vector<double>> per_graph;
  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, scale);
    const auto trace = micg::model::coloring_trace(g, /*shuffled=*/true);
    per_graph.push_back(
        micg::model::model_sweep(trace, kind, chunk, grid, m).speedup);
  }
  return micg::benchkit::geomean_series(name, per_graph);
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  const auto knf = micg::model::machine_config::knf();
  const auto grid = micg::model::paper_thread_grid(121);

  std::cout << "Figure 2: coloring speedup on randomly ordered graphs "
               "(scale=" << scale << ")\n"
            << "Paper endpoints at 121 threads: OpenMP 153, TBB 121, "
               "CilkPlus 98\n\n";

  micg::benchkit::print_figure(
      "Fig 2 [model:KNF]", grid,
      {modeled("OpenMP-dynamic(100)", backend::omp_dynamic, 100, grid, knf,
               scale),
       modeled("TBB-simple(40)", backend::tbb_simple, 40, grid, knf,
               scale),
       modeled("CilkPlus-holder(100)", backend::cilk_holder, 100, grid,
               knf, scale)});

  // Measured: really shuffle the graphs and run the real algorithm.
  const auto& mgrid = cfg.measured_threads;
  const double mscale = cfg.measured_scale;
  const int runs = cfg.measured_runs;
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  std::vector<std::vector<double>> per_graph;
  for (const auto& entry : micg::graph::table1_suite()) {
    const auto& g = micg::benchkit::suite_graph(entry.name, mscale);
    const auto shuffled = micg::graph::apply_permutation(
        g, micg::graph::random_permutation(g.num_vertices(), 2026));
    std::vector<double> curve;
    double t1 = 0.0;
    for (int t : mgrid) {
      micg::color::iterative_options opt;
      opt.ex.kind = backend::omp_dynamic;
      opt.ex.threads = t;
      opt.ex.chunk = 100;
      const double secs = micg::benchkit::time_stable(
          [&] { micg::color::iterative_color(shuffled, opt); }, runs);
      if (t == mgrid.front()) t1 = secs;
      curve.push_back(t1 / secs);
    }
    per_graph.push_back(std::move(curve));
  }
  micg::benchkit::print_figure("Fig 2 (measured on this host, OpenMP-dynamic)", mgrid,
               {micg::benchkit::geomean_series("OpenMP-dynamic", per_graph)});

  // Structured metrics: one instrumented run on a shuffled suite graph.
  if (sink.enabled()) {
    const auto& g = micg::benchkit::suite_graph("pwtk", mscale);
    const auto shuffled = micg::graph::apply_permutation(
        g, micg::graph::random_permutation(g.num_vertices(), 2026));
    micg::color::iterative_options opt;
    opt.ex.kind = backend::omp_dynamic;
    opt.ex.threads = mgrid.back();
    opt.ex.chunk = 100;
    micg::benchkit::record_run(
        sink,
        {{"bench", "fig2_coloring_random"},
         {"graph", "pwtk/shuffled"},
         {"threads", std::to_string(mgrid.back())}},
        [&] { micg::color::iterative_color(shuffled, opt); });
  }

  std::cout << "[fig2_coloring_random] done in "
            << micg::table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
