// Ablation: block size of the block-accessed queue (§IV-C: "by keeping
// the block size small (but not so small so that we do not use atomics
// too often), the overhead is minimized"; §V-D: 32 "yields the best
// performance").
//
// Three views:
//  1. the paper's analytical model: achievable speedup vs block size;
//  2. the machine model: atomics-vs-granularity tradeoff;
//  3. real execution: queue padding overhead (sentinel slots vs frontier).
#include <iostream>

#include "micg/bfs/compact_frontier.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/seq.hpp"
#include "micg/benchkit/benchkit.hpp"
#include "micg/model/bfs_model.hpp"
#include "micg/model/exec_model.hpp"
#include "micg/model/machine.hpp"
#include "micg/model/tracegen.hpp"
#include "micg/support/timer.hpp"

int main(int argc, char** argv) {
  using micg::table_printer;
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const double scale = cfg.model_scale;
  const auto knf = micg::model::machine_config::knf();
  const std::vector<int> blocks{1, 4, 8, 16, 32, 64, 128, 256, 1024};

  std::cout << "Ablation: block-accessed queue block size (scale=" << scale
            << ")\n\n";

  // 1) Paper model: larger blocks waste trailing-round slack on narrow
  // frontiers; the effect is graph-dependent.
  {
    table_printer t("Paper-model achievable speedup vs block size");
    std::vector<std::string> header{"graph"};
    for (int b : blocks) header.push_back("b=" + std::to_string(b));
    t.header(std::move(header));
    for (const char* name : {"pwtk", "inline_1", "ldoor"}) {
      const auto& g = micg::benchkit::suite_graph(name, scale);
      const auto ref = micg::bfs::seq_bfs(g, g.num_vertices() / 2);
      std::vector<std::string> row{name};
      for (int b : blocks) {
        row.push_back(table_printer::fmt(
            micg::model::bfs_model_speedup(ref.frontier_sizes, 121, b)));
      }
      t.row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // 2) Machine model at 121 threads: chunk (= block) granularity sweep.
  {
    table_printer t("Machine-model speedup at 121 threads vs block size");
    std::vector<std::string> header{"graph"};
    for (int b : blocks) header.push_back("b=" + std::to_string(b));
    t.header(std::move(header));
    for (const char* name : {"pwtk", "inline_1", "ldoor"}) {
      const auto& g = micg::benchkit::suite_graph(name, scale);
      micg::model::bfs_trace_options bo;
      const auto trace =
          micg::model::bfs_trace(g, g.num_vertices() / 2, bo);
      std::vector<std::string> row{name};
      for (int b : blocks) {
        micg::model::exec_options o;
        o.policy = micg::rt::backend::omp_dynamic;
        o.threads = 121;
        o.chunk = b;
        row.push_back(table_printer::fmt(
            micg::model::model_speedup(trace, o, knf)));
      }
      t.row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // 3) Real execution: sentinel padding overhead of the block queue
  // ("this scheme can produce slightly larger queues").
  {
    const double mscale = cfg.measured_scale;
    table_printer t(
        "Measured queue padding (slots incl. sentinels / frontier), 8 "
        "threads, scale=" +
        table_printer::fmt(mscale, 3));
    std::vector<std::string> header{"graph"};
    for (int b : blocks) header.push_back("b=" + std::to_string(b));
    t.header(std::move(header));
    for (const char* name : {"pwtk", "inline_1"}) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      std::vector<std::string> row{name};
      for (int b : blocks) {
        micg::bfs::parallel_bfs_options opt;
        opt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
        opt.ex.threads = 8;
        opt.block = b;
        const auto r =
            micg::bfs::parallel_bfs(g, g.num_vertices() / 2, opt);
        std::size_t slots = 0;
        for (auto s : r.queue_slots_per_level) slots += s;
        row.push_back(table_printer::fmt(
            static_cast<double>(slots) /
            static_cast<double>(r.reached)));
      }
      t.row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // 4) Sentinel padding vs compaction (the §IV-C design decision): wall
  // clock of the relaxed block queue against the scan-compacted frontier.
  {
    const double mscale = cfg.measured_scale;
    const int threads = cfg.measured_threads.back();
    const int runs = cfg.measured_runs;
    table_printer t("Measured: sentinel-padded block queue vs compacting frontier (ms, " +
                    std::to_string(threads) + " threads)");
    t.header({"graph", "sentinel(b=32)", "compact(scan)", "ratio"});
    for (const char* name : {"pwtk", "inline_1"}) {
      const auto& g = micg::benchkit::suite_graph(name, mscale);
      const auto src = g.num_vertices() / 2;
      micg::bfs::parallel_bfs_options sopt;
      sopt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
      sopt.ex.threads = threads;
      sopt.block = 32;
      const double sentinel_ms =
          1e3 * micg::benchkit::time_stable(
                    [&] { micg::bfs::parallel_bfs(g, src, sopt); }, runs);
      micg::bfs::compact_bfs_options copt;
      copt.ex.threads = threads;
      const double compact_ms =
          1e3 * micg::benchkit::time_stable(
                    [&] { micg::bfs::parallel_bfs_compact(g, src, copt); },
                    runs);
      t.row({name, table_printer::fmt(sentinel_ms),
             table_printer::fmt(compact_ms),
             table_printer::fmt(compact_ms / sentinel_ms)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // Structured metrics: one instrumented block-queue BFS run.
  micg::benchkit::metrics_sink sink(cfg.metrics_json);
  if (sink.enabled()) {
    const auto& g = micg::benchkit::suite_graph("pwtk", cfg.measured_scale);
    micg::bfs::parallel_bfs_options opt;
    opt.variant = micg::bfs::bfs_variant::omp_block_relaxed;
    opt.ex.threads = cfg.measured_threads.back();
    opt.block = 32;
    micg::benchkit::record_run(
        sink,
        {{"bench", "ablate_block_size"}, {"graph", "pwtk"}},
        [&] { micg::bfs::parallel_bfs(g, g.num_vertices() / 2, opt); });
  }

  std::cout << "[ablate_block_size] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
