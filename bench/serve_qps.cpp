// Serving-path throughput under query coalescing: open-loop bfs arrivals
// against a resident server, with the coalescing window off vs on, over a
// clustered mix (every request hits one graph, so concurrent arrivals
// share one MSBFS batch) and an adversarial mix (arrivals spread
// round-robin over eight graphs, so batches rarely exceed one lane and
// the window is pure added latency). Reports p50/p99/achieved-qps per
// (mix, window, rate) cell; --metrics-json emits one micg.metrics.v1
// record per cell — the source of the committed BENCH_coalesce.json
// (tools/run_bench.sh).
//
// The served graphs are RMAT (the paper's skewed, low-diameter family):
// MS-BFS shares one frontier sweep across lanes, so its win is largest
// when traversals are a few wide levels — and a high-diameter input
// (e.g. a large grid) pays the per-level overhead hundreds of times and
// loses, which is what the window knob is for.
//
//   MICG_QPS_RATES     comma list of arrival rates, req/s (default
//                      "2400,4800" — both past the knee of a 1-slot
//                      gate on the default graph, where batch sizes are
//                      large enough for the shared sweep to pay off)
//   MICG_QPS_REQUESTS  requests per cell (default 300)
//   MICG_QPS_CLIENTS   concurrent client connections (default 32)
//   MICG_QPS_SCALE     RMAT scale of each served graph (default 16 ->
//                      65536 vertices, ~1 ms per uncoalesced traversal)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "micg/api/json.hpp"
#include "micg/benchkit/benchkit.hpp"
#include "micg/graph/generators.hpp"
#include "micg/obs/obs.hpp"
#include "micg/serve/client.hpp"
#include "micg/serve/server.hpp"
#include "micg/serve/store.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::table_printer;
using micg::api::json;
using micg::api::json_object;

constexpr int kGraphs = 8;  // adversarial mix spreads over this many

std::vector<double> rates_from_env() {
  const char* env = std::getenv("MICG_QPS_RATES");
  std::string spec = env != nullptr ? env : "2400,4800";
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) rates.push_back(std::stod(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return rates;
}

int int_from_env(const char* name, int dflt) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : dflt;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct cell_result {
  int requests = 0;
  int ok = 0;
  double p50_ms = 0, p99_ms = 0, max_ms = 0;
  double wall_s = 0;
};

/// Drive `num_requests` bfs queries at `rate` req/s, spread round-robin
/// over `num_clients` connections; request i is scheduled open-loop at
/// i/rate from the series start and targets graph i % mix_graphs.
cell_result drive_cell(const std::string& address, double rate,
                       int num_requests, int num_clients, int mix_graphs,
                       std::int64_t num_vertices) {
  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(num_clients));
  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(20);  // connect margin

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      micg::serve::client cli(address);
      for (int i = c; i < num_requests; i += num_clients) {
        const auto due =
            start + std::chrono::microseconds(
                        static_cast<std::int64_t>(1e6 * i / rate));
        std::this_thread::sleep_until(due);
        micg::stopwatch sw;
        const json resp = cli.call(
            "bfs", "g" + std::to_string(i % mix_graphs),
            json(json_object{
                {"source",
                 json(static_cast<std::int64_t>(i * 37) % num_vertices)}}));
        lat[static_cast<std::size_t>(c)].push_back(1e3 * sw.seconds());
        if (resp.at("status").as_string() == "ok") ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall =
      1e-9 *
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  cell_result r;
  r.requests = num_requests;
  r.ok = ok.load();
  r.p50_ms = percentile(all, 0.50);
  r.p99_ms = percentile(all, 0.99);
  r.max_ms = all.empty() ? 0.0 : all.back();
  r.wall_s = wall;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  const std::vector<double> rates = rates_from_env();
  const int num_requests = int_from_env("MICG_QPS_REQUESTS", 300);
  const int num_clients = int_from_env("MICG_QPS_CLIENTS", 32);
  const int scale = int_from_env("MICG_QPS_SCALE", 16);
  const std::int64_t num_vertices = std::int64_t{1} << scale;

  struct mix_spec {
    const char* name;
    int graphs;
  };
  const mix_spec mixes[] = {{"clustered", 1}, {"adversarial", kGraphs}};
  const std::int64_t windows[] = {0, 3};  // ms; 0 = coalescing off

  for (const mix_spec& mix : mixes) {
    table_printer t(std::string("serve qps: ") + mix.name + " bfs mix (" +
                    std::to_string(mix.graphs) + " graph(s), " +
                    std::to_string(num_vertices) + " vertices each)");
    t.header({"window ms", "rate req/s", "requests", "ok", "p50 ms",
              "p99 ms", "achieved req/s"});
    for (const std::int64_t window : windows) {
      // Fresh store + server per cell row: the window is a service-level
      // option, and a cold store keeps cells independent.
      micg::serve::graph_store store;
      for (int g = 0; g < mix.graphs; ++g) {
        store.add("g" + std::to_string(g),
                  micg::graph::to_narrowest(micg::graph::make_rmat(
                      scale, 8, 0.57, 0.19, 0.19,
                      17 + static_cast<std::uint64_t>(g))));
      }
      micg::serve::server_options opt;
      opt.listen = "unix:/tmp/micg_serve_qps_" +
                   std::to_string(::getpid()) + ".sock";
      // One execution slot: the gate saturates at roughly one traversal
      // time per request, so coalescing has something to win.
      opt.svc = {.max_inflight = 1, .max_waiting = 4096,
                 .threads_per_query = 1, .coalesce_window_ms = window};
      micg::serve::server srv(store, opt);
      srv.bind_and_listen();
      std::thread server_thread([&] { srv.run(); });

      for (const double rate : rates) {
        const cell_result r = drive_cell(opt.listen, rate, num_requests,
                                         num_clients, mix.graphs,
                                         num_vertices);
        const double achieved =
            r.wall_s > 0 ? static_cast<double>(r.requests) / r.wall_s : 0;
        t.row({std::to_string(window), table_printer::fmt(rate),
               std::to_string(r.requests), std::to_string(r.ok),
               table_printer::fmt(r.p50_ms), table_printer::fmt(r.p99_ms),
               table_printer::fmt(achieved)});
        if (sink.enabled()) {
          micg::obs::recorder rec;
          rec.set_meta("bench", "serve_qps");
          rec.set_meta("config", std::string(mix.name) + "/w" +
                                     std::to_string(window) + "/" +
                                     table_printer::fmt(rate));
          rec.set_meta("mix", mix.name);
          rec.set_meta("window_ms", std::to_string(window));
          rec.set_value("rate_rps", rate);
          rec.set_value("window_ms", static_cast<double>(window));
          rec.set_value("requests", r.requests);
          rec.set_value("ok", r.ok);
          rec.set_value("p50_ms", r.p50_ms);
          rec.set_value("p99_ms", r.p99_ms);
          rec.set_value("max_ms", r.max_ms);
          rec.set_value("wall_s", r.wall_s);
          rec.set_value("achieved_rps", achieved);
          sink.record(rec.take());
        }
      }

      micg::serve::client cli(opt.listen);
      (void)cli.call("shutdown", "");
      server_thread.join();
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
