// Ablation: memory-hierarchy fast paths — SIMD gather x software-prefetch
// distance x loop partitioning for the irregular kernels, and the bitmap
// bottom-up frontier for direction-optimizing BFS. The paper's KNF card is
// an in-order machine whose gather loops stall on every cache miss (§III-B);
// these are the knobs that hide or remove that latency. Every knob
// configuration computes bit-identical results (tested), so the sweep
// measures memory behavior only. The speedup column is baseline time /
// config time, where the baseline row runs the pre-optimization kernel
// (seed spmv/pagerank, queue-frontier BFS).
#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <iterator>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "micg/benchkit/benchkit.hpp"
#include "micg/bfs/direction.hpp"
#include "micg/graph/generators.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/spmv.hpp"
#include "micg/rt/edge_partition.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/rng.hpp"
#include "micg/support/simd.hpp"
#include "micg/support/table.hpp"
#include "micg/support/timer.hpp"

namespace {

using micg::table_printer;
using micg::rt::mem_opts;
using micg::rt::partition_mode;

struct mem_config {
  std::string name;
  mem_opts mem;
};

std::vector<mem_config> sweep_configs() {
  std::vector<mem_config> cfgs;
  for (bool simd : {false, true}) {
    for (partition_mode part : {partition_mode::vertex, partition_mode::edge}) {
      for (int dist : {0, 8, 32}) {
        mem_config c;
        c.mem = {.partition = part, .prefetch_distance = dist, .simd = simd};
        c.name = std::string(simd ? "simd" : "scalar") + "/" +
                 micg::rt::partition_mode_name(part) + "/pf" +
                 std::to_string(dist);
        cfgs.push_back(c);
      }
    }
  }
  return cfgs;
}

/// RMAT scale derived from the measured-scale knob so MICG_MEASURED_SCALE
/// moves this bench like the suite benches: 0.02 -> 10, 1.0 -> 16.
int rmat_scale(double mscale) {
  return std::max(10, 16 + static_cast<int>(std::lround(std::log2(mscale))));
}

// ---------------------------------------------------------------------------
// Pre-optimization reference kernels, copied from the seed implementations.
// The library's scalar fallback (mem_opts{simd=false}) is already
// restructured for ISA parity — striped accumulators, per-iteration
// contribution array — so it is *not* the code this sweep claims a win
// over. These are: one left-to-right accumulator per row, and pagerank's
// original per-edge division.

std::vector<double> seed_spmv(const micg::graph::csr_graph& g,
                              const std::vector<double>& x, int threads) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  micg::rt::exec ex;
  ex.threads = threads;
  const double* src = x.data();
  double* dst = y.data();
  micg::rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) {
      const auto v = static_cast<micg::graph::vertex_t>(i);
      double acc = 0.0;
      for (auto w : g.neighbors(v)) acc += src[static_cast<std::size_t>(w)];
      dst[i] = acc;
    }
  });
  return y;
}

std::vector<double> seed_pagerank(const micg::graph::csr_graph& g,
                                  int threads, int iterations) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  const double damping = 0.85;
  std::vector<double> rank(static_cast<std::size_t>(n),
                           1.0 / static_cast<double>(n));
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  micg::rt::exec ex;
  ex.threads = threads;
  micg::rt::combinable<double> dangling_acc(threads);
  for (int it = 0; it < iterations; ++it) {
    dangling_acc.clear();
    micg::rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
      double local = 0.0;
      for (std::int64_t i = b; i < e; ++i) {
        if (g.degree(static_cast<micg::graph::vertex_t>(i)) == 0) {
          local += rank[static_cast<std::size_t>(i)];
        }
      }
      dangling_acc.local() += local;
    });
    const double dangling =
        dangling_acc.combine(0.0, [](double a, double b) { return a + b; });
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    micg::rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<micg::graph::vertex_t>(i);
        double sum = 0.0;
        for (auto w : g.neighbors(v)) {
          sum += rank[static_cast<std::size_t>(w)] /
                 static_cast<double>(g.degree(w));
        }
        next[static_cast<std::size_t>(v)] = base + damping * sum;
      }
    });
    rank.swap(next);
  }
  return rank;
}

}  // namespace

int main(int argc, char** argv) {
  micg::stopwatch total;
  const auto cfg = micg::benchkit::config::from_args(argc, argv);
  const int threads = cfg.measured_threads.back();
  const int runs = cfg.measured_runs;
  micg::benchkit::metrics_sink sink(cfg.metrics_json);

  const int scale = rmat_scale(cfg.measured_scale);
  const auto g = micg::graph::make_rmat(scale, 16, 0.57, 0.19, 0.19, 42);
  const auto n = g.num_vertices();

  std::cout << "Ablation: memory-hierarchy fast paths (" << threads
            << " threads, RMAT scale=" << scale << ", |V|="
            << table_printer::human(static_cast<long long>(n)) << ", |E|="
            << table_printer::human(static_cast<long long>(g.num_edges()))
            << ", isa=" << micg::simd::isa_name() << ")\n\n";

  micg::xoshiro256ss rng(7);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform();

  const auto configs = sweep_configs();

  // ------------------------------------------------------- irregular sweep
  //
  // Configs are timed in interleaved rounds (round-robin over the sweep,
  // `runs` times) and each config reports its fastest round. Timing each
  // config in one contiguous block is 20%+ off on a shared machine: any
  // system-wide slowdown lands entirely on whichever config happens to be
  // running, while interleaving spreads drift across all of them and the
  // min discards it.
  for (const char* kernel : {"spmv", "pagerank"}) {
    const bool is_spmv = std::string(kernel) == "spmv";
    const auto run_knobs = [&, is_spmv](const mem_opts& mem) {
      if (is_spmv) {
        micg::irregular::spmv_options opt;
        opt.ex.threads = threads;
        opt.mem = mem;
        micg::irregular::spmv(g, x, opt);
      } else {
        micg::irregular::pagerank_options opt;
        opt.ex.threads = threads;
        opt.max_iterations = 10;
        opt.tolerance = 0.0;  // fixed work per run
        opt.mem = mem;
        micg::irregular::pagerank(g, opt);
      }
    };
    // Row 0 is the pre-optimization kernel; every speedup is against it.
    std::vector<std::pair<std::string, std::function<void()>>> rows;
    rows.emplace_back("seed/vertex", [&, is_spmv] {
      if (is_spmv) {
        seed_spmv(g, x, threads);
      } else {
        seed_pagerank(g, threads, 10);
      }
    });
    for (const auto& c : configs) {
      rows.emplace_back(c.name, [&run_knobs, mem = c.mem] { run_knobs(mem); });
    }
    std::vector<double> best(rows.size(),
                             std::numeric_limits<double>::infinity());
    for (int r = 0; r < runs; ++r) {
      for (std::size_t ci = 0; ci < rows.size(); ++ci) {
        micg::stopwatch sw;
        rows[ci].second();
        best[ci] = std::min(best[ci], 1e3 * sw.seconds());
      }
    }
    table_printer t(std::string(kernel) +
                    ": simd x partition x prefetch distance");
    t.header({"config", "ms", "speedup"});
    const double baseline_ms = best.front();
    for (std::size_t ci = 0; ci < rows.size(); ++ci) {
      const double ms = best[ci];
      const double speedup = baseline_ms / ms;
      t.row({rows[ci].first, table_printer::fmt(ms),
             table_printer::fmt(speedup)});
      if (sink.enabled()) {
        micg::obs::recorder rec;
        {
          micg::obs::scoped_global guard(rec);
          rows[ci].second();
        }
        rec.set_meta("bench", "ablate_memlat");
        rec.set_meta("kernel", kernel);  // the seed rows don't self-tag
        rec.set_meta("config", rows[ci].first);
        rec.set_value("time_ms", ms);
        rec.set_value("speedup_vs_baseline", speedup);
        sink.record(rec.take());
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // ------------------------------------------------------ direction sweep
  {
    micg::graph::vertex_t src = 0;
    while (g.degree(src) == 0) ++src;
    table_printer t("direction bfs: frontier representation x partition");
    t.header({"config", "ms", "speedup"});
    struct bfs_config {
      std::string name;
      bool bitmap;
      partition_mode part;
    };
    const bfs_config bfs_cfgs[] = {
        {"queue", false, partition_mode::vertex},
        {"bitmap/vertex", true, partition_mode::vertex},
        {"bitmap/edge", true, partition_mode::edge},
    };
    const auto run_once = [&](const bfs_config& c) {
      micg::bfs::direction_options opt;
      opt.ex.threads = threads;
      opt.bitmap = c.bitmap;
      opt.partition = c.part;
      micg::bfs::direction_optimizing_bfs(g, src, opt);
    };
    const std::size_t ncfg = std::size(bfs_cfgs);
    std::vector<double> best(ncfg, std::numeric_limits<double>::infinity());
    for (int r = 0; r < runs; ++r) {
      for (std::size_t ci = 0; ci < ncfg; ++ci) {
        micg::stopwatch sw;
        run_once(bfs_cfgs[ci]);
        best[ci] = std::min(best[ci], 1e3 * sw.seconds());
      }
    }
    const double baseline_ms = best.front();
    for (std::size_t ci = 0; ci < ncfg; ++ci) {
      const auto& c = bfs_cfgs[ci];
      const double ms = best[ci];
      const double speedup = baseline_ms / ms;
      t.row({c.name, table_printer::fmt(ms), table_printer::fmt(speedup)});
      if (sink.enabled()) {
        micg::obs::recorder rec;
        {
          micg::obs::scoped_global guard(rec);
          run_once(c);
        }
        rec.set_meta("bench", "ablate_memlat");
        rec.set_meta("config", "bfs/" + c.name);
        rec.set_value("time_ms", ms);
        rec.set_value("speedup_vs_baseline", speedup);
        sink.record(rec.take());
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "[ablate_memlat] done in "
            << table_printer::fmt(total.seconds(), 1) << "s\n";
  return 0;
}
