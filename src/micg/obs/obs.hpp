// Kernel-wide observability: counters, phase timers and spans shared by
// every kernel family.
//
// The paper's argument rests on seeing into the kernels — conflicts per
// coloring round, queue slots per BFS level, the per-level cost the
// layered model charges — so every kernel publishes its telemetry through
// one `recorder` instead of bespoke result-struct fields. The legacy
// fields remain (tests pin them equal); the recorder adds a uniform,
// machine-readable view that the emitters in emit.hpp serialize.
//
// Overhead discipline:
//  * counter/phase_timer accumulate into cacheline-padded per-worker
//    slots with relaxed atomics — one uncontended RMW per publish, no
//    locks on the hot path;
//  * when no recorder is installed the cost is a single relaxed atomic
//    load (the global-pointer check), measured < 2% on the fork-join
//    microbench in bench/micro_runtime.cpp;
//  * spans are orchestration-frequency events (one per BFS level or
//    coloring round), recorded under a mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "micg/support/cacheline.hpp"
#include "micg/support/timer.hpp"

namespace micg::obs {

/// Number of per-worker accumulation slots. Worker ids beyond this fold
/// back modulo slot_count — totals stay exact, only the per-slot
/// attribution coarsens (the paper's 121-thread sweeps fold 2x).
inline constexpr int slot_count = 64;

namespace detail {
inline std::size_t slot_index(int worker) {
  const auto w = static_cast<std::size_t>(worker < 0 ? 0 : worker);
  return w % static_cast<std::size_t>(slot_count);
}
}  // namespace detail

/// Monotonic event counter with per-worker padded slots, merged on read.
class counter {
 public:
  explicit counter(std::string name) : name_(std::move(name)) {}

  /// Add `v` events. No default for `v`: a bare `add(w)` used to read as
  /// "add w" or "add zero" depending on the reader — count-one call sites
  /// say inc(worker) instead.
  void add(int worker, std::uint64_t v) noexcept {
    slots_[detail::slot_index(worker)].value.fetch_add(
        v, std::memory_order_relaxed);
  }

  /// Count one event (the common case; `add(w, 1)` spelled unambiguously).
  void inc(int worker) noexcept { add(worker, 1); }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  padded<std::atomic<std::uint64_t>> slots_[slot_count];
};

/// Accumulated wall-clock time with per-worker padded slots (nanoseconds
/// internally; seconds at the API surface).
class phase_timer {
 public:
  explicit phase_timer(std::string name) : name_(std::move(name)) {}

  void add_seconds(int worker, double seconds) noexcept {
    const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
    slots_[detail::slot_index(worker)].value.fetch_add(
        ns, std::memory_order_relaxed);
  }

  [[nodiscard]] double total_seconds() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return static_cast<double>(sum) * 1e-9;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  padded<std::atomic<std::uint64_t>> slots_[slot_count];
};

/// One finished span: a named, optionally indexed phase (BFS level,
/// coloring round) with its duration and attached values.
struct span_record {
  std::string name;
  std::int64_t index = -1;  ///< level/round number; -1 when not indexed
  int depth = 0;            ///< nesting depth at start (0 = top level)
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> values;
};

/// Point-in-time merged view of a recorder, ready for emit.hpp.
struct snapshot {
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> timers;  ///< seconds
  std::vector<std::pair<std::string, double>> values;  ///< gauges
  std::vector<span_record> spans;  ///< completion order
};

class recorder;

/// RAII phase span. Obtained from recorder::start_span(); records its
/// duration (and any attached values) into the recorder on destruction.
/// A span on a null recorder is a no-op, so kernels create spans
/// unconditionally.
class span {
 public:
  span() = default;
  span(span&& other) noexcept { *this = std::move(other); }
  span& operator=(span&& other) noexcept;
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  ~span() { finish(); }

  /// Attach a value (frontier size, conflict count, ...) reported with
  /// the span when it finishes.
  void value(std::string_view key, double v);

  /// Record now instead of at destruction.
  void finish();

 private:
  friend class recorder;
  span(recorder* rec, std::string_view name, std::int64_t index);

  recorder* rec_ = nullptr;
  span_record record_;
  stopwatch clock_;
};

/// The registry: named counters, timers, gauges, metadata and spans for
/// one run. Counter/timer handles are stable for the recorder's lifetime.
/// get_* and the publish methods are thread-safe; the hot path (handle
/// add) is lock-free.
class recorder {
 public:
  recorder() = default;
  recorder(const recorder&) = delete;
  recorder& operator=(const recorder&) = delete;

  /// Create-or-get by name. The reference stays valid until reset().
  counter& get_counter(std::string_view name);
  phase_timer& get_timer(std::string_view name);

  /// Free-form run metadata (kernel name, backend, graph, ...).
  void set_meta(std::string_view key, std::string_view value);
  /// Scalar gauge (num_colors, final_delta, ...). Last write wins.
  void set_value(std::string_view key, double v);

  /// Begin a span; it records itself into this recorder on destruction.
  span start_span(std::string_view name, std::int64_t index = -1);

  /// Merged view of everything published so far (counters sorted by
  /// name, spans in completion order).
  [[nodiscard]] snapshot take() const;

  /// Drop all state (handles from before reset() are invalidated).
  void reset();

  /// Process-global recorder used by components with no options path to
  /// a sink (the thread pool) and as the fallback for rt::exec::sink().
  /// nullptr (the default) disables recording at one relaxed load.
  static recorder* global() noexcept {
    return global_.load(std::memory_order_relaxed);
  }
  static void set_global(recorder* rec) noexcept {
    global_.store(rec, std::memory_order_relaxed);
  }

 private:
  friend class span;
  void record_span(span_record&& rec);

  static std::atomic<recorder*> global_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<counter>> counters_;
  std::vector<std::unique_ptr<phase_timer>> timers_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<span_record> spans_;
  int span_depth_ = 0;
};

/// Install `rec` as the global recorder for the current scope; restores
/// the previous one on exit.
class scoped_global {
 public:
  explicit scoped_global(recorder& rec) : prev_(recorder::global()) {
    recorder::set_global(&rec);
  }
  ~scoped_global() { recorder::set_global(prev_); }
  scoped_global(const scoped_global&) = delete;
  scoped_global& operator=(const scoped_global&) = delete;

 private:
  recorder* prev_;
};

}  // namespace micg::obs
