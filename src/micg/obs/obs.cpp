#include "micg/obs/obs.hpp"

#include <algorithm>

namespace micg::obs {

std::atomic<recorder*> recorder::global_{nullptr};

span& span::operator=(span&& other) noexcept {
  if (this != &other) {
    finish();
    rec_ = other.rec_;
    record_ = std::move(other.record_);
    clock_ = other.clock_;
    other.rec_ = nullptr;
  }
  return *this;
}

span::span(recorder* rec, std::string_view name, std::int64_t index)
    : rec_(rec) {
  if (rec_ == nullptr) return;
  record_.name = std::string(name);
  record_.index = index;
  clock_.reset();
}

void span::value(std::string_view key, double v) {
  if (rec_ == nullptr) return;
  record_.values.emplace_back(std::string(key), v);
}

void span::finish() {
  if (rec_ == nullptr) return;
  record_.seconds = clock_.seconds();
  rec_->record_span(std::move(record_));
  rec_ = nullptr;
}

counter& recorder::get_counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) {
    if (c->name() == name) return *c;
  }
  counters_.push_back(std::make_unique<counter>(std::string(name)));
  return *counters_.back();
}

phase_timer& recorder::get_timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : timers_) {
    if (t->name() == name) return *t;
  }
  timers_.push_back(std::make_unique<phase_timer>(std::string(name)));
  return *timers_.back();
}

void recorder::set_meta(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  meta_.emplace_back(std::string(key), std::string(value));
}

void recorder::set_value(std::string_view key, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, old] : values_) {
    if (k == key) {
      old = v;
      return;
    }
  }
  values_.emplace_back(std::string(key), v);
}

span recorder::start_span(std::string_view name, std::int64_t index) {
  span s(this, name, index);
  std::lock_guard<std::mutex> lock(mu_);
  s.record_.depth = span_depth_++;
  return s;
}

void recorder::record_span(span_record&& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  --span_depth_;
  spans_.push_back(std::move(rec));
}

snapshot recorder::take() const {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot s;
  s.meta = meta_;
  s.values = values_;
  s.spans = spans_;
  for (const auto& c : counters_) {
    s.counters.emplace_back(c->name(), c->total());
  }
  for (const auto& t : timers_) {
    s.timers.emplace_back(t->name(), t->total_seconds());
  }
  auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.timers.begin(), s.timers.end(), by_name);
  return s;
}

void recorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timers_.clear();
  meta_.clear();
  values_.clear();
  spans_.clear();
  span_depth_ = 0;
}

}  // namespace micg::obs
