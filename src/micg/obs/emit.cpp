#include "micg/obs/emit.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "micg/support/assert.hpp"

namespace micg::obs {

namespace {

// ---------------------------------------------------------------------------
// Writing

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

template <typename T, typename AppendValue>
void append_object(std::string& out,
                   const std::vector<std::pair<std::string, T>>& kv,
                   const AppendValue& append_value) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, k);
    out += ':';
    append_value(out, v);
  }
  out += '}';
}

void append_record(std::string& out, const snapshot& s) {
  out += "{\"schema\":";
  append_escaped(out, schema_name);
  out += ",\"meta\":";
  append_object(out, s.meta, [](std::string& o, const std::string& v) {
    append_escaped(o, v);
  });
  out += ",\"counters\":";
  append_object(out, s.counters, [](std::string& o, std::uint64_t v) {
    o += std::to_string(v);
  });
  out += ",\"timers\":";
  append_object(out, s.timers, append_double);
  out += ",\"values\":";
  append_object(out, s.values, append_double);
  out += ",\"spans\":[";
  bool first = true;
  for (const auto& sp : s.spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_escaped(out, sp.name);
    out += ",\"index\":" + std::to_string(sp.index);
    out += ",\"depth\":" + std::to_string(sp.depth);
    out += ",\"seconds\":";
    append_double(out, sp.seconds);
    out += ",\"values\":";
    append_object(out, sp.values, append_double);
    out += '}';
  }
  out += "]}";
}

// ---------------------------------------------------------------------------
// Parsing (exactly the emitter's subset: objects, arrays, strings,
// numbers — enough for round-trip tests and metrics-file consumers).

class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    MICG_CHECK(pos_ < text_.size() && text_[pos_] == c,
               std::string("metrics JSON: expected '") + c + "' at offset " +
                   std::to_string(pos_));
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        MICG_CHECK(pos_ < text_.size(), "metrics JSON: dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            MICG_CHECK(pos_ + 4 <= text_.size(),
                       "metrics JSON: short \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            MICG_CHECK(code < 0x80,
                       "metrics JSON: non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    MICG_CHECK(end != begin, "metrics JSON: expected a number at offset " +
                                 std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  /// Parse {"k": v, ...} calling `on_pair(key)` positioned at each value.
  template <typename OnPair>
  void parse_object(const OnPair& on_pair) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = parse_string();
      expect(':');
      on_pair(key);
    } while (consume(','));
    expect('}');
  }

  template <typename OnItem>
  void parse_array(const OnItem& on_item) {
    expect('[');
    if (consume(']')) return;
    do {
      on_item();
    } while (consume(','));
    expect(']');
  }

  void finish() {
    skip_ws();
    MICG_CHECK(pos_ == text_.size(),
               "metrics JSON: trailing characters at offset " +
                   std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

span_record parse_span(parser& p) {
  span_record sp;
  p.parse_object([&](const std::string& key) {
    if (key == "name") {
      sp.name = p.parse_string();
    } else if (key == "index") {
      sp.index = static_cast<std::int64_t>(p.parse_number());
    } else if (key == "depth") {
      sp.depth = static_cast<int>(p.parse_number());
    } else if (key == "seconds") {
      sp.seconds = p.parse_number();
    } else if (key == "values") {
      p.parse_object([&](const std::string& k) {
        sp.values.emplace_back(k, p.parse_number());
      });
    } else {
      MICG_CHECK(false, "metrics JSON: unknown span key: " + key);
    }
  });
  return sp;
}

snapshot parse_record(parser& p) {
  snapshot s;
  p.parse_object([&](const std::string& key) {
    if (key == "schema") {
      const std::string schema = p.parse_string();
      MICG_CHECK(schema == schema_name,
                 "metrics JSON: unknown schema: " + schema);
    } else if (key == "meta") {
      p.parse_object([&](const std::string& k) {
        s.meta.emplace_back(k, p.parse_string());
      });
    } else if (key == "counters") {
      p.parse_object([&](const std::string& k) {
        s.counters.emplace_back(
            k, static_cast<std::uint64_t>(p.parse_number()));
      });
    } else if (key == "timers") {
      p.parse_object([&](const std::string& k) {
        s.timers.emplace_back(k, p.parse_number());
      });
    } else if (key == "values") {
      p.parse_object([&](const std::string& k) {
        s.values.emplace_back(k, p.parse_number());
      });
    } else if (key == "spans") {
      p.parse_array([&] { s.spans.push_back(parse_span(p)); });
    } else {
      MICG_CHECK(false, "metrics JSON: unknown record key: " + key);
    }
  });
  return s;
}

}  // namespace

std::string to_json(const snapshot& s) {
  std::string out;
  append_record(out, s);
  return out;
}

std::string to_json(const std::vector<snapshot>& records) {
  std::string out = "{\"schema\":";
  append_escaped(out, schema_name);
  out += ",\"records\":[";
  bool first = true;
  for (const auto& r : records) {
    if (!first) out += ',';
    first = false;
    append_record(out, r);
  }
  out += "]}\n";
  return out;
}

void write_json(std::ostream& os, const snapshot& s) { os << to_json(s); }

void write_json_file(const std::string& path,
                     const std::vector<snapshot>& records) {
  std::ofstream os(path);
  MICG_CHECK(os.good(), "cannot open metrics file for writing: " + path);
  os << to_json(records);
  os.flush();
  MICG_CHECK(os.good(), "failed writing metrics file: " + path);
}

snapshot from_json(const std::string& json) {
  parser p(json);
  snapshot s = parse_record(p);
  p.finish();
  return s;
}

std::vector<snapshot> records_from_json(const std::string& json) {
  parser p(json);
  std::vector<snapshot> records;
  p.parse_object([&](const std::string& key) {
    if (key == "schema") {
      const std::string schema = p.parse_string();
      MICG_CHECK(schema == schema_name,
                 "metrics JSON: unknown schema: " + schema);
    } else if (key == "records") {
      p.parse_array([&] { records.push_back(parse_record(p)); });
    } else {
      MICG_CHECK(false, "metrics JSON: unknown file key: " + key);
    }
  });
  p.finish();
  return records;
}

std::string to_csv(const snapshot& s) {
  std::ostringstream os;
  os << "section,name,value\n";
  for (const auto& [k, v] : s.meta) os << "meta," << k << ',' << v << '\n';
  for (const auto& [k, v] : s.counters) {
    os << "counter," << k << ',' << v << '\n';
  }
  for (const auto& [k, v] : s.timers) os << "timer," << k << ',' << v << '\n';
  for (const auto& [k, v] : s.values) os << "value," << k << ',' << v << '\n';
  os << "span,name,index,depth,seconds,values\n";
  for (const auto& sp : s.spans) {
    os << "span," << sp.name << ',' << sp.index << ',' << sp.depth << ','
       << sp.seconds << ',';
    bool first = true;
    for (const auto& [k, v] : sp.values) {
      if (!first) os << ';';
      first = false;
      os << k << '=' << v;
    }
    os << '\n';
  }
  return os.str();
}

void write_csv(std::ostream& os, const snapshot& s) { os << to_csv(s); }

}  // namespace micg::obs
