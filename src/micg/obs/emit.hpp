// Serialization of obs snapshots — the `micg.metrics.v1` schema.
//
// One run record (a snapshot) serializes to a JSON object:
//
//   {
//     "schema": "micg.metrics.v1",
//     "meta":     {"kernel": "iterative_color", ...},   // strings
//     "counters": {"color.rounds": 3, ...},             // integers
//     "timers":   {"rt.worker_busy": 0.0123, ...},      // seconds
//     "values":   {"color.num_colors": 42, ...},        // gauges
//     "spans": [
//       {"name": "color.round", "index": 0, "depth": 0,
//        "seconds": 0.001, "values": {"conflicts": 17}},
//       ...
//     ]
//   }
//
// A metrics *file* (what --metrics-json / MICG_METRICS_JSON produces)
// wraps one or more records:
//
//   {"schema": "micg.metrics.v1", "records": [<record>, ...]}
//
// from_json() parses exactly the subset the emitters produce, enabling
// round-trip tests and tools without a JSON library dependency.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "micg/obs/obs.hpp"

namespace micg::obs {

/// Schema identifier stamped into every record and metrics file.
inline constexpr const char* schema_name = "micg.metrics.v1";

/// One record as a JSON object.
std::string to_json(const snapshot& s);

/// A metrics file: {"schema": ..., "records": [...]}.
std::string to_json(const std::vector<snapshot>& records);

void write_json(std::ostream& os, const snapshot& s);

/// Write a metrics file to `path`; throws micg::check_error on I/O error.
void write_json_file(const std::string& path,
                     const std::vector<snapshot>& records);

/// Parse a single record produced by to_json(const snapshot&). Throws
/// micg::check_error on malformed input or schema mismatch.
snapshot from_json(const std::string& json);

/// Parse a metrics file produced by to_json(const vector<snapshot>&).
std::vector<snapshot> records_from_json(const std::string& json);

/// CSV emitters: one "section,name,value" table for scalars and one
/// "span,name,index,depth,seconds,key=value;..." row per span.
std::string to_csv(const snapshot& s);
void write_csv(std::ostream& os, const snapshot& s);

}  // namespace micg::obs
