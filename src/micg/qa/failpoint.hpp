// Failure points (micg::qa): named hooks compiled into error-prone code
// paths that tests can arm to force a fault at an exact site.
//
// A corruption test can only damage *bytes*; some failures (allocation
// exhaustion mid-parse, a stream going bad between two reads) are states,
// not bytes. The parsers in io_binary/io_mm call
//
//     MICG_FAILPOINT("io_binary.xadj", &in);
//
// at those sites. When nothing is armed this is one relaxed atomic load —
// cheap enough to stay compiled in for release builds. A test arms a point
// for a scope:
//
//     micg::qa::failpoint_scope fp("io_binary.xadj",
//                                  micg::qa::fail_action::throw_bad_alloc);
//     EXPECT_THROW(read_binary_any(in), micg::check_error);
//
// Only one failpoint may be armed at a time (tests are sequential); arming
// is thread-safe with respect to concurrent hits.
#pragma once

#include <atomic>
#include <istream>

namespace micg::qa {

/// What an armed failpoint does when hit.
enum class fail_action {
  fail_stream,      ///< set badbit on the stream passed to the hit
  throw_bad_alloc,  ///< throw std::bad_alloc (allocation exhaustion)
  throw_io_error,   ///< throw std::ios_base::failure
};

namespace detail {
extern std::atomic<int> failpoints_armed;
void failpoint_hit_slow(const char* name, std::istream* stream);
}  // namespace detail

/// Instrumentation call. Near-zero cost when nothing is armed.
inline void failpoint_hit(const char* name, std::istream* stream = nullptr) {
  if (detail::failpoints_armed.load(std::memory_order_acquire) == 0) return;
  detail::failpoint_hit_slow(name, stream);
}

/// RAII arming of one failpoint. `skip` hits pass through before the
/// action fires (so a per-entry hook can fail on entry k, not entry 0);
/// every later hit fires again until the scope ends.
class failpoint_scope {
 public:
  failpoint_scope(const char* name, fail_action action, int skip = 0);
  ~failpoint_scope();

  failpoint_scope(const failpoint_scope&) = delete;
  failpoint_scope& operator=(const failpoint_scope&) = delete;

  /// Times the armed point has fired (not counting skipped hits).
  [[nodiscard]] int fired() const;
};

}  // namespace micg::qa

#define MICG_FAILPOINT(name, stream_ptr) \
  ::micg::qa::failpoint_hit((name), (stream_ptr))
