// Fault-injection streams and corruption helpers (micg::qa).
//
// The graph readers (io_binary, io_mm) accept untrusted bytes; every error
// path in them must raise micg::check_error instead of crashing, hanging,
// or silently returning a wrong graph. This header provides the tools the
// fault-injection tests use to prove that:
//
//  * corruption helpers — pure functions that damage an in-memory
//    serialized image (truncate, flip one bit, overwrite a header field),
//  * faulty_stream — an istream over such an image that can additionally
//    simulate an I/O *error* (badbit mid-read), which plain string streams
//    cannot: truncation ends in EOF, a dying NFS mount ends in badbit, and
//    parsers must survive both.
//
// Nothing in here is linked into hot paths; the library exists so tests
// and tools/ fuzz drivers share one vocabulary of faults.
#pragma once

#include <cstddef>
#include <cstring>
#include <istream>
#include <limits>
#include <streambuf>
#include <string>

namespace micg::qa {

// ---------------------------------------------------------------------------
// Corruption helpers. All take the image by value and return the damaged
// copy so call sites can fan one pristine image into many faults.
// ---------------------------------------------------------------------------

/// First `size` bytes of `data` (no-op when size >= data.size()).
std::string truncated(std::string data, std::size_t size);

/// `data` with bit `bit` (0..7) of byte `byte` inverted.
std::string bit_flipped(std::string data, std::size_t byte, unsigned bit);

/// `data` with `n` bytes at `offset` overwritten from `bytes`. The range
/// must lie inside the image.
std::string with_bytes_at(std::string data, std::size_t offset,
                          const void* bytes, std::size_t n);

/// `data` with a trivially-copyable value spliced in at `offset` — the tool
/// for over-reporting a binary header field (e.g. num_vertices = 1 << 60).
template <typename T>
std::string with_pod_at(std::string data, std::size_t offset, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return with_bytes_at(std::move(data), offset, &value, sizeof(T));
}

// ---------------------------------------------------------------------------
// faulty_stream
// ---------------------------------------------------------------------------

/// What happens when the stream reaches its fault point.
enum class fault_mode {
  none,      ///< serve the whole image, then normal EOF
  eof_at,    ///< serve `at` bytes, then behave as a truncated file (EOF)
  error_at,  ///< serve `at` bytes, then fail like an I/O error (badbit)
};

namespace detail {

/// Read-only streambuf over an owned byte image with a fault point.
class faulty_streambuf : public std::streambuf {
 public:
  faulty_streambuf(std::string data, fault_mode mode, std::size_t at);

 protected:
  int_type underflow() override;
  std::streamsize xsgetn(char_type* s, std::streamsize n) override;

 private:
  [[nodiscard]] std::size_t consumed() const {
    return static_cast<std::size_t>(gptr() - eback());
  }

  std::string data_;
  fault_mode mode_;
  std::size_t limit_;  ///< bytes served before the fault fires
};

}  // namespace detail

/// Seekable? No — deliberately. The binary reader has a stricter validation
/// path for seekable streams (it can compare the header against the real
/// payload size); faulty_stream is non-seekable so tests also exercise the
/// pipe/socket path where only incremental checks are possible.
class faulty_stream : public std::istream {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  explicit faulty_stream(std::string data,
                         fault_mode mode = fault_mode::none,
                         std::size_t at = npos);

 private:
  detail::faulty_streambuf buf_;
};

}  // namespace micg::qa
