#include "micg/qa/faulty_stream.hpp"

#include <algorithm>
#include <ios>

#include "micg/support/assert.hpp"

namespace micg::qa {

std::string truncated(std::string data, std::size_t size) {
  if (size < data.size()) data.resize(size);
  return data;
}

std::string bit_flipped(std::string data, std::size_t byte, unsigned bit) {
  MICG_CHECK(byte < data.size(), "bit flip outside the image");
  MICG_CHECK(bit < 8, "bit index must be 0..7");
  data[byte] = static_cast<char>(
      static_cast<unsigned char>(data[byte]) ^ (1u << bit));
  return data;
}

std::string with_bytes_at(std::string data, std::size_t offset,
                          const void* bytes, std::size_t n) {
  MICG_CHECK(offset <= data.size() && n <= data.size() - offset,
             "patch outside the image");
  std::memcpy(data.data() + offset, bytes, n);
  return data;
}

namespace detail {

faulty_streambuf::faulty_streambuf(std::string data, fault_mode mode,
                                   std::size_t at)
    : data_(std::move(data)),
      mode_(mode),
      limit_(mode == fault_mode::none ? data_.size()
                                      : std::min(at, data_.size())) {
  char* base = data_.data();
  setg(base, base, base + limit_);
}

faulty_streambuf::int_type faulty_streambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  // The whole pre-fault window is already exposed via setg, so reaching
  // here means the fault point (or the true end) has been hit.
  if (mode_ == fault_mode::error_at && consumed() >= limit_) {
    // istream::read catches this and sets badbit (not eofbit): the
    // canonical shape of a mid-read I/O error.
    throw std::ios_base::failure("injected I/O error");
  }
  return traits_type::eof();
}

std::streamsize faulty_streambuf::xsgetn(char_type* s, std::streamsize n) {
  const std::streamsize got = std::streambuf::xsgetn(s, n);
  if (got < n && mode_ == fault_mode::error_at && consumed() >= limit_) {
    throw std::ios_base::failure("injected I/O error");
  }
  return got;
}

}  // namespace detail

faulty_stream::faulty_stream(std::string data, fault_mode mode,
                             std::size_t at)
    : std::istream(nullptr), buf_(std::move(data), mode, at) {
  rdbuf(&buf_);
}

}  // namespace micg::qa
