#include "micg/qa/failpoint.hpp"

#include <cstring>
#include <ios>
#include <mutex>
#include <new>

#include "micg/support/assert.hpp"

namespace micg::qa {

namespace detail {
std::atomic<int> failpoints_armed{0};
}  // namespace detail

namespace {

// The single armed point. Guarded by mu; failpoints_armed is the lock-free
// fast-path gate (hits far outnumber arms).
std::mutex mu;
const char* armed_name = nullptr;
fail_action armed_action = fail_action::fail_stream;
int armed_skip = 0;
int armed_fired = 0;

}  // namespace

namespace detail {

void failpoint_hit_slow(const char* name, std::istream* stream) {
  fail_action action{};
  {
    std::lock_guard<std::mutex> lock(mu);
    if (armed_name == nullptr || std::strcmp(armed_name, name) != 0) return;
    if (armed_skip > 0) {
      --armed_skip;
      return;
    }
    ++armed_fired;
    action = armed_action;
  }
  switch (action) {
    case fail_action::fail_stream:
      MICG_CHECK(stream != nullptr,
                 "fail_stream armed on a failpoint with no stream");
      stream->setstate(std::ios::badbit);
      return;
    case fail_action::throw_bad_alloc:
      throw std::bad_alloc();
    case fail_action::throw_io_error:
      throw std::ios_base::failure("injected failpoint I/O error");
  }
}

}  // namespace detail

failpoint_scope::failpoint_scope(const char* name, fail_action action,
                                 int skip) {
  std::lock_guard<std::mutex> lock(mu);
  MICG_CHECK(armed_name == nullptr,
             "only one failpoint may be armed at a time");
  armed_name = name;
  armed_action = action;
  armed_skip = skip;
  armed_fired = 0;
  detail::failpoints_armed.store(1, std::memory_order_release);
}

failpoint_scope::~failpoint_scope() {
  std::lock_guard<std::mutex> lock(mu);
  armed_name = nullptr;
  detail::failpoints_armed.store(0, std::memory_order_release);
}

int failpoint_scope::fired() const {
  std::lock_guard<std::mutex> lock(mu);
  return armed_fired;
}

}  // namespace micg::qa
