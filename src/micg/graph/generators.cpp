#include "micg/graph/generators.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>
#include <vector>

#include "micg/graph/builder.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/rng.hpp"

namespace micg::graph {

csr_graph make_chain(vertex_t n) {
  MICG_CHECK(n >= 1, "chain needs at least one vertex");
  graph_builder b(n);
  b.reserve(static_cast<std::size_t>(n));
  for (vertex_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

csr_graph make_cycle(vertex_t n) {
  MICG_CHECK(n >= 3, "cycle needs at least three vertices");
  graph_builder b(n);
  for (vertex_t v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return std::move(b).build();
}

csr_graph make_star(vertex_t n) {
  MICG_CHECK(n >= 2, "star needs at least two vertices");
  graph_builder b(n);
  for (vertex_t v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

csr_graph make_complete(vertex_t n) {
  MICG_CHECK(n >= 1, "complete graph needs at least one vertex");
  graph_builder b(n);
  for (vertex_t u = 0; u < n; ++u) {
    for (vertex_t v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

csr_graph make_kary_tree(int arity, int levels) {
  MICG_CHECK(arity >= 1 && levels >= 1, "need arity >= 1 and levels >= 1");
  // Count vertices: 1 + k + k^2 + ... + k^(levels-1).
  std::int64_t n = 0;
  std::int64_t layer = 1;
  for (int l = 0; l < levels; ++l) {
    n += layer;
    layer *= arity;
  }
  MICG_CHECK(n < (1LL << 31), "tree too large for 32-bit vertex ids");
  graph_builder b(static_cast<vertex_t>(n));
  // Children of v are v*k+1 .. v*k+k in heap order (exact for k-ary heaps).
  for (std::int64_t v = 0; v < n; ++v) {
    for (int c = 1; c <= arity; ++c) {
      const std::int64_t child = v * arity + c;
      if (child < n) {
        b.add_edge(static_cast<vertex_t>(v), static_cast<vertex_t>(child));
      }
    }
  }
  return std::move(b).build();
}

csr_graph make_grid_2d(vertex_t nx, vertex_t ny, bool diagonals) {
  MICG_CHECK(nx >= 1 && ny >= 1, "grid dimensions must be positive");
  graph_builder b(nx * ny);
  auto id = [nx](vertex_t x, vertex_t y) { return y * nx + x; };
  for (vertex_t y = 0; y < ny; ++y) {
    for (vertex_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1));
      if (diagonals && x + 1 < nx && y + 1 < ny) {
        b.add_edge(id(x, y), id(x + 1, y + 1));
      }
      if (diagonals && x >= 1 && y + 1 < ny) {
        b.add_edge(id(x, y), id(x - 1, y + 1));
      }
    }
  }
  return std::move(b).build();
}

csr_graph make_erdos_renyi(vertex_t n, double avg_degree,
                           std::uint64_t seed) {
  MICG_CHECK(n >= 2, "need at least two vertices");
  MICG_CHECK(avg_degree >= 0.0, "negative degree");
  const auto target = static_cast<std::int64_t>(
      static_cast<double>(n) * avg_degree / 2.0);
  xoshiro256ss rng(seed);
  graph_builder b(n);
  b.reserve(static_cast<std::size_t>(target));
  for (std::int64_t i = 0; i < target; ++i) {
    const auto u = static_cast<vertex_t>(rng.below(
        static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vertex_t>(rng.below(
        static_cast<std::uint64_t>(n)));
    b.add_edge(u, v);  // self loops / duplicates removed at build
  }
  return std::move(b).build();
}

csr_graph make_rmat(int scale, int edge_factor, double a, double b, double c,
                    std::uint64_t seed) {
  MICG_CHECK(scale >= 1 && scale <= 28, "rmat scale out of range");
  MICG_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
             "rmat probabilities must satisfy a+b+c < 1");
  const vertex_t n = vertex_t{1} << scale;
  const std::int64_t m = static_cast<std::int64_t>(edge_factor) * n;
  xoshiro256ss rng(seed);
  graph_builder bld(n);
  bld.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    vertex_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      int quadrant;
      if (r < a) {
        quadrant = 0;
      } else if (r < a + b) {
        quadrant = 1;
      } else if (r < a + b + c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      u = static_cast<vertex_t>((u << 1) | (quadrant >> 1));
      v = static_cast<vertex_t>((v << 1) | (quadrant & 1));
    }
    bld.add_edge(u, v);
  }
  return std::move(bld).build();
}

namespace {

/// The 40 symmetric offset pairs with squared distance 1..6 in a 3-D grid,
/// ordered by squared distance (so a prefix of length p is the p nearest
/// pairs). Only the positive representative of each pair is stored.
std::vector<std::array<int, 3>> stencil_offsets() {
  std::vector<std::array<int, 3>> reps;
  for (int dz = -2; dz <= 2; ++dz) {
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        const int d2 = dx * dx + dy * dy + dz * dz;
        if (d2 == 0 || d2 > 6) continue;
        // Keep the lexicographically positive representative.
        if (dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0)) {
          reps.push_back({dx, dy, dz});
        }
      }
    }
  }
  std::sort(reps.begin(), reps.end(),
            [](const auto& l, const auto& r) {
              const int dl = l[0] * l[0] + l[1] * l[1] + l[2] * l[2];
              const int dr = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
              if (dl != dr) return dl < dr;
              return l < r;
            });
  return reps;
}

}  // namespace

csr_graph make_fem_like(const fem_params& p) {
  MICG_CHECK(p.sx >= 1 && p.sy >= 1 && p.sz >= 1,
             "grid dimensions must be positive");
  const auto offsets = stencil_offsets();
  MICG_CHECK(p.stencil_pairs >= 1 &&
                 p.stencil_pairs <= static_cast<int>(offsets.size()),
             "stencil_pairs must be in [1, 40]");
  const std::int64_t n64 = static_cast<std::int64_t>(p.sx) * p.sy * p.sz;
  MICG_CHECK(n64 < (1LL << 31), "grid too large for 32-bit vertex ids");
  const auto n = static_cast<vertex_t>(n64);

  graph_builder b(n);
  b.reserve(static_cast<std::size_t>(n64) *
            static_cast<std::size_t>(p.stencil_pairs));
  auto id = [&](vertex_t x, vertex_t y, vertex_t z) {
    return x + p.sx * (y + p.sy * z);
  };
  for (vertex_t z = 0; z < p.sz; ++z) {
    for (vertex_t y = 0; y < p.sy; ++y) {
      for (vertex_t x = 0; x < p.sx; ++x) {
        const vertex_t v = id(x, y, z);
        for (int o = 0; o < p.stencil_pairs; ++o) {
          const vertex_t nx = x + offsets[static_cast<std::size_t>(o)][0];
          const vertex_t ny = y + offsets[static_cast<std::size_t>(o)][1];
          const vertex_t nz = z + offsets[static_cast<std::size_t>(o)][2];
          if (nx < 0 || nx >= p.sx || ny < 0 || ny >= p.sy || nz < 0 ||
              nz >= p.sz) {
            continue;
          }
          b.add_edge(v, id(nx, ny, nz));
        }
      }
    }
  }

  // Hubs: evenly spaced vertices get extra links to their nearest index
  // neighbors. Index distance <= hub_degree keeps the links local in the
  // natural order (no diameter-destroying shortcuts).
  if (p.num_hubs > 0 && p.hub_degree > 0) {
    for (int h = 0; h < p.num_hubs; ++h) {
      const auto hub = static_cast<vertex_t>(
          static_cast<std::int64_t>(h + 1) * n / (p.num_hubs + 1));
      int added = 0;
      for (vertex_t d = 1; added < p.hub_degree && d < n; ++d) {
        if (hub + d < n) {
          b.add_edge(hub, hub + d);
          ++added;
        }
        if (added < p.hub_degree && hub - d >= 0) {
          b.add_edge(hub, hub - d);
          ++added;
        }
      }
    }
  }
  return std::move(b).build();
}

}  // namespace micg::graph
