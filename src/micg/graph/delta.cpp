#include "micg/graph/delta.hpp"

#include <algorithm>

#include "micg/graph/builder.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

edge_delta::edge edge_delta::normalized(std::int64_t u, std::int64_t v) {
  MICG_CHECK(u >= 0 && v >= 0, "edge mutation with negative vertex id");
  MICG_CHECK(u != v, "edge mutation would create a self loop");
  return u < v ? edge{u, v} : edge{v, u};
}

void edge_delta::insert(std::int64_t u, std::int64_t v) {
  const edge e = normalized(u, v);
  ops_[e] = true;
  max_id_ = std::max(max_id_, e.second);
}

void edge_delta::erase(std::int64_t u, std::int64_t v) {
  const edge e = normalized(u, v);
  ops_[e] = false;
  max_id_ = std::max(max_id_, e.second);
}

void edge_delta::clear() {
  ops_.clear();
  max_id_ = -1;
}

std::vector<std::pair<edge_delta::edge, bool>> edge_delta::net_ops() const {
  return {ops_.begin(), ops_.end()};
}

const bool* edge_delta::decision(std::int64_t u, std::int64_t v) const {
  const auto it = ops_.find(normalized(u, v));
  return it != ops_.end() ? &it->second : nullptr;
}

any_csr apply_delta(const any_csr& base, const edge_delta& delta) {
  const std::int64_t n = std::max(base.num_vertices(), delta.min_vertices());
  // Materialize at 64-bit widths (any base layout and any growth fits),
  // then repack into the narrowest layout that represents the result —
  // the same convert_csr/select_layout path every loader uses, so a graph
  // can migrate layouts in either direction across compactions.
  basic_builder<std::int64_t, std::int64_t> b(n);
  b.reserve(static_cast<std::size_t>(base.num_edges()) + delta.size());

  // Base edges carry over unless the delta decided the pair; pairs the
  // delta touched are governed by the net op alone (so base edges it
  // deletes are skipped, and its inserts below cannot duplicate — the
  // builder would dedup anyway, but skipping keeps the buffer tight).
  base.visit([&](const auto& g) {
    using VId = typename std::decay_t<decltype(g)>::vertex_type;
    const VId nv = g.num_vertices();
    for (VId u = 0; u < nv; ++u) {
      for (const VId w : g.neighbors(u)) {
        if (w <= u) continue;  // each undirected edge once, as u < w
        if (delta.decision(u, w) != nullptr) continue;
        b.add_edge(static_cast<std::int64_t>(u),
                   static_cast<std::int64_t>(w));
      }
    }
  });
  for (const auto& [e, present] : delta.net_ops()) {
    if (present) b.add_edge(e.first, e.second);
  }
  return build_auto(std::move(b));
}

}  // namespace micg::graph
