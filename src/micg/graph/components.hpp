// Parallel connected components via label propagation with pointer
// jumping — the standard shared-memory formulation (Shiloach–Vishkin
// style hooking + shortcutting). Runs on any rt::exec backend; the
// sequential count_components() in props.hpp is its test oracle.
#pragma once

#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::graph {

template <class VId>
struct basic_components_result {
  /// label[v]: smallest vertex id in v's component (canonical form).
  std::vector<VId> label;
  VId num_components = 0;
  int rounds = 0;  ///< hook+compress iterations until fixpoint
};

using components_result = basic_components_result<vertex_t>;

/// Label-propagation connected components. Defined for every shipped
/// layout (explicit instantiations in components.cpp).
template <CsrGraph G>
basic_components_result<typename G::vertex_type> parallel_components(
    const G& g, const rt::exec& ex);

}  // namespace micg::graph
