// Parallel connected components via label propagation with pointer
// jumping — the standard shared-memory formulation (Shiloach–Vishkin
// style hooking + shortcutting). Runs on any rt::exec backend; the
// sequential count_components() in props.hpp is its test oracle.
#pragma once

#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::graph {

struct components_result {
  /// label[v]: smallest vertex id in v's component (canonical form).
  std::vector<vertex_t> label;
  vertex_t num_components = 0;
  int rounds = 0;  ///< hook+compress iterations until fixpoint
};

/// Label-propagation connected components.
components_result parallel_components(const csr_graph& g,
                                      const rt::exec& ex);

}  // namespace micg::graph
