#include "micg/graph/props.hpp"

#include <algorithm>
#include <vector>

#include "micg/support/assert.hpp"

namespace micg::graph {

degree_stats compute_degree_stats(const csr_graph& g) {
  degree_stats s;
  const vertex_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (vertex_t v = 0; v < n; ++v) {
    const std::int64_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += static_cast<double>(d);
  }
  s.mean /= static_cast<double>(n);
  return s;
}

namespace {

/// Simple scratch BFS (distinct from the bfs module: props must not depend
/// on the algorithm layer). Returns the number of levels from `source`.
int scratch_bfs_levels(const csr_graph& g, vertex_t source,
                       std::vector<vertex_t>* visited_order = nullptr) {
  const vertex_t n = g.num_vertices();
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<vertex_t> queue;
  queue.reserve(static_cast<std::size_t>(n));
  level[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  int max_level = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const vertex_t v = queue[head];
    for (vertex_t w : g.neighbors(v)) {
      if (level[static_cast<std::size_t>(w)] < 0) {
        level[static_cast<std::size_t>(w)] =
            level[static_cast<std::size_t>(v)] + 1;
        max_level = std::max(max_level, level[static_cast<std::size_t>(w)]);
        queue.push_back(w);
      }
    }
  }
  if (visited_order != nullptr) *visited_order = std::move(queue);
  return max_level + 1;  // levels are counted from 1
}

}  // namespace

vertex_t count_components(const csr_graph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  vertex_t components = 0;
  std::vector<vertex_t> stack;
  for (vertex_t root = 0; root < n; ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    ++components;
    seen[static_cast<std::size_t>(root)] = true;
    stack.push_back(root);
    while (!stack.empty()) {
      const vertex_t v = stack.back();
      stack.pop_back();
      for (vertex_t w : g.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

int count_bfs_levels(const csr_graph& g, vertex_t source) {
  MICG_CHECK(source >= 0 && source < g.num_vertices(),
             "source out of range");
  return scratch_bfs_levels(g, source);
}

}  // namespace micg::graph
