#include "micg/graph/props.hpp"

#include <algorithm>
#include <vector>

#include "micg/support/assert.hpp"

namespace micg::graph {

template <CsrGraph G>
degree_stats compute_degree_stats(const G& g) {
  using VId = typename G::vertex_type;
  degree_stats s;
  const VId n = g.num_vertices();
  if (n == 0) return s;
  s.min = static_cast<std::int64_t>(g.degree(0));
  for (VId v = 0; v < n; ++v) {
    const auto d = static_cast<std::int64_t>(g.degree(v));
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += static_cast<double>(d);
  }
  s.mean /= static_cast<double>(n);
  return s;
}

namespace {

/// Simple scratch BFS (distinct from the bfs module: props must not depend
/// on the algorithm layer). Returns the number of levels from `source`.
template <CsrGraph G>
int scratch_bfs_levels(const G& g, typename G::vertex_type source) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  std::vector<int> level(static_cast<std::size_t>(n), -1);
  std::vector<VId> queue;
  queue.reserve(static_cast<std::size_t>(n));
  level[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  int max_level = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VId v = queue[head];
    for (VId w : g.neighbors(v)) {
      if (level[static_cast<std::size_t>(w)] < 0) {
        level[static_cast<std::size_t>(w)] =
            level[static_cast<std::size_t>(v)] + 1;
        max_level = std::max(max_level, level[static_cast<std::size_t>(w)]);
        queue.push_back(w);
      }
    }
  }
  return max_level + 1;  // levels are counted from 1
}

}  // namespace

template <CsrGraph G>
typename G::vertex_type count_components(const G& g) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  VId components = 0;
  std::vector<VId> stack;
  for (VId root = 0; root < n; ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    ++components;
    seen[static_cast<std::size_t>(root)] = true;
    stack.push_back(root);
    while (!stack.empty()) {
      const VId v = stack.back();
      stack.pop_back();
      for (VId w : g.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

template <CsrGraph G>
int count_bfs_levels(const G& g, typename G::vertex_type source) {
  MICG_CHECK(source >= 0 && source < g.num_vertices(),
             "source out of range");
  return scratch_bfs_levels(g, source);
}

#define MICG_INSTANTIATE(G)                                        \
  template degree_stats compute_degree_stats<G>(const G&);         \
  template typename G::vertex_type count_components<G>(const G&);  \
  template int count_bfs_levels<G>(const G&, typename G::vertex_type);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
