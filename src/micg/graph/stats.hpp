// One-sweep structural statistics — the per-graph half of the auto-tuner.
//
// Several consumers used to run their own ad-hoc degree scans: the
// landmark builder partial-sorted all vertices for its top-degree pivots,
// `info` swept degrees for Table-I statistics, and the knob picker
// (micg::tune) needs the degree distribution to predict which frontier
// representation and loop partitioning win. graph_stats computes all of
// it in one pass over xadj (plus an O(n log k) top-k selection) so the
// probe is cheap enough to run at graph load time, and stats_cache
// memoizes the result per snapshot epoch so the serving layer computes it
// once per compaction rather than once per request.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Top-degree vertices retained by the probe; 64 == msbfs_max_lanes, so
/// one stats sweep can seed the largest landmark batch.
inline constexpr int stats_top_k = 64;

/// Degree buckets: bucket 0 counts isolated vertices, bucket b >= 1
/// counts degrees in [2^(b-1), 2^b). 34 buckets cover any EId degree.
inline constexpr int stats_hist_buckets = 34;

struct graph_stats {
  std::int64_t num_vertices = 0;
  std::int64_t num_directed_edges = 0;  ///< 2|E|, the xadj back value

  // --- degree distribution (the Table I columns, one sweep) -------------
  std::int64_t min_degree = 0;
  std::int64_t max_degree = 0;  ///< Delta in the paper
  double avg_degree = 0.0;
  double degree_stddev = 0.0;
  std::array<std::int64_t, stats_hist_buckets> degree_log2_hist{};

  /// Up to stats_top_k vertex ids by (degree desc, id asc) — the landmark
  /// pivot rule, precomputed so pivot selection is a table lookup.
  std::vector<std::int64_t> top_vertices;
  /// Fraction of directed edges owned by top_vertices (hub mass: ~0 on
  /// meshes, large on RMAT — the skew signal edge partitioning answers).
  double hub_edge_fraction = 0.0;

  // --- derived frontier-shape estimates ---------------------------------
  /// max_degree / avg_degree; 1 on regular graphs, >> 1 on RMAT.
  [[nodiscard]] double skew() const {
    return avg_degree > 0.0 ? static_cast<double>(max_degree) / avg_degree
                            : 1.0;
  }
  /// Geometric-expansion estimate of BFS depth (log_b n for branching
  /// factor b = avg_degree). An *estimate from the degree distribution*,
  /// not a traversal: high-diameter meshes are deeper than this predicts,
  /// so consumers treat small values as "plausibly shallow and wide", not
  /// as a measurement.
  double est_levels = 0.0;
  /// Estimated fraction of vertices in the widest BFS level under the
  /// same expansion model ((b-1)/b for branching factor b).
  double est_peak_frontier = 0.0;
};

/// One-sweep probe. Cost: one pass over xadj + one O(n log k) partial
/// sort for the top-k table.
template <CsrGraph G>
graph_stats compute_graph_stats(const G& g);

graph_stats compute_graph_stats(const any_csr& g);

/// Top-`k` vertex ids by (degree desc, id asc) — the shared selection
/// rule (landmark pivots, hub tables). `k` is clamped to |V|.
template <CsrGraph G>
std::vector<typename G::vertex_type> top_degree_vertices(const G& g, int k);

/// Epoch-keyed memo of graph_stats, shared by the serving layer and the
/// tuner: stats are immutable per snapshot, so one probe per (key, epoch)
/// suffices. Thread-safe; a changed epoch replaces the cached entry.
class stats_cache {
 public:
  /// The stats of `g` at `epoch` under `key` (typically the served graph
  /// name). Computes on miss or epoch change; returns the cached result
  /// otherwise without touching `g`.
  std::shared_ptr<const graph_stats> get(const std::string& key,
                                         std::int64_t epoch, const any_csr& g);

  /// Entries currently held (tests / introspection).
  [[nodiscard]] std::size_t size() const;

 private:
  struct entry {
    std::int64_t epoch = -1;
    std::shared_ptr<const graph_stats> stats;
  };
  mutable std::mutex mu_;
  std::map<std::string, entry> entries_;
};

}  // namespace micg::graph
