// Structural graph properties used by Table I and the test suite.
#pragma once

#include <cstdint>

#include "micg/graph/csr.hpp"

namespace micg::graph {

struct degree_stats {
  std::int64_t min = 0;
  std::int64_t max = 0;  ///< Delta in the paper
  double mean = 0.0;
};

degree_stats compute_degree_stats(const csr_graph& g);

/// Number of connected components (sequential traversal).
vertex_t count_components(const csr_graph& g);

/// Number of BFS levels reachable from `source` (the level of the source is
/// 1, matching the "#Level" column of Table I which counts levels of a
/// traversal "from vertex |V|/2").
int count_bfs_levels(const csr_graph& g, vertex_t source);

}  // namespace micg::graph
