// Structural graph properties used by Table I and the test suite.
#pragma once

#include <cstdint>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Width-independent (always 64-bit) so callers can compare stats across
/// layouts without casts.
struct degree_stats {
  std::int64_t min = 0;
  std::int64_t max = 0;  ///< Delta in the paper
  double mean = 0.0;
};

template <CsrGraph G>
degree_stats compute_degree_stats(const G& g);

/// Number of connected components (sequential traversal).
template <CsrGraph G>
typename G::vertex_type count_components(const G& g);

/// Number of BFS levels reachable from `source` (the level of the source is
/// 1, matching the "#Level" column of Table I which counts levels of a
/// traversal "from vertex |V|/2").
template <CsrGraph G>
int count_bfs_levels(const G& g, typename G::vertex_type source);

}  // namespace micg::graph
