#include "micg/graph/io_binary.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "micg/support/assert.hpp"

namespace micg::graph {

namespace {

constexpr std::uint64_t kMagic = 0x4d49434752415048ULL;  // "MICGRAPH"
constexpr std::uint32_t kVersion = 1;

struct header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::int64_t num_vertices;
  std::int64_t adj_size;
};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  MICG_CHECK(in.good(), "truncated binary graph stream");
}

}  // namespace

void write_binary(std::ostream& out, const csr_graph& g) {
  header h{kMagic, kVersion, 0, g.num_vertices(),
           g.num_directed_edges()};
  write_pod(out, h);
  out.write(reinterpret_cast<const char*>(g.xadj().data()),
            static_cast<std::streamsize>(g.xadj().size() * sizeof(edge_t)));
  out.write(reinterpret_cast<const char*>(g.adj().data()),
            static_cast<std::streamsize>(g.adj().size() * sizeof(vertex_t)));
  MICG_CHECK(out.good(), "binary graph write failed");
}

void save_binary(const std::string& path, const csr_graph& g) {
  std::ofstream out(path, std::ios::binary);
  MICG_CHECK(out.good(), "cannot open " + path + " for writing");
  write_binary(out, g);
}

csr_graph read_binary(std::istream& in) {
  header h{};
  read_pod(in, h);
  MICG_CHECK(h.magic == kMagic, "not a micgraph binary file");
  MICG_CHECK(h.version == kVersion, "unsupported binary graph version");
  MICG_CHECK(h.num_vertices >= 0 && h.adj_size >= 0,
             "corrupt binary graph header");
  std::vector<edge_t> xadj(static_cast<std::size_t>(h.num_vertices) + 1);
  in.read(reinterpret_cast<char*>(xadj.data()),
          static_cast<std::streamsize>(xadj.size() * sizeof(edge_t)));
  MICG_CHECK(in.good(), "truncated xadj array");
  std::vector<vertex_t> adj(static_cast<std::size_t>(h.adj_size));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(vertex_t)));
  MICG_CHECK(in.good(), "truncated adjacency array");
  csr_graph g(std::move(xadj), std::move(adj));
  g.validate();
  return g;
}

csr_graph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_binary(in);
}

}  // namespace micg::graph
