#include "micg/graph/io_binary.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "micg/support/assert.hpp"

namespace micg::graph {

namespace {

constexpr std::uint64_t kMagic = 0x4d49434752415048ULL;  // "MICGRAPH"
constexpr std::uint32_t kVersion = 2;

// Same 32-byte layout as version 1, with the old reserved word split into
// the two index widths (version-1 writers always wrote it as zero, so the
// reader can recover the implicit 4/8 widths from the version field alone).
struct header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint16_t vid_bytes;
  std::uint16_t eid_bytes;
  std::int64_t num_vertices;
  std::int64_t adj_size;
};
static_assert(sizeof(header) == 32);

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  MICG_CHECK(in.good(), "truncated binary graph stream");
}

template <std::signed_integral VId, std::signed_integral EId>
basic_csr<VId, EId> read_arrays(std::istream& in, std::int64_t num_vertices,
                                std::int64_t adj_size) {
  std::vector<EId> xadj(static_cast<std::size_t>(num_vertices) + 1);
  in.read(reinterpret_cast<char*>(xadj.data()),
          static_cast<std::streamsize>(xadj.size() * sizeof(EId)));
  MICG_CHECK(in.good(), "truncated xadj array");
  std::vector<VId> adj(static_cast<std::size_t>(adj_size));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(VId)));
  MICG_CHECK(in.good(), "truncated adjacency array");
  basic_csr<VId, EId> g(std::move(xadj), std::move(adj));
  g.validate();
  return g;
}

}  // namespace

template <CsrGraph G>
void write_binary(std::ostream& out, const G& g) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  header h{kMagic,
           kVersion,
           static_cast<std::uint16_t>(sizeof(VId)),
           static_cast<std::uint16_t>(sizeof(EId)),
           static_cast<std::int64_t>(g.num_vertices()),
           static_cast<std::int64_t>(g.num_directed_edges())};
  write_pod(out, h);
  out.write(reinterpret_cast<const char*>(g.xadj().data()),
            static_cast<std::streamsize>(g.xadj().size() * sizeof(EId)));
  out.write(reinterpret_cast<const char*>(g.adj().data()),
            static_cast<std::streamsize>(g.adj().size() * sizeof(VId)));
  MICG_CHECK(out.good(), "binary graph write failed");
}

void write_binary(std::ostream& out, const any_csr& g) {
  g.visit([&out](const auto& c) { write_binary(out, c); });
}

template <CsrGraph G>
void save_binary(const std::string& path, const G& g) {
  std::ofstream out(path, std::ios::binary);
  MICG_CHECK(out.good(), "cannot open " + path + " for writing");
  write_binary(out, g);
}

void save_binary(const std::string& path, const any_csr& g) {
  g.visit([&path](const auto& c) { save_binary(path, c); });
}

any_csr read_binary_any(std::istream& in) {
  header h{};
  read_pod(in, h);
  MICG_CHECK(h.magic == kMagic, "not a micgraph binary file");
  MICG_CHECK(h.version == 1 || h.version == 2,
             "unsupported binary graph version");
  MICG_CHECK(h.num_vertices >= 0 && h.adj_size >= 0,
             "corrupt binary graph header");
  std::uint32_t vid_bytes = h.vid_bytes;
  std::uint32_t eid_bytes = h.eid_bytes;
  if (h.version == 1) {
    // Version 1 had a zero reserved word where the widths now live and
    // always stored the historical csr_graph layout.
    MICG_CHECK(vid_bytes == 0 && eid_bytes == 0,
               "corrupt version-1 binary graph header");
    vid_bytes = sizeof(vertex_t);
    eid_bytes = sizeof(edge_t);
  }
  if (vid_bytes == 4 && eid_bytes == 4) {
    return read_arrays<std::int32_t, std::int32_t>(in, h.num_vertices,
                                                   h.adj_size);
  }
  if (vid_bytes == 4 && eid_bytes == 8) {
    return read_arrays<std::int32_t, std::int64_t>(in, h.num_vertices,
                                                   h.adj_size);
  }
  if (vid_bytes == 8 && eid_bytes == 8) {
    return read_arrays<std::int64_t, std::int64_t>(in, h.num_vertices,
                                                   h.adj_size);
  }
  MICG_CHECK(false, "binary graph uses an unsupported index layout");
  return {};  // unreachable
}

any_csr load_binary_any(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_binary_any(in);
}

csr_graph read_binary(std::istream& in) {
  return to_layout(read_binary_any(in), csr_layout::v32e64)
      .get<csr_graph>();
}

csr_graph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_binary(in);
}

#define MICG_INSTANTIATE(G)                                \
  template void write_binary<G>(std::ostream&, const G&);  \
  template void save_binary<G>(const std::string&, const G&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
