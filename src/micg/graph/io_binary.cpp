#include "micg/graph/io_binary.hpp"

#include <cstdint>
#include <fstream>
#include <new>
#include <stdexcept>
#include <vector>

#include "micg/qa/failpoint.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

namespace {

constexpr std::uint64_t kMagic = 0x4d49434752415048ULL;  // "MICGRAPH"
constexpr std::uint32_t kVersion = 2;
/// Version 3 = version 2 + an adjacency-parallel int32 weights array
/// appended after the adjacency payload (graph/weighted.hpp).
constexpr std::uint32_t kVersionWeighted = 3;

// Same 32-byte layout as version 1, with the old reserved word split into
// the two index widths (version-1 writers always wrote it as zero, so the
// reader can recover the implicit 4/8 widths from the version field alone).
struct header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint16_t vid_bytes;
  std::uint16_t eid_bytes;
  std::int64_t num_vertices;
  std::int64_t adj_size;
};
static_assert(sizeof(header) == 32);

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  MICG_CHECK(in.good(), "truncated binary graph stream");
}

/// Allocation that converts exhaustion into a parse error: a header that
/// over-reports its array sizes on a non-seekable stream is only detected
/// here, and the reader's contract is check_error, never bad_alloc.
template <typename T>
std::vector<T> checked_alloc(std::size_t n, const char* what) {
  try {
    return std::vector<T>(n);
  } catch (const std::bad_alloc&) {
    throw check_error(std::string("binary graph header over-reports the ") +
                      what + " size (allocation failed)");
  } catch (const std::length_error&) {
    throw check_error(std::string("binary graph header over-reports the ") +
                      what + " size (exceeds max_size)");
  }
}

/// Bytes between the current position and the end of a seekable stream;
/// -1 when the stream does not support seeking (pipe, faulty_stream).
std::int64_t remaining_bytes(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1) || !in.good()) {
    in.clear(in.rdstate() & ~std::ios::failbit);
    return -1;
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.clear(in.rdstate() & ~std::ios::failbit);
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return -1;
  return static_cast<std::int64_t>(end - pos);
}

template <std::signed_integral VId, std::signed_integral EId>
basic_csr<VId, EId> read_arrays(std::istream& in, std::int64_t num_vertices,
                                std::int64_t adj_size) {
  auto xadj = checked_alloc<EId>(static_cast<std::size_t>(num_vertices) + 1,
                                 "xadj array");
  MICG_FAILPOINT("io_binary.xadj", &in);
  in.read(reinterpret_cast<char*>(xadj.data()),
          static_cast<std::streamsize>(xadj.size() * sizeof(EId)));
  MICG_CHECK(in.good(), "truncated xadj array");
  auto adj = checked_alloc<VId>(static_cast<std::size_t>(adj_size),
                                "adjacency array");
  MICG_FAILPOINT("io_binary.adj", &in);
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(adj.size() * sizeof(VId)));
  MICG_CHECK(in.good(), "truncated adjacency array");
  basic_csr<VId, EId> g(std::move(xadj), std::move(adj));
  g.validate();
  return g;
}

}  // namespace

template <CsrGraph G>
void write_binary(std::ostream& out, const G& g) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  header h{kMagic,
           kVersion,
           static_cast<std::uint16_t>(sizeof(VId)),
           static_cast<std::uint16_t>(sizeof(EId)),
           static_cast<std::int64_t>(g.num_vertices()),
           static_cast<std::int64_t>(g.num_directed_edges())};
  write_pod(out, h);
  out.write(reinterpret_cast<const char*>(g.xadj().data()),
            static_cast<std::streamsize>(g.xadj().size() * sizeof(EId)));
  out.write(reinterpret_cast<const char*>(g.adj().data()),
            static_cast<std::streamsize>(g.adj().size() * sizeof(VId)));
  MICG_CHECK(out.good(), "binary graph write failed");
}

void write_binary(std::ostream& out, const any_csr& g) {
  g.visit([&out](const auto& c) { write_binary(out, c); });
}

template <CsrGraph G>
void save_binary(const std::string& path, const G& g) {
  std::ofstream out(path, std::ios::binary);
  MICG_CHECK(out.good(), "cannot open " + path + " for writing");
  write_binary(out, g);
}

void save_binary(const std::string& path, const any_csr& g) {
  g.visit([&path](const auto& c) { save_binary(path, c); });
}

namespace {

/// Read any supported version. When `weights_out` is non-null the caller
/// wants a weighted graph: the file must be version 3 and the weights
/// payload is read (and validated) into *weights_out. A null weights_out
/// accepts version 3 too and ignores its weights — old call sites can
/// load the topology of a weighted file.
any_csr read_binary_any_impl(std::istream& in,
                             std::vector<weight_t>* weights_out) {
  header h{};
  read_pod(in, h);
  MICG_FAILPOINT("io_binary.header", &in);
  MICG_CHECK(h.magic == kMagic, "not a micgraph binary file");
  MICG_CHECK(h.version >= 1 && h.version <= kVersionWeighted,
             "unsupported binary graph version");
  MICG_CHECK(weights_out == nullptr || h.version == kVersionWeighted,
             "binary graph file carries no weights (version < 3)");
  MICG_CHECK(h.num_vertices >= 0 && h.adj_size >= 0,
             "corrupt binary graph header");
  // Cap both counts so the payload-size arithmetic below cannot overflow
  // and an over-reported header cannot demand an exabyte allocation. 2^48
  // indices is far beyond anything the widest layout is used for.
  constexpr std::int64_t kMaxIndices = std::int64_t{1} << 48;
  MICG_CHECK(h.num_vertices < kMaxIndices && h.adj_size < kMaxIndices,
             "implausible binary graph header (over-reported sizes)");
  std::uint32_t vid_bytes = h.vid_bytes;
  std::uint32_t eid_bytes = h.eid_bytes;
  if (h.version == 1) {
    // Version 1 had a zero reserved word where the widths now live and
    // always stored the historical csr_graph layout.
    MICG_CHECK(vid_bytes == 0 && eid_bytes == 0,
               "corrupt version-1 binary graph header");
    vid_bytes = sizeof(vertex_t);
    eid_bytes = sizeof(edge_t);
  }
  // On a seekable stream the header must agree with the bytes actually
  // present — an over-report is rejected before any allocation happens.
  // Non-seekable streams fall back to checked_alloc + truncation checks.
  const std::int64_t have = remaining_bytes(in);
  if (have >= 0 && (vid_bytes == 4 || vid_bytes == 8) &&
      (eid_bytes == 4 || eid_bytes == 8)) {
    std::int64_t want =
        (h.num_vertices + 1) * static_cast<std::int64_t>(eid_bytes) +
        h.adj_size * static_cast<std::int64_t>(vid_bytes);
    if (h.version == kVersionWeighted) {
      want += h.adj_size * static_cast<std::int64_t>(sizeof(weight_t));
    }
    MICG_CHECK(want <= have,
               "binary graph header over-reports the payload size");
  }
  any_csr g;
  if (vid_bytes == 4 && eid_bytes == 4) {
    g = read_arrays<std::int32_t, std::int32_t>(in, h.num_vertices,
                                                h.adj_size);
  } else if (vid_bytes == 4 && eid_bytes == 8) {
    g = read_arrays<std::int32_t, std::int64_t>(in, h.num_vertices,
                                                h.adj_size);
  } else if (vid_bytes == 8 && eid_bytes == 8) {
    g = read_arrays<std::int64_t, std::int64_t>(in, h.num_vertices,
                                                h.adj_size);
  } else {
    MICG_CHECK(false, "binary graph uses an unsupported index layout");
  }
  if (weights_out != nullptr) {
    auto w = checked_alloc<weight_t>(static_cast<std::size_t>(h.adj_size),
                                     "weights array");
    MICG_FAILPOINT("io_binary.weights", &in);
    in.read(reinterpret_cast<char*>(w.data()),
            static_cast<std::streamsize>(w.size() * sizeof(weight_t)));
    MICG_CHECK(in.good(), "truncated weights array");
    validate_weights(g, std::span<const weight_t>(w));
    *weights_out = std::move(w);
  }
  return g;
}

}  // namespace

any_csr read_binary_any(std::istream& in) {
  // Streams configured with exceptions(), or streambufs that throw on I/O
  // errors, must surface through the same check_error contract as every
  // other malformed input (the default swallow-and-set-badbit path is
  // caught by the in.good() checks).
  try {
    return read_binary_any_impl(in, nullptr);
  } catch (const std::ios_base::failure& e) {
    throw check_error(std::string("I/O error while reading binary graph: ") +
                      e.what());
  }
}

any_csr load_binary_any(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_binary_any(in);
}

csr_graph read_binary(std::istream& in) {
  return to_layout(read_binary_any(in), csr_layout::v32e64)
      .get<csr_graph>();
}

csr_graph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_binary(in);
}

// ---------------------------------------------------------------------------
// Weighted (version 3)

template <CsrGraph G>
void write_binary_weighted(std::ostream& out, const G& g,
                           std::span<const weight_t> weights) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  MICG_CHECK(weights.size() ==
                 static_cast<std::size_t>(g.num_directed_edges()),
             "weights array is not adjacency-parallel");
  header h{kMagic,
           kVersionWeighted,
           static_cast<std::uint16_t>(sizeof(VId)),
           static_cast<std::uint16_t>(sizeof(EId)),
           static_cast<std::int64_t>(g.num_vertices()),
           static_cast<std::int64_t>(g.num_directed_edges())};
  write_pod(out, h);
  out.write(reinterpret_cast<const char*>(g.xadj().data()),
            static_cast<std::streamsize>(g.xadj().size() * sizeof(EId)));
  out.write(reinterpret_cast<const char*>(g.adj().data()),
            static_cast<std::streamsize>(g.adj().size() * sizeof(VId)));
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(weight_t)));
  MICG_CHECK(out.good(), "binary graph write failed");
}

void write_binary_weighted(std::ostream& out, const any_csr& g,
                           std::span<const weight_t> weights) {
  g.visit([&](const auto& c) { write_binary_weighted(out, c, weights); });
}

void save_binary_weighted(const std::string& path, const any_csr& g,
                          std::span<const weight_t> weights) {
  std::ofstream out(path, std::ios::binary);
  MICG_CHECK(out.good(), "cannot open " + path + " for writing");
  write_binary_weighted(out, g, weights);
}

weighted_graph read_binary_weighted_any(std::istream& in) {
  try {
    weighted_graph wg;
    wg.g = read_binary_any_impl(in, &wg.weights);
    return wg;
  } catch (const std::ios_base::failure& e) {
    throw check_error(std::string("I/O error while reading binary graph: ") +
                      e.what());
  }
}

weighted_graph load_binary_weighted_any(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_binary_weighted_any(in);
}

#define MICG_INSTANTIATE(G)                                             \
  template void write_binary<G>(std::ostream&, const G&);               \
  template void save_binary<G>(const std::string&, const G&);           \
  template void write_binary_weighted<G>(std::ostream&, const G&,       \
                                         std::span<const weight_t>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
