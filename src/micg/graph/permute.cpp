#include "micg/graph/permute.hpp"

#include <algorithm>
#include <numeric>

#include "micg/support/assert.hpp"
#include "micg/support/rng.hpp"

namespace micg::graph {

template <std::signed_integral VId>
std::vector<VId> identity_permutation(VId n) {
  std::vector<VId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), VId{0});
  return perm;
}

template <std::signed_integral VId>
std::vector<VId> random_permutation(VId n, std::uint64_t seed) {
  auto perm = identity_permutation(n);
  xoshiro256ss rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

template <std::signed_integral VId>
bool is_permutation(const std::vector<VId>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (VId p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

template <CsrGraph G>
G apply_permutation(const G& g,
                    const std::vector<typename G::vertex_type>& perm) {
  using VId = typename G::vertex_type;
  using EId = typename G::edge_type;
  const VId n = g.num_vertices();
  MICG_CHECK(static_cast<VId>(perm.size()) == n,
             "permutation size must equal vertex count");
  MICG_CHECK(is_permutation(perm), "not a valid permutation");

  // Inverse mapping: new id -> old id, then rebuild CSR directly (cheaper
  // than going through the edge-list builder: lists stay dedupe-free).
  std::vector<VId> inv(static_cast<std::size_t>(n));
  for (VId old = 0; old < n; ++old) {
    inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(old)])] = old;
  }

  std::vector<EId> xadj(static_cast<std::size_t>(n) + 1, 0);
  for (VId nv = 0; nv < n; ++nv) {
    xadj[static_cast<std::size_t>(nv) + 1] =
        xadj[static_cast<std::size_t>(nv)] +
        g.degree(inv[static_cast<std::size_t>(nv)]);
  }
  std::vector<VId> adj(static_cast<std::size_t>(xadj.back()));
  for (VId nv = 0; nv < n; ++nv) {
    auto nbrs = g.neighbors(inv[static_cast<std::size_t>(nv)]);
    auto out = adj.begin() +
               static_cast<std::ptrdiff_t>(xadj[static_cast<std::size_t>(nv)]);
    for (VId w : nbrs) {
      *out++ = perm[static_cast<std::size_t>(w)];
    }
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(
                                xadj[static_cast<std::size_t>(nv)]),
              out);
  }
  return G(std::move(xadj), std::move(adj));
}

// Permutation vectors depend only on the vertex id width (two widths across
// the three shipped layouts).
template std::vector<std::int32_t> identity_permutation(std::int32_t);
template std::vector<std::int64_t> identity_permutation(std::int64_t);
template std::vector<std::int32_t> random_permutation(std::int32_t,
                                                      std::uint64_t);
template std::vector<std::int64_t> random_permutation(std::int64_t,
                                                      std::uint64_t);
template bool is_permutation(const std::vector<std::int32_t>&);
template bool is_permutation(const std::vector<std::int64_t>&);

#define MICG_INSTANTIATE(G) \
  template G apply_permutation<G>( \
      const G&, const std::vector<typename G::vertex_type>&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
