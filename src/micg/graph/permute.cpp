#include "micg/graph/permute.hpp"

#include <algorithm>
#include <numeric>

#include "micg/support/assert.hpp"
#include "micg/support/rng.hpp"

namespace micg::graph {

std::vector<vertex_t> identity_permutation(vertex_t n) {
  std::vector<vertex_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), vertex_t{0});
  return perm;
}

std::vector<vertex_t> random_permutation(vertex_t n, std::uint64_t seed) {
  auto perm = identity_permutation(n);
  xoshiro256ss rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

bool is_permutation(const std::vector<vertex_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (vertex_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

csr_graph apply_permutation(const csr_graph& g,
                            const std::vector<vertex_t>& perm) {
  const vertex_t n = g.num_vertices();
  MICG_CHECK(static_cast<vertex_t>(perm.size()) == n,
             "permutation size must equal vertex count");
  MICG_CHECK(is_permutation(perm), "not a valid permutation");

  // Inverse mapping: new id -> old id, then rebuild CSR directly (cheaper
  // than going through the edge-list builder: lists stay dedupe-free).
  std::vector<vertex_t> inv(static_cast<std::size_t>(n));
  for (vertex_t old = 0; old < n; ++old) {
    inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(old)])] = old;
  }

  std::vector<edge_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  for (vertex_t nv = 0; nv < n; ++nv) {
    xadj[static_cast<std::size_t>(nv) + 1] =
        xadj[static_cast<std::size_t>(nv)] +
        g.degree(inv[static_cast<std::size_t>(nv)]);
  }
  std::vector<vertex_t> adj(static_cast<std::size_t>(xadj.back()));
  for (vertex_t nv = 0; nv < n; ++nv) {
    auto nbrs = g.neighbors(inv[static_cast<std::size_t>(nv)]);
    auto out = adj.begin() +
               static_cast<std::ptrdiff_t>(xadj[static_cast<std::size_t>(nv)]);
    for (vertex_t w : nbrs) {
      *out++ = perm[static_cast<std::size_t>(w)];
    }
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(
                                xadj[static_cast<std::size_t>(nv)]),
              out);
  }
  return csr_graph(std::move(xadj), std::move(adj));
}

}  // namespace micg::graph
