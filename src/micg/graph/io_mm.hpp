// MatrixMarket coordinate I/O.
//
// The paper's graphs come from the UF Sparse Matrix Collection, distributed
// as MatrixMarket files. This reader accepts the subset those files use —
// `matrix coordinate (pattern|real|integer) (general|symmetric)` — turning
// the nonzero pattern of the (symmetrized) matrix into an undirected graph
// (diagonal entries = self loops are dropped). If real UF files are
// available they drop straight into the suite via load_matrix_market().
//
// The *_any readers pick the narrowest shipped layout that fits the input
// (and are the only MatrixMarket path for matrices with 2^31+ rows); the
// plain readers keep returning the default csr_graph layout.
#pragma once

#include <iosfwd>
#include <string>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Parse a MatrixMarket stream at the default layout. Throws
/// micg::check_error on malformed input or when the matrix does not fit
/// 32-bit vertex ids (use the _any reader for those). Rectangular matrices
/// are rejected (graphs must be square).
csr_graph read_matrix_market(std::istream& in);

/// Convenience file wrapper; throws micg::check_error if unreadable.
csr_graph load_matrix_market(const std::string& path);

/// Parse at the narrowest layout that fits the (deduplicated) graph.
any_csr read_matrix_market_any(std::istream& in);
any_csr load_matrix_market_any(const std::string& path);

/// Write as `matrix coordinate pattern symmetric` (lower triangle).
/// Defined for every shipped layout (instantiations in io_mm.cpp).
template <CsrGraph G>
void write_matrix_market(std::ostream& out, const G& g);
void write_matrix_market(std::ostream& out, const any_csr& g);

/// Convenience file wrappers.
template <CsrGraph G>
void save_matrix_market(const std::string& path, const G& g);
void save_matrix_market(const std::string& path, const any_csr& g);

}  // namespace micg::graph
