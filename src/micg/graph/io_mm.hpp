// MatrixMarket coordinate I/O.
//
// The paper's graphs come from the UF Sparse Matrix Collection, distributed
// as MatrixMarket files. This reader accepts the subset those files use —
// `matrix coordinate (pattern|real|integer) (general|symmetric)` — turning
// the nonzero pattern of the (symmetrized) matrix into an undirected graph
// (diagonal entries = self loops are dropped). If real UF files are
// available they drop straight into the suite via load_matrix_market().
#pragma once

#include <iosfwd>
#include <string>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Parse a MatrixMarket stream. Throws micg::check_error on malformed
/// input. Rectangular matrices are rejected (graphs must be square).
csr_graph read_matrix_market(std::istream& in);

/// Convenience file wrapper; throws micg::check_error if unreadable.
csr_graph load_matrix_market(const std::string& path);

/// Write as `matrix coordinate pattern symmetric` (lower triangle).
void write_matrix_market(std::ostream& out, const csr_graph& g);

/// Convenience file wrapper.
void save_matrix_market(const std::string& path, const csr_graph& g);

}  // namespace micg::graph
