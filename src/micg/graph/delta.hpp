// Incremental mutation of immutable CSR snapshots: the delta buffer half
// of the serving layer's epoch/snapshot scheme (docs/serving.md).
//
// A basic_csr is deliberately immutable — every kernel's memory layout
// argument depends on it — so mutation is modeled as a log of undirected
// edge operations applied *beside* a base snapshot:
//
//   snapshot(epoch N) + edge_delta  --compact-->  snapshot(epoch N+1)
//
// edge_delta keeps the *net* operation per edge (last-op-wins on the
// normalized {min,max} pair), so a delete that cancels an earlier insert
// costs nothing at compaction. apply_delta() materializes the new graph
// through the canonical builder and repacks into the narrowest shipped
// layout via the existing to_narrowest (convert_csr / select_layout)
// machinery — compaction is also when a graph that grew past a width
// boundary migrates layouts, hard-erroring rather than truncating.
//
// Concurrency: edge_delta is a plain value type with no internal locking;
// serve::versioned_graph owns the locking discipline (writers serialized,
// readers pinned to immutable snapshots).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "micg/graph/any_csr.hpp"

namespace micg::graph {

/// An ordered set of net edge mutations against some base graph.
class edge_delta {
 public:
  using edge = std::pair<std::int64_t, std::int64_t>;

  /// Record "edge {u,v} present after compaction". Ids must be >= 0 and
  /// u != v (self loops are never representable); throws micg::check_error
  /// otherwise. Inserting an edge the base already has is a no-op at
  /// compaction (the builder deduplicates).
  void insert(std::int64_t u, std::int64_t v);

  /// Record "edge {u,v} absent after compaction". Deleting an edge the
  /// base never had is a no-op at compaction.
  void erase(std::int64_t u, std::int64_t v);

  /// Number of net operations currently buffered.
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }
  void clear();

  /// Net operations in deterministic (sorted-pair) order; second = true
  /// for insert, false for delete.
  [[nodiscard]] std::vector<std::pair<edge, bool>> net_ops() const;

  /// 1 + the largest vertex id any buffered op touches (0 when empty):
  /// the vertex count the compacted graph must be able to index.
  [[nodiscard]] std::int64_t min_vertices() const { return max_id_ + 1; }

  /// The delta's verdict on edge {u,v}: nullptr when untouched, otherwise
  /// a pointer to the present-after-compaction decision.
  [[nodiscard]] const bool* decision(std::int64_t u, std::int64_t v) const;

 private:
  static edge normalized(std::int64_t u, std::int64_t v);

  std::map<edge, bool> ops_;  ///< normalized pair -> present-after
  std::int64_t max_id_ = -1;
};

/// Compaction: build the graph `base` would become with `delta` applied,
/// in the narrowest layout that fits the result. The base is untouched
/// (callers keep serving it until they swap). Vertices only grow — an
/// insert touching id >= |V| extends the vertex set; deletes never shrink
/// it, so pinned vertex ids stay valid across epochs.
any_csr apply_delta(const any_csr& base, const edge_delta& delta);

}  // namespace micg::graph
