#include "micg/graph/csr.hpp"

#include <algorithm>

#include "micg/support/assert.hpp"

namespace micg::graph {

csr_graph::csr_graph(std::vector<edge_t> xadj, std::vector<vertex_t> adj)
    : xadj_(std::move(xadj)), adj_(std::move(adj)) {
  MICG_CHECK(!xadj_.empty() && xadj_.front() == 0,
             "xadj must start with 0");
  MICG_CHECK(xadj_.back() == static_cast<edge_t>(adj_.size()),
             "xadj must end at the adjacency size");
  const vertex_t n = num_vertices();
  for (vertex_t v = 0; v < n; ++v) {
    max_degree_ = std::max(max_degree_, degree(v));
  }
  // Full invariant validation is O(|E| log Delta); callers that construct
  // from untrusted data (e.g. MatrixMarket files) call validate() itself.
}

void csr_graph::validate() const {
  const vertex_t n = num_vertices();
  MICG_CHECK(!xadj_.empty() && xadj_.front() == 0, "bad xadj prefix");
  MICG_CHECK(xadj_.back() == static_cast<edge_t>(adj_.size()),
             "bad xadj suffix");
  for (vertex_t v = 0; v < n; ++v) {
    MICG_CHECK(xadj_[static_cast<std::size_t>(v)] <=
                   xadj_[static_cast<std::size_t>(v) + 1],
               "xadj must be non-decreasing");
    auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_t w = nbrs[i];
      MICG_CHECK(w >= 0 && w < n, "neighbor id out of range");
      MICG_CHECK(w != v, "self loop present");
      if (i > 0) {
        MICG_CHECK(nbrs[i - 1] < w, "adjacency not sorted/deduplicated");
      }
      // Symmetry: v must appear in w's (sorted) list.
      auto back = neighbors(w);
      MICG_CHECK(std::binary_search(back.begin(), back.end(), v),
                 "adjacency not symmetric");
    }
  }
}

}  // namespace micg::graph
