#include "micg/graph/csr.hpp"

// basic_csr is header-only (tests instantiate deliberately tiny layouts
// like basic_csr<int16_t, int16_t> to exercise overflow paths cheaply);
// the shipped layouts are instantiated once here so downstream translation
// units that only use the aliases do not each re-instantiate the class.
namespace micg::graph {

template class basic_csr<std::int32_t, std::int32_t>;
template class basic_csr<std::int32_t, std::int64_t>;
template class basic_csr<std::int64_t, std::int64_t>;

}  // namespace micg::graph
