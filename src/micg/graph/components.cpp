#include "micg/graph/components.hpp"

#include <atomic>
#include <numeric>

#include "micg/support/assert.hpp"

namespace micg::graph {

template <CsrGraph G>
basic_components_result<typename G::vertex_type> parallel_components(
    const G& g, const rt::exec& ex) {
  using VId = typename G::vertex_type;
  MICG_CHECK(ex.threads >= 1, "need at least one thread");
  const VId n = g.num_vertices();
  basic_components_result<VId> r;

  // Atomic labels: hooking races are benign (min-combining converges
  // regardless of interleaving) but must be data-race-free.
  std::vector<std::atomic<VId>> label(static_cast<std::size_t>(n));
  for (VId v = 0; v < n; ++v) {
    label[static_cast<std::size_t>(v)].store(v, std::memory_order_relaxed);
  }

  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    ++r.rounds;
    MICG_CHECK(r.rounds <= n + 2, "component labeling failed to converge");
    changed.store(false, std::memory_order_relaxed);

    // Hook: adopt the smallest label in the closed neighborhood.
    rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
      bool local_changed = false;
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<VId>(i);
        VId best =
            label[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed);
        for (VId w : g.neighbors(v)) {
          best = std::min(best,
                          label[static_cast<std::size_t>(w)].load(
                              std::memory_order_relaxed));
        }
        // min-update; lost races just mean another thread wrote smaller.
        VId cur = label[static_cast<std::size_t>(v)].load(
            std::memory_order_relaxed);
        while (best < cur &&
               !label[static_cast<std::size_t>(v)]
                    .compare_exchange_weak(cur, best,
                                           std::memory_order_relaxed)) {
        }
        if (best < cur) local_changed = true;
        if (label[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed) != cur) {
          local_changed = true;
        }
      }
      if (local_changed) changed.store(true, std::memory_order_relaxed);
    });

    // Compress: pointer-jump labels toward roots (label[label[v]]).
    rt::for_range(ex, n, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) {
        const auto v = static_cast<VId>(i);
        VId l = label[static_cast<std::size_t>(v)].load(
            std::memory_order_relaxed);
        VId ll = label[static_cast<std::size_t>(l)].load(
            std::memory_order_relaxed);
        while (ll < l) {
          label[static_cast<std::size_t>(v)].store(
              ll, std::memory_order_relaxed);
          l = ll;
          ll = label[static_cast<std::size_t>(l)].load(
              std::memory_order_relaxed);
        }
      }
    });
  }

  r.label.resize(static_cast<std::size_t>(n));
  for (VId v = 0; v < n; ++v) {
    r.label[static_cast<std::size_t>(v)] =
        label[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (r.label[static_cast<std::size_t>(v)] == v) ++r.num_components;
  }
  return r;
}

#define MICG_INSTANTIATE(G)                                               \
  template basic_components_result<typename G::vertex_type>               \
  parallel_components<G>(const G&, const rt::exec&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
