// Edge-list to CSR conversion: symmetrize, sort, deduplicate, drop self
// loops. All generators and the MatrixMarket reader funnel through here so
// every csr_graph in the library satisfies the same invariants.
#pragma once

#include <utility>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Accumulates undirected edges, then builds a canonical CSR graph.
class graph_builder {
 public:
  explicit graph_builder(vertex_t num_vertices);

  /// Record the undirected edge {u, v}. Self loops and duplicates are
  /// accepted here and removed at build(). Ids must be in range.
  void add_edge(vertex_t u, vertex_t v);

  /// Pre-size the internal edge buffer.
  void reserve(std::size_t num_edges);

  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Build the graph. The builder is consumed (edge buffer released).
  csr_graph build() &&;

 private:
  vertex_t n_;
  std::vector<std::pair<vertex_t, vertex_t>> edges_;
};

/// One-shot helper.
csr_graph csr_from_edges(vertex_t num_vertices,
                         const std::vector<std::pair<vertex_t, vertex_t>>& edges);

}  // namespace micg::graph
