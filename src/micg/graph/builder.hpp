// Edge-list to CSR conversion: symmetrize, sort, deduplicate, drop self
// loops. All generators and the MatrixMarket reader funnel through here so
// every graph in the library satisfies the same invariants.
//
// basic_builder is templated on the target layout and *hard-errors* (throws
// micg::check_error) when the accumulated edges cannot be represented at
// that layout's index widths — overflow is never a silent truncation.
// build_auto() instead picks the narrowest shipped layout that fits the
// final (deduplicated) graph and returns an any_csr.
#pragma once

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

/// Accumulates undirected edges, then builds a canonical CSR graph.
template <std::signed_integral VId, std::signed_integral EId>
class basic_builder {
 public:
  using graph_type = basic_csr<VId, EId>;

  explicit basic_builder(VId num_vertices) : n_(num_vertices) {
    MICG_CHECK(num_vertices >= 0, "negative vertex count");
  }

  /// Record the undirected edge {u, v}. Self loops and duplicates are
  /// accepted here and removed at build(). Ids must be in range.
  void add_edge(VId u, VId v) {
    MICG_ASSERT(u >= 0 && u < n_ && v >= 0 && v < n_);
    edges_.emplace_back(u, v);
  }

  /// Pre-size the internal edge buffer.
  void reserve(std::size_t num_edges) { edges_.reserve(num_edges); }

  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Build the graph at this builder's layout. The builder is consumed
  /// (edge buffer released). Throws micg::check_error if the symmetrized
  /// adjacency cannot fit EId — the pre-dedup directed count (2 * pending)
  /// is the checked bound, so a build that would overflow the counting
  /// pass is refused up front rather than wrapped silently.
  graph_type build() && {
    MICG_CHECK(
        2 * edges_.size() <=
            static_cast<std::size_t>(std::numeric_limits<EId>::max()),
        "edge count overflows this layout's edge index width; "
        "use a wider layout (or build_auto)");
    const auto n = static_cast<std::size_t>(n_);

    // Pass 1: count both directions, skipping self loops.
    std::vector<EId> xadj(n + 1, 0);
    for (const auto& [u, v] : edges_) {
      MICG_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_,
                 "edge id out of range");
      if (u == v) continue;
      ++xadj[static_cast<std::size_t>(u) + 1];
      ++xadj[static_cast<std::size_t>(v) + 1];
    }
    for (std::size_t i = 0; i < n; ++i) xadj[i + 1] += xadj[i];

    // Pass 2: scatter.
    std::vector<VId> adj(static_cast<std::size_t>(xadj[n]));
    std::vector<EId> cursor(xadj.begin(), xadj.end() - 1);
    for (const auto& [u, v] : edges_) {
      if (u == v) continue;
      adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
          v;
      adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
          u;
    }
    edges_.clear();
    edges_.shrink_to_fit();

    // Pass 3: sort each list and drop duplicates, compacting in place.
    std::vector<EId> new_xadj(n + 1, 0);
    std::size_t write = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto b = static_cast<std::size_t>(xadj[v]);
      const auto e = static_cast<std::size_t>(xadj[v + 1]);
      std::sort(adj.begin() + static_cast<std::ptrdiff_t>(b),
                adj.begin() + static_cast<std::ptrdiff_t>(e));
      std::size_t kept_begin = write;
      for (std::size_t i = b; i < e; ++i) {
        if (i > b && adj[i] == adj[i - 1]) continue;
        adj[write++] = adj[i];
      }
      new_xadj[v + 1] =
          new_xadj[v] + static_cast<EId>(write - kept_begin);
    }
    adj.resize(write);
    adj.shrink_to_fit();

    return graph_type(std::move(new_xadj), std::move(adj));
  }

 private:
  VId n_;
  std::vector<std::pair<VId, VId>> edges_;
};

/// Default-layout builder (the historical graph_builder).
using graph_builder = basic_builder<vertex_t, edge_t>;

/// 64-bit builder for graphs whose vertex count exceeds 2^31.
using graph_builder64 = basic_builder<std::int64_t, std::int64_t>;

/// Build at the narrowest shipped layout that represents the final
/// (deduplicated) graph: the edges are materialized at the builder's own
/// widths first, then repacked downward when they fit. The builder is
/// consumed.
template <std::signed_integral VId, std::signed_integral EId>
any_csr build_auto(basic_builder<VId, EId>&& b) {
  return to_narrowest(any_csr(std::move(b).build()));
}

/// One-shot helper.
csr_graph csr_from_edges(
    vertex_t num_vertices,
    const std::vector<std::pair<vertex_t, vertex_t>>& edges);

}  // namespace micg::graph
