#include "micg/graph/io_mm.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "micg/graph/builder.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

namespace {
std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

csr_graph read_matrix_market(std::istream& in) {
  std::string line;
  MICG_CHECK(static_cast<bool>(std::getline(in, line)),
             "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  MICG_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  MICG_CHECK(to_lower(object) == "matrix", "only matrix objects supported");
  MICG_CHECK(to_lower(format) == "coordinate",
             "only coordinate format supported");
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  MICG_CHECK(field == "pattern" || field == "real" || field == "integer",
             "unsupported field type: " + field);
  MICG_CHECK(symmetry == "general" || symmetry == "symmetric",
             "unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    MICG_CHECK(static_cast<bool>(std::getline(in, line)),
               "truncated MatrixMarket stream");
  } while (!line.empty() && line[0] == '%');

  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  dims >> rows >> cols >> nnz;
  MICG_CHECK(rows > 0 && cols > 0 && nnz >= 0, "bad size line");
  MICG_CHECK(rows == cols, "graph requires a square matrix");
  MICG_CHECK(rows < (1LL << 31), "matrix too large for 32-bit vertex ids");

  graph_builder b(static_cast<vertex_t>(rows));
  b.reserve(static_cast<std::size_t>(nnz));
  const bool has_value = field != "pattern";
  for (long long i = 0; i < nnz; ++i) {
    MICG_CHECK(static_cast<bool>(std::getline(in, line)),
               "truncated entry list");
    std::istringstream entry(line);
    long long r = 0, c = 0;
    entry >> r >> c;
    MICG_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
               "entry index out of range");
    if (has_value) {
      double v;
      entry >> v;  // value ignored; pattern defines the graph
    }
    // 1-based -> 0-based; the builder symmetrizes and drops self loops.
    b.add_edge(static_cast<vertex_t>(r - 1), static_cast<vertex_t>(c - 1));
  }
  csr_graph g = std::move(b).build();
  g.validate();
  return g;
}

csr_graph load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const csr_graph& g) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << "% written by micgraph\n";
  const vertex_t n = g.num_vertices();
  out << n << ' ' << n << ' ' << g.num_edges() << '\n';
  for (vertex_t v = 0; v < n; ++v) {
    for (vertex_t w : g.neighbors(v)) {
      if (w < v) {
        // Lower triangle, 1-based.
        out << (v + 1) << ' ' << (w + 1) << '\n';
      }
    }
  }
}

void save_matrix_market(const std::string& path, const csr_graph& g) {
  std::ofstream out(path);
  MICG_CHECK(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, g);
  MICG_CHECK(out.good(), "write failed for " + path);
}

}  // namespace micg::graph
