#include "micg/graph/io_mm.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "micg/graph/builder.hpp"
#include "micg/qa/failpoint.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

struct mm_size {
  long long rows = 0;
  long long nnz = 0;
  bool has_value = false;
};

/// Consumes the banner, comments and size line; leaves the stream at the
/// first entry.
mm_size read_mm_header(std::istream& in) {
  std::string line;
  MICG_CHECK(static_cast<bool>(std::getline(in, line)),
             "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  MICG_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  MICG_CHECK(to_lower(object) == "matrix", "only matrix objects supported");
  MICG_CHECK(to_lower(format) == "coordinate",
             "only coordinate format supported");
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  MICG_CHECK(field == "pattern" || field == "real" || field == "integer",
             "unsupported field type: " + field);
  MICG_CHECK(symmetry == "general" || symmetry == "symmetric",
             "unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    MICG_CHECK(static_cast<bool>(std::getline(in, line)),
               "truncated MatrixMarket stream");
  } while (!line.empty() && line[0] == '%');

  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  // Extraction must be checked: "100 100" would otherwise leave nnz == 0
  // and yield a silently empty graph.
  MICG_CHECK(static_cast<bool>(dims >> rows >> cols >> nnz),
             "malformed size line (need <rows> <cols> <nnz>)");
  std::string trailing;
  MICG_CHECK(!(dims >> trailing),
             "trailing garbage on size line: " + trailing);
  MICG_CHECK(rows > 0 && cols > 0 && nnz >= 0, "bad size line");
  MICG_CHECK(rows == cols, "graph requires a square matrix");
  MICG_FAILPOINT("io_mm.size_line", &in);
  return {rows, nnz, field != "pattern"};
}

/// Reads the entry list into a builder of the given layout and builds.
template <std::signed_integral VId, std::signed_integral EId>
basic_csr<VId, EId> read_mm_entries(std::istream& in, const mm_size& sz) {
  basic_builder<VId, EId> b(static_cast<VId>(sz.rows));
  // An over-reported nnz must not become a multi-terabyte reservation
  // before the (checked) entry loop discovers the lie; cap the hint and
  // let the buffer grow normally for genuinely large inputs.
  constexpr long long kReserveCap = 1 << 22;
  b.reserve(static_cast<std::size_t>(std::min(sz.nnz, kReserveCap)));
  std::string line;
  for (long long i = 0; i < sz.nnz; ++i) {
    MICG_CHECK(static_cast<bool>(std::getline(in, line)),
               "truncated entry list");
    MICG_FAILPOINT("io_mm.entry", &in);
    std::istringstream entry(line);
    long long r = 0, c = 0;
    MICG_CHECK(static_cast<bool>(entry >> r >> c),
               "malformed entry line: " + line);
    MICG_CHECK(r >= 1 && r <= sz.rows && c >= 1 && c <= sz.rows,
               "entry index out of range");
    if (sz.has_value) {
      double v;
      // Value ignored (the pattern defines the graph) but its absence is
      // a malformed file, not a pattern entry.
      MICG_CHECK(static_cast<bool>(entry >> v),
                 "entry missing its value: " + line);
    }
    // 1-based -> 0-based; the builder symmetrizes and drops self loops.
    b.add_edge(static_cast<VId>(r - 1), static_cast<VId>(c - 1));
  }
  auto g = std::move(b).build();
  g.validate();
  return g;
}

/// Runs a parse step, converting stream exceptions (streams configured
/// with exceptions(), or throwing streambufs) into the check_error
/// contract every other malformed-input path follows.
template <typename Fn>
auto checked_io(Fn&& fn) {
  try {
    return fn();
  } catch (const std::ios_base::failure& e) {
    throw check_error(
        std::string("I/O error while reading MatrixMarket stream: ") +
        e.what());
  }
}

}  // namespace

csr_graph read_matrix_market(std::istream& in) {
  return checked_io([&] {
    const mm_size sz = read_mm_header(in);
    MICG_CHECK(sz.rows < (1LL << 31),
               "matrix too large for 32-bit vertex ids");
    return read_mm_entries<vertex_t, edge_t>(in, sz);
  });
}

csr_graph load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

any_csr read_matrix_market_any(std::istream& in) {
  return checked_io([&] {
    const mm_size sz = read_mm_header(in);
    // Parse at a width that certainly fits, then repack to the narrowest
    // layout the deduplicated graph allows.
    if (sz.rows < (1LL << 31)) {
      return to_narrowest(
          any_csr(read_mm_entries<vertex_t, edge_t>(in, sz)));
    }
    return to_narrowest(
        any_csr(read_mm_entries<std::int64_t, std::int64_t>(in, sz)));
  });
}

any_csr load_matrix_market_any(const std::string& path) {
  std::ifstream in(path);
  MICG_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market_any(in);
}

template <CsrGraph G>
void write_matrix_market(std::ostream& out, const G& g) {
  using VId = typename G::vertex_type;
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << "% written by micgraph\n";
  const VId n = g.num_vertices();
  out << n << ' ' << n << ' ' << g.num_edges() << '\n';
  for (VId v = 0; v < n; ++v) {
    for (VId w : g.neighbors(v)) {
      if (w < v) {
        // Lower triangle, 1-based.
        out << (v + 1) << ' ' << (w + 1) << '\n';
      }
    }
  }
}

void write_matrix_market(std::ostream& out, const any_csr& g) {
  g.visit([&out](const auto& c) { write_matrix_market(out, c); });
}

template <CsrGraph G>
void save_matrix_market(const std::string& path, const G& g) {
  std::ofstream out(path);
  MICG_CHECK(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, g);
  MICG_CHECK(out.good(), "write failed for " + path);
}

void save_matrix_market(const std::string& path, const any_csr& g) {
  g.visit([&path](const auto& c) { save_matrix_market(path, c); });
}

#define MICG_INSTANTIATE(G)                                     \
  template void write_matrix_market<G>(std::ostream&, const G&); \
  template void save_matrix_market<G>(const std::string&, const G&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
