// Runtime layout dispatch: a graph whose index widths were chosen from the
// input's size rather than at compile time.
//
// IO readers, the builder's build_auto(), the CLI, benches and examples
// hold an any_csr and visit() it; the visitor is instantiated once per
// shipped layout (csr32 / csr_graph / csr64), so every kernel call inside
// the visitor statically binds to the right basic_csr instantiation.
//
// Dispatch rule (select_layout): the narrowest layout whose index widths
// represent |V| and 2|E| — 32-bit edge offsets when 2|E| < 2^31 (halving
// xadj traffic, the dominant array for high-degree graphs), 64-bit vertex
// ids only when |V| itself needs them. Overflowing a chosen layout is a
// hard micg::check_error, never a truncation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// The shipped layouts, narrowest first.
enum class csr_layout {
  v32e32,  ///< csr32: 32-bit vertex ids, 32-bit edge offsets
  v32e64,  ///< csr_graph: 32-bit vertex ids, 64-bit edge offsets
  v64e64,  ///< csr64: 64-bit everything
};

/// Display name ("csr32", "csr32e64", "csr64").
const char* layout_name(csr_layout l);

/// Inverse of layout_name; throws micg::check_error on unknown names.
csr_layout layout_from_name(const std::string& name);

/// Narrowest layout that represents `num_vertices` vertices and
/// `num_directed_edges` adjacency entries (pass 2|E|, the xadj back value).
csr_layout select_layout(std::int64_t num_vertices,
                         std::int64_t num_directed_edges);

/// A graph in one of the shipped layouts, chosen at runtime.
class any_csr {
 public:
  any_csr() = default;
  any_csr(csr32 g) : g_(std::move(g)) {}
  any_csr(csr_graph g) : g_(std::move(g)) {}
  any_csr(csr64 g) : g_(std::move(g)) {}

  [[nodiscard]] csr_layout layout() const {
    switch (g_.index()) {
      case 0: return csr_layout::v32e32;
      case 1: return csr_layout::v32e64;
      default: return csr_layout::v64e64;
    }
  }

  /// Apply `f` to the concrete basic_csr. `f` must accept every shipped
  /// layout (generic lambdas do).
  template <class F>
  decltype(auto) visit(F&& f) const {
    return std::visit(std::forward<F>(f), g_);
  }

  /// Width-independent queries (widened to 64-bit).
  [[nodiscard]] std::int64_t num_vertices() const;
  [[nodiscard]] std::int64_t num_edges() const;
  [[nodiscard]] std::int64_t num_directed_edges() const;
  [[nodiscard]] std::int64_t max_degree() const;
  [[nodiscard]] std::size_t index_bytes() const;

  /// Concrete access; throws micg::check_error when the held layout
  /// differs (use visit() for layout-generic code).
  template <CsrGraph G>
  [[nodiscard]] const G& get() const {
    const G* g = std::get_if<G>(&g_);
    MICG_CHECK(g != nullptr, "any_csr holds a different layout");
    return *g;
  }

  /// Re-checks representation invariants of the held graph.
  void validate() const;

 private:
  std::variant<csr32, csr_graph, csr64> g_;
};

/// Repack into the narrowest layout that fits (no-op moves when `g`
/// already is the narrowest).
any_csr to_narrowest(any_csr g);
any_csr to_narrowest(csr_graph g);

/// Convert to an explicit layout; hard-errors if the graph does not fit.
any_csr to_layout(const any_csr& g, csr_layout target);

}  // namespace micg::graph
