// Binary CSR serialization: loading the paper's larger graphs from
// MatrixMarket takes seconds of parsing; this compact format reloads in
// one read per array. Little-endian, versioned header.
//
// Version 2 records the index widths of the written layout, so a csr32
// graph costs half the disk (and reload) traffic of the old fixed-width
// format. Version-1 files (implicit 4-byte vertex ids / 8-byte edge
// offsets — the historical csr_graph layout) remain readable.
#pragma once

#include <iosfwd>
#include <string>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Write `g` in micgraph binary CSR format (version 2, at the graph's own
/// index widths). Defined for every shipped layout.
template <CsrGraph G>
void write_binary(std::ostream& out, const G& g);
void write_binary(std::ostream& out, const any_csr& g);

template <CsrGraph G>
void save_binary(const std::string& path, const G& g);
void save_binary(const std::string& path, const any_csr& g);

/// Read a graph written by write_binary (either version), preserving the
/// layout it was written at. Throws micg::check_error on a bad
/// magic/version/width/size mismatch.
any_csr read_binary_any(std::istream& in);
any_csr load_binary_any(const std::string& path);

/// Compatibility readers: as read_binary_any, then converted to the default
/// csr_graph layout (hard-erroring if the stored graph does not fit it).
csr_graph read_binary(std::istream& in);
csr_graph load_binary(const std::string& path);

}  // namespace micg::graph
