// Binary CSR serialization: loading the paper's larger graphs from
// MatrixMarket takes seconds of parsing; this compact format reloads in
// one read per array. Little-endian, versioned header.
//
// Version 2 records the index widths of the written layout, so a csr32
// graph costs half the disk (and reload) traffic of the old fixed-width
// format. Version-1 files (implicit 4-byte vertex ids / 8-byte edge
// offsets — the historical csr_graph layout) remain readable.
//
// Version 3 appends an adjacency-parallel weights array (int32 per slot,
// see graph/weighted.hpp) after the adjacency payload; the header layout
// is unchanged. The unweighted readers accept version-3 files and ignore
// the weights; the weighted reader rejects version-1/2 files (they carry
// no weights to read).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/weighted.hpp"

namespace micg::graph {

/// Write `g` in micgraph binary CSR format (version 2, at the graph's own
/// index widths). Defined for every shipped layout.
template <CsrGraph G>
void write_binary(std::ostream& out, const G& g);
void write_binary(std::ostream& out, const any_csr& g);

template <CsrGraph G>
void save_binary(const std::string& path, const G& g);
void save_binary(const std::string& path, const any_csr& g);

/// Read a graph written by write_binary (either version), preserving the
/// layout it was written at. Throws micg::check_error on a bad
/// magic/version/width/size mismatch.
any_csr read_binary_any(std::istream& in);
any_csr load_binary_any(const std::string& path);

/// Compatibility readers: as read_binary_any, then converted to the default
/// csr_graph layout (hard-erroring if the stored graph does not fit it).
csr_graph read_binary(std::istream& in);
csr_graph load_binary(const std::string& path);

// ---------------------------------------------------------------------------
// Weighted (version 3)

/// A graph plus its adjacency-parallel weights, as read from a version-3
/// file.
struct weighted_graph {
  any_csr g;
  std::vector<weight_t> weights;  ///< size == g.num_directed_edges()
};

/// Write `g` with `weights` as a version-3 file. `weights` must be
/// adjacency-parallel (checked). Defined for every shipped layout.
template <CsrGraph G>
void write_binary_weighted(std::ostream& out, const G& g,
                           std::span<const weight_t> weights);
void write_binary_weighted(std::ostream& out, const any_csr& g,
                           std::span<const weight_t> weights);
void save_binary_weighted(const std::string& path, const any_csr& g,
                          std::span<const weight_t> weights);

/// Read a version-3 file, preserving the stored layout. Throws
/// micg::check_error on corrupt input or on a version-1/2 file (which
/// carries no weights).
weighted_graph read_binary_weighted_any(std::istream& in);
weighted_graph load_binary_weighted_any(const std::string& path);

}  // namespace micg::graph
