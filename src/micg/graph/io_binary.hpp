// Binary CSR serialization: loading the paper's larger graphs from
// MatrixMarket takes seconds of parsing; this compact format reloads in
// one read per array. Little-endian, versioned, checksummed header.
#pragma once

#include <iosfwd>
#include <string>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Write `g` in micgraph binary CSR format.
void write_binary(std::ostream& out, const csr_graph& g);
void save_binary(const std::string& path, const csr_graph& g);

/// Read a graph written by write_binary. Throws micg::check_error on a
/// bad magic/version/size mismatch.
csr_graph read_binary(std::istream& in);
csr_graph load_binary(const std::string& path);

}  // namespace micg::graph
