#include "micg/graph/any_csr.hpp"

#include <limits>

#include "micg/support/assert.hpp"

namespace micg::graph {

const char* layout_name(csr_layout l) {
  switch (l) {
    case csr_layout::v32e32: return "csr32";
    case csr_layout::v32e64: return "csr32e64";
    case csr_layout::v64e64: return "csr64";
  }
  return "unknown";
}

csr_layout layout_from_name(const std::string& name) {
  for (csr_layout l : {csr_layout::v32e32, csr_layout::v32e64,
                       csr_layout::v64e64}) {
    if (name == layout_name(l)) return l;
  }
  MICG_CHECK(false, "unknown csr layout name: " + name);
  return csr_layout::v32e64;  // unreachable
}

csr_layout select_layout(std::int64_t num_vertices,
                         std::int64_t num_directed_edges) {
  MICG_CHECK(num_vertices >= 0 && num_directed_edges >= 0,
             "negative graph dimensions");
  constexpr auto max32 =
      static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max());
  // xadj has n+1 entries, so the vertex *count* itself must stay below the
  // id limit (ids are 0..n-1; n-1 <= max is implied by n <= max).
  if (num_vertices > max32) return csr_layout::v64e64;
  if (num_directed_edges > max32) return csr_layout::v32e64;
  return csr_layout::v32e32;
}

std::int64_t any_csr::num_vertices() const {
  return visit([](const auto& g) {
    return static_cast<std::int64_t>(g.num_vertices());
  });
}

std::int64_t any_csr::num_edges() const {
  return visit(
      [](const auto& g) { return static_cast<std::int64_t>(g.num_edges()); });
}

std::int64_t any_csr::num_directed_edges() const {
  return visit([](const auto& g) {
    return static_cast<std::int64_t>(g.num_directed_edges());
  });
}

std::int64_t any_csr::max_degree() const {
  return visit(
      [](const auto& g) { return static_cast<std::int64_t>(g.max_degree()); });
}

std::size_t any_csr::index_bytes() const {
  return visit([](const auto& g) { return g.index_bytes(); });
}

void any_csr::validate() const {
  visit([](const auto& g) { g.validate(); });
}

namespace {

template <CsrGraph From>
any_csr convert_to(const From& g, csr_layout target) {
  switch (target) {
    case csr_layout::v32e32: return convert_csr<csr32>(g);
    case csr_layout::v32e64: return convert_csr<csr_graph>(g);
    case csr_layout::v64e64: return convert_csr<csr64>(g);
  }
  MICG_CHECK(false, "unknown target layout");
  return {};  // unreachable
}

}  // namespace

any_csr to_narrowest(any_csr g) {
  const csr_layout best = select_layout(g.num_vertices(),
                                        g.num_directed_edges());
  if (best == g.layout()) return g;
  return to_layout(g, best);
}

any_csr to_narrowest(csr_graph g) { return to_narrowest(any_csr(std::move(g))); }

any_csr to_layout(const any_csr& g, csr_layout target) {
  if (g.layout() == target) return g;
  return g.visit([target](const auto& c) { return convert_to(c, target); });
}

}  // namespace micg::graph
