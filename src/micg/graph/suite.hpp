// The Table I graph suite.
//
// The paper evaluates seven FEM/structural matrices from the UF collection
// (auto, bmw3_2, hood, inline_1, ldoor, msdoor, pwtk). Those files are not
// redistributable here, so each entry carries (a) the paper-reported
// statistics and (b) fem_params for a synthetic 3-D stencil graph matched
// on |V|, average degree, max degree, and BFS level count — the four
// statistics that drive coloring and layered-BFS behaviour (see DESIGN.md
// §2). `scale` shrinks |V| for fast tests/benches (dimensions scale by
// cbrt(scale); the level count shrinks accordingly and is recorded in
// EXPERIMENTS.md).
//
// If real UF MatrixMarket files are present in MICG_GRAPH_DIR, the loader
// prefers them.
#pragma once

#include <string>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"
#include "micg/graph/generators.hpp"

namespace micg::graph {

struct suite_entry {
  std::string name;
  // Paper-reported values (Table I).
  std::int64_t paper_vertices;
  std::int64_t paper_edges;
  int paper_max_degree;
  int paper_colors;  ///< sequential greedy, natural order
  int paper_levels;  ///< BFS from vertex |V|/2
  // Synthetic stand-in at scale 1.0.
  fem_params params;
};

/// All seven Table I entries, paper order.
const std::vector<suite_entry>& table1_suite();

/// Entry by name; throws micg::check_error for unknown names.
const suite_entry& suite_entry_by_name(const std::string& name);

/// Parameters scaled so |V| ~ scale * paper |V| (each grid dimension is
/// scaled by cbrt(scale), minimum 3).
fem_params scaled_params(const suite_entry& entry, double scale);

/// Build the synthetic stand-in for `entry` at `scale`. If the environment
/// variable MICG_GRAPH_DIR is set and contains "<name>.mtx", that file is
/// loaded instead (scale is ignored for real files).
csr_graph make_suite_graph(const suite_entry& entry, double scale = 1.0);

/// As make_suite_graph, but at the narrowest layout that fits (real files
/// beyond 32-bit limits load here rather than erroring).
any_csr make_suite_graph_any(const suite_entry& entry, double scale = 1.0);

}  // namespace micg::graph
