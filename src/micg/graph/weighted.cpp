#include "micg/graph/weighted.hpp"

#include <algorithm>
#include <cstddef>

#include "micg/support/assert.hpp"

namespace micg::graph {

namespace {

void check_params(const weight_params& p) {
  MICG_CHECK(p.min_weight >= 1,
             "weight min_weight must be >= 1 (positive weights)");
  MICG_CHECK(p.min_weight <= p.max_weight,
             "weight min_weight must be <= max_weight");
}

}  // namespace

template <CsrGraph G>
std::vector<weight_t> generate_weights(const G& g, const weight_params& p) {
  check_params(p);
  const auto n = g.num_vertices();
  std::vector<weight_t> w(static_cast<std::size_t>(g.num_directed_edges()));
  for (typename G::vertex_type v = 0; v < n; ++v) {
    auto base = static_cast<std::size_t>(g.xadj()[static_cast<std::size_t>(v)]);
    for (const auto u : g.neighbors(v)) {
      w[base++] = edge_weight(p, static_cast<std::int64_t>(v),
                              static_cast<std::int64_t>(u));
    }
  }
  return w;
}

std::vector<weight_t> generate_weights(const any_csr& g,
                                       const weight_params& p) {
  std::vector<weight_t> w;
  g.visit([&](const auto& cg) { w = generate_weights(cg, p); });
  return w;
}

template <CsrGraph G>
void validate_weights(const G& g, std::span<const weight_t> weights) {
  using VId = typename G::vertex_type;
  MICG_CHECK(weights.size() ==
                 static_cast<std::size_t>(g.num_directed_edges()),
             "weights array is not adjacency-parallel");
  const VId n = g.num_vertices();
  for (VId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto base =
        static_cast<std::size_t>(g.xadj()[static_cast<std::size_t>(v)]);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      MICG_CHECK(weights[base + i] >= 1, "edge weight must be positive");
      // The reverse slot {u, v} must carry the same weight (adjacency
      // lists are sorted, so the back edge is a binary search away).
      const VId u = nbrs[i];
      const auto back = g.neighbors(u);
      const auto it = std::lower_bound(back.begin(), back.end(), v);
      MICG_CHECK(it != back.end() && *it == v, "adjacency not symmetric");
      const auto slot = static_cast<std::size_t>(
          g.xadj()[static_cast<std::size_t>(u)] + (it - back.begin()));
      MICG_CHECK(weights[slot] == weights[base + i],
                 "edge weight is not symmetric across stored directions");
    }
  }
}

void validate_weights(const any_csr& g, std::span<const weight_t> weights) {
  g.visit([&](const auto& cg) { validate_weights(cg, weights); });
}

#define MICG_INSTANTIATE(G)                                             \
  template std::vector<weight_t> generate_weights<G>(const G&,          \
                                                     const weight_params&); \
  template void validate_weights<G>(const G&, std::span<const weight_t>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
