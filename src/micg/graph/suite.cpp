#include "micg/graph/suite.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "micg/graph/io_mm.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

const std::vector<suite_entry>& table1_suite() {
  // Stand-in geometry: sz ~ 2 * zreach * paper_levels (zreach is 2 when the
  // stencil includes distance-2 offsets, i.e. pairs >= 14), sx = sy sized to
  // reach paper |V|; stencil_pairs ~ paper average degree / 2; hub degree
  // tops vertices up to the paper's Delta without long-range shortcuts.
  static const std::vector<suite_entry> suite = {
      {"auto", 448'695, 3'314'611, 37, 13, 58,
       fem_params{74, 74, 81, 7, 25, 16}},
      {"bmw3_2", 227'362, 5'530'634, 335, 48, 86,
       fem_params{26, 26, 344, 24, 303, 16}},
      {"hood", 220'542, 4'837'286, 76, 40, 116,
       fem_params{23, 23, 424, 22, 36, 16}},
      {"inline_1", 503'712, 18'156'315, 842, 51, 183,
       fem_params{26, 26, 732, 36, 790, 16}},
      {"ldoor", 952'203, 20'770'807, 76, 42, 169,
       fem_params{40, 40, 608, 22, 36, 16}},
      {"msdoor", 415'863, 9'378'650, 76, 42, 99,
       fem_params{35, 35, 341, 22, 36, 16}},
      {"pwtk", 217'918, 5'653'257, 179, 48, 267,
       fem_params{14, 14, 1068, 26, 145, 16}},
  };
  return suite;
}

const suite_entry& suite_entry_by_name(const std::string& name) {
  for (const auto& e : table1_suite()) {
    if (e.name == name) return e;
  }
  MICG_CHECK(false, "unknown suite graph: " + name);
  return table1_suite().front();  // unreachable
}

fem_params scaled_params(const suite_entry& entry, double scale) {
  MICG_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  fem_params p = entry.params;
  const double f = std::cbrt(scale);
  auto scale_dim = [f](vertex_t d) {
    const auto s = static_cast<vertex_t>(std::lround(f * d));
    return s < 3 ? 3 : s;
  };
  p.sx = scale_dim(p.sx);
  p.sy = scale_dim(p.sy);
  p.sz = scale_dim(p.sz);
  return p;
}

csr_graph make_suite_graph(const suite_entry& entry, double scale) {
  if (const char* dir = std::getenv("MICG_GRAPH_DIR")) {
    const std::string path = std::string(dir) + "/" + entry.name + ".mtx";
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      return load_matrix_market(path);
    }
  }
  return make_fem_like(scaled_params(entry, scale));
}

any_csr make_suite_graph_any(const suite_entry& entry, double scale) {
  if (const char* dir = std::getenv("MICG_GRAPH_DIR")) {
    const std::string path = std::string(dir) + "/" + entry.name + ".mtx";
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      return load_matrix_market_any(path);
    }
  }
  return to_narrowest(make_fem_like(scaled_params(entry, scale)));
}

}  // namespace micg::graph
