// Weighted graph core: any CSR layout paired with a parallel weights[]
// array, one entry per adjacency slot (docs/workloads.md).
//
// Weights are *derived*, not stored alongside the topology: every edge
// {u, v} hashes its endpoint pair (plus a seed) through a splitmix64-style
// stateless mixer, so
//   * both stored directions of an undirected edge get the same weight
//     (the mixer sees the sorted pair);
//   * the weight is independent of the CSR layout and of the adjacency
//     array's internal order — csr32/csr_graph/csr64 views of the same
//     graph carry bit-identical weight streams;
//   * an edge keeps its weight across serve-layer mutations and
//     compactions: a surviving {u, v} hashes to the same value in every
//     snapshot epoch, which is what lets weighted queries pin snapshots
//     without materializing weights in the store.
// Weights are integers in [min_weight, max_weight] with min_weight >= 1,
// so SSSP distances are exact int64 sums and the differential oracles can
// use EXPECT_EQ rather than a tolerance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/graph/csr.hpp"
#include "micg/support/rng.hpp"

namespace micg::graph {

/// Edge weight. 32-bit: the weights array rides next to adj[] on the
/// bandwidth-bound relaxation path, so half-width entries halve its
/// traffic, and int64 distance sums cannot overflow before 2^32 edges.
using weight_t = std::int32_t;

/// Deterministic weight-generation parameters (the RNG-locked seed
/// surface, like the topology generators' seeds).
struct weight_params {
  std::uint64_t seed = 1;
  weight_t min_weight = 1;    ///< must be >= 1 (positive weights)
  weight_t max_weight = 255;  ///< inclusive
};

/// The weight of edge {u, v} under `p`: a pure function of the seed and
/// the *sorted* endpoint pair. Both directions agree by construction.
inline weight_t edge_weight(const weight_params& p, std::int64_t u,
                            std::int64_t v) {
  const auto lo = static_cast<std::uint64_t>(u < v ? u : v);
  const auto hi = static_cast<std::uint64_t>(u < v ? v : u);
  // Distinct odd multipliers keep (lo, hi) and (lo', hi') streams apart;
  // one splitmix64 step finalizes (support/rng.hpp — the stream the
  // property tests pin).
  micg::splitmix64 sm(p.seed ^ (lo * 0xd1342543de82ef95ULL) ^
                      (hi * 0xaf251af3b0f025b5ULL));
  const auto range = static_cast<std::uint64_t>(p.max_weight) -
                     static_cast<std::uint64_t>(p.min_weight) + 1;
  return static_cast<weight_t>(static_cast<std::uint64_t>(p.min_weight) +
                               sm.next() % range);
}

/// weights[i] = edge_weight of the edge stored at adjacency slot i, for
/// every slot — the parallel array delta-stepping consumes. Defined for
/// every shipped layout (instantiations in weighted.cpp). Throws
/// micg::check_error on invalid params (min < 1 or min > max).
template <CsrGraph G>
std::vector<weight_t> generate_weights(const G& g, const weight_params& p);

std::vector<weight_t> generate_weights(const any_csr& g,
                                       const weight_params& p);

/// Check the weighted invariants of (g, weights): the array is
/// adjacency-parallel, every weight is positive, and both stored
/// directions of every edge agree. O(|E| log Delta); throws
/// micg::check_error on violation. Used by weighted_csr::validate and by
/// the binary reader on untrusted version-3 files.
template <CsrGraph G>
void validate_weights(const G& g, std::span<const weight_t> weights);

void validate_weights(const any_csr& g, std::span<const weight_t> weights);

/// A CSR layout paired with its parallel weights array. Owns both; the
/// kernels take (graph, span<const weight_t>) so borrowed views work too.
template <CsrGraph G>
struct weighted_csr {
  using vertex_type = typename G::vertex_type;
  using edge_type = typename G::edge_type;

  G g;
  std::vector<weight_t> weights;  ///< size == g.num_directed_edges()

  /// Weights of v's adjacency slice, parallel to g.neighbors(v).
  [[nodiscard]] std::span<const weight_t> weights_of(vertex_type v) const {
    const auto b = static_cast<std::size_t>(
        g.xadj()[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(
        g.xadj()[static_cast<std::size_t>(v) + 1]);
    return {weights.data() + b, e - b};
  }

  /// Re-checks the weighted invariants (see validate_weights).
  void validate() const { validate_weights(g, std::span<const weight_t>(weights)); }
};

/// Pair `g` with its derived weight array.
template <CsrGraph G>
weighted_csr<G> make_weighted(G g, const weight_params& p) {
  auto w = generate_weights(g, p);
  return {std::move(g), std::move(w)};
}

}  // namespace micg::graph
