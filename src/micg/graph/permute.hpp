// Vertex relabeling. The paper's Figure 2 shuffles vertex ids "randomly
// which break all the locality that naturally appears in the graphs"
// (§V-B); apply_permutation() + random_permutation() implement exactly that
// transformation.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// perm[old_id] == new_id; identity mapping.
std::vector<vertex_t> identity_permutation(vertex_t n);

/// Uniformly random permutation (Fisher–Yates) from `seed`.
std::vector<vertex_t> random_permutation(vertex_t n, std::uint64_t seed);

/// Relabel: vertex v of `g` becomes perm[v] in the result. The edge set is
/// unchanged up to renaming, so every structural property (degrees, colors
/// needed, BFS level count from a mapped source) is preserved.
csr_graph apply_permutation(const csr_graph& g,
                            const std::vector<vertex_t>& perm);

/// True iff perm is a bijection on [0, n).
bool is_permutation(const std::vector<vertex_t>& perm);

}  // namespace micg::graph
