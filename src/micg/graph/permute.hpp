// Vertex relabeling. The paper's Figure 2 shuffles vertex ids "randomly
// which break all the locality that naturally appears in the graphs"
// (§V-B); apply_permutation() + random_permutation() implement exactly that
// transformation.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// perm[old_id] == new_id; identity mapping. Instantiated for the shipped
/// vertex id widths (int32/int64).
template <std::signed_integral VId>
std::vector<VId> identity_permutation(VId n);

/// Uniformly random permutation (Fisher–Yates) from `seed`.
template <std::signed_integral VId>
std::vector<VId> random_permutation(VId n, std::uint64_t seed);

/// Relabel: vertex v of `g` becomes perm[v] in the result. The edge set is
/// unchanged up to renaming, so every structural property (degrees, colors
/// needed, BFS level count from a mapped source) is preserved.
template <CsrGraph G>
G apply_permutation(const G& g,
                    const std::vector<typename G::vertex_type>& perm);

/// True iff perm is a bijection on [0, n).
template <std::signed_integral VId>
bool is_permutation(const std::vector<VId>& perm);

}  // namespace micg::graph
