#include "micg/graph/shard.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "micg/graph/builder.hpp"

namespace micg::graph {

int shard_plan::owner(std::int64_t gv) const {
  MICG_ASSERT(gv >= 0 && gv < starts.back());
  const auto it = std::upper_bound(starts.begin(), starts.end(), gv);
  return static_cast<int>(it - starts.begin()) - 1;
}

std::int64_t shard_part::local_of_global(std::int64_t gv) const {
  if (owns_global(gv)) {
    return owned_local_begin + (gv - owned_begin);
  }
  const auto it = std::lower_bound(l2g.begin(), l2g.end(), gv);
  MICG_CHECK(it != l2g.end() && *it == gv,
             "global vertex not present in this shard");
  return static_cast<std::int64_t>(it - l2g.begin());
}

namespace {

/// The edge-balanced boundary rule of rt::for_range_edges, applied once to
/// place shard boundaries: shard c covers adjacency entries
/// ~[c*total/shards, (c+1)*total/shards), rows never split.
template <class EId>
std::vector<std::int64_t> balanced_starts(const std::vector<EId>& xadj,
                                          std::int64_t n, int shards) {
  std::vector<std::int64_t> starts(static_cast<std::size_t>(shards) + 1);
  starts.front() = 0;
  starts.back() = n;
  const auto total = static_cast<std::int64_t>(xadj[static_cast<std::size_t>(n)]);
  for (int c = 1; c < shards; ++c) {
    if (total <= 0) {
      // Edgeless graph: fall back to an even vertex split.
      starts[static_cast<std::size_t>(c)] =
          n * c / shards;
      continue;
    }
    const auto target = static_cast<EId>(static_cast<std::int64_t>(
        static_cast<__int128>(total) * c / shards));
    const auto it = std::upper_bound(xadj.begin(), xadj.end(), target);
    auto v = static_cast<std::int64_t>(it - xadj.begin()) - 1;
    v = std::clamp(v, starts[static_cast<std::size_t>(c) - 1], n);
    starts[static_cast<std::size_t>(c)] = v;
  }
  return starts;
}

}  // namespace

shard_plan make_shard_plan(const any_csr& g, int shards) {
  MICG_CHECK(shards >= 1 && shards <= max_shards,
             "shard count must be in [1, 256]");
  shard_plan plan;
  const std::int64_t n = g.num_vertices();
  g.visit([&](const auto& cg) {
    plan.starts = balanced_starts(cg.xadj(), n, shards);
  });
  return plan;
}

sharded_csr make_sharded(const any_csr& g, int shards) {
  const shard_plan plan = make_shard_plan(g, shards);
  const std::int64_t n = g.num_vertices();
  std::vector<shard_part> parts(static_cast<std::size_t>(shards));
  std::int64_t cut_directed_total = 0;

  g.visit([&](const auto& cg) {
    for (int s = 0; s < shards; ++s) {
      shard_part& part = parts[static_cast<std::size_t>(s)];
      part.owned_begin = plan.starts[static_cast<std::size_t>(s)];
      part.owned_end = plan.starts[static_cast<std::size_t>(s) + 1];

      // Ghosts: every off-shard neighbor of an owned row, deduplicated.
      std::vector<std::int64_t> ghosts;
      for (std::int64_t v = part.owned_begin; v < part.owned_end; ++v) {
        for (const auto w : cg.neighbors(
                 static_cast<typename std::decay_t<decltype(cg)>::vertex_type>(
                     v))) {
          const auto gw = static_cast<std::int64_t>(w);
          part.owned_directed_edges += 1;
          if (gw < part.owned_begin || gw >= part.owned_end) {
            part.cut_directed_edges += 1;
            ghosts.push_back(gw);
          }
        }
      }
      std::sort(ghosts.begin(), ghosts.end());
      ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

      // Local id space in ascending global order: ghosts below the owned
      // range, then the owned block, then ghosts above it. The monotone
      // map keeps every local adjacency sorted like its global adjacency.
      const auto below = static_cast<std::int64_t>(
          std::lower_bound(ghosts.begin(), ghosts.end(), part.owned_begin) -
          ghosts.begin());
      part.owned_local_begin = below;
      part.l2g.clear();
      part.l2g.reserve(ghosts.size() +
                       static_cast<std::size_t>(part.num_owned()));
      for (std::int64_t i = 0; i < below; ++i) {
        part.l2g.push_back(ghosts[static_cast<std::size_t>(i)]);
      }
      for (std::int64_t v = part.owned_begin; v < part.owned_end; ++v) {
        part.l2g.push_back(v);
      }
      for (std::size_t i = static_cast<std::size_t>(below); i < ghosts.size();
           ++i) {
        part.l2g.push_back(ghosts[i]);
      }

      // Pack the shard subgraph at its own narrowest layout. Owned-owned
      // edges are added once (u < w); owned-ghost edges once — the
      // builder's symmetrization materializes the ghost rows.
      basic_builder<std::int64_t, std::int64_t> b(part.num_local());
      b.reserve(static_cast<std::size_t>(part.owned_directed_edges));
      for (std::int64_t v = part.owned_begin; v < part.owned_end; ++v) {
        const std::int64_t lv = part.local_of_global(v);
        for (const auto w : cg.neighbors(
                 static_cast<typename std::decay_t<decltype(cg)>::vertex_type>(
                     v))) {
          const auto gw = static_cast<std::int64_t>(w);
          if (part.owns_global(gw)) {
            if (v < gw) b.add_edge(lv, part.local_of_global(gw));
          } else {
            b.add_edge(lv, part.local_of_global(gw));
          }
        }
      }
      part.csr = build_auto(std::move(b));
      cut_directed_total += part.cut_directed_edges;
    }
  });

  // Halo lists: shard t's ghost list, grouped by owner, is exactly what
  // each owner must send it — enumerate ghosts once and record both sides
  // in the same (ascending global) order.
  for (int t = 0; t < shards; ++t) {
    shard_part& pt = parts[static_cast<std::size_t>(t)];
    pt.send_local.assign(static_cast<std::size_t>(shards), {});
    pt.recv_local.assign(static_cast<std::size_t>(shards), {});
  }
  for (int t = 0; t < shards; ++t) {
    shard_part& pt = parts[static_cast<std::size_t>(t)];
    for (std::int64_t lv = 0; lv < pt.num_local(); ++lv) {
      const std::int64_t gv = pt.global_of_local(lv);
      if (pt.owns_global(gv)) continue;
      const int s = plan.owner(gv);
      shard_part& ps = parts[static_cast<std::size_t>(s)];
      ps.send_local[static_cast<std::size_t>(t)].push_back(
          ps.local_of_global(gv));
      pt.recv_local[static_cast<std::size_t>(s)].push_back(lv);
    }
  }

  return sharded_csr(plan, std::move(parts), n, g.num_edges(),
                     cut_directed_total / 2);
}

void sharded_csr::validate(const any_csr& original) const {
  MICG_CHECK(plan_.starts.front() == 0 &&
                 plan_.starts.back() == num_vertices_,
             "shard plan must cover [0, |V|)");
  std::int64_t owned_total = 0;
  std::int64_t owned_directed_total = 0;
  std::int64_t cut_directed_total = 0;
  for (int s = 0; s < shards(); ++s) {
    const shard_part& p = part(s);
    MICG_CHECK(p.owned_begin == plan_.starts[static_cast<std::size_t>(s)] &&
                   p.owned_end ==
                       plan_.starts[static_cast<std::size_t>(s) + 1],
               "shard range disagrees with the plan");
    MICG_CHECK(std::is_sorted(p.l2g.begin(), p.l2g.end()) &&
                   std::adjacent_find(p.l2g.begin(), p.l2g.end()) ==
                       p.l2g.end(),
               "local->global map must be strictly increasing");
    MICG_CHECK(p.csr.num_vertices() == p.num_local(),
               "shard CSR size disagrees with the remap table");
    owned_total += p.num_owned();
    owned_directed_total += p.owned_directed_edges;
    cut_directed_total += p.cut_directed_edges;
    // Owned rows must keep their global degree; the round-trip remap must
    // be the identity.
    original.visit([&](const auto& cg) {
      p.csr.visit([&](const auto& sc) {
        for (std::int64_t v = p.owned_begin; v < p.owned_end; ++v) {
          const std::int64_t lv = p.local_of_global(v);
          MICG_CHECK(p.global_of_local(lv) == v, "remap round trip broken");
          using GV = typename std::decay_t<decltype(cg)>::vertex_type;
          using LV = typename std::decay_t<decltype(sc)>::vertex_type;
          const auto gn = cg.neighbors(static_cast<GV>(v));
          const auto ln = sc.neighbors(static_cast<LV>(lv));
          MICG_CHECK(gn.size() == ln.size(),
                     "owned row lost edges in the shard packing");
          for (std::size_t i = 0; i < gn.size(); ++i) {
            MICG_CHECK(p.global_of_local(static_cast<std::int64_t>(ln[i])) ==
                           static_cast<std::int64_t>(gn[i]),
                       "owned row adjacency order changed");
          }
        }
      });
    });
    // Halo symmetry: what s sends to t is what t receives from s, same
    // vertices, same order.
    for (int t = 0; t < shards(); ++t) {
      const auto& send = p.send_local[static_cast<std::size_t>(t)];
      const auto& recv =
          part(t).recv_local[static_cast<std::size_t>(s)];
      MICG_CHECK(send.size() == recv.size(), "halo lists disagree in size");
      for (std::size_t i = 0; i < send.size(); ++i) {
        MICG_CHECK(p.global_of_local(send[i]) ==
                       part(t).global_of_local(recv[i]),
                   "halo lists disagree in order");
      }
    }
  }
  MICG_CHECK(owned_total == num_vertices_, "shards must cover every vertex");
  MICG_CHECK(owned_directed_total == original.num_directed_edges(),
             "shards must cover every directed edge exactly once");
  MICG_CHECK(cut_directed_total == 2 * cut_edges_,
             "cut accounting out of sync");
}

}  // namespace micg::graph
