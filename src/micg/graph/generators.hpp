// Synthetic graph generators.
//
// Structured families (chain/star/tree/grids) drive tests and the BFS
// performance model's corner cases ("consider a graph that is a very long
// chain", §III-C). make_fem_like() builds the 3-D stencil graphs that stand
// in for the paper's UF-collection FEM matrices (see suite.hpp), and
// make_rmat() provides Graph500-style inputs for the examples.
#pragma once

#include <cstdint>

#include "micg/graph/csr.hpp"

namespace micg::graph {

/// Path 0-1-2-...-n-1. Worst case for layered BFS: one vertex per level.
csr_graph make_chain(vertex_t n);

/// Cycle of n vertices.
csr_graph make_cycle(vertex_t n);

/// Vertex 0 connected to all others. Delta = n-1, 2 BFS levels.
csr_graph make_star(vertex_t n);

/// Complete graph K_n (small n only: |E| = n(n-1)/2).
csr_graph make_complete(vertex_t n);

/// Complete k-ary tree with `levels` levels (root = level 0).
csr_graph make_kary_tree(int arity, int levels);

/// nx-by-ny grid, 4-point stencil (8-point when `diagonals`).
csr_graph make_grid_2d(vertex_t nx, vertex_t ny, bool diagonals = false);

/// Erdős–Rényi G(n, m) with m ~ n*avg_degree/2 distinct edges.
csr_graph make_erdos_renyi(vertex_t n, double avg_degree,
                           std::uint64_t seed);

/// RMAT power-law generator (Chakrabarti et al.); Graph500 uses
/// a=.57 b=.19 c=.19. n = 2^scale vertices, ~edge_factor*n edges before
/// dedup.
csr_graph make_rmat(int scale, int edge_factor, double a, double b, double c,
                    std::uint64_t seed);

/// Parameters for the FEM-like 3-D stencil family.
///
/// Vertices form an sx*sy*sz grid in natural (z-major) order. Every vertex
/// connects to its `stencil_pairs` nearest grid offsets (symmetric pairs
/// ordered by squared distance, up to the 40 pairs with d^2 <= 6), which
/// sets the average degree to ~2*stencil_pairs. `num_hubs` evenly spaced
/// vertices additionally connect to their `hub_degree` nearest neighbors in
/// index order, raising the max degree without creating long-range
/// shortcuts (so BFS level counts stay grid-like).
struct fem_params {
  vertex_t sx = 8;
  vertex_t sy = 8;
  vertex_t sz = 8;
  int stencil_pairs = 13;  ///< 13 = full 3x3x3 box (26 neighbors)
  int hub_degree = 0;      ///< 0 disables hubs
  int num_hubs = 0;
};

csr_graph make_fem_like(const fem_params& p);

}  // namespace micg::graph
