// Compressed sparse row graph — the one graph representation every kernel
// in micgraph operates on. Undirected: each edge {u,v} is stored in both
// adjacency lists, exactly like the symmetric sparse matrices the paper's
// test graphs come from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace micg::graph {

/// Vertex id. 32-bit: the paper's largest graph has 952K vertices and the
/// adjacency array dominates memory, so half-width ids double what fits in
/// cache (Per.16: use compact data structures).
using vertex_t = std::int32_t;

/// Edge index into the adjacency array; 64-bit because 2*|E| can exceed
/// 2^31 at full scale with room to spare.
using edge_t = std::int64_t;

/// Sentinel used by the block-accessed BFS queue (§IV-C) and by level
/// arrays for "not yet visited".
inline constexpr vertex_t invalid_vertex = -1;

class csr_graph {
 public:
  csr_graph() = default;

  /// Takes ownership of a prebuilt CSR structure. `xadj` has size n+1 with
  /// xadj[0] == 0; `adj` has size xadj[n]. Adjacency lists must be sorted,
  /// duplicate-free, self-loop-free, and symmetric (validated).
  csr_graph(std::vector<edge_t> xadj, std::vector<vertex_t> adj);

  /// Number of vertices |V|.
  [[nodiscard]] vertex_t num_vertices() const {
    return xadj_.empty() ? 0 : static_cast<vertex_t>(xadj_.size() - 1);
  }

  /// Number of undirected edges |E| (each stored twice internally).
  [[nodiscard]] edge_t num_edges() const {
    return static_cast<edge_t>(adj_.size()) / 2;
  }

  /// Size of the adjacency array (2|E|).
  [[nodiscard]] edge_t num_directed_edges() const {
    return static_cast<edge_t>(adj_.size());
  }

  /// Degree of v (named delta_v in the paper).
  [[nodiscard]] std::int64_t degree(vertex_t v) const {
    return xadj_[static_cast<std::size_t>(v) + 1] -
           xadj_[static_cast<std::size_t>(v)];
  }

  /// Sorted neighbor list of v (adj(v) in the paper).
  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    const auto b = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {adj_.data() + b, e - b};
  }

  /// Maximum degree Delta; computed once at construction.
  [[nodiscard]] std::int64_t max_degree() const { return max_degree_; }

  [[nodiscard]] const std::vector<edge_t>& xadj() const { return xadj_; }
  [[nodiscard]] const std::vector<vertex_t>& adj() const { return adj_; }

  /// Re-checks all representation invariants; throws micg::check_error on
  /// violation. O(|E| log Delta).
  void validate() const;

 private:
  std::vector<edge_t> xadj_;
  std::vector<vertex_t> adj_;
  std::int64_t max_degree_ = 0;
};

}  // namespace micg::graph
