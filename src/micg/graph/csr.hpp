// Compressed sparse row graph — the one graph representation every kernel
// in micgraph operates on. Undirected: each edge {u,v} is stored in both
// adjacency lists, exactly like the symmetric sparse matrices the paper's
// test graphs come from.
//
// The structure is parameterized on the width of its two index types
// (basic_csr<VId, EId>): every kernel is bandwidth-bound on the xadj/adj
// arrays, so halving an index width halves that array's memory traffic
// (Per.16: use compact data structures). Three layouts are shipped:
//
//   csr32      basic_csr<int32, int32>   narrowest; 2|E| must fit in 31 bits
//   csr_graph  basic_csr<int32, int64>   the historical default layout
//   csr64      basic_csr<int64, int64>   opens |V| > 2^31 (Graph500 scale)
//
// Kernels are templated over the CsrGraph concept below and explicitly
// instantiated for these three layouts (see MICG_FOR_EACH_CSR_LAYOUT);
// runtime layout selection lives in any_csr.hpp.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "micg/support/assert.hpp"

namespace micg::graph {

/// Default-layout vertex id. 32-bit: the paper's largest graph has 952K
/// vertices and the adjacency array dominates memory, so half-width ids
/// double what fits in cache.
using vertex_t = std::int32_t;

/// Default-layout edge index into the adjacency array; 64-bit because
/// 2*|E| can exceed 2^31 at full scale with room to spare.
using edge_t = std::int64_t;

/// Sentinel for "not a vertex", per index width: used by the block-accessed
/// BFS queue (§IV-C) and by parent arrays for "not yet visited".
template <class VId>
inline constexpr VId invalid_vertex_v = static_cast<VId>(-1);

/// Default-layout sentinel (backwards-compatible name).
inline constexpr vertex_t invalid_vertex = invalid_vertex_v<vertex_t>;

template <std::signed_integral VId, std::signed_integral EId>
class basic_csr {
 public:
  using vertex_type = VId;
  using edge_type = EId;

  basic_csr() = default;

  /// Takes ownership of a prebuilt CSR structure. `xadj` has size n+1 with
  /// xadj[0] == 0; `adj` has size xadj[n]. Adjacency lists must be sorted,
  /// duplicate-free, self-loop-free, and symmetric (validated).
  basic_csr(std::vector<EId> xadj, std::vector<VId> adj)
      : xadj_(std::move(xadj)), adj_(std::move(adj)) {
    MICG_CHECK(!xadj_.empty() && xadj_.front() == 0,
               "xadj must start with 0");
    MICG_CHECK(xadj_.size() - 1 <=
                   static_cast<std::size_t>(std::numeric_limits<VId>::max()),
               "vertex count overflows this layout's vertex id width");
    MICG_CHECK(adj_.size() <=
                   static_cast<std::size_t>(std::numeric_limits<EId>::max()),
               "adjacency size overflows this layout's edge index width");
    MICG_CHECK(xadj_.back() == static_cast<EId>(adj_.size()),
               "xadj must end at the adjacency size");
    const VId n = num_vertices();
    for (VId v = 0; v < n; ++v) {
      max_degree_ = degree(v) > max_degree_ ? degree(v) : max_degree_;
    }
    // Full invariant validation is O(|E| log Delta); callers that construct
    // from untrusted data (e.g. MatrixMarket files) call validate() itself.
  }

  /// Number of vertices |V|.
  [[nodiscard]] VId num_vertices() const {
    return xadj_.empty() ? 0 : static_cast<VId>(xadj_.size() - 1);
  }

  /// Number of undirected edges |E| (each stored twice internally).
  [[nodiscard]] EId num_edges() const {
    return static_cast<EId>(adj_.size()) / 2;
  }

  /// Size of the adjacency array (2|E|).
  [[nodiscard]] EId num_directed_edges() const {
    return static_cast<EId>(adj_.size());
  }

  /// Degree of v (named delta_v in the paper). Returned at the layout's
  /// edge-index width — no 64-bit arithmetic on the narrow layouts.
  [[nodiscard]] EId degree(VId v) const {
    return xadj_[static_cast<std::size_t>(v) + 1] -
           xadj_[static_cast<std::size_t>(v)];
  }

  /// Sorted neighbor list of v (adj(v) in the paper).
  [[nodiscard]] std::span<const VId> neighbors(VId v) const {
    const auto b = static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1]);
    return {adj_.data() + b, e - b};
  }

  /// Maximum degree Delta; computed once at construction.
  [[nodiscard]] EId max_degree() const { return max_degree_; }

  [[nodiscard]] const std::vector<EId>& xadj() const { return xadj_; }
  [[nodiscard]] const std::vector<VId>& adj() const { return adj_; }

  /// Bytes held by the two index arrays (the footprint the layout choice
  /// controls).
  [[nodiscard]] std::size_t index_bytes() const {
    return xadj_.size() * sizeof(EId) + adj_.size() * sizeof(VId);
  }

  /// Re-checks all representation invariants; throws micg::check_error on
  /// violation. O(|E| log Delta).
  void validate() const {
    const VId n = num_vertices();
    MICG_CHECK(!xadj_.empty() && xadj_.front() == 0, "bad xadj prefix");
    MICG_CHECK(xadj_.back() == static_cast<EId>(adj_.size()),
               "bad xadj suffix");
    // The whole offset array must be proven monotone (hence in-bounds,
    // given the prefix/suffix checks) before any adj_ access: a corrupt
    // xadj like [0, 10, 5] over 5 adjacency slots would otherwise send
    // neighbors(0) reading past the array while the scan is still at v=0.
    for (VId v = 0; v < n; ++v) {
      MICG_CHECK(xadj_[static_cast<std::size_t>(v)] <=
                     xadj_[static_cast<std::size_t>(v) + 1],
                 "xadj must be non-decreasing");
    }
    for (VId v = 0; v < n; ++v) {
      auto nbrs = neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VId w = nbrs[i];
        MICG_CHECK(w >= 0 && w < n, "neighbor id out of range");
        MICG_CHECK(w != v, "self loop present");
        if (i > 0) {
          MICG_CHECK(nbrs[i - 1] < w, "adjacency not sorted/deduplicated");
        }
        // Symmetry: v must appear in w's (sorted) list.
        auto back = neighbors(w);
        MICG_CHECK(std::binary_search(back.begin(), back.end(), v),
                   "adjacency not symmetric");
      }
    }
  }

 private:
  std::vector<EId> xadj_;
  std::vector<VId> adj_;
  EId max_degree_ = 0;
};

/// Narrowest layout: both index arrays at 4 bytes/entry.
using csr32 = basic_csr<std::int32_t, std::int32_t>;

/// The default layout (and the seed's historical csr_graph): 32-bit vertex
/// ids, 64-bit edge offsets.
using csr_graph = basic_csr<vertex_t, edge_t>;

/// Widest layout: vertex ids beyond 2^31 (Graph500-scale inputs).
using csr64 = basic_csr<std::int64_t, std::int64_t>;

/// The concept every kernel in bfs/, color/, irregular/, graph/ and
/// model/ is written against: any CSR-shaped graph exposing its index
/// widths as member types.
template <class G>
concept CsrGraph = requires(const G& g, typename G::vertex_type v) {
  requires std::signed_integral<typename G::vertex_type>;
  requires std::signed_integral<typename G::edge_type>;
  { g.num_vertices() } -> std::same_as<typename G::vertex_type>;
  { g.num_edges() } -> std::same_as<typename G::edge_type>;
  { g.num_directed_edges() } -> std::same_as<typename G::edge_type>;
  { g.degree(v) } -> std::same_as<typename G::edge_type>;
  { g.max_degree() } -> std::same_as<typename G::edge_type>;
  {
    g.neighbors(v)
  } -> std::same_as<std::span<const typename G::vertex_type>>;
};

static_assert(CsrGraph<csr32> && CsrGraph<csr_graph> && CsrGraph<csr64>);

/// Convert a graph to another layout. Hard-errors (micg::check_error) when
/// the target widths cannot represent the graph — never truncates.
template <CsrGraph To, CsrGraph From>
To convert_csr(const From& g) {
  if constexpr (std::same_as<To, From>) {
    return g;
  } else {
    using VId = typename To::vertex_type;
    using EId = typename To::edge_type;
    MICG_CHECK(static_cast<std::int64_t>(g.num_vertices()) <=
                   static_cast<std::int64_t>(std::numeric_limits<VId>::max()),
               "vertex count does not fit the target layout");
    MICG_CHECK(static_cast<std::int64_t>(g.num_directed_edges()) <=
                   static_cast<std::int64_t>(std::numeric_limits<EId>::max()),
               "directed edge count does not fit the target layout");
    std::vector<EId> xadj(g.xadj().size());
    for (std::size_t i = 0; i < xadj.size(); ++i) {
      xadj[i] = static_cast<EId>(g.xadj()[i]);
    }
    std::vector<VId> adj(g.adj().size());
    for (std::size_t i = 0; i < adj.size(); ++i) {
      adj[i] = static_cast<VId>(g.adj()[i]);
    }
    return To(std::move(xadj), std::move(adj));
  }
}

}  // namespace micg::graph

/// X-macro over the shipped layouts: every kernel translation unit
/// explicitly instantiates its templates for exactly these graph types
/// (one instantiation unit per kernel keeps compile times sane while the
/// headers stay declaration-only).
#define MICG_FOR_EACH_CSR_LAYOUT(X) \
  X(::micg::graph::csr32)           \
  X(::micg::graph::csr_graph)      \
  X(::micg::graph::csr64)
