#include "micg/graph/builder.hpp"

// basic_builder is header-only for the same reason as basic_csr (tests
// build deliberately tiny layouts to hit overflow paths); the shipped
// layouts are instantiated once here.
namespace micg::graph {

template class basic_builder<std::int32_t, std::int32_t>;
template class basic_builder<std::int32_t, std::int64_t>;
template class basic_builder<std::int64_t, std::int64_t>;

csr_graph csr_from_edges(
    vertex_t num_vertices,
    const std::vector<std::pair<vertex_t, vertex_t>>& edges) {
  graph_builder b(num_vertices);
  b.reserve(edges.size());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace micg::graph
