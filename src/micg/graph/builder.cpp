#include "micg/graph/builder.hpp"

#include <algorithm>

#include "micg/support/assert.hpp"

namespace micg::graph {

graph_builder::graph_builder(vertex_t num_vertices) : n_(num_vertices) {
  MICG_CHECK(num_vertices >= 0, "negative vertex count");
}

void graph_builder::add_edge(vertex_t u, vertex_t v) {
  MICG_ASSERT(u >= 0 && u < n_ && v >= 0 && v < n_);
  edges_.emplace_back(u, v);
}

void graph_builder::reserve(std::size_t num_edges) {
  edges_.reserve(num_edges);
}

csr_graph graph_builder::build() && {
  const auto n = static_cast<std::size_t>(n_);

  // Pass 1: count both directions, skipping self loops.
  std::vector<edge_t> xadj(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    MICG_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_, "edge id out of range");
    if (u == v) continue;
    ++xadj[static_cast<std::size_t>(u) + 1];
    ++xadj[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) xadj[i + 1] += xadj[i];

  // Pass 2: scatter.
  std::vector<vertex_t> adj(static_cast<std::size_t>(xadj[n]));
  std::vector<edge_t> cursor(xadj.begin(), xadj.end() - 1);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Pass 3: sort each list and drop duplicates, compacting in place.
  std::vector<edge_t> new_xadj(n + 1, 0);
  std::size_t write = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(xadj[v]);
    const auto e = static_cast<std::size_t>(xadj[v + 1]);
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(b),
              adj.begin() + static_cast<std::ptrdiff_t>(e));
    std::size_t kept_begin = write;
    for (std::size_t i = b; i < e; ++i) {
      if (i > b && adj[i] == adj[i - 1]) continue;
      adj[write++] = adj[i];
    }
    new_xadj[v + 1] = new_xadj[v] +
                      static_cast<edge_t>(write - kept_begin);
  }
  adj.resize(write);
  adj.shrink_to_fit();

  return csr_graph(std::move(new_xadj), std::move(adj));
}

csr_graph csr_from_edges(
    vertex_t num_vertices,
    const std::vector<std::pair<vertex_t, vertex_t>>& edges) {
  graph_builder b(num_vertices);
  b.reserve(edges.size());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace micg::graph
