// Graph sharding: partition the vertex set across N per-shard CSRs so the
// bulk-synchronous kernels in bfs/sharded.hpp and
// irregular/sharded_pagerank.hpp can run each shard on its own thread pool
// and exchange only boundary traffic between rounds.
//
// Partition rule — the edge-balanced cut from rt/edge_partition.hpp lifted
// from loop chunks to shard ownership: shard s owns the contiguous global
// id range [starts[s], starts[s+1]) placed by binary-searching the offset
// array so every shard holds ~equal adjacency entries (rows are never
// split; a hub row heavier than a whole shard gets a shard of its own).
//
// Per-shard packing: each shard's subgraph is rebuilt through
// basic_builder/build_auto at the narrowest layout that fits it, over a
// *local* id space covering the owned range plus every remote neighbor
// (ghost). Local ids are assigned in ascending global order, so the
// global→local map is monotone: a row's local adjacency is sorted exactly
// like its global adjacency, and the floating-point kernels accumulate in
// the same order as their single-shard counterparts.
//
// Ghost rows carry only their edges back into the shard (the symmetrized
// half of each cut edge); they are never iterated as sources. The halo
// lists (send_local/recv_local) are the static counterpart for
// value-exchange kernels: send_local[t] in shard s and recv_local[s] in
// shard t enumerate the same vertices in the same (ascending global)
// order, so a contribution exchange is one linear gather + one linear
// scatter per shard pair and round.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/support/assert.hpp"

namespace micg::graph {

/// Hard cap on the shard count accepted by make_sharded (and the
/// --shards option): enough for any plausible socket topology while
/// keeping the N^2 mailbox/halo grids trivially small.
inline constexpr int max_shards = 256;

/// The ownership map: shard s owns global ids [starts[s], starts[s+1]).
struct shard_plan {
  std::vector<std::int64_t> starts;  ///< size shards()+1; starts[0] == 0

  [[nodiscard]] int shards() const {
    return static_cast<int>(starts.size()) - 1;
  }

  /// Owning shard of global vertex `gv` (binary search over starts).
  [[nodiscard]] int owner(std::int64_t gv) const;
};

/// Edge-balanced contiguous partition of `g` into `shards` ranges (some
/// may be empty on tiny or extremely skewed graphs).
shard_plan make_shard_plan(const any_csr& g, int shards);

/// One shard: its packed subgraph plus the remap and halo tables.
struct shard_part {
  /// Local subgraph at the narrowest layout that fits it. Rows of owned
  /// vertices are complete (local degree == global degree); ghost rows
  /// hold only their cut edges back into this shard.
  any_csr csr;
  /// local id -> global id, ascending (the map is monotone).
  std::vector<std::int64_t> l2g;
  /// Owned global id range [owned_begin, owned_end).
  std::int64_t owned_begin = 0;
  std::int64_t owned_end = 0;
  /// Owned vertices occupy the contiguous local range
  /// [owned_local_begin, owned_local_begin + num_owned()): ghosts with
  /// smaller global ids sort below the owned block, larger ones above.
  std::int64_t owned_local_begin = 0;
  /// Adjacency entries of owned rows (sum of owned global degrees).
  std::int64_t owned_directed_edges = 0;
  /// Owned-row adjacency entries whose neighbor lives on another shard.
  std::int64_t cut_directed_edges = 0;
  /// send_local[t]: local ids (here) of owned vertices shard t reads each
  /// round, ascending global order; empty for t == self.
  std::vector<std::vector<std::int64_t>> send_local;
  /// recv_local[s]: local ids (here) of ghosts owned by shard s, in
  /// exactly the order shard s enumerates them in its send_local[self].
  std::vector<std::vector<std::int64_t>> recv_local;

  [[nodiscard]] std::int64_t num_owned() const {
    return owned_end - owned_begin;
  }
  [[nodiscard]] std::int64_t num_local() const {
    return static_cast<std::int64_t>(l2g.size());
  }
  [[nodiscard]] bool owns_global(std::int64_t gv) const {
    return gv >= owned_begin && gv < owned_end;
  }
  /// Global id of local vertex `lv`.
  [[nodiscard]] std::int64_t global_of_local(std::int64_t lv) const {
    return l2g[static_cast<std::size_t>(lv)];
  }
  /// Local id of global vertex `gv`: O(1) for owned ids, binary search
  /// over l2g for ghosts. `gv` must be present in this shard.
  [[nodiscard]] std::int64_t local_of_global(std::int64_t gv) const;
};

/// A graph partitioned for bulk-synchronous execution.
class sharded_csr {
 public:
  sharded_csr() = default;
  sharded_csr(shard_plan plan, std::vector<shard_part> parts,
              std::int64_t num_vertices, std::int64_t num_edges,
              std::int64_t cut_edges)
      : plan_(std::move(plan)),
        parts_(std::move(parts)),
        num_vertices_(num_vertices),
        num_edges_(num_edges),
        cut_edges_(cut_edges) {}

  [[nodiscard]] int shards() const { return plan_.shards(); }
  [[nodiscard]] const shard_plan& plan() const { return plan_; }
  [[nodiscard]] const shard_part& part(int s) const {
    return parts_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] int owner(std::int64_t gv) const { return plan_.owner(gv); }

  [[nodiscard]] std::int64_t num_vertices() const { return num_vertices_; }
  /// Undirected edge count of the whole graph.
  [[nodiscard]] std::int64_t num_edges() const { return num_edges_; }
  /// Undirected edges whose endpoints live on different shards.
  [[nodiscard]] std::int64_t cut_edges() const { return cut_edges_; }
  [[nodiscard]] double cut_fraction() const {
    return num_edges_ > 0
               ? static_cast<double>(cut_edges_) /
                     static_cast<double>(num_edges_)
               : 0.0;
  }

  /// Re-checks the cross-shard invariants (remap monotonicity, halo list
  /// symmetry, degree preservation); throws micg::check_error on
  /// violation. O(|V| + |E|).
  void validate(const any_csr& original) const;

 private:
  shard_plan plan_;
  std::vector<shard_part> parts_;
  std::int64_t num_vertices_ = 0;
  std::int64_t num_edges_ = 0;
  std::int64_t cut_edges_ = 0;
};

/// Partition `g` into `shards` per-shard CSRs (1 <= shards <= max_shards).
sharded_csr make_sharded(const any_csr& g, int shards);

}  // namespace micg::graph
