#include "micg/graph/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

namespace micg::graph {

namespace {

/// Bucket index of `d`: 0 for d == 0, else 1 + floor(log2(d)).
int hist_bucket(std::int64_t d) {
  if (d <= 0) return 0;
  int b = 1;
  while (d > 1 && b < stats_hist_buckets - 1) {
    d >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

template <CsrGraph G>
std::vector<typename G::vertex_type> top_degree_vertices(const G& g, int k) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  const auto kk = static_cast<VId>(
      std::min<std::int64_t>(std::max(k, 0), static_cast<std::int64_t>(n)));
  std::vector<VId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), VId{0});
  std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                    [&](VId a, VId b) {
                      const auto da = g.degree(a);
                      const auto db = g.degree(b);
                      return da != db ? da > db : a < b;
                    });
  order.resize(static_cast<std::size_t>(kk));
  return order;
}

template <CsrGraph G>
graph_stats compute_graph_stats(const G& g) {
  using VId = typename G::vertex_type;
  graph_stats st;
  const VId n = g.num_vertices();
  st.num_vertices = static_cast<std::int64_t>(n);
  st.num_directed_edges = static_cast<std::int64_t>(g.num_directed_edges());
  if (n == 0) return st;

  // One pass over xadj: min/max/mean/variance (Welford-free two-moment
  // form is fine — degrees are exact integers) and the log2 histogram.
  std::int64_t mind = std::numeric_limits<std::int64_t>::max();
  std::int64_t maxd = 0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (VId v = 0; v < n; ++v) {
    const auto d = static_cast<std::int64_t>(g.degree(v));
    mind = std::min(mind, d);
    maxd = std::max(maxd, d);
    sum += static_cast<double>(d);
    sumsq += static_cast<double>(d) * static_cast<double>(d);
    ++st.degree_log2_hist[static_cast<std::size_t>(hist_bucket(d))];
  }
  st.min_degree = mind;
  st.max_degree = maxd;
  const auto dn = static_cast<double>(n);
  st.avg_degree = sum / dn;
  const double var = std::max(0.0, sumsq / dn - st.avg_degree * st.avg_degree);
  st.degree_stddev = std::sqrt(var);

  const auto top = top_degree_vertices(g, stats_top_k);
  st.top_vertices.reserve(top.size());
  std::int64_t hub_edges = 0;
  for (const VId v : top) {
    st.top_vertices.push_back(static_cast<std::int64_t>(v));
    hub_edges += static_cast<std::int64_t>(g.degree(v));
  }
  st.hub_edge_fraction =
      st.num_directed_edges > 0
          ? static_cast<double>(hub_edges) /
                static_cast<double>(st.num_directed_edges)
          : 0.0;

  // Geometric-expansion frontier estimate: branching factor b = avg
  // degree. b <= 1 means chain-like growth (depth ~ n); otherwise depth
  // ~ log_b n and the widest level holds ~ (b-1)/b of the vertices.
  if (st.avg_degree > 1.0) {
    st.est_levels = std::max(
        1.0, std::log(dn) / std::log(st.avg_degree) + 1.0);
    st.est_peak_frontier = (st.avg_degree - 1.0) / st.avg_degree;
  } else {
    st.est_levels = dn;
    st.est_peak_frontier = dn > 0.0 ? 1.0 / dn : 0.0;
  }
  return st;
}

graph_stats compute_graph_stats(const any_csr& g) {
  return g.visit([](const auto& cg) { return compute_graph_stats(cg); });
}

std::shared_ptr<const graph_stats> stats_cache::get(const std::string& key,
                                                    std::int64_t epoch,
                                                    const any_csr& g) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.epoch == epoch) {
      return it->second.stats;
    }
  }
  // Compute outside the lock: the probe is cheap but O(n), and two racing
  // computations of the same immutable snapshot are benign (last wins).
  auto st = std::make_shared<const graph_stats>(compute_graph_stats(g));
  const std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = entry{epoch, st};
  return st;
}

std::size_t stats_cache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

#define MICG_INSTANTIATE(G)                                \
  template graph_stats compute_graph_stats<G>(const G&);   \
  template std::vector<typename G::vertex_type>            \
  top_degree_vertices<G>(const G&, int);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::graph
