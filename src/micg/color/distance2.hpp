// Distance-2 graph coloring (paper §I: "a variant of coloring called
// distance-2 coloring has many applications including ... compression of
// Jacobian and Hessian matrices").
//
// A distance-2 coloring assigns distinct colors to every pair of vertices
// within two hops. Provided as the paper's declared extension: a sequential
// first-fit baseline plus the same speculate-and-repair parallel scheme as
// distance-1 coloring, running on any rt::exec backend.
#pragma once

#include <span>
#include <vector>

#include "micg/color/greedy.hpp"
#include "micg/color/iterative.hpp"
#include "micg/graph/csr.hpp"

namespace micg::color {

/// Sequential first-fit distance-2 coloring in natural order. Uses at most
/// Delta^2 + 1 colors.
template <micg::graph::CsrGraph G>
coloring greedy_color_distance2(const G& g);

/// Iterative parallel distance-2 coloring (speculate + detect + repair).
template <micg::graph::CsrGraph G>
iterative_result iterative_color_distance2(const G& g,
                                           const iterative_options& opt);

/// True iff no two distinct vertices within distance 2 share a color.
template <micg::graph::CsrGraph G>
bool is_valid_distance2_coloring(const G& g, std::span<const int> color);

}  // namespace micg::color
