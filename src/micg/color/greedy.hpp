// Sequential greedy graph coloring (Algorithm 1 of the paper).
//
// Visits vertices in a given order and assigns the smallest permissible
// color (First Fit). Guarantees at most Delta+1 colors for any order; for
// some orders the result is optimal [Culberson 92].
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::color {

/// Colors are 1-based like the paper's pseudocode; 0 means "uncolored".
struct coloring {
  std::vector<int> color;  ///< per-vertex color, size |V|
  int num_colors = 0;      ///< max color used
};

/// First-fit greedy coloring in natural vertex order (SeqGreedyColoring).
/// Defined for every shipped layout.
template <micg::graph::CsrGraph G>
coloring greedy_color(const G& g);

/// First-fit greedy coloring visiting vertices in `order` (a permutation of
/// the vertex set; checked).
template <micg::graph::CsrGraph G>
coloring greedy_color(const G& g,
                      std::span<const typename G::vertex_type> order);

/// Scratch array for first-fit: forbidden[c] holds the id of the vertex
/// currently being colored when color c is forbidden for it. The stamp
/// trick means the array is initialized once, not once per vertex.
///
/// Stamps are stored at 64 bits so one scratch type serves every graph
/// layout (any vertex id converts losslessly).
class forbidden_marks {
 public:
  /// Sizing hint: Delta+2 always suffices for distance-1 first-fit. The
  /// array grows on demand, so an underestimate costs reallocation, never
  /// correctness.
  explicit forbidden_marks(std::size_t capacity) : marks_(capacity, -1) {}

  /// Mark `c` as forbidden for vertex `v`. Colors beyond the current
  /// capacity grow the array (silently dropping them would let
  /// first_allowed() return a color a neighbor already holds).
  void forbid(int c, std::int64_t v) {
    if (c <= 0) return;
    if (static_cast<std::size_t>(c) >= marks_.size()) {
      marks_.resize(
          std::max<std::size_t>(static_cast<std::size_t>(c) + 1,
                                marks_.size() * 2),
          -1);
    }
    marks_[static_cast<std::size_t>(c)] = v;
  }

  /// Smallest color >= 1 not forbidden for `v`.
  [[nodiscard]] int first_allowed(std::int64_t v) const {
    int c = 1;
    while (static_cast<std::size_t>(c) < marks_.size() &&
           marks_[static_cast<std::size_t>(c)] == v) {
      ++c;
    }
    return c;
  }

  [[nodiscard]] std::size_t capacity() const { return marks_.size(); }

 private:
  std::vector<std::int64_t> marks_;
};

/// Bitset variant of the first-fit scratch, for high-degree vertices: one
/// bit per color (64x denser than the 8-byte stamps, so a Delta ~ 100k hub
/// scans ~200 cache lines instead of ~12k) and first_allowed() advances a
/// whole word per countr_one instead of one color per probe. Unlike the
/// stamp array it must be reset() between vertices; only the words dirtied
/// since the last reset are cleared.
class forbidden_bitset {
 public:
  /// Sizing hint, like forbidden_marks: grows on demand.
  explicit forbidden_bitset(std::size_t capacity)
      : words_(capacity / 64 + 2, 0) {}

  /// Mark color `c` as forbidden (0 = "uncolored" is ignored).
  void forbid(int c) {
    if (c <= 0) return;
    const auto w = static_cast<std::size_t>(c) / 64;
    if (w >= words_.size()) {
      words_.resize(std::max(w + 2, words_.size() * 2), 0);
    }
    if (words_[w] == 0) touched_.push_back(static_cast<std::uint32_t>(w));
    words_[w] |= 1ull << (static_cast<std::size_t>(c) % 64);
  }

  /// Smallest color >= 1 not forbidden since the last reset().
  [[nodiscard]] int first_allowed() const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t val = words_[w];
      if (w == 0) val |= 1;  // color 0 means "uncolored"
      const int bit = std::countr_one(val);
      if (bit < 64) return static_cast<int>(w * 64) + bit;
    }
    // Unreachable: the constructor and forbid() keep at least one word
    // past the highest forbidden color.
    return static_cast<int>(words_.size() * 64);
  }

  /// Clear every forbidden mark (touched words only).
  void reset() {
    for (std::uint32_t w : touched_) words_[w] = 0;
    touched_.clear();
  }

  [[nodiscard]] std::size_t capacity() const { return words_.size() * 64; }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> touched_;  ///< words dirtied since reset()
};

/// Degree at or above which the greedy colorers switch their scratch from
/// the stamp array to the bitset.
inline constexpr std::int64_t bitset_degree_threshold = 2048;

}  // namespace micg::color
