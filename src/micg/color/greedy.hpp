// Sequential greedy graph coloring (Algorithm 1 of the paper).
//
// Visits vertices in a given order and assigns the smallest permissible
// color (First Fit). Guarantees at most Delta+1 colors for any order; for
// some orders the result is optimal [Culberson 92].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::color {

/// Colors are 1-based like the paper's pseudocode; 0 means "uncolored".
struct coloring {
  std::vector<int> color;  ///< per-vertex color, size |V|
  int num_colors = 0;      ///< max color used
};

/// First-fit greedy coloring in natural vertex order (SeqGreedyColoring).
/// Defined for every shipped layout.
template <micg::graph::CsrGraph G>
coloring greedy_color(const G& g);

/// First-fit greedy coloring visiting vertices in `order` (a permutation of
/// the vertex set; checked).
template <micg::graph::CsrGraph G>
coloring greedy_color(const G& g,
                      std::span<const typename G::vertex_type> order);

/// Scratch array for first-fit: forbidden[c] holds the id of the vertex
/// currently being colored when color c is forbidden for it. The stamp
/// trick means the array is initialized once, not once per vertex.
///
/// Stamps are stored at 64 bits so one scratch type serves every graph
/// layout (any vertex id converts losslessly).
class forbidden_marks {
 public:
  /// Capacity must exceed the largest color that can be encountered;
  /// Delta+2 always suffices for distance-1 first-fit.
  explicit forbidden_marks(std::size_t capacity) : marks_(capacity, -1) {}

  /// Mark `c` as forbidden for vertex `v`. Colors outside capacity are
  /// ignored (they can never be the first-fit answer).
  void forbid(int c, std::int64_t v) {
    if (c > 0 && static_cast<std::size_t>(c) < marks_.size()) {
      marks_[static_cast<std::size_t>(c)] = v;
    }
  }

  /// Smallest color >= 1 not forbidden for `v`.
  [[nodiscard]] int first_allowed(std::int64_t v) const {
    int c = 1;
    while (static_cast<std::size_t>(c) < marks_.size() &&
           marks_[static_cast<std::size_t>(c)] == v) {
      ++c;
    }
    return c;
  }

  [[nodiscard]] std::size_t capacity() const { return marks_.size(); }

 private:
  std::vector<std::int64_t> marks_;
};

}  // namespace micg::color
