#include "micg/color/verify.hpp"

#include <algorithm>

#include "micg/support/assert.hpp"

namespace micg::color {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

bool is_valid_coloring(const csr_graph& g, std::span<const int> color) {
  const vertex_t n = g.num_vertices();
  if (static_cast<vertex_t>(color.size()) != n) return false;
  for (vertex_t v = 0; v < n; ++v) {
    if (color[static_cast<std::size_t>(v)] < 1) return false;
    for (vertex_t w : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(v)] ==
          color[static_cast<std::size_t>(w)]) {
        return false;
      }
    }
  }
  return true;
}

std::vector<vertex_t> find_conflicts(const csr_graph& g,
                                     std::span<const int> color) {
  MICG_CHECK(static_cast<vertex_t>(color.size()) == g.num_vertices(),
             "color array size mismatch");
  std::vector<vertex_t> conflicts;
  const vertex_t n = g.num_vertices();
  for (vertex_t v = 0; v < n; ++v) {
    for (vertex_t w : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(v)] ==
              color[static_cast<std::size_t>(w)] &&
          v < w) {
        conflicts.push_back(v);
        break;
      }
    }
  }
  return conflicts;
}

int count_colors(std::span<const int> color) {
  int maxc = 0;
  for (int c : color) maxc = std::max(maxc, c);
  return maxc;
}

}  // namespace micg::color
