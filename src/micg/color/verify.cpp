#include "micg/color/verify.hpp"

#include <algorithm>

#include "micg/support/assert.hpp"

namespace micg::color {

template <micg::graph::CsrGraph G>
bool is_valid_coloring(const G& g, std::span<const int> color) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  if (static_cast<VId>(color.size()) != n) return false;
  for (VId v = 0; v < n; ++v) {
    if (color[static_cast<std::size_t>(v)] < 1) return false;
    for (VId w : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(v)] ==
          color[static_cast<std::size_t>(w)]) {
        return false;
      }
    }
  }
  return true;
}

template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> find_conflicts(
    const G& g, std::span<const int> color) {
  using VId = typename G::vertex_type;
  MICG_CHECK(static_cast<VId>(color.size()) == g.num_vertices(),
             "color array size mismatch");
  std::vector<VId> conflicts;
  const VId n = g.num_vertices();
  for (VId v = 0; v < n; ++v) {
    for (VId w : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(v)] ==
              color[static_cast<std::size_t>(w)] &&
          v < w) {
        conflicts.push_back(v);
        break;
      }
    }
  }
  return conflicts;
}

int count_colors(std::span<const int> color) {
  int maxc = 0;
  for (int c : color) maxc = std::max(maxc, c);
  return maxc;
}

#define MICG_INSTANTIATE(G)                                     \
  template bool is_valid_coloring<G>(const G&,                  \
                                     std::span<const int>);     \
  template std::vector<typename G::vertex_type>                 \
  find_conflicts<G>(const G&, std::span<const int>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::color
