// Vertex visit orders for greedy coloring.
//
// "for some orderings of the vertices it will produce an optimal
// coloring" (§III-A, citing Culberson). The paper evaluates natural and
// random orders; these classical degree-based orders (Welsh–Powell
// largest-first, Matula smallest-last, incidence) are provided for
// coloring-quality studies and the ordering ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::color {

/// Vertices sorted by non-increasing degree (Welsh–Powell). Stable for
/// equal degrees (ties in id order), so the result is deterministic.
template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> largest_first_order(const G& g);

/// Matula's smallest-last order: repeatedly remove a minimum-degree
/// vertex from the (shrinking) graph; color in reverse removal order.
/// First-fit on this order uses at most degeneracy+1 colors.
template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> smallest_last_order(const G& g);

/// Incidence order: grow from vertex 0, always next visiting the
/// unvisited vertex with the most already-visited neighbors.
template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> incidence_order(const G& g);

/// Degeneracy of the graph (max over the smallest-last elimination of the
/// degree at removal time); a lower bound quality yardstick since
/// first-fit on smallest-last uses <= degeneracy+1 colors.
template <micg::graph::CsrGraph G>
int degeneracy(const G& g);

}  // namespace micg::color
