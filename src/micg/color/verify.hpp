// Coloring validation helpers (used by tests and by the conflict-resolution
// quality checks in §V-B of the paper).
#pragma once

#include <span>
#include <vector>

#include "micg/graph/csr.hpp"

namespace micg::color {

/// True iff every vertex has a color >= 1 and no edge is monochromatic.
template <micg::graph::CsrGraph G>
bool is_valid_coloring(const G& g, std::span<const int> color);

/// Vertices that conflict with a neighbor (v is reported when it has a
/// neighbor w with color[v] == color[w] and v < w, mirroring Algorithm 4).
template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> find_conflicts(
    const G& g, std::span<const int> color);

/// Number of distinct colors used (= max color for first-fit colorings).
int count_colors(std::span<const int> color);

}  // namespace micg::color
