#include "micg/color/jones_plassmann.hpp"

#include <atomic>
#include <numeric>

#include "micg/graph/permute.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

iterative_result jones_plassmann_color(const csr_graph& g,
                                       const jp_options& opt) {
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  const vertex_t n = g.num_vertices();

  // Random priorities: a permutation gives distinct values (ties would
  // deadlock the local-max rule).
  const auto priority = micg::graph::random_permutation(n, opt.seed);

  std::vector<std::atomic<int>> color(static_cast<std::size_t>(n));
  for (auto& c : color) c.store(0, std::memory_order_relaxed);

  const auto cap = static_cast<std::size_t>(g.max_degree()) + 2;
  rt::enumerable_thread_specific<forbidden_marks> scratch(
      opt.ex.threads, [cap] { return forbidden_marks(cap); });

  std::vector<vertex_t> active(static_cast<std::size_t>(n));
  std::iota(active.begin(), active.end(), vertex_t{0});
  std::vector<vertex_t> next(active.size());

  iterative_result result;
  while (!active.empty()) {
    MICG_CHECK(result.rounds < opt.max_rounds,
               "Jones-Plassmann failed to converge");
    ++result.rounds;
    std::atomic<std::size_t> cursor{0};
    next.resize(active.size());

    rt::for_range(
        opt.ex, static_cast<std::int64_t>(active.size()),
        [&](std::int64_t b, std::int64_t e, int) {
          forbidden_marks& marks = scratch.local();
          for (std::int64_t i = b; i < e; ++i) {
            const vertex_t v = active[static_cast<std::size_t>(i)];
            // Local max among *uncolored* neighbors?
            bool is_max = true;
            for (vertex_t w : g.neighbors(v)) {
              if (color[static_cast<std::size_t>(w)].load(
                      std::memory_order_relaxed) == 0 &&
                  priority[static_cast<std::size_t>(w)] >
                      priority[static_cast<std::size_t>(v)]) {
                is_max = false;
                break;
              }
            }
            if (!is_max) {
              next[cursor.fetch_add(1, std::memory_order_relaxed)] = v;
              continue;
            }
            // Safe to color: all higher-priority neighbors are done and
            // no same-round neighbor can also be a local max.
            for (vertex_t w : g.neighbors(v)) {
              marks.forbid(color[static_cast<std::size_t>(w)].load(
                               std::memory_order_relaxed),
                           v);
            }
            color[static_cast<std::size_t>(v)].store(
                marks.first_allowed(v), std::memory_order_relaxed);
          }
        });

    next.resize(cursor.load(std::memory_order_relaxed));
    active.swap(next);
    result.conflicts_per_round.push_back(0);  // by construction
  }

  result.color.resize(static_cast<std::size_t>(n));
  int maxc = 0;
  for (vertex_t v = 0; v < n; ++v) {
    const int c =
        color[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    result.color[static_cast<std::size_t>(v)] = c;
    maxc = std::max(maxc, c);
  }
  result.num_colors = maxc;
  return result;
}

}  // namespace micg::color
