#include "micg/color/jones_plassmann.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "micg/graph/permute.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

template <micg::graph::CsrGraph G>
iterative_result jones_plassmann_color(const G& g, const jp_options& opt) {
  using VId = typename G::vertex_type;
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  const VId n = g.num_vertices();

  // Random priorities: a permutation gives distinct values (ties would
  // deadlock the local-max rule).
  const auto priority = micg::graph::random_permutation(n, opt.seed);

  std::vector<std::atomic<int>> color(static_cast<std::size_t>(n));
  for (auto& c : color) c.store(0, std::memory_order_relaxed);

  const auto cap = static_cast<std::size_t>(g.max_degree()) + 2;
  rt::enumerable_thread_specific<forbidden_marks> scratch(
      opt.ex.threads, [cap] { return forbidden_marks(cap); });

  std::vector<VId> active(static_cast<std::size_t>(n));
  std::iota(active.begin(), active.end(), VId{0});
  std::vector<VId> next(active.size());

  iterative_result result;
  while (!active.empty()) {
    MICG_CHECK(result.rounds < opt.max_rounds,
               "Jones-Plassmann failed to converge");
    ++result.rounds;
    std::atomic<std::size_t> cursor{0};
    next.resize(active.size());

    rt::for_range(
        opt.ex, static_cast<std::int64_t>(active.size()),
        [&](std::int64_t b, std::int64_t e, int) {
          forbidden_marks& marks = scratch.local();
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = active[static_cast<std::size_t>(i)];
            // Local max among *uncolored* neighbors?
            bool is_max = true;
            for (VId w : g.neighbors(v)) {
              if (color[static_cast<std::size_t>(w)].load(
                      std::memory_order_relaxed) == 0 &&
                  priority[static_cast<std::size_t>(w)] >
                      priority[static_cast<std::size_t>(v)]) {
                is_max = false;
                break;
              }
            }
            if (!is_max) {
              next[cursor.fetch_add(1, std::memory_order_relaxed)] = v;
              continue;
            }
            // Safe to color: all higher-priority neighbors are done and
            // no same-round neighbor can also be a local max.
            for (VId w : g.neighbors(v)) {
              marks.forbid(color[static_cast<std::size_t>(w)].load(
                               std::memory_order_relaxed),
                           v);
            }
            color[static_cast<std::size_t>(v)].store(
                marks.first_allowed(v), std::memory_order_relaxed);
          }
        });

    next.resize(cursor.load(std::memory_order_relaxed));
    active.swap(next);
    result.conflicts_per_round.push_back(0);  // by construction
  }

  result.color.resize(static_cast<std::size_t>(n));
  int maxc = 0;
  for (VId v = 0; v < n; ++v) {
    const int c =
        color[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    result.color[static_cast<std::size_t>(v)] = c;
    maxc = std::max(maxc, c);
  }
  result.num_colors = maxc;
  return result;
}

#define MICG_INSTANTIATE(G)                           \
  template iterative_result jones_plassmann_color<G>( \
      const G&, const jp_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::color
