#include "micg/color/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "micg/support/assert.hpp"

namespace micg::color {

template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> largest_first_order(const G& g) {
  using VId = typename G::vertex_type;
  std::vector<VId> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), VId{0});
  std::stable_sort(order.begin(), order.end(), [&](VId a, VId b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

namespace {

/// Smallest-last elimination; returns (reverse removal order, degeneracy).
/// Bucket queue implementation, O(|V| + |E|).
template <micg::graph::CsrGraph G>
std::pair<std::vector<typename G::vertex_type>, int> smallest_last_impl(
    const G& g) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  std::vector<int> deg(static_cast<std::size_t>(n));
  const auto max_deg = static_cast<std::size_t>(g.max_degree());
  std::vector<std::vector<VId>> buckets(max_deg + 1);
  for (VId v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = static_cast<int>(g.degree(v));
    buckets[static_cast<std::size_t>(g.degree(v))].push_back(v);
  }
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  std::vector<VId> removal;
  removal.reserve(static_cast<std::size_t>(n));
  int degen = 0;
  std::size_t cursor = 0;  // lowest possibly-non-empty bucket
  for (VId count = 0; count < n; ++count) {
    // Find the lowest non-empty bucket with a live vertex.
    while (true) {
      while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
      MICG_CHECK(cursor <= max_deg, "elimination ran out of vertices");
      const VId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[static_cast<std::size_t>(v)] ||
          deg[static_cast<std::size_t>(v)] !=
              static_cast<int>(cursor)) {
        continue;  // stale entry
      }
      removed[static_cast<std::size_t>(v)] = true;
      removal.push_back(v);
      degen = std::max(degen, static_cast<int>(cursor));
      for (VId w : g.neighbors(v)) {
        if (!removed[static_cast<std::size_t>(w)]) {
          const int dw = --deg[static_cast<std::size_t>(w)];
          buckets[static_cast<std::size_t>(dw)].push_back(w);
          if (static_cast<std::size_t>(dw) < cursor) {
            cursor = static_cast<std::size_t>(dw);
          }
        }
      }
      break;
    }
  }
  std::reverse(removal.begin(), removal.end());
  return {std::move(removal), degen};
}

}  // namespace

template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> smallest_last_order(const G& g) {
  return smallest_last_impl(g).first;
}

template <micg::graph::CsrGraph G>
int degeneracy(const G& g) {
  if (g.num_vertices() == 0) return 0;
  return smallest_last_impl(g).second;
}

template <micg::graph::CsrGraph G>
std::vector<typename G::vertex_type> incidence_order(const G& g) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  std::vector<int> back_degree(static_cast<std::size_t>(n), 0);
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  const auto max_deg = static_cast<std::size_t>(g.max_degree());
  // Bucket queue keyed by back-degree (monotone non-decreasing per
  // vertex), highest bucket first.
  std::vector<std::vector<VId>> buckets(max_deg + 1);
  for (VId v = 0; v < n; ++v) buckets[0].push_back(v);
  std::vector<VId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::size_t cursor = 0;  // highest possibly-non-empty bucket
  for (VId count = 0; count < n; ++count) {
    for (;;) {
      while (buckets[cursor].empty()) {
        MICG_CHECK(cursor > 0 || !buckets[0].empty(),
                   "incidence order ran out of vertices");
        if (cursor == 0) break;
        --cursor;
      }
      const VId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (visited[static_cast<std::size_t>(v)] ||
          back_degree[static_cast<std::size_t>(v)] !=
              static_cast<int>(cursor)) {
        continue;  // stale
      }
      visited[static_cast<std::size_t>(v)] = true;
      order.push_back(v);
      for (VId w : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(w)]) {
          const int bw = ++back_degree[static_cast<std::size_t>(w)];
          buckets[static_cast<std::size_t>(bw)].push_back(w);
          if (static_cast<std::size_t>(bw) > cursor) {
            cursor = static_cast<std::size_t>(bw);
          }
        }
      }
      break;
    }
  }
  return order;
}

#define MICG_INSTANTIATE(G)                                              \
  template std::vector<typename G::vertex_type> largest_first_order<G>(  \
      const G&);                                                         \
  template std::vector<typename G::vertex_type> smallest_last_order<G>(  \
      const G&);                                                         \
  template std::vector<typename G::vertex_type> incidence_order<G>(      \
      const G&);                                                         \
  template int degeneracy<G>(const G&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::color
