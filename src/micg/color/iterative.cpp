#include "micg/color/iterative.hpp"

#include <atomic>
#include <memory>
#include <numeric>

#include "micg/obs/obs.hpp"
#include "micg/rt/reducer.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

namespace {

/// Per-thread forbidden-color scratch, either preallocated per worker id
/// (OpenMP / Cilk-tid variants: "localFC are stored contiguously in memory
/// ... each thread obtains a pointer ... using their thread IDs as an
/// offset", §IV-A1) or created on demand as views (Cilk holder / TBB
/// enumerable_thread_specific, §IV-A2/3).
class scratch_provider {
 public:
  scratch_provider(rt::backend kind, int threads, std::size_t capacity)
      : by_worker_id_(kind == rt::backend::omp_static ||
                      kind == rt::backend::omp_static_chunked ||
                      kind == rt::backend::omp_dynamic ||
                      kind == rt::backend::omp_guided ||
                      kind == rt::backend::cilk_tid),
        views_(threads, [capacity] { return forbidden_marks(capacity); }) {
    if (by_worker_id_) {
      slots_.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        slots_.push_back(std::make_unique<forbidden_marks>(capacity));
      }
    }
  }

  forbidden_marks& get(int worker) {
    if (by_worker_id_) return *slots_[static_cast<std::size_t>(worker)];
    return views_.local();
  }

  [[nodiscard]] bool uses_worker_id() const { return by_worker_id_; }

 private:
  bool by_worker_id_;
  std::vector<std::unique_ptr<forbidden_marks>> slots_;
  rt::enumerable_thread_specific<forbidden_marks> views_;
};

}  // namespace

template <micg::graph::CsrGraph G>
iterative_result iterative_color(const G& g, const iterative_options& opt) {
  using VId = typename G::vertex_type;
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  MICG_CHECK(opt.max_rounds >= 1, "need at least one round");
  const VId n = g.num_vertices();
  const auto cap = static_cast<std::size_t>(g.max_degree()) + 2;

  // Colors are written/read concurrently by design (speculation): relaxed
  // atomics make the benign race well-defined without costing anything on
  // x86 (plain loads/stores).
  std::vector<std::atomic<int>> color(static_cast<std::size_t>(n));
  for (auto& c : color) c.store(0, std::memory_order_relaxed);

  std::vector<VId> visit(static_cast<std::size_t>(n));
  std::iota(visit.begin(), visit.end(), VId{0});

  scratch_provider scratch(opt.ex.kind, opt.ex.threads, cap);
  rt::reducer_max<int> maxcolor(opt.ex.threads, 0);

  obs::recorder* rec = opt.ex.sink();
  obs::counter* tentative_ctr =
      rec != nullptr ? &rec->get_counter("color.tentative_colorings")
                     : nullptr;

  iterative_result result;
  std::vector<VId> conflicts(visit.size());

  while (!visit.empty()) {
    MICG_CHECK(result.rounds < opt.max_rounds,
               "iterative coloring failed to converge");
    ++result.rounds;
    obs::span round_span =
        rec != nullptr ? rec->start_span("color.round", result.rounds - 1)
                       : obs::span();
    round_span.value("visit", static_cast<double>(visit.size()));

    // --- ParTentativeColoring (Algorithm 3) --------------------------------
    rt::for_range(opt.ex, static_cast<std::int64_t>(visit.size()),
                  [&](std::int64_t b, std::int64_t e, int worker) {
                    forbidden_marks& marks = scratch.get(worker);
                    if (tentative_ctr != nullptr) {
                      tentative_ctr->add(worker,
                                         static_cast<std::uint64_t>(e - b));
                    }
                    for (std::int64_t i = b; i < e; ++i) {
                      const VId v = visit[static_cast<std::size_t>(i)];
                      for (VId w : g.neighbors(v)) {
                        marks.forbid(color[static_cast<std::size_t>(w)].load(
                                         std::memory_order_relaxed),
                                     v);
                      }
                      const int c = marks.first_allowed(v);
                      color[static_cast<std::size_t>(v)].store(
                          c, std::memory_order_relaxed);
                      maxcolor.update(c);
                    }
                  });

    // --- ParDetectConflict (Algorithm 4) -----------------------------------
    // "the number of conflicting vertices is usually low, we use an atomic
    // fetch and add to obtain a unique index in the Conflict array" (§IV-A).
    conflicts.resize(visit.size());
    std::atomic<std::size_t> cursor{0};
    rt::for_range(
        opt.ex, static_cast<std::int64_t>(visit.size()),
        [&](std::int64_t b, std::int64_t e, int) {
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = visit[static_cast<std::size_t>(i)];
            const int cv = color[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed);
            for (VId w : g.neighbors(v)) {
              if (cv == color[static_cast<std::size_t>(w)].load(
                            std::memory_order_relaxed) &&
                  v < w) {
                const std::size_t idx =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                conflicts[idx] = v;
                break;
              }
            }
          }
        });
    conflicts.resize(cursor.load(std::memory_order_relaxed));
    result.conflicts_per_round.push_back(conflicts.size());
    round_span.value("conflicts", static_cast<double>(conflicts.size()));
    visit.swap(conflicts);
  }

  result.color.resize(static_cast<std::size_t>(n));
  int exact_max = 0;
  for (VId v = 0; v < n; ++v) {
    const int c =
        color[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    result.color[static_cast<std::size_t>(v)] = c;
    exact_max = std::max(exact_max, c);
  }
  // The reducer tracks the max over *tentative* colors across all rounds;
  // repairs can recolor the sole holder of the top color downward, so the
  // exact count comes from the final array (reducer is an upper bound).
  MICG_ASSERT(maxcolor.get() >= exact_max);
  result.num_colors = exact_max;
  if (rec != nullptr) {
    rec->set_meta("kernel", "iterative_color");
    rec->set_meta("backend", rt::backend_name(opt.ex.kind));
    rec->get_counter("color.rounds")
        .add(0, static_cast<std::uint64_t>(result.rounds));
    std::size_t conflicts_total = 0;
    for (std::size_t c : result.conflicts_per_round) conflicts_total += c;
    rec->get_counter("color.conflicts")
        .add(0, static_cast<std::uint64_t>(conflicts_total));
    rec->set_value("color.num_colors",
                   static_cast<double>(result.num_colors));
  }
  return result;
}

#define MICG_INSTANTIATE(G)                     \
  template iterative_result iterative_color<G>( \
      const G&, const iterative_options&);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::color
