// Jones–Plassmann parallel coloring — the classic conflict-free
// alternative to the paper's speculate-and-repair scheme, provided as the
// comparison baseline (the paper's related work [16] contrasts both
// families). Each vertex gets a random priority; in each round, every
// uncolored vertex that is a local maximum among its uncolored neighbors
// colors itself first-fit. No conflicts ever occur, at the price of many
// more rounds than the iterative algorithm — exactly the trade-off
// bench/ablate_coloring_algo quantifies.
#pragma once

#include <cstdint>

#include "micg/color/iterative.hpp"
#include "micg/graph/csr.hpp"

namespace micg::color {

struct jp_options {
  rt::exec ex;
  std::uint64_t seed = 1;  ///< priority permutation seed
  int max_rounds = 1 << 20;
};

/// Run Jones–Plassmann. The result's `rounds` counts priority rounds and
/// `conflicts_per_round` is always all-zero (kept for interface parity
/// with iterative_color). Defined for every shipped layout.
template <micg::graph::CsrGraph G>
iterative_result jones_plassmann_color(const G& g, const jp_options& opt);

}  // namespace micg::color
