#include "micg/color/greedy.hpp"

#include <algorithm>

#include "micg/graph/permute.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

namespace {

template <micg::graph::CsrGraph G>
coloring greedy_color_impl(const G& g,
                           std::span<const typename G::vertex_type> order) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  coloring result;
  result.color.assign(static_cast<std::size_t>(n), 0);
  int maxcolor = 0;
  if (static_cast<std::int64_t>(g.max_degree()) >= bitset_degree_threshold) {
    // High-degree graphs: the bit-per-color scratch keeps the forbidden
    // set cache-resident and scans it a word at a time.
    forbidden_bitset forbidden(static_cast<std::size_t>(g.max_degree()) + 2);
    for (VId v : order) {
      for (VId w : g.neighbors(v)) {
        forbidden.forbid(result.color[static_cast<std::size_t>(w)]);
      }
      const int c = forbidden.first_allowed();
      forbidden.reset();
      result.color[static_cast<std::size_t>(v)] = c;
      maxcolor = std::max(maxcolor, c);
    }
  } else {
    forbidden_marks forbidden(static_cast<std::size_t>(g.max_degree()) + 2);
    for (VId v : order) {
      for (VId w : g.neighbors(v)) {
        forbidden.forbid(result.color[static_cast<std::size_t>(w)], v);
      }
      const int c = forbidden.first_allowed(v);
      result.color[static_cast<std::size_t>(v)] = c;
      maxcolor = std::max(maxcolor, c);
    }
  }
  result.num_colors = maxcolor;
  return result;
}

}  // namespace

template <micg::graph::CsrGraph G>
coloring greedy_color(const G& g) {
  const auto order = micg::graph::identity_permutation(g.num_vertices());
  return greedy_color_impl(g, std::span<const typename G::vertex_type>(order));
}

template <micg::graph::CsrGraph G>
coloring greedy_color(const G& g,
                      std::span<const typename G::vertex_type> order) {
  using VId = typename G::vertex_type;
  MICG_CHECK(static_cast<VId>(order.size()) == g.num_vertices(),
             "order must cover every vertex exactly once");
  std::vector<VId> check(order.begin(), order.end());
  MICG_CHECK(micg::graph::is_permutation(check),
             "order must be a permutation of the vertex set");
  return greedy_color_impl(g, order);
}

#define MICG_INSTANTIATE(G)                  \
  template coloring greedy_color<G>(const G&); \
  template coloring greedy_color<G>(           \
      const G&, std::span<const typename G::vertex_type>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::color
