#include "micg/color/greedy.hpp"

#include <algorithm>

#include "micg/graph/permute.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

namespace {

coloring greedy_color_impl(const csr_graph& g,
                           std::span<const vertex_t> order) {
  const vertex_t n = g.num_vertices();
  coloring result;
  result.color.assign(static_cast<std::size_t>(n), 0);
  forbidden_marks forbidden(static_cast<std::size_t>(g.max_degree()) + 2);
  int maxcolor = 0;
  for (vertex_t v : order) {
    for (vertex_t w : g.neighbors(v)) {
      forbidden.forbid(result.color[static_cast<std::size_t>(w)], v);
    }
    const int c = forbidden.first_allowed(v);
    result.color[static_cast<std::size_t>(v)] = c;
    maxcolor = std::max(maxcolor, c);
  }
  result.num_colors = maxcolor;
  return result;
}

}  // namespace

coloring greedy_color(const csr_graph& g) {
  const auto order = micg::graph::identity_permutation(g.num_vertices());
  return greedy_color_impl(g, order);
}

coloring greedy_color(const csr_graph& g,
                      std::span<const vertex_t> order) {
  MICG_CHECK(static_cast<vertex_t>(order.size()) == g.num_vertices(),
             "order must cover every vertex exactly once");
  std::vector<vertex_t> check(order.begin(), order.end());
  MICG_CHECK(micg::graph::is_permutation(check),
             "order must be a permutation of the vertex set");
  return greedy_color_impl(g, order);
}

}  // namespace micg::color
