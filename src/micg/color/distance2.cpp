#include "micg/color/distance2.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "micg/rt/reducer.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

namespace {

/// Scratch capacity: first-fit distance-2 never needs more than
/// min(Delta^2 + 2, n + 1) slots.
template <micg::graph::CsrGraph G>
std::size_t d2_capacity(const G& g) {
  const auto d = static_cast<std::size_t>(g.max_degree());
  const auto by_degree = d * d + 2;
  const auto by_n = static_cast<std::size_t>(g.num_vertices()) + 2;
  return std::min(by_degree, by_n);
}

/// Visit the distance <= 2 neighborhood of v (excluding v itself; w == v
/// two-hop paths are skipped).
template <micg::graph::CsrGraph G, typename F>
void for_d2_neighborhood(const G& g, typename G::vertex_type v, F&& f) {
  using VId = typename G::vertex_type;
  for (VId w : g.neighbors(v)) {
    f(w);
    for (VId x : g.neighbors(w)) {
      if (x != v) f(x);
    }
  }
}

}  // namespace

template <micg::graph::CsrGraph G>
coloring greedy_color_distance2(const G& g) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  coloring result;
  result.color.assign(static_cast<std::size_t>(n), 0);
  forbidden_marks forbidden(d2_capacity(g));
  int maxcolor = 0;
  for (VId v = 0; v < n; ++v) {
    for_d2_neighborhood(g, v, [&](VId u) {
      forbidden.forbid(result.color[static_cast<std::size_t>(u)], v);
    });
    const int c = forbidden.first_allowed(v);
    result.color[static_cast<std::size_t>(v)] = c;
    maxcolor = std::max(maxcolor, c);
  }
  result.num_colors = maxcolor;
  return result;
}

template <micg::graph::CsrGraph G>
bool is_valid_distance2_coloring(const G& g, std::span<const int> color) {
  using VId = typename G::vertex_type;
  const VId n = g.num_vertices();
  if (static_cast<VId>(color.size()) != n) return false;
  for (VId v = 0; v < n; ++v) {
    if (color[static_cast<std::size_t>(v)] < 1) return false;
    bool ok = true;
    for_d2_neighborhood(g, v, [&](VId u) {
      if (u != v && color[static_cast<std::size_t>(u)] ==
                        color[static_cast<std::size_t>(v)]) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  return true;
}

template <micg::graph::CsrGraph G>
iterative_result iterative_color_distance2(const G& g,
                                           const iterative_options& opt) {
  using VId = typename G::vertex_type;
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  const VId n = g.num_vertices();
  const std::size_t cap = d2_capacity(g);

  std::vector<std::atomic<int>> color(static_cast<std::size_t>(n));
  for (auto& c : color) c.store(0, std::memory_order_relaxed);

  std::vector<VId> visit(static_cast<std::size_t>(n));
  std::iota(visit.begin(), visit.end(), VId{0});

  rt::enumerable_thread_specific<forbidden_marks> scratch(
      opt.ex.threads, [cap] { return forbidden_marks(cap); });

  iterative_result result;
  std::vector<VId> conflicts(visit.size());

  while (!visit.empty()) {
    MICG_CHECK(result.rounds < opt.max_rounds,
               "iterative distance-2 coloring failed to converge");
    ++result.rounds;

    rt::for_range(opt.ex, static_cast<std::int64_t>(visit.size()),
                  [&](std::int64_t b, std::int64_t e, int) {
                    forbidden_marks& marks = scratch.local();
                    for (std::int64_t i = b; i < e; ++i) {
                      const VId v = visit[static_cast<std::size_t>(i)];
                      for_d2_neighborhood(g, v, [&](VId u) {
                        marks.forbid(
                            color[static_cast<std::size_t>(u)].load(
                                std::memory_order_relaxed),
                            v);
                      });
                      color[static_cast<std::size_t>(v)].store(
                          marks.first_allowed(v), std::memory_order_relaxed);
                    }
                  });

    conflicts.resize(visit.size());
    std::atomic<std::size_t> cursor{0};
    rt::for_range(
        opt.ex, static_cast<std::int64_t>(visit.size()),
        [&](std::int64_t b, std::int64_t e, int) {
          for (std::int64_t i = b; i < e; ++i) {
            const VId v = visit[static_cast<std::size_t>(i)];
            const int cv = color[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed);
            bool conflicted = false;
            for_d2_neighborhood(g, v, [&](VId u) {
              if (!conflicted && v < u &&
                  cv == color[static_cast<std::size_t>(u)].load(
                            std::memory_order_relaxed)) {
                conflicted = true;
              }
            });
            if (conflicted) {
              conflicts[cursor.fetch_add(1, std::memory_order_relaxed)] = v;
            }
          }
        });
    conflicts.resize(cursor.load(std::memory_order_relaxed));
    result.conflicts_per_round.push_back(conflicts.size());
    visit.swap(conflicts);
  }

  result.color.resize(static_cast<std::size_t>(n));
  int maxc = 0;
  for (VId v = 0; v < n; ++v) {
    const int c =
        color[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    result.color[static_cast<std::size_t>(v)] = c;
    maxc = std::max(maxc, c);
  }
  result.num_colors = maxc;
  return result;
}

#define MICG_INSTANTIATE(G)                                        \
  template coloring greedy_color_distance2<G>(const G&);           \
  template iterative_result iterative_color_distance2<G>(          \
      const G&, const iterative_options&);                         \
  template bool is_valid_distance2_coloring<G>(                    \
      const G&, std::span<const int>);
MICG_FOR_EACH_CSR_LAYOUT(MICG_INSTANTIATE)
#undef MICG_INSTANTIATE

}  // namespace micg::color
