#include "micg/color/distance2.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "micg/rt/reducer.hpp"
#include "micg/rt/tls.hpp"
#include "micg/support/assert.hpp"

namespace micg::color {

using micg::graph::csr_graph;
using micg::graph::vertex_t;

namespace {

/// Scratch capacity: first-fit distance-2 never needs more than
/// min(Delta^2 + 2, n + 1) slots.
std::size_t d2_capacity(const csr_graph& g) {
  const auto d = static_cast<std::size_t>(g.max_degree());
  const auto by_degree = d * d + 2;
  const auto by_n = static_cast<std::size_t>(g.num_vertices()) + 2;
  return std::min(by_degree, by_n);
}

/// Visit the distance <= 2 neighborhood of v (excluding v itself; w == v
/// two-hop paths are skipped).
template <typename F>
void for_d2_neighborhood(const csr_graph& g, vertex_t v, F&& f) {
  for (vertex_t w : g.neighbors(v)) {
    f(w);
    for (vertex_t x : g.neighbors(w)) {
      if (x != v) f(x);
    }
  }
}

}  // namespace

coloring greedy_color_distance2(const csr_graph& g) {
  const vertex_t n = g.num_vertices();
  coloring result;
  result.color.assign(static_cast<std::size_t>(n), 0);
  forbidden_marks forbidden(d2_capacity(g));
  int maxcolor = 0;
  for (vertex_t v = 0; v < n; ++v) {
    for_d2_neighborhood(g, v, [&](vertex_t u) {
      forbidden.forbid(result.color[static_cast<std::size_t>(u)], v);
    });
    const int c = forbidden.first_allowed(v);
    result.color[static_cast<std::size_t>(v)] = c;
    maxcolor = std::max(maxcolor, c);
  }
  result.num_colors = maxcolor;
  return result;
}

bool is_valid_distance2_coloring(const csr_graph& g,
                                 std::span<const int> color) {
  const vertex_t n = g.num_vertices();
  if (static_cast<vertex_t>(color.size()) != n) return false;
  for (vertex_t v = 0; v < n; ++v) {
    if (color[static_cast<std::size_t>(v)] < 1) return false;
    bool ok = true;
    for_d2_neighborhood(g, v, [&](vertex_t u) {
      if (u != v && color[static_cast<std::size_t>(u)] ==
                        color[static_cast<std::size_t>(v)]) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  return true;
}

iterative_result iterative_color_distance2(const csr_graph& g,
                                           const iterative_options& opt) {
  MICG_CHECK(opt.ex.threads >= 1, "need at least one thread");
  const vertex_t n = g.num_vertices();
  const std::size_t cap = d2_capacity(g);

  std::vector<std::atomic<int>> color(static_cast<std::size_t>(n));
  for (auto& c : color) c.store(0, std::memory_order_relaxed);

  std::vector<vertex_t> visit(static_cast<std::size_t>(n));
  std::iota(visit.begin(), visit.end(), vertex_t{0});

  rt::enumerable_thread_specific<forbidden_marks> scratch(
      opt.ex.threads, [cap] { return forbidden_marks(cap); });

  iterative_result result;
  std::vector<vertex_t> conflicts(visit.size());

  while (!visit.empty()) {
    MICG_CHECK(result.rounds < opt.max_rounds,
               "iterative distance-2 coloring failed to converge");
    ++result.rounds;

    rt::for_range(opt.ex, static_cast<std::int64_t>(visit.size()),
                  [&](std::int64_t b, std::int64_t e, int) {
                    forbidden_marks& marks = scratch.local();
                    for (std::int64_t i = b; i < e; ++i) {
                      const vertex_t v = visit[static_cast<std::size_t>(i)];
                      for_d2_neighborhood(g, v, [&](vertex_t u) {
                        marks.forbid(
                            color[static_cast<std::size_t>(u)].load(
                                std::memory_order_relaxed),
                            v);
                      });
                      color[static_cast<std::size_t>(v)].store(
                          marks.first_allowed(v), std::memory_order_relaxed);
                    }
                  });

    conflicts.resize(visit.size());
    std::atomic<std::size_t> cursor{0};
    rt::for_range(
        opt.ex, static_cast<std::int64_t>(visit.size()),
        [&](std::int64_t b, std::int64_t e, int) {
          for (std::int64_t i = b; i < e; ++i) {
            const vertex_t v = visit[static_cast<std::size_t>(i)];
            const int cv = color[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed);
            bool conflicted = false;
            for_d2_neighborhood(g, v, [&](vertex_t u) {
              if (!conflicted && v < u &&
                  cv == color[static_cast<std::size_t>(u)].load(
                            std::memory_order_relaxed)) {
                conflicted = true;
              }
            });
            if (conflicted) {
              conflicts[cursor.fetch_add(1, std::memory_order_relaxed)] = v;
            }
          }
        });
    conflicts.resize(cursor.load(std::memory_order_relaxed));
    result.conflicts_per_round.push_back(conflicts.size());
    visit.swap(conflicts);
  }

  result.color.resize(static_cast<std::size_t>(n));
  int maxc = 0;
  for (vertex_t v = 0; v < n; ++v) {
    const int c =
        color[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    result.color[static_cast<std::size_t>(v)] = c;
    maxc = std::max(maxc, c);
  }
  result.num_colors = maxc;
  return result;
}

}  // namespace micg::color
