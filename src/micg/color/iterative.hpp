// Iterative parallel greedy coloring — Algorithms 2–4 of the paper
// (Gebremedhin–Manne speculation + Bozdağ et al. iterative conflict
// resolution, as implemented for multithreaded machines by Çatalyürek et
// al. [17]).
//
// Each round speculatively first-fit colors the Visit set in parallel
// (ParTentativeColoring), then detects conflicting vertices in parallel
// (ParDetectConflict); the conflict set becomes the next round's Visit set.
// Benign data races on the color array are intentional and contained in
// relaxed atomics; the conflict queue index is an atomic fetch-and-add
// (§IV-A).
//
// The execution backend (OpenMP-style schedule / Cilk-style work stealing /
// TBB-style partitioner), thread count and chunk size come from rt::exec,
// so one implementation covers all nine variants of Figure 1. Per-thread
// forbidden-color scratch is selected per the paper: worker-id-indexed
// arrays for the OpenMP and Cilk-tid variants, on-demand views
// (holder / enumerable_thread_specific) for Cilk-holder and all TBB
// variants.
#pragma once

#include <cstddef>
#include <vector>

#include "micg/color/greedy.hpp"
#include "micg/graph/csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::color {

struct iterative_options {
  rt::exec ex;            ///< backend, threads, chunk size
  int max_rounds = 1000;  ///< safety bound; the algorithm converges long before
};

struct iterative_result {
  std::vector<int> color;  ///< valid coloring (1-based)
  int num_colors = 0;
  int rounds = 0;  ///< tentative/detect iterations executed
  /// Conflicts detected after round r (size == rounds; last entry is 0).
  std::vector<std::size_t> conflicts_per_round;
};

/// Run the iterative parallel coloring. The result is always a valid
/// coloring (a MICG_CHECK enforces convergence within max_rounds).
/// Defined for every shipped layout.
template <micg::graph::CsrGraph G>
iterative_result iterative_color(const G& g, const iterative_options& opt);

}  // namespace micg::color
