#include "micg/support/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace micg {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != 'K' &&
        c != 'M' && c != 'x' && c != '%') {
      return false;
    }
  }
  return true;
}
}  // namespace

void table_printer::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void table_printer::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void table_printer::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";

  auto emit = [&](const std::vector<std::string>& r, bool is_header) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      const bool right = !is_header && looks_numeric(cell);
      os << (c ? "  " : "");
      os << (right ? std::setiosflags(std::ios::right)
                   : std::setiosflags(std::ios::left));
      os << std::setw(static_cast<int>(width[c])) << cell;
      os << std::resetiosflags(std::ios::adjustfield);
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_, true);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r, false);
}

std::string table_printer::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string table_printer::fmt(std::size_t v) { return std::to_string(v); }

std::string table_printer::fmt(long long v) { return std::to_string(v); }

std::string table_printer::human(long long v) {
  std::ostringstream os;
  const double d = static_cast<double>(v);
  if (v >= 10'000'000) {
    os << std::fixed << std::setprecision(1) << d / 1e6 << "M";
  } else if (v >= 1'000'000) {
    os << std::fixed << std::setprecision(1) << d / 1e6 << "M";
  } else if (v >= 1'000) {
    os << std::fixed << std::setprecision(0) << d / 1e3 << "K";
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace micg
