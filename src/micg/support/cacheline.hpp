// Cache-line utilities: the destructive-interference size and a padded
// wrapper that keeps per-thread counters on private lines (false-sharing
// avoidance is load-bearing for every scalability result in the paper).
#pragma once

#include <cstddef>
#include <utility>

namespace micg {

/// Conservative destructive-interference size. 64 bytes on every x86 part
/// including the MIC family this library models.
inline constexpr std::size_t cacheline_size = 64;

/// Value padded out to a full cache line. Use for per-thread mutable slots
/// stored contiguously (local maxima, queue cursors, statistics).
template <typename T>
struct alignas(cacheline_size) padded {
  T value{};

  padded() = default;
  explicit padded(T v) : value(std::move(v)) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

static_assert(alignof(padded<int>) == cacheline_size);
static_assert(sizeof(padded<int>) == cacheline_size);

}  // namespace micg
