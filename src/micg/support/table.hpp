// Fixed-width console table printer.
//
// Every figure/table bench prints its series through this so the output is
// aligned, greppable, and diffable against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace micg {

/// Collects rows of strings and prints them with per-column alignment.
/// Numeric cells are right-aligned, text cells left-aligned.
class table_printer {
 public:
  /// `title` is printed above the table; empty suppresses it.
  explicit table_printer(std::string title = "") : title_(std::move(title)) {}

  /// Set the header row. Resets nothing else.
  void header(std::vector<std::string> cells);

  /// Append a data row. Rows may be ragged; short rows are padded.
  void row(std::vector<std::string> cells);

  /// Render to `os` with a separator under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Format helpers used by the benches.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::size_t v);
  static std::string fmt(long long v);
  /// 3300000 -> "3.3M", 448000 -> "448K" (Table I style).
  static std::string human(long long v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace micg
