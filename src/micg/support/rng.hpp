// Deterministic pseudo-random number generation.
//
// All stochastic pieces of micgraph (graph generators, vertex shuffles,
// work-stealing victim selection) draw from these generators so that every
// test, example and benchmark is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace micg {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to seed xoshiro and as a
/// cheap stateless mixer.
class splitmix64 {
 public:
  explicit splitmix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna). Fast, high-quality, 2^256-1 period.
class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256ss(std::uint64_t seed) {
    splitmix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound). Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply; rejection keeps the result unbiased.
    for (;;) {
      std::uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace micg
