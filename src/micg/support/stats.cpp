#include "micg/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "micg/support/assert.hpp"

namespace micg {

void running_stats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    MICG_CHECK(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

double tail_mean(std::span<const double> values, std::size_t kept) {
  if (values.empty()) return 0.0;
  kept = std::min(kept, values.size());
  return arithmetic_mean(values.subspan(values.size() - kept, kept));
}

}  // namespace micg
