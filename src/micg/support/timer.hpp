// Wall-clock stopwatch used by the measured side of every benchmark.
#pragma once

#include <chrono>

namespace micg {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch from now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace micg
