// Small statistics helpers used by the benchmark harness.
//
// The paper reports geometric means of per-graph speedups (§V-A) and the
// average of the last 5 of 10 runs; both conventions live here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace micg {

/// Welford one-pass accumulator for mean / variance / min / max.
class running_stats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values; 0 if the span is empty.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Arithmetic mean; 0 if empty.
[[nodiscard]] double arithmetic_mean(std::span<const double> values);

/// Median (averages the middle pair for even sizes); 0 if empty.
[[nodiscard]] double median(std::vector<double> values);

/// Paper §V-A convention: run `total` repetitions, average the last `kept`.
/// This helper just averages the tail of an already-collected vector.
[[nodiscard]] double tail_mean(std::span<const double> values,
                               std::size_t kept);

}  // namespace micg
