// Software-prefetch wrapper — the memory-hierarchy lever §VI of the paper
// points at: the irregular kernels stream the adjacency array sequentially
// but gather x[adj[e]] from all over memory, so issuing the gather's loads
// a configurable distance ahead hides most of the miss latency on both
// in-order (KNF) and out-of-order hosts.
//
// The wrapper compiles to `prefetcht0` where __builtin_prefetch exists and
// to nothing elsewhere; a prefetch is always semantics-free, so callers
// never need to guard uses (only the address computation must stay in
// bounds — prefetching any mapped address is safe, kernels clamp their
// cursor to the adjacency array).
#pragma once

namespace micg {

/// Hint that `p` will be read soon; high temporal locality (all levels).
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// True when prefetch_read emits a real instruction (for metrics tags).
constexpr bool prefetch_available() {
#if defined(__GNUC__) || defined(__clang__)
  return true;
#else
  return false;
#endif
}

}  // namespace micg
