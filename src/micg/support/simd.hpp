// Portable SIMD gather-accumulate layer.
//
// Every irregular kernel's hot loop is `for e in row: acc += x[adj[e]]` —
// a gather feeding an add, exactly the shape the paper's KNF vector units
// (and AVX2's vgatherdpd/vgatherqpd) were built for. This header wraps the
// intrinsics behind one function, gather_sum(), with a scalar fallback
// that is **bit-identical** to the vector path:
//
//   both paths accumulate into 8 stripes (stripe j sums elements j, j+8,
//   j+16, ...), fold the halves pairwise (t_j = s_j + s_{j+4}), and
//   reduce as (t0+t2)+(t1+t3). Fixing the association makes the result
//   independent of the ISA, so parity tests can require exact equality
//   between the vector build, the scalar fallback, and the MICG_NO_SIMD
//   build. Eight stripes rather than four because the vector path keeps
//   two independent accumulator registers in flight — one FP-add chain
//   per half — which halves the add-latency floor of the hot loop.
//   Rows below short_row_threshold skip the striped machinery and take
//   the same plain left-to-right sum on every path.
//
// Selection is purely compile-time (no CPUID dispatch): the AVX2 path is
// used when the translation unit is compiled with -mavx2/-march=native and
// MICG_NO_SIMD is not defined. The `vectorize` runtime knob lets one
// binary run both paths for ablations; it is ignored (always scalar) when
// the vector path is not compiled in.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(MICG_NO_SIMD) && defined(__AVX2__)
#define MICG_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace micg::simd {

/// Accumulation stripe width shared by every path (not the hardware
/// vector width — it is fixed so results never depend on the ISA).
inline constexpr int stripe_width = 8;

/// Rows shorter than this take a plain left-to-right sum on every path:
/// the striped setup/tail/fold costs ~2 dozen instructions per call,
/// which a low-degree row cannot amortize (the average RMAT row is ~15
/// edges). The rule depends only on n, never on the ISA, so the simd
/// knob still cannot change results.
inline constexpr std::size_t short_row_threshold = 16;

/// True when the vector gather path is compiled into this binary.
constexpr bool vectorized() {
#ifdef MICG_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

/// ISA the vector path targets ("avx2" or "scalar"), for metrics tags.
constexpr const char* isa_name() { return vectorized() ? "avx2" : "scalar"; }

/// Reference semantics: striped 8-accumulator sum of x[idx[0..n)] —
/// element k lands in stripe k % 8, the tail (in element order) fills
/// stripes 0..rem-1, halves fold pairwise (t_j = s_j + s_{j+4}), and the
/// final reduce is (t0+t2)+(t1+t3). Every other path must match this bit
/// for bit.
template <class Index>
double gather_sum_scalar(const double* x, const Index* idx, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += x[static_cast<std::size_t>(idx[i])];
    s1 += x[static_cast<std::size_t>(idx[i + 1])];
    s2 += x[static_cast<std::size_t>(idx[i + 2])];
    s3 += x[static_cast<std::size_t>(idx[i + 3])];
    s4 += x[static_cast<std::size_t>(idx[i + 4])];
    s5 += x[static_cast<std::size_t>(idx[i + 5])];
    s6 += x[static_cast<std::size_t>(idx[i + 6])];
    s7 += x[static_cast<std::size_t>(idx[i + 7])];
  }
  switch (n - i) {
    case 7:
      s6 += x[static_cast<std::size_t>(idx[i + 6])];
      [[fallthrough]];
    case 6:
      s5 += x[static_cast<std::size_t>(idx[i + 5])];
      [[fallthrough]];
    case 5:
      s4 += x[static_cast<std::size_t>(idx[i + 4])];
      [[fallthrough]];
    case 4:
      s3 += x[static_cast<std::size_t>(idx[i + 3])];
      [[fallthrough]];
    case 3:
      s2 += x[static_cast<std::size_t>(idx[i + 2])];
      [[fallthrough]];
    case 2:
      s1 += x[static_cast<std::size_t>(idx[i + 1])];
      [[fallthrough]];
    case 1:
      s0 += x[static_cast<std::size_t>(idx[i])];
      break;
    default:
      break;
  }
  const double t0 = s0 + s4;
  const double t1 = s1 + s5;
  const double t2 = s2 + s6;
  const double t3 = s3 + s7;
  return (t0 + t2) + (t1 + t3);
}

#ifdef MICG_SIMD_AVX2

/// One 4-wide masked gather of x[idx[0..4)]. The all-ones mask gathers
/// every lane; the masked form (with a zeroed pass-through source) is
/// used because the plain gather leaves its source operand formally
/// uninitialized, tripping -Wmaybe-uninitialized.
template <class Index>
inline __m256d gather4(const double* x, const Index* idx) {
  static_assert(sizeof(Index) == 4 || sizeof(Index) == 8,
                "gather supports 32- and 64-bit indices");
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  if constexpr (sizeof(Index) == 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, vi, all,
                                    sizeof(double));
  } else {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_mask_i64gather_pd(_mm256_setzero_pd(), x, vi, all,
                                    sizeof(double));
  }
}

/// AVX2 path: two independent accumulator registers — lane j of `acc_a`
/// is stripe j, lane j of `acc_b` is stripe j+4 — so consecutive gathers
/// feed alternating FP-add chains and the add latency overlaps. A tail of
/// 4..7 still takes one 4-wide gather (into stripes 0..3) before the
/// scalar patch-up. Stripe assignment, fold, and reduce match
/// gather_sum_scalar exactly.
template <class Index>
double gather_sum_vec(const double* x, const Index* idx, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_a = _mm256_add_pd(acc_a, gather4(x, idx + i));
    acc_b = _mm256_add_pd(acc_b, gather4(x, idx + i + 4));
  }
  const std::size_t rem = n - i;
  if (rem >= 4) acc_a = _mm256_add_pd(acc_a, gather4(x, idx + i));
  alignas(32) double sa[4];
  alignas(32) double sb[4];
  _mm256_store_pd(sa, acc_a);
  _mm256_store_pd(sb, acc_b);
  switch (rem) {
    case 7:
      sb[2] += x[static_cast<std::size_t>(idx[i + 6])];
      [[fallthrough]];
    case 6:
      sb[1] += x[static_cast<std::size_t>(idx[i + 5])];
      [[fallthrough]];
    case 5:
      sb[0] += x[static_cast<std::size_t>(idx[i + 4])];
      break;
    case 3:
      sa[2] += x[static_cast<std::size_t>(idx[i + 2])];
      [[fallthrough]];
    case 2:
      sa[1] += x[static_cast<std::size_t>(idx[i + 1])];
      [[fallthrough]];
    case 1:
      sa[0] += x[static_cast<std::size_t>(idx[i])];
      break;
    default:
      break;
  }
  const double t0 = sa[0] + sb[0];
  const double t1 = sa[1] + sb[1];
  const double t2 = sa[2] + sb[2];
  const double t3 = sa[3] + sb[3];
  return (t0 + t2) + (t1 + t3);
}

#endif  // MICG_SIMD_AVX2

/// Plain left-to-right sum, used by every path for short rows.
template <class Index>
inline double gather_sum_small(const double* x, const Index* idx,
                               std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[static_cast<std::size_t>(idx[i])];
  }
  return acc;
}

/// Sum of x[idx[0..n)]. Rows below short_row_threshold use the plain
/// left-to-right sum; longer rows use the striped-8 association, with
/// `vectorize` selecting the intrinsic path when it is compiled in. Every
/// choice of `vectorize` (and every build) returns bit-identical results.
template <class Index>
inline double gather_sum(const double* x, const Index* idx, std::size_t n,
                         bool vectorize = true) {
  if (n < short_row_threshold) return gather_sum_small(x, idx, n);
#ifdef MICG_SIMD_AVX2
  if (vectorize) return gather_sum_vec(x, idx, n);
#else
  (void)vectorize;
#endif
  return gather_sum_scalar(x, idx, n);
}

}  // namespace micg::simd
