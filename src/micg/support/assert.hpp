// Checked assertions for micgraph.
//
// MICG_CHECK(cond, msg)   -- always evaluated; throws micg::check_error on
//                            failure with file/line context. Use on API
//                            boundaries and invariants whose violation must
//                            never be silent, even in release builds.
// MICG_ASSERT(cond)       -- debug-only (compiled out under NDEBUG). Use on
//                            hot paths where the check would cost throughput.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace micg {

/// Thrown by MICG_CHECK when a checked invariant fails.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MICG_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw check_error(os.str());
}
}  // namespace detail

}  // namespace micg

#define MICG_CHECK(cond, msg)                                           \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::micg::detail::check_failed(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define MICG_ASSERT(cond) ((void)0)
#else
#define MICG_ASSERT(cond) MICG_CHECK(cond, "")
#endif
