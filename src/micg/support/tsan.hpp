// ThreadSanitizer detection.
//
// MICG_TSAN is 1 when the translation unit is compiled with
// -fsanitize=thread (GCC defines __SANITIZE_THREAD__, Clang exposes it via
// __has_feature). Used to scale stress workloads down under the ~5-20x
// TSan slowdown and to document, at the code site, decisions made for the
// benefit of the race detector.
//
// Policy note (docs/runtime.md "Memory model"): the runtime avoids
// *correctness* that only exists under MICG_TSAN. Synchronization is
// expressed with atomic release/acquire operations on the variables that
// carry the happens-before edges — never with standalone fences for
// payload publication, because TSan does not model fences and the code
// must be provable by the tool that CI runs.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define MICG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MICG_TSAN 1
#endif
#endif

#ifndef MICG_TSAN
#define MICG_TSAN 0
#endif
