// Shared infrastructure for the figure/table benchmark harnesses.
//
// Every bench prints two kinds of series:
//   * model:KNF / model:Host — machine-model speedups from traces of the
//     real algorithms (the series compared against the paper's figures);
//   * measured — wall-clock runs of the real threaded implementations on
//     the current host. On a small CI container these are recorded for
//     completeness; their absolute shape depends on the local core count.
//
// Environment knobs:
//   MICG_SCALE            graph scale for the modeled series (default 1.0)
//   MICG_MEASURED_SCALE   graph scale for measured runs (default 0.02)
//   MICG_MEASURED_THREADS comma list for measured sweeps (default "1,2,4,8")
//   MICG_RUNS             measured repetitions; the mean of the last
//                         half is reported (default 4; paper used 10/5)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/graph/suite.hpp"
#include "micg/support/table.hpp"

namespace micg::benchkit {

/// One curve: y value per thread count.
struct series {
  std::string name;
  std::vector<double> values;
};

/// Print a figure: rows = thread counts, one column per series.
void print_figure(const std::string& title,
                  const std::vector<int>& threads,
                  const std::vector<series>& curves);

/// Geometric mean across per-graph curves (paper §V-A convention).
series geomean_series(const std::string& name,
                      const std::vector<std::vector<double>>& per_graph);

/// Environment-configured parameters.
double model_scale();
double measured_scale();
std::vector<int> measured_threads();
int measured_runs();

/// Build (and memoize per process) a suite graph at `scale`.
const micg::graph::csr_graph& suite_graph(const std::string& name,
                                          double scale);

/// Run `body()` `runs` times and return the mean of the last half of the
/// wall-clock times (paper: 10 runs, mean of the last 5).
double time_stable(const std::function<void()>& body, int runs);

}  // namespace micg::benchkit
