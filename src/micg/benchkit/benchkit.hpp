// Shared infrastructure for the figure/table benchmark harnesses.
//
// Every bench prints two kinds of series:
//   * model:KNF / model:Host — machine-model speedups from traces of the
//     real algorithms (the series compared against the paper's figures);
//   * measured — wall-clock runs of the real threaded implementations on
//     the current host. On a small CI container these are recorded for
//     completeness; their absolute shape depends on the local core count.
//
// Configuration is parsed once into a benchkit::config and passed
// explicitly to the harness helpers:
//   MICG_SCALE            graph scale for the modeled series (default 1.0)
//   MICG_MEASURED_SCALE   graph scale for measured runs (default 0.02)
//   MICG_MEASURED_THREADS comma list for measured sweeps (default "1,2,4,8")
//   MICG_RUNS             measured repetitions; the mean of the last
//                         half is reported (default 4; paper used 10/5)
//   MICG_METRICS_JSON     path for the structured metrics record
//                         (--metrics-json PATH overrides; empty = off)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "micg/graph/csr.hpp"
#include "micg/graph/suite.hpp"
#include "micg/obs/obs.hpp"
#include "micg/support/table.hpp"

namespace micg::benchkit {

/// One curve: y value per thread count.
struct series {
  std::string name;
  std::vector<double> values;
};

/// Print a figure: rows = thread counts, one column per series.
void print_figure(const std::string& title,
                  const std::vector<int>& threads,
                  const std::vector<series>& curves);

/// Geometric mean across per-graph curves (paper §V-A convention).
series geomean_series(const std::string& name,
                      const std::vector<std::vector<double>>& per_graph);

/// All harness configuration, parsed once instead of re-read from the
/// environment at every call site.
struct config {
  double model_scale = 1.0;
  double measured_scale = 0.02;
  std::vector<int> measured_threads{1, 2, 4, 8};
  int measured_runs = 4;
  /// Output path for the structured metrics record; empty disables the
  /// metrics sink.
  std::string metrics_json;
  /// Which memory-hierarchy configurations the figure benches measure:
  /// "fast" (SIMD + prefetch + edge-balanced), "scalar" (the
  /// pre-optimization path), or "both" (one labeled curve set per path,
  /// so the fast-path speedup is reproducible from the shipped binaries).
  /// MICG_MEMOPT / --memopt override; invalid values are rejected.
  std::string memopt = "both";

  /// True when the scalar (fast) path should be measured under `memopt`.
  [[nodiscard]] bool run_scalar() const { return memopt != "fast"; }
  [[nodiscard]] bool run_fast() const { return memopt != "scalar"; }

  /// Parse the MICG_* environment variables.
  static config from_env();
  /// from_env() plus command-line overrides (--metrics-json PATH,
  /// --memopt fast|scalar|both).
  static config from_args(int argc, char** argv);
};

/// Collects obs snapshots and writes one micg.metrics.v1 file (see
/// obs/emit.hpp) on flush/destruction. A sink with an empty path is
/// disabled: record() drops, the destructor writes nothing.
class metrics_sink {
 public:
  explicit metrics_sink(std::string path) : path_(std::move(path)) {}
  ~metrics_sink();
  metrics_sink(const metrics_sink&) = delete;
  metrics_sink& operator=(const metrics_sink&) = delete;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  void record(obs::snapshot snap);
  /// Write the file now (also called by the destructor).
  void flush();

 private:
  std::string path_;
  std::vector<obs::snapshot> records_;
  bool dirty_ = false;
};

/// Run `body` once with a fresh recorder installed globally, stamp the
/// snapshot with `meta`, and record it into `sink`. When the sink is
/// disabled the body runs un-instrumented.
void record_run(
    metrics_sink& sink,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const std::function<void()>& body);

/// Build (and memoize per process) a suite graph at `scale`.
const micg::graph::csr_graph& suite_graph(const std::string& name,
                                          double scale);

/// Run `body()` `runs` times and return the mean of the last half of the
/// wall-clock times (paper: 10 runs, mean of the last 5).
double time_stable(const std::function<void()>& body, int runs);

}  // namespace micg::benchkit
