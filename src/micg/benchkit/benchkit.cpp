#include "micg/benchkit/benchkit.hpp"

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <utility>

#include "micg/obs/emit.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/stats.hpp"
#include "micg/support/timer.hpp"

namespace micg::benchkit {

void print_figure(const std::string& title,
                  const std::vector<int>& threads,
                  const std::vector<series>& curves) {
  table_printer t(title);
  std::vector<std::string> header{"threads"};
  for (const auto& c : curves) header.push_back(c.name);
  t.header(std::move(header));
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::vector<std::string> row{std::to_string(threads[i])};
    for (const auto& c : curves) {
      row.push_back(i < c.values.size() ? table_printer::fmt(c.values[i])
                                        : "-");
    }
    t.row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

series geomean_series(const std::string& name,
                      const std::vector<std::vector<double>>& per_graph) {
  series s;
  s.name = name;
  if (per_graph.empty()) return s;
  const std::size_t points = per_graph.front().size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<double> column;
    column.reserve(per_graph.size());
    for (const auto& pg : per_graph) {
      MICG_CHECK(pg.size() == points, "ragged per-graph series");
      column.push_back(pg[i]);
    }
    s.values.push_back(geometric_mean(column));
  }
  return s;
}

namespace {
double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}
}  // namespace

config config::from_env() {
  config c;
  c.model_scale = env_double("MICG_SCALE", c.model_scale);
  c.measured_scale = env_double("MICG_MEASURED_SCALE", c.measured_scale);
  c.measured_runs =
      static_cast<int>(env_double("MICG_RUNS",
                                  static_cast<double>(c.measured_runs)));
  if (const char* v = std::getenv("MICG_MEASURED_THREADS")) {
    std::vector<int> threads;
    std::stringstream ss(v);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int t = std::atoi(tok.c_str());
      if (t >= 1) threads.push_back(t);
    }
    if (!threads.empty()) c.measured_threads = std::move(threads);
  }
  if (const char* v = std::getenv("MICG_METRICS_JSON")) c.metrics_json = v;
  if (const char* v = std::getenv("MICG_MEMOPT")) c.memopt = v;
  MICG_CHECK(c.memopt == "fast" || c.memopt == "scalar" || c.memopt == "both",
             "MICG_MEMOPT must be fast, scalar or both");
  return c;
}

config config::from_args(int argc, char** argv) {
  config c = from_env();
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-json") {
      c.metrics_json = argv[i + 1];
    } else if (std::string(argv[i]) == "--memopt") {
      c.memopt = argv[i + 1];
    }
  }
  MICG_CHECK(c.memopt == "fast" || c.memopt == "scalar" || c.memopt == "both",
             "--memopt must be fast, scalar or both");
  return c;
}

metrics_sink::~metrics_sink() {
  try {
    flush();
  } catch (const std::exception& e) {
    std::cerr << "metrics sink: " << e.what() << "\n";
  }
}

void metrics_sink::record(obs::snapshot snap) {
  if (!enabled()) return;
  records_.push_back(std::move(snap));
  dirty_ = true;
}

void metrics_sink::flush() {
  if (!enabled() || !dirty_) return;
  obs::write_json_file(path_, records_);
  dirty_ = false;
}

void record_run(
    metrics_sink& sink,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const std::function<void()>& body) {
  if (!sink.enabled()) {
    body();
    return;
  }
  obs::recorder rec;
  {
    obs::scoped_global guard(rec);
    body();
  }
  for (const auto& [k, v] : meta) rec.set_meta(k, v);
  sink.record(rec.take());
}

const micg::graph::csr_graph& suite_graph(const std::string& name,
                                          double scale) {
  static std::map<std::pair<std::string, double>, micg::graph::csr_graph>
      cache;
  const auto key = std::make_pair(name, scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, micg::graph::make_suite_graph(
                               micg::graph::suite_entry_by_name(name),
                               scale))
             .first;
  }
  return it->second;
}

double time_stable(const std::function<void()>& body, int runs) {
  MICG_CHECK(runs >= 1, "need at least one run");
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    stopwatch sw;
    body();
    times.push_back(sw.seconds());
  }
  const auto kept = static_cast<std::size_t>((runs + 1) / 2);
  return tail_mean(times, kept);
}

}  // namespace micg::benchkit
