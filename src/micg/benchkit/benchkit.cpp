#include "micg/benchkit/benchkit.hpp"

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "micg/support/assert.hpp"
#include "micg/support/stats.hpp"
#include "micg/support/timer.hpp"

namespace micg::benchkit {

void print_figure(const std::string& title,
                  const std::vector<int>& threads,
                  const std::vector<series>& curves) {
  table_printer t(title);
  std::vector<std::string> header{"threads"};
  for (const auto& c : curves) header.push_back(c.name);
  t.header(std::move(header));
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::vector<std::string> row{std::to_string(threads[i])};
    for (const auto& c : curves) {
      row.push_back(i < c.values.size() ? table_printer::fmt(c.values[i])
                                        : "-");
    }
    t.row(std::move(row));
  }
  t.print(std::cout);
  std::cout << '\n';
}

series geomean_series(const std::string& name,
                      const std::vector<std::vector<double>>& per_graph) {
  series s;
  s.name = name;
  if (per_graph.empty()) return s;
  const std::size_t points = per_graph.front().size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<double> column;
    column.reserve(per_graph.size());
    for (const auto& pg : per_graph) {
      MICG_CHECK(pg.size() == points, "ragged per-graph series");
      column.push_back(pg[i]);
    }
    s.values.push_back(geometric_mean(column));
  }
  return s;
}

namespace {
double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}
}  // namespace

double model_scale() { return env_double("MICG_SCALE", 1.0); }

double measured_scale() { return env_double("MICG_MEASURED_SCALE", 0.02); }

std::vector<int> measured_threads() {
  std::vector<int> threads;
  if (const char* v = std::getenv("MICG_MEASURED_THREADS")) {
    std::stringstream ss(v);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int t = std::atoi(tok.c_str());
      if (t >= 1) threads.push_back(t);
    }
  }
  if (threads.empty()) threads = {1, 2, 4, 8};
  return threads;
}

int measured_runs() {
  return static_cast<int>(env_double("MICG_RUNS", 4.0));
}

const micg::graph::csr_graph& suite_graph(const std::string& name,
                                          double scale) {
  static std::map<std::pair<std::string, double>, micg::graph::csr_graph>
      cache;
  const auto key = std::make_pair(name, scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, micg::graph::make_suite_graph(
                               micg::graph::suite_entry_by_name(name),
                               scale))
             .first;
  }
  return it->second;
}

double time_stable(const std::function<void()>& body, int runs) {
  MICG_CHECK(runs >= 1, "need at least one run");
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    stopwatch sw;
    body();
    times.push_back(sw.seconds());
  }
  const auto kept = static_cast<std::size_t>((runs + 1) / 2);
  return tail_mean(times, kept);
}

}  // namespace micg::benchkit
