// Minimal JSON document type for the micg::api request/response surface
// and the micg::serve wire protocol.
//
// The library already ships a JSON *emitter/parser pair* specialized to
// the micg.metrics.v1 schema (obs/emit.hpp); requests are the opposite
// shape of problem — arbitrary client input that must be validated field
// by field — so the api layer carries a tiny generic value type instead
// of widening the metrics parser. Scope is deliberately small:
//
//  * values: null, bool, integer (int64), double, string, array, object;
//  * objects preserve insertion order, so dump() is deterministic and a
//    parse/dump round trip of server output is byte-stable (goldens);
//  * parse() enforces a nesting-depth cap and rejects trailing garbage;
//    every malformed input raises micg::check_error — never UB, matching
//    the discipline of the hardened graph readers (PR 3);
//  * integers that fit int64 round-trip exactly (vertex ids must not pass
//    through a double).
//
// No external dependency; this is the whole JSON surface of the server.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "micg/support/assert.hpp"

namespace micg::api {

class json;

/// Insertion-ordered key/value sequence (lookup is linear; API objects
/// have a handful of fields).
using json_object = std::vector<std::pair<std::string, json>>;
using json_array = std::vector<json>;

class json {
 public:
  enum class kind { null, boolean, integer, real, string, array, object };

  json() : v_(nullptr) {}
  json(std::nullptr_t) : v_(nullptr) {}
  json(bool b) : v_(b) {}
  json(std::int64_t i) : v_(i) {}
  json(int i) : v_(static_cast<std::int64_t>(i)) {}
  json(std::uint32_t i) : v_(static_cast<std::int64_t>(i)) {}
  json(double d) : v_(d) {}
  json(std::string s) : v_(std::move(s)) {}
  json(const char* s) : v_(std::string(s)) {}
  json(json_array a) : v_(std::move(a)) {}
  json(json_object o) : v_(std::move(o)) {}

  [[nodiscard]] kind type() const {
    return static_cast<kind>(v_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == kind::null; }
  [[nodiscard]] bool is_bool() const { return type() == kind::boolean; }
  [[nodiscard]] bool is_number() const {
    return type() == kind::integer || type() == kind::real;
  }
  [[nodiscard]] bool is_string() const { return type() == kind::string; }
  [[nodiscard]] bool is_array() const { return type() == kind::array; }
  [[nodiscard]] bool is_object() const { return type() == kind::object; }

  /// Checked accessors; throw micg::check_error on a type mismatch (the
  /// server maps that to a bad_request error).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< also accepts integral reals
  [[nodiscard]] double as_double() const;     ///< integer or real
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const json_array& as_array() const;
  [[nodiscard]] const json_object& as_object() const;

  /// Object field lookup; nullptr when absent (or when not an object).
  [[nodiscard]] const json* find(std::string_view key) const;
  /// Required object field; throws micg::check_error when absent.
  [[nodiscard]] const json& at(std::string_view key) const;
  /// Append/overwrite an object field (value must be an object or null;
  /// null promotes to an empty object first).
  void set(std::string_view key, json value);

  /// Serialize compactly (no whitespace); object order = insertion order.
  [[nodiscard]] std::string dump() const;

  /// Parse a complete JSON document. Throws micg::check_error on malformed
  /// input, nesting beyond `max_depth`, or trailing non-whitespace.
  static json parse(std::string_view text, int max_depth = 64);

  friend bool operator==(const json& a, const json& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               json_array, json_object>
      v_;
};

/// Escape and quote a string per JSON rules (shared with obs emitters'
/// conventions; control characters become \u00XX).
void json_append_escaped(std::string& out, std::string_view s);

}  // namespace micg::api
