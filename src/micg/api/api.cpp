#include "micg/api/api.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <span>
#include <unordered_map>
#include <utility>

#include "micg/bfs/centrality.hpp"
#include "micg/bfs/layered.hpp"
#include "micg/bfs/msbfs.hpp"
#include "micg/bfs/sharded.hpp"
#include "micg/bfs/sssp.hpp"
#include "micg/graph/components.hpp"
#include "micg/graph/weighted.hpp"
#include "micg/color/distance2.hpp"
#include "micg/color/iterative.hpp"
#include "micg/color/ordering.hpp"
#include "micg/color/verify.hpp"
#include "micg/bfs/direction.hpp"
#include "micg/graph/props.hpp"
#include "micg/graph/shard.hpp"
#include "micg/graph/stats.hpp"
#include "micg/irregular/pagerank.hpp"
#include "micg/irregular/sharded_pagerank.hpp"
#include "micg/tune/tune.hpp"

namespace micg::api {

namespace {

/// Optional-field readers shared by every *_request_from_json. `v` is the
/// params value (object or null); unknown fields are ignored for forward
/// compatibility, wrong-typed fields raise check_error.
void check_params_shape(const json& v) {
  MICG_CHECK(v.is_object() || v.is_null(),
             "request params must be a JSON object");
}

std::int64_t get_int(const json& v, std::string_view key, std::int64_t dflt) {
  const json* f = v.find(key);
  return f != nullptr ? f->as_int() : dflt;
}

double get_double(const json& v, std::string_view key, double dflt) {
  const json* f = v.find(key);
  return f != nullptr ? f->as_double() : dflt;
}

bool get_bool(const json& v, std::string_view key, bool dflt) {
  const json* f = v.find(key);
  return f != nullptr ? f->as_bool() : dflt;
}

std::string get_string(const json& v, std::string_view key,
                       const std::string& dflt) {
  const json* f = v.find(key);
  return f != nullptr ? f->as_string() : dflt;
}

std::vector<std::int64_t> get_int_array(const json& v, std::string_view key) {
  const json* f = v.find(key);
  if (f == nullptr) return {};
  std::vector<std::int64_t> out;
  out.reserve(f->as_array().size());
  for (const auto& e : f->as_array()) out.push_back(e.as_int());
  return out;
}

json int_array_json(const std::vector<std::int64_t>& xs) {
  json_array arr;
  arr.reserve(xs.size());
  for (auto x : xs) arr.emplace_back(x);
  return json(std::move(arr));
}

/// Top-k selection by descending score, ties broken exactly like the
/// historical CLI code (std::partial_sort over the index array with a
/// score-only comparator) so the committed goldens are reproduced
/// bit-for-bit.
std::vector<bc_entry> top_entries(const std::vector<double>& score,
                                  std::int64_t top) {
  const auto k = static_cast<std::size_t>(std::max<std::int64_t>(top, 0));
  std::vector<std::size_t> idx(score.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(
      idx.begin(),
      idx.begin() + static_cast<std::ptrdiff_t>(std::min(k, idx.size())),
      idx.end(),
      [&](std::size_t a, std::size_t b) { return score[a] > score[b]; });
  std::vector<bc_entry> out;
  out.reserve(std::min(k, idx.size()));
  for (std::size_t i = 0; i < std::min(k, idx.size()); ++i) {
    out.push_back({static_cast<std::int64_t>(idx[i]), score[idx[i]]});
  }
  return out;
}

/// Per-request view of the auto-tuner: resolves the mode once, reuses
/// the serve layer's cached plan when the context carries one, probes
/// the graph and picks inline otherwise. get() is nullptr under "fixed"
/// — the historical code path, untouched.
class tuned_plan {
 public:
  tuned_plan(const graph::any_csr& g, const exec_params& ex,
             const run_context& ctx, obs::recorder* rec)
      : mode_(tune::resolve_tune_mode(ex.tune)) {
    if (mode_ == tune::tune_mode::fixed) return;
    if (ctx.plan != nullptr) {
      shared_ = ctx.plan;
    } else {
      local_ = tune::pick_knobs(tune::profile_for_mode(mode_),
                                graph::compute_graph_stats(g));
    }
    tune::tag_plan(rec, mode_, *get());
  }
  tuned_plan(const tuned_plan&) = delete;
  tuned_plan& operator=(const tuned_plan&) = delete;

  [[nodiscard]] const tune::knob_plan* get() const {
    if (mode_ == tune::tune_mode::fixed) return nullptr;
    return shared_ != nullptr ? shared_ : &local_;
  }

 private:
  tune::tune_mode mode_;
  const tune::knob_plan* shared_ = nullptr;
  tune::knob_plan local_;
};

json entries_json(const std::vector<bc_entry>& entries) {
  json_array arr;
  arr.reserve(entries.size());
  for (const auto& e : entries) {
    arr.emplace_back(json_object{{"vertex", json(e.vertex)},
                                 {"score", json(e.score)}});
  }
  return json(std::move(arr));
}

}  // namespace

// ---------------------------------------------------------------------------
// status

const char* status_name(status s) {
  switch (s) {
    case status::ok: return "ok";
    case status::bad_request: return "bad_request";
    case status::not_found: return "not_found";
    case status::too_large: return "too_large";
    case status::overloaded: return "overloaded";
    case status::deadline_exceeded: return "deadline_exceeded";
    case status::shutting_down: return "shutting_down";
    case status::internal: return "internal";
  }
  return "internal";
}

status status_from_name(const std::string& name) {
  for (status s : {status::ok, status::bad_request, status::not_found,
                   status::too_large, status::overloaded,
                   status::deadline_exceeded, status::shutting_down,
                   status::internal}) {
    if (name == status_name(s)) return s;
  }
  MICG_CHECK(false, "unknown status name: " + name);
  return status::internal;  // unreachable
}

// ---------------------------------------------------------------------------
// exec_params

rt::exec exec_params::to_exec() const { return resolve_exec(*this, {}); }

rt::exec resolve_exec(const exec_params& p, const run_context& ctx) {
  MICG_CHECK(p.threads >= 1 && p.threads <= 4096,
             "threads must be in [1, 4096]");
  MICG_CHECK(p.chunk >= 1, "chunk must be >= 1");
  MICG_CHECK(p.shards >= 1 && p.shards <= graph::max_shards,
             "shards must be in [1, 256]");
  rt::exec e;
  e.kind = rt::backend_from_name(p.backend);
  e.threads = p.threads;
  if (ctx.max_threads > 0 && e.threads > ctx.max_threads) {
    e.threads = ctx.max_threads;
  }
  e.chunk = p.chunk;
  e.shards = p.shards;
  e.pool = ctx.pool;
  e.rec = ctx.rec;
  return e;
}

json to_json(const exec_params& p) {
  json out(json_object{{"backend", json(p.backend)},
                       {"threads", json(p.threads)},
                       {"chunk", json(p.chunk)},
                       {"shards", json(p.shards)}});
  // Only when set: keeps the serialization byte-identical for clients
  // that predate the tuner.
  if (!p.tune.empty()) out.set("tune", json(p.tune));
  return out;
}

exec_params exec_params_from_json(const json& v, const exec_params& dflt) {
  exec_params p = dflt;
  p.backend = get_string(v, "backend", dflt.backend);
  p.threads = static_cast<int>(get_int(v, "threads", dflt.threads));
  p.chunk = get_int(v, "chunk", dflt.chunk);
  p.shards = static_cast<int>(get_int(v, "shards", dflt.shards));
  p.tune = get_string(v, "tune", dflt.tune);
  return p;
}

exec_params exec_params_from_args(const arg_parser& args,
                                  const exec_params& dflt) {
  exec_params p = dflt;
  p.backend = args.flag("backend", dflt.backend);
  p.threads = static_cast<int>(args.flag_int("threads", dflt.threads));
  p.chunk = args.flag_int("chunk", dflt.chunk);
  p.shards = static_cast<int>(args.flag_int("shards", dflt.shards));
  p.tune = args.flag("tune", dflt.tune);
  return p;
}

// ---------------------------------------------------------------------------
// info

info_response run(const graph::any_csr& g, const info_request& req,
                  const run_context& ctx) {
  MICG_CHECK(req.shards >= 1 && req.shards <= graph::max_shards,
             "shards must be in [1, 256]");
  info_response r;
  r.layout = graph::layout_name(g.layout());
  // Degree columns via the memoizable one-sweep probe (graph/stats.hpp)
  // — same arithmetic as the retired compute_degree_stats call, so the
  // committed goldens are byte-identical.
  const auto stats = graph::compute_graph_stats(g);
  g.visit([&](const auto& cg) {
    r.num_vertices = static_cast<std::int64_t>(cg.num_vertices());
    r.num_edges = static_cast<std::int64_t>(cg.num_edges());
    r.min_degree = stats.min_degree;
    r.max_degree = stats.max_degree;
    r.avg_degree = stats.avg_degree;
    r.components =
        static_cast<std::int64_t>(graph::count_components(cg));
    r.degeneracy = static_cast<std::int64_t>(color::degeneracy(cg));
    r.bfs_levels_from_mid = graph::count_bfs_levels(
        cg, cg.num_vertices() / 2);
  });
  r.shards = req.shards;
  r.epoch = ctx.snapshot_epoch;
  if (req.shards > 1) {
    const auto sg = graph::make_sharded(g, static_cast<int>(req.shards));
    for (int s = 0; s < sg.shards(); ++s) {
      r.shard_vertices.push_back(sg.part(s).num_owned());
      r.shard_edges.push_back(sg.part(s).owned_directed_edges);
    }
    r.cut_edges = sg.cut_edges();
    r.cut_fraction = sg.cut_fraction();
  } else {
    r.shard_vertices.push_back(r.num_vertices);
    r.shard_edges.push_back(g.num_directed_edges());
  }
  return r;
}

json to_json(const info_response& r) {
  json out(json_object{
      {"layout", json(r.layout)},
      {"num_vertices", json(r.num_vertices)},
      {"num_edges", json(r.num_edges)},
      {"min_degree", json(r.min_degree)},
      {"max_degree", json(r.max_degree)},
      {"avg_degree", json(r.avg_degree)},
      {"components", json(r.components)},
      {"degeneracy", json(r.degeneracy)},
      {"bfs_levels_from_mid", json(r.bfs_levels_from_mid)},
      {"shards", json(r.shards)},
      {"shard_vertices", int_array_json(r.shard_vertices)},
      {"shard_edges", int_array_json(r.shard_edges)},
      {"cut_edges", json(r.cut_edges)},
      {"cut_fraction", json(r.cut_fraction)}});
  if (r.epoch >= 0) out.set("epoch", json(r.epoch));
  return out;
}

info_request info_request_from_json(const json& v) {
  check_params_shape(v);
  info_request req;
  req.shards = get_int(v, "shards", req.shards);
  return req;
}

info_request info_request_from_args(const arg_parser& args) {
  info_request req;
  req.shards = args.flag_int("shards", req.shards);
  return req;
}

// ---------------------------------------------------------------------------
// bfs

bfs_response run(const graph::any_csr& g, const bfs_request& req,
                 const run_context& ctx) {
  bfs_response r;
  micg::bfs::parallel_bfs_options opt;
  opt.ex = resolve_exec(req.ex, ctx);
  MICG_CHECK(req.block >= 1 && req.block <= (1 << 20),
             "block must be in [1, 2^20]");
  opt.block = static_cast<int>(req.block);
  opt.variant = micg::bfs::bfs_variant_from_name(req.variant);
  const std::int64_t n = g.num_vertices();
  const std::int64_t source = req.source < 0 ? n / 2 : req.source;
  MICG_CHECK(n > 0, "bfs on an empty graph");
  MICG_CHECK(source < n, "source vertex out of range");
  for (const auto t : req.targets) {
    MICG_CHECK(t >= 0 && t < n, "target vertex out of range");
  }
  const tuned_plan tp(g, req.ex, ctx, opt.ex.sink());
  const tune::knob_plan* plan = tp.get();
  if (plan != nullptr && opt.ex.shards > 1) {
    // The sharded BSP driver pins its own knobs and ignores the picker;
    // drop the plan *and* re-tag the metrics so they report the fixed
    // knobs that actually ran instead of an auto plan that never applied.
    tune::tag_sharded_pin(opt.ex.sink());
    plan = nullptr;
  }
  if (plan != nullptr) {
    if (plan->chunk > 0) opt.ex.chunk = plan->chunk;
    if (plan->bfs_direction) {
      // The tuner predicts wide, collapsing frontiers: run the
      // direction-optimizing bitmap traversal instead of the requested
      // queue variant. Levels are identical to every variant (tested),
      // so this swap can never change target_levels/reached.
      micg::bfs::direction_options dopt;
      dopt.ex = opt.ex;
      dopt.block = opt.block;
      dopt.alpha = plan->bfs_alpha;
      dopt.beta = plan->bfs_beta;
      dopt.bitmap = plan->bfs_bitmap;
      dopt.partition = plan->bfs_partition;
      g.visit([&](const auto& cg) {
        using VId = typename std::decay_t<decltype(cg)>::vertex_type;
        const auto res = micg::bfs::direction_optimizing_bfs(
            cg, static_cast<VId>(source), dopt);
        r.num_levels = res.num_levels;
        r.reached = static_cast<std::int64_t>(res.reached);
        for (const auto t : req.targets) {
          r.target_levels.push_back(res.level[static_cast<std::size_t>(t)]);
        }
      });
      r.variant = "Direction-optimizing";
      r.source = source;
      r.num_vertices = n;
      return r;
    }
  }
  if (opt.ex.shards > 1) {
    // Sharded BSP path: partition, run the bulk-synchronous driver (one
    // thread pool per shard; the variant's queue flavor does not apply),
    // same levels as every other variant.
    const auto sg = graph::make_sharded(g, opt.ex.shards);
    micg::bfs::sharded_bfs_options sopt;
    sopt.ex = opt.ex;
    const auto res = micg::bfs::sharded_bfs(sg, source, sopt);
    r.num_levels = res.num_levels;
    r.reached = static_cast<std::int64_t>(res.reached);
    for (const auto t : req.targets) {
      r.target_levels.push_back(res.level[static_cast<std::size_t>(t)]);
    }
    r.variant = "BSP-sharded";
    r.source = source;
    r.num_vertices = n;
    return r;
  }
  g.visit([&](const auto& cg) {
    using VId = typename std::decay_t<decltype(cg)>::vertex_type;
    const auto res =
        micg::bfs::parallel_bfs(cg, static_cast<VId>(source), opt);
    r.num_levels = res.num_levels;
    r.reached = static_cast<std::int64_t>(res.reached);
    for (const auto t : req.targets) {
      r.target_levels.push_back(res.level[static_cast<std::size_t>(t)]);
    }
  });
  r.variant = micg::bfs::bfs_variant_name(opt.variant);
  r.source = source;
  r.num_vertices = n;
  return r;
}

json to_json(const bfs_response& r) {
  json out(json_object{{"variant", json(r.variant)},
                       {"source", json(r.source)},
                       {"num_levels", json(r.num_levels)},
                       {"reached", json(r.reached)},
                       {"num_vertices", json(r.num_vertices)}});
  if (!r.target_levels.empty()) {
    out.set("target_levels", int_array_json(r.target_levels));
  }
  return out;
}

bfs_request bfs_request_from_json(const json& v) {
  check_params_shape(v);
  bfs_request req;
  req.ex = exec_params_from_json(v, req.ex);
  req.variant = get_string(v, "variant", req.variant);
  req.source = get_int(v, "source", req.source);
  req.block = get_int(v, "block", req.block);
  req.targets = get_int_array(v, "targets");
  return req;
}

bfs_request bfs_request_from_args(const arg_parser& args) {
  bfs_request req;
  req.ex = exec_params_from_args(args, req.ex);
  req.variant = args.flag("variant", req.variant);
  req.source = args.flag_int("source", req.source);
  req.block = args.flag_int("block", req.block);
  return req;
}

// ---------------------------------------------------------------------------
// approx_dist

json to_json(const dist_response& r) {
  json out(json_object{{"source", json(r.source)},
                       {"target", json(r.target)},
                       {"distance", json(r.distance)},
                       {"approximate", json(r.approximate)},
                       {"landmarks", json(r.landmarks)}});
  if (r.approximate) {
    out.set("lower", json(r.lower));
    out.set("upper", json(r.upper));
  }
  return out;
}

dist_request dist_request_from_json(const json& v) {
  check_params_shape(v);
  dist_request req;
  req.source = get_int(v, "source", req.source);
  req.target = get_int(v, "target", req.target);
  req.exact = get_bool(v, "exact", req.exact);
  return req;
}

// ---------------------------------------------------------------------------
// msbfs

msbfs_response run(const graph::any_csr& g, const msbfs_request& req,
                   const run_context& ctx) {
  msbfs_response r;
  micg::bfs::msbfs_pool::options opt;
  opt.ex = resolve_exec(req.ex, ctx);
  MICG_CHECK(req.lanes >= 1 && req.lanes <= micg::bfs::msbfs_max_lanes,
             "lanes must be in [1, 64]");
  opt.lanes = static_cast<int>(req.lanes);
  const std::int64_t n = g.num_vertices();
  MICG_CHECK(n > 0, "msbfs on an empty graph");
  g.visit([&](const auto& cg) {
    using VId = typename std::decay_t<decltype(cg)>::vertex_type;
    std::vector<VId> sources;
    if (!req.source_list.empty()) {
      sources.reserve(req.source_list.size());
      for (const auto s : req.source_list) {
        MICG_CHECK(s >= 0 && s < n, "source vertex out of range");
        sources.push_back(static_cast<VId>(s));
      }
    } else {
      // Evenly spaced sources — the spacing rule the CLI has always used.
      const std::int64_t k = std::min(std::max<std::int64_t>(req.sources, 0),
                                      n);
      sources.resize(static_cast<std::size_t>(k));
      for (std::int64_t i = 0; i < k; ++i) {
        sources[static_cast<std::size_t>(i)] =
            static_cast<VId>(i * n / std::max<std::int64_t>(k, 1));
      }
    }
    const micg::bfs::msbfs_pool pool(opt);
    std::atomic<long long> batches{0};
    std::atomic<long long> reached{0};
    std::atomic<long long> levels{0};
    pool.for_each_batch(
        cg, std::span<const VId>(sources),
        [&](const micg::bfs::msbfs_batch& batch,
            const micg::bfs::msbfs_result& res) {
          batches.fetch_add(1, std::memory_order_relaxed);
          long long rr = 0, ll = 0;
          for (int lane = 0; lane < batch.lanes; ++lane) {
            rr += static_cast<long long>(
                res.reached[static_cast<std::size_t>(lane)]);
            ll += res.num_levels[static_cast<std::size_t>(lane)];
          }
          reached.fetch_add(rr, std::memory_order_relaxed);
          levels.fetch_add(ll, std::memory_order_relaxed);
        });
    r.sources = static_cast<std::int64_t>(sources.size());
    r.batches = batches.load();
    r.reached_total = reached.load();
    r.levels_total = levels.load();
  });
  r.lanes = opt.lanes;
  r.num_vertices = n;
  return r;
}

json to_json(const msbfs_response& r) {
  return json(json_object{{"sources", json(r.sources)},
                          {"batches", json(r.batches)},
                          {"lanes", json(r.lanes)},
                          {"reached_total", json(r.reached_total)},
                          {"levels_total", json(r.levels_total)},
                          {"num_vertices", json(r.num_vertices)}});
}

msbfs_request msbfs_request_from_json(const json& v) {
  check_params_shape(v);
  msbfs_request req;
  req.ex = exec_params_from_json(v, req.ex);
  req.sources = get_int(v, "sources", req.sources);
  req.lanes = get_int(v, "lanes", req.lanes);
  req.source_list = get_int_array(v, "source_list");
  return req;
}

msbfs_request msbfs_request_from_args(const arg_parser& args) {
  msbfs_request req;
  req.ex = exec_params_from_args(args, req.ex);
  req.sources = args.flag_int("sources", req.sources);
  req.lanes = args.flag_int("lanes", req.lanes);
  return req;
}

// ---------------------------------------------------------------------------
// bc

bc_response run(const graph::any_csr& g, const bc_request& req,
                const run_context& ctx) {
  bc_response r;
  micg::bfs::centrality_options opt;
  opt.ex = resolve_exec(req.ex, ctx);
  opt.sample_sources = req.samples;
  opt.batched = req.batched;
  MICG_CHECK(req.lanes >= 1 && req.lanes <= micg::bfs::msbfs_max_lanes,
             "lanes must be in [1, 64]");
  opt.batch_lanes = static_cast<int>(req.lanes);
  std::vector<double> bc;
  g.visit([&](const auto& cg) {
    bc = micg::bfs::betweenness_centrality(cg, opt);
  });
  r.top = top_entries(bc, req.top);
  r.num_vertices = g.num_vertices();
  return r;
}

json to_json(const bc_response& r) {
  return json(json_object{{"top", entries_json(r.top)},
                          {"num_vertices", json(r.num_vertices)}});
}

bc_request bc_request_from_json(const json& v) {
  check_params_shape(v);
  bc_request req;
  req.ex = exec_params_from_json(v, req.ex);
  req.samples = get_int(v, "samples", req.samples);
  req.batched = get_string(v, "mode", req.batched ? "batched" : "repeated") !=
                "repeated";
  req.lanes = get_int(v, "lanes", req.lanes);
  req.top = get_int(v, "top", req.top);
  return req;
}

bc_request bc_request_from_args(const arg_parser& args) {
  bc_request req;
  req.ex = exec_params_from_args(args, req.ex);
  req.samples = args.flag_int("samples", req.samples);
  req.batched = args.flag("mode", "batched") != "repeated";
  req.lanes = args.flag_int("lanes", req.lanes);
  req.top = args.flag_int("top", req.top);
  return req;
}

// ---------------------------------------------------------------------------
// color

color_response run(const graph::any_csr& g, const color_request& req,
                   const run_context& ctx) {
  color_response r;
  micg::color::iterative_options opt;
  opt.ex = resolve_exec(req.ex, ctx);
  g.visit([&](const auto& cg) {
    if (req.distance2) {
      const auto res = micg::color::iterative_color_distance2(cg, opt);
      r.num_colors = res.num_colors;
      r.rounds = res.rounds;
      r.valid = micg::color::is_valid_distance2_coloring(cg, res.color);
    } else {
      const auto res = micg::color::iterative_color(cg, opt);
      r.num_colors = res.num_colors;
      r.rounds = res.rounds;
      r.valid = micg::color::is_valid_coloring(cg, res.color);
    }
  });
  r.distance2 = req.distance2;
  return r;
}

json to_json(const color_response& r) {
  return json(json_object{{"num_colors", json(r.num_colors)},
                          {"rounds", json(r.rounds)},
                          {"valid", json(r.valid)},
                          {"distance2", json(r.distance2)}});
}

color_request color_request_from_json(const json& v) {
  check_params_shape(v);
  color_request req;
  req.ex = exec_params_from_json(v, req.ex);
  req.distance2 = get_bool(v, "distance2", req.distance2);
  return req;
}

color_request color_request_from_args(const arg_parser& args) {
  color_request req;
  req.ex = exec_params_from_args(args, req.ex);
  // Historical flag shape: `--d2 yes` (any value but "no" enables).
  req.distance2 = args.flag("d2", "no") != "no";
  return req;
}

// ---------------------------------------------------------------------------
// pagerank

pagerank_response run(const graph::any_csr& g, const pagerank_request& req,
                      const run_context& ctx) {
  pagerank_response r;
  micg::irregular::pagerank_options opt;
  opt.ex = resolve_exec(req.ex, ctx);
  MICG_CHECK(req.damping > 0.0 && req.damping < 1.0,
             "damping must be in (0, 1)");
  MICG_CHECK(req.tolerance > 0.0, "tolerance must be > 0");
  MICG_CHECK(req.max_iterations >= 1 && req.max_iterations <= 1000000,
             "max_iterations must be in [1, 10^6]");
  opt.damping = req.damping;
  opt.tolerance = req.tolerance;
  opt.max_iterations = static_cast<int>(req.max_iterations);
  const tuned_plan tp(g, req.ex, ctx, opt.ex.sink());
  const tune::knob_plan* plan = tp.get();
  if (plan != nullptr && opt.ex.shards > 1) {
    // The sharded driver reduces per chunk and pins its own knobs, so
    // the picker's plan never applies there; re-tag the metrics to say
    // so rather than advertising an auto plan that did not run.
    tune::tag_sharded_pin(opt.ex.sink());
    plan = nullptr;
  }
  if (plan != nullptr) {
    // Memory fast-path knobs are bit-identical by construction (the
    // parity tests pin it) and the reductions use deterministic fixed
    // blocks (rt/reduce.hpp), so the tuner is free to flip knobs and
    // chunk per host.
    opt.mem = plan->mem;
    if (plan->chunk > 0) opt.ex.chunk = plan->chunk;
  }
  if (opt.ex.shards > 1) {
    const auto sg = graph::make_sharded(g, opt.ex.shards);
    const auto res = micg::irregular::sharded_pagerank(sg, opt);
    r.iterations = res.iterations;
    r.converged = res.converged;
    r.final_delta = res.final_delta;
    r.top = top_entries(res.rank, req.top);
    return r;
  }
  g.visit([&](const auto& cg) {
    const auto res = micg::irregular::pagerank(cg, opt);
    r.iterations = res.iterations;
    r.converged = res.converged;
    r.final_delta = res.final_delta;
    r.top = top_entries(res.rank, req.top);
  });
  return r;
}

json to_json(const pagerank_response& r) {
  return json(json_object{{"iterations", json(r.iterations)},
                          {"converged", json(r.converged)},
                          {"final_delta", json(r.final_delta)},
                          {"top", entries_json(r.top)}});
}

pagerank_request pagerank_request_from_json(const json& v) {
  check_params_shape(v);
  pagerank_request req;
  req.ex = exec_params_from_json(v, req.ex);
  req.damping = get_double(v, "damping", req.damping);
  req.tolerance = get_double(v, "tolerance", req.tolerance);
  req.max_iterations = get_int(v, "max_iterations", req.max_iterations);
  req.top = get_int(v, "top", req.top);
  return req;
}

pagerank_request pagerank_request_from_args(const arg_parser& args) {
  pagerank_request req;
  req.ex = exec_params_from_args(args, req.ex);
  req.damping = args.flag_double("damping", req.damping);
  req.tolerance = args.flag_double("tolerance", req.tolerance);
  req.max_iterations = args.flag_int("iterations", req.max_iterations);
  req.top = args.flag_int("top", req.top);
  return req;
}

// ---------------------------------------------------------------------------
// sssp

sssp_response run(const graph::any_csr& g, const sssp_request& req,
                  const run_context& ctx) {
  sssp_response r;
  micg::bfs::sssp_options opt;
  opt.ex = resolve_exec(req.ex, ctx);
  const std::int64_t n = g.num_vertices();
  MICG_CHECK(n > 0, "sssp on an empty graph");
  const std::int64_t source = req.source < 0 ? n / 2 : req.source;
  MICG_CHECK(source < n, "source vertex out of range");
  for (const auto t : req.targets) {
    MICG_CHECK(t >= 0 && t < n, "target vertex out of range");
  }
  MICG_CHECK(req.delta >= 0, "delta must be >= 0 (0 = auto-pick)");
  MICG_CHECK(req.max_weight >= 1 &&
                 req.max_weight <=
                     std::numeric_limits<graph::weight_t>::max(),
             "max_weight must be in [1, 2^31)");
  opt.delta = req.delta > 0
                  ? req.delta
                  : tune::pick_sssp_delta(graph::compute_graph_stats(g),
                                          req.max_weight);
  // The knob picker may move the scheduling chunk; like every tuned knob
  // the answer is invariant (any delta, any chunk -> same distances).
  // There is no sharded SSSP driver, so shards never pin knobs here.
  const tuned_plan tp(g, req.ex, ctx, opt.ex.sink());
  if (const tune::knob_plan* plan = tp.get();
      plan != nullptr && plan->chunk > 0) {
    opt.ex.chunk = plan->chunk;
  }
  graph::weight_params wp;
  wp.seed = static_cast<std::uint64_t>(req.weights_seed);
  wp.max_weight = static_cast<graph::weight_t>(req.max_weight);
  g.visit([&](const auto& cg) {
    using VId = typename std::decay_t<decltype(cg)>::vertex_type;
    // Weights are re-derived per request from {seed, endpoints} — O(|E|),
    // and by construction identical across layouts, epochs and
    // compactions, which is what lets weighted queries run against any
    // pinned snapshot without the store materializing them.
    const auto w = graph::generate_weights(cg, wp);
    const auto res = micg::bfs::delta_stepping_sssp(
        cg, static_cast<VId>(source),
        std::span<const graph::weight_t>(w), opt);
    r.reached = res.reached;
    r.relaxations = res.relaxations;
    r.buckets = res.buckets;
    for (const auto t : req.targets) {
      r.target_dists.push_back(res.dist[static_cast<std::size_t>(t)]);
    }
  });
  r.source = source;
  r.delta = opt.delta;
  r.num_vertices = n;
  return r;
}

json to_json(const sssp_response& r) {
  json out(json_object{{"source", json(r.source)},
                       {"delta", json(r.delta)},
                       {"num_vertices", json(r.num_vertices)},
                       {"reached", json(r.reached)},
                       {"relaxations", json(r.relaxations)},
                       {"buckets", json(r.buckets)}});
  if (!r.target_dists.empty()) {
    out.set("target_dists", int_array_json(r.target_dists));
  }
  return out;
}

sssp_request sssp_request_from_json(const json& v) {
  check_params_shape(v);
  sssp_request req;
  req.ex = exec_params_from_json(v, req.ex);
  req.source = get_int(v, "source", req.source);
  req.delta = get_int(v, "delta", req.delta);
  req.weights_seed = get_int(v, "weights", req.weights_seed);
  req.max_weight = get_int(v, "max_weight", req.max_weight);
  req.targets = get_int_array(v, "targets");
  return req;
}

sssp_request sssp_request_from_args(const arg_parser& args) {
  sssp_request req;
  req.ex = exec_params_from_args(args, req.ex);
  req.source = args.flag_int("source", req.source);
  req.delta = args.flag_int("delta", req.delta);
  req.weights_seed = args.flag_int("weights", req.weights_seed);
  req.max_weight = args.flag_int("max-weight", req.max_weight);
  return req;
}

// ---------------------------------------------------------------------------
// cc

cc_response run(const graph::any_csr& g, const cc_request& req,
                const run_context& ctx) {
  cc_response r;
  const rt::exec ex = resolve_exec(req.ex, ctx);
  const std::int64_t n = g.num_vertices();
  MICG_CHECK(n > 0, "cc on an empty graph");
  g.visit([&](const auto& cg) {
    const auto res = graph::parallel_components(cg, ex);
    r.num_components = static_cast<std::int64_t>(res.num_components);
    r.rounds = res.rounds;
    // Labels are canonical smallest-member ids, not dense: count sizes
    // through a map keyed by label.
    std::unordered_map<std::int64_t, std::int64_t> size;
    for (const auto l : res.label) {
      r.largest = std::max(r.largest, ++size[static_cast<std::int64_t>(l)]);
    }
  });
  r.num_vertices = n;
  return r;
}

json to_json(const cc_response& r) {
  return json(json_object{{"num_components", json(r.num_components)},
                          {"largest", json(r.largest)},
                          {"rounds", json(r.rounds)},
                          {"num_vertices", json(r.num_vertices)}});
}

cc_request cc_request_from_json(const json& v) {
  check_params_shape(v);
  cc_request req;
  req.ex = exec_params_from_json(v, req.ex);
  return req;
}

cc_request cc_request_from_args(const arg_parser& args) {
  cc_request req;
  req.ex = exec_params_from_args(args, req.ex);
  return req;
}

// ---------------------------------------------------------------------------
// dispatch

bool is_query_op(const std::string& op) {
  return op == "info" || op == "bfs" || op == "msbfs" || op == "bc" ||
         op == "color" || op == "pagerank" || op == "sssp" || op == "cc";
}

json dispatch_query(const graph::any_csr& g, const std::string& op,
                    const json& params, const run_context& ctx) {
  if (op == "info") {
    return to_json(run(g, info_request_from_json(params), ctx));
  }
  if (op == "bfs") return to_json(run(g, bfs_request_from_json(params), ctx));
  if (op == "msbfs") {
    return to_json(run(g, msbfs_request_from_json(params), ctx));
  }
  if (op == "bc") return to_json(run(g, bc_request_from_json(params), ctx));
  if (op == "color") {
    return to_json(run(g, color_request_from_json(params), ctx));
  }
  if (op == "pagerank") {
    return to_json(run(g, pagerank_request_from_json(params), ctx));
  }
  if (op == "sssp") {
    return to_json(run(g, sssp_request_from_json(params), ctx));
  }
  if (op == "cc") return to_json(run(g, cc_request_from_json(params), ctx));
  MICG_CHECK(false, "unknown query op: " + op);
  return json();  // unreachable
}

}  // namespace micg::api
