// Shared command-line parsing helpers for the micg front ends.
//
// Before the api layer existed, tools/micg_cli.cpp carried its own flag
// splitter, repeated "--flag needs a value" handling, atol-based number
// parsing (which silently accepted "12abc") and extension sniffing. Those
// live here now, unit-tested, and are used by every cmd_* plus the `query`
// client — the flags parse into the same api request structs the server
// dispatches (api.hpp).
//
// Errors raise usage_error (a check_error subclass); CLI front ends catch
// it and print usage, while programmatic callers see a normal exception.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "micg/graph/any_csr.hpp"
#include "micg/support/assert.hpp"

namespace micg::api {

/// User-input error (malformed flag, unknown extension, bad number). The
/// CLI maps it to its usage message + exit 2.
class usage_error : public micg::check_error {
 public:
  using micg::check_error::check_error;
};

/// Strict integer parse: the whole string must be one base-10 integer that
/// fits std::int64_t. Throws usage_error otherwise ("12abc" is an error,
/// unlike std::atol).
std::int64_t parse_int(const std::string& s);

/// parse_int with an inclusive range check.
std::int64_t parse_int_in(const std::string& s, std::int64_t min,
                          std::int64_t max, const std::string& what);

/// Strict double parse (whole string, finite). Throws usage_error.
double parse_double(const std::string& s);

/// Splits argv into positional arguments and --flag VALUE pairs ("-o F" is
/// kept as the flag "out" for compatibility). A flag at the end of the
/// line with no value raises usage_error("flag --x needs a value") — the
/// check that used to be duplicated at every site.
struct arg_parser {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  arg_parser() = default;
  arg_parser(int argc, char** argv, int start);
  explicit arg_parser(const std::vector<std::string>& args);

  [[nodiscard]] bool has_flag(const std::string& name) const;
  /// Last occurrence wins (matches typical CLI override behavior).
  [[nodiscard]] std::string flag(const std::string& name,
                                 const std::string& dflt) const;
  /// Every occurrence, in order (for repeatable flags like --graph).
  [[nodiscard]] std::vector<std::string> flag_all(
      const std::string& name) const;
  [[nodiscard]] std::int64_t flag_int(const std::string& name,
                                      std::int64_t dflt) const;
  [[nodiscard]] double flag_double(const std::string& name,
                                   double dflt) const;
};

/// Graph file formats the tools read and write, chosen by extension.
enum class graph_format {
  matrix_market,  ///< .mtx
  binary,         ///< .micg (self-describing binary CSR, format v2)
};

/// Extension sniffing (".mtx" / ".micg"); throws usage_error on anything
/// else, naming the offending path.
graph_format graph_format_from_path(const std::string& path);

/// Load into whichever layout the file needs (narrowest safe one).
graph::any_csr load_graph(const std::string& path);

/// Save in the format the extension selects.
void save_graph(const std::string& path, const graph::any_csr& g);

}  // namespace micg::api
