#include "micg/api/json.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace micg::api {

// ---------------------------------------------------------------------------
// Accessors

bool json::as_bool() const {
  MICG_CHECK(is_bool(), "json: expected a boolean");
  return std::get<bool>(v_);
}

std::int64_t json::as_int() const {
  if (type() == kind::integer) return std::get<std::int64_t>(v_);
  if (type() == kind::real) {
    const double d = std::get<double>(v_);
    const auto i = static_cast<std::int64_t>(d);
    MICG_CHECK(static_cast<double>(i) == d,
               "json: expected an integer, got a non-integral number");
    return i;
  }
  MICG_CHECK(false, "json: expected a number");
  return 0;  // unreachable
}

double json::as_double() const {
  if (type() == kind::integer) {
    return static_cast<double>(std::get<std::int64_t>(v_));
  }
  MICG_CHECK(type() == kind::real, "json: expected a number");
  return std::get<double>(v_);
}

const std::string& json::as_string() const {
  MICG_CHECK(is_string(), "json: expected a string");
  return std::get<std::string>(v_);
}

const json_array& json::as_array() const {
  MICG_CHECK(is_array(), "json: expected an array");
  return std::get<json_array>(v_);
}

const json_object& json::as_object() const {
  MICG_CHECK(is_object(), "json: expected an object");
  return std::get<json_object>(v_);
}

const json* json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<json_object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const json& json::at(std::string_view key) const {
  const json* v = find(key);
  MICG_CHECK(v != nullptr,
             "json: missing required field \"" + std::string(key) + "\"");
  return *v;
}

void json::set(std::string_view key, json value) {
  if (is_null()) v_ = json_object{};
  MICG_CHECK(is_object(), "json: set() on a non-object");
  auto& obj = std::get<json_object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::string(key), std::move(value));
}

// ---------------------------------------------------------------------------
// Serialization

void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_value(std::string& out, const json& v) {
  switch (v.type()) {
    case json::kind::null:
      out += "null";
      return;
    case json::kind::boolean:
      out += v.as_bool() ? "true" : "false";
      return;
    case json::kind::integer:
      out += std::to_string(v.as_int());
      return;
    case json::kind::real: {
      const double d = v.as_double();
      // JSON has no Inf/NaN; emit null like every mainstream serializer.
      if (!std::isfinite(d)) {
        out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
      return;
    }
    case json::kind::string:
      json_append_escaped(out, v.as_string());
      return;
    case json::kind::array: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        append_value(out, e);
      }
      out += ']';
      return;
    }
    case json::kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        json_append_escaped(out, k);
        out += ':';
        append_value(out, e);
      }
      out += '}';
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Parsing

class parser {
 public:
  parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  json parse_document() {
    json v = parse_value();
    skip_ws();
    MICG_CHECK(pos_ == text_.size(), err("trailing garbage after document"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return "json parse: " + what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    MICG_CHECK(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    MICG_CHECK(consume(c),
               err(std::string("expected '") + c + "'"));
  }

  void literal(std::string_view word) {
    MICG_CHECK(text_.substr(pos_, word.size()) == word,
               err("invalid literal"));
    pos_ += word.size();
  }

  json parse_value() {
    MICG_CHECK(depth_ < max_depth_, err("nesting too deep"));
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return json(parse_string());
      case 't': literal("true"); return json(true);
      case 'f': literal("false"); return json(false);
      case 'n': literal("null"); return json(nullptr);
      default: return parse_number();
    }
  }

  json parse_object() {
    expect('{');
    ++depth_;
    json_object obj;
    if (!consume('}')) {
      do {
        skip_ws();
        MICG_CHECK(pos_ < text_.size() && text_[pos_] == '"',
                   err("expected object key"));
        std::string key = parse_string();
        expect(':');
        obj.emplace_back(std::move(key), parse_value());
      } while (consume(','));
      expect('}');
    }
    --depth_;
    return json(std::move(obj));
  }

  json parse_array() {
    expect('[');
    ++depth_;
    json_array arr;
    if (!consume(']')) {
      do {
        arr.push_back(parse_value());
      } while (consume(','));
      expect(']');
    }
    --depth_;
    return json(std::move(arr));
  }

  std::string parse_string() {
    // pos_ is at the opening quote (peek in callers skipped whitespace).
    MICG_CHECK(pos_ < text_.size() && text_[pos_] == '"',
               err("expected string"));
    ++pos_;
    std::string out;
    while (true) {
      MICG_CHECK(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        MICG_CHECK(pos_ < text_.size(), err("unterminated escape"));
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            MICG_CHECK(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                MICG_CHECK(false, err("bad \\u escape digit"));
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // combined; each half encodes independently, which round-trips
            // the escapes the emitters produce: only \u00XX controls).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            MICG_CHECK(false, err("unknown escape"));
        }
      } else {
        MICG_CHECK(static_cast<unsigned char>(c) >= 0x20,
                   err("unescaped control character"));
        out += c;
      }
    }
  }

  json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    MICG_CHECK(!tok.empty() && tok != "-", err("invalid number"));
    // JSON forbids leading zeros: after the sign, "0" is only valid as the
    // whole integer part ("0.5" yes, "01" no).
    std::string_view digits = tok;
    if (digits.front() == '-') digits.remove_prefix(1);
    MICG_CHECK(!(digits.size() >= 2 && digits[0] == '0' &&
                 std::isdigit(static_cast<unsigned char>(digits[1])) != 0),
               err("invalid number"));
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), value);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        return json(value);
      }
      // Integer overflow (or stray sign): fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const std::string copy(tok);  // strtod needs NUL termination
    const double d = std::strtod(copy.c_str(), &end);
    MICG_CHECK(end == copy.c_str() + copy.size() && errno == 0 &&
                   std::isfinite(d),
               err("invalid number"));
    return json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  int max_depth_;
};

}  // namespace

std::string json::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

json json::parse(std::string_view text, int max_depth) {
  return parser(text, max_depth).parse_document();
}

}  // namespace micg::api
