#include "micg/api/parse.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "micg/graph/io_binary.hpp"
#include "micg/graph/io_mm.hpp"

namespace micg::api {

std::int64_t parse_int(const std::string& s) {
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || s.empty()) {
    throw usage_error("not an integer: '" + s + "'");
  }
  return value;
}

std::int64_t parse_int_in(const std::string& s, std::int64_t min,
                          std::int64_t max, const std::string& what) {
  const std::int64_t v = parse_int(s);
  if (v < min || v > max) {
    throw usage_error(what + " must be in [" + std::to_string(min) + ", " +
                      std::to_string(max) + "], got " + s);
  }
  return v;
}

double parse_double(const std::string& s) {
  if (s.empty()) throw usage_error("not a number: ''");
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno != 0 || !std::isfinite(d)) {
    throw usage_error("not a number: '" + s + "'");
  }
  return d;
}

arg_parser::arg_parser(int argc, char** argv, int start) {
  std::vector<std::string> args;
  for (int i = start; i < argc; ++i) args.emplace_back(argv[i]);
  *this = arg_parser(args);
}

arg_parser::arg_parser(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      if (i + 1 >= args.size()) {
        throw usage_error("flag " + a + " needs a value");
      }
      flags.emplace_back(a.substr(2), args[++i]);
    } else if (a == "-o") {
      if (i + 1 >= args.size()) throw usage_error("-o needs a value");
      flags.emplace_back("out", args[++i]);
    } else {
      positional.push_back(a);
    }
  }
}

bool arg_parser::has_flag(const std::string& name) const {
  for (const auto& [k, v] : flags) {
    if (k == name) return true;
  }
  return false;
}

std::string arg_parser::flag(const std::string& name,
                             const std::string& dflt) const {
  std::string result = dflt;
  for (const auto& [k, v] : flags) {
    if (k == name) result = v;
  }
  return result;
}

std::vector<std::string> arg_parser::flag_all(const std::string& name) const {
  std::vector<std::string> result;
  for (const auto& [k, v] : flags) {
    if (k == name) result.push_back(v);
  }
  return result;
}

std::int64_t arg_parser::flag_int(const std::string& name,
                                  std::int64_t dflt) const {
  const auto v = flag(name, "");
  if (v.empty() && !has_flag(name)) return dflt;
  try {
    return parse_int(v);
  } catch (const usage_error&) {
    throw usage_error("flag --" + name + ": not an integer: '" + v + "'");
  }
}

double arg_parser::flag_double(const std::string& name, double dflt) const {
  const auto v = flag(name, "");
  if (v.empty() && !has_flag(name)) return dflt;
  try {
    return parse_double(v);
  } catch (const usage_error&) {
    throw usage_error("flag --" + name + ": not a number: '" + v + "'");
  }
}

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

graph_format graph_format_from_path(const std::string& path) {
  if (ends_with(path, ".mtx")) return graph_format::matrix_market;
  if (ends_with(path, ".micg")) return graph_format::binary;
  throw usage_error("unknown graph file extension: " + path);
}

graph::any_csr load_graph(const std::string& path) {
  switch (graph_format_from_path(path)) {
    case graph_format::matrix_market:
      return graph::load_matrix_market_any(path);
    case graph_format::binary:
      return graph::load_binary_any(path);
  }
  throw usage_error("unknown graph file extension: " + path);  // unreachable
}

void save_graph(const std::string& path, const graph::any_csr& g) {
  switch (graph_format_from_path(path)) {
    case graph_format::matrix_market:
      graph::save_matrix_market(path, g);
      return;
    case graph_format::binary:
      graph::save_binary(path, g);
      return;
  }
}

}  // namespace micg::api
