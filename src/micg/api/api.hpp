// micg::api — the stable programmatic surface of the library's kernels.
//
// Every operation is a plain request struct (kernel options + an embedded
// execution configuration) paired with a plain response struct. Three
// front ends drive the same structs through the same run() overloads:
//
//   * tools/micg_cli.cpp parses flags into a request (the *_request_from_args
//     helpers below) and formats the response for stdout;
//   * micg::serve deserializes the identical request from a wire JSON
//     object (*_request_from_json) and serializes the response back;
//   * library users fill the struct directly.
//
// One code path: a CLI `micg bfs` and a served {"op":"bfs"} execute the
// same run(graph, bfs_request) — the CLI goldens pin that the refactor
// changed no output.
//
// Error envelope: run() overloads throw micg::check_error on invalid
// parameters; the serve layer maps exceptions to the uniform status codes
// below, and every wire response carries {"status": <name>, ...}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "micg/api/json.hpp"
#include "micg/api/parse.hpp"
#include "micg/graph/any_csr.hpp"
#include "micg/rt/exec.hpp"

namespace micg::tune {
struct knob_plan;
}

namespace micg::api {

// ---------------------------------------------------------------------------
// Status envelope

/// Uniform result status shared by every response (wire and in-process).
enum class status {
  ok,
  bad_request,        ///< malformed frame/JSON/parameters
  not_found,          ///< unknown graph or operation
  too_large,          ///< request frame exceeds the size limit
  overloaded,         ///< admission queue full — graceful shedding
  deadline_exceeded,  ///< request waited past its deadline
  shutting_down,      ///< server is draining; no new work admitted
  internal,           ///< unexpected server-side failure
};

/// Wire name ("ok", "bad_request", ...).
const char* status_name(status s);

/// Inverse of status_name; throws micg::check_error on unknown names.
status status_from_name(const std::string& name);

// ---------------------------------------------------------------------------
// Execution parameters

/// The rt::exec subset that crosses API boundaries (backend by wire name;
/// pool/scheduler/recorder stay process-local and are bound by run()).
struct exec_params {
  std::string backend = "OpenMP-dynamic";
  int threads = 4;
  std::int64_t chunk = 64;
  /// Shards for the bulk-synchronous drivers (graph/shard.hpp): 1 runs
  /// the plain kernels; N > 1 partitions the graph and runs the sharded
  /// BFS/pagerank drivers with `threads` workers per shard. Wire field
  /// "shards", CLI flag --shards.
  int shards = 1;
  /// Auto-tuning mode: "fixed", "auto", "calibrate", or "" (defer to
  /// $MICG_TUNE, then "fixed"). Under auto/calibrate the knob picker
  /// (micg::tune) may override memory fast-path knobs, the BFS frontier
  /// representation and the chunk size — never the answer, which is
  /// bit-identical across modes by construction. Wire field "tune", CLI
  /// flag --tune.
  std::string tune;

  /// Resolve to an rt::exec (validates the backend name and ranges).
  [[nodiscard]] rt::exec to_exec() const;
};

/// Process-local execution bindings a front end applies on top of a
/// request's exec_params. The CLI uses the defaults (global pool, global
/// recorder fallback); the server pins each in-flight request to its own
/// pool (the global pool rejects concurrent multi-thread regions) and
/// caps per-query parallelism.
struct run_context {
  rt::thread_pool* pool = nullptr;  ///< nullptr = thread_pool::global()
  int max_threads = 0;              ///< clamp request threads; 0 = no cap
  obs::recorder* rec = nullptr;     ///< explicit metrics sink
  /// Snapshot epoch of the graph being queried; the serve layer sets it
  /// from the pinned snapshot so responses (info) can report which
  /// version answered. Negative = unversioned (CLI, direct library use).
  std::int64_t snapshot_epoch = -1;
  /// Pre-computed knob plan for the graph being queried (the serve layer
  /// caches one per snapshot epoch). nullptr makes non-fixed tune modes
  /// probe the graph and pick knobs inline; ignored under "fixed".
  const tune::knob_plan* plan = nullptr;
};

/// exec_params + run_context -> the rt::exec the kernels receive.
rt::exec resolve_exec(const exec_params& p, const run_context& ctx);

json to_json(const exec_params& p);
/// Reads the optional "backend"/"threads"/"chunk" fields of `v` (an
/// object; unknown fields are ignored for forward compatibility).
exec_params exec_params_from_json(const json& v, const exec_params& dflt);
/// Reads --backend/--threads/--chunk flags.
exec_params exec_params_from_args(const arg_parser& args,
                                  const exec_params& dflt);

// ---------------------------------------------------------------------------
// info

struct info_request {
  /// Report the edge-balanced shard partition at this count (per-shard
  /// sizes, cut edges). 1 = the trivial single-shard view.
  std::int64_t shards = 1;
};

struct info_response {
  std::string layout;
  std::int64_t num_vertices = 0;
  std::int64_t num_edges = 0;
  std::int64_t min_degree = 0;
  std::int64_t max_degree = 0;
  double avg_degree = 0.0;
  std::int64_t components = 0;
  std::int64_t degeneracy = 0;
  /// BFS levels of a traversal from vertex |V|/2 (Table I convention).
  std::int64_t bfs_levels_from_mid = 0;
  /// Shard partition report at the requested count.
  std::int64_t shards = 1;
  std::vector<std::int64_t> shard_vertices;  ///< owned vertices per shard
  std::vector<std::int64_t> shard_edges;     ///< owned adjacency entries
  std::int64_t cut_edges = 0;  ///< undirected edges crossing shards
  double cut_fraction = 0.0;
  /// Snapshot epoch of the graph answered from (run_context); -1 when the
  /// graph is not versioned (CLI, direct library use).
  std::int64_t epoch = -1;
};

info_response run(const graph::any_csr& g, const info_request& req,
                  const run_context& ctx = {});
json to_json(const info_response& r);
info_request info_request_from_json(const json& v);
info_request info_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// bfs

struct bfs_request {
  exec_params ex;
  std::string variant = "OpenMP-Block-relaxed";
  /// Source vertex; negative selects the |V|/2 default the CLI has always
  /// used.
  std::int64_t source = -1;
  /// Block size of the block-accessed queue.
  std::int64_t block = 32;
  /// Vertices whose BFS level the response reports (distance queries);
  /// empty reports none. Out-of-range ids are a bad request.
  std::vector<std::int64_t> targets;
};

struct bfs_response {
  std::string variant;
  std::int64_t source = 0;
  std::int64_t num_levels = 0;
  std::int64_t reached = 0;
  std::int64_t num_vertices = 0;
  /// Level per requested target (-1 = unreachable), aligned with
  /// bfs_request::targets.
  std::vector<std::int64_t> target_levels;
};

bfs_response run(const graph::any_csr& g, const bfs_request& req,
                 const run_context& ctx = {});
json to_json(const bfs_response& r);
bfs_request bfs_request_from_json(const json& v);
bfs_request bfs_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// approx_dist
//
// Point-to-point distance answered from a serving-side landmark index
// (bfs/landmark.hpp) in O(k), with an exact-traversal fallback. There is
// no run(graph, dist_request) overload: the answer depends on the
// epoch-keyed cache the serve layer owns, so micg::serve::service
// implements the op and only the (de)serialization lives here.

struct dist_request {
  /// Negative selects the |V|/2 default, like bfs.
  std::int64_t source = -1;
  std::int64_t target = 0;
  /// Force the exact traversal even when the landmark bounds would do.
  bool exact = false;
};

struct dist_response {
  std::int64_t source = 0;
  std::int64_t target = 0;
  /// The exact distance — or, when `approximate`, the landmark upper
  /// bound (the best O(k) estimate). -1 = provably unreachable.
  std::int64_t distance = -1;
  /// True when answered from landmark bounds without a traversal; the
  /// exact distance then lies in [lower, upper] and distance == upper.
  bool approximate = false;
  std::int64_t lower = -1;
  std::int64_t upper = -1;
  /// Pivots consulted; 0 when the answer came from an exact traversal
  /// on a graph with no landmark index yet.
  std::int64_t landmarks = 0;
};

json to_json(const dist_response& r);
dist_request dist_request_from_json(const json& v);

// ---------------------------------------------------------------------------
// msbfs

struct msbfs_request {
  exec_params ex;
  /// Number of evenly spaced sources when `source_list` is empty.
  std::int64_t sources = 64;
  std::int64_t lanes = 64;
  /// Explicit sources (wire clients batching real queries); overrides
  /// `sources` when non-empty.
  std::vector<std::int64_t> source_list;
};

struct msbfs_response {
  std::int64_t sources = 0;
  std::int64_t batches = 0;
  std::int64_t lanes = 0;
  std::int64_t reached_total = 0;
  std::int64_t levels_total = 0;
  std::int64_t num_vertices = 0;
};

msbfs_response run(const graph::any_csr& g, const msbfs_request& req,
                   const run_context& ctx = {});
json to_json(const msbfs_response& r);
msbfs_request msbfs_request_from_json(const json& v);
msbfs_request msbfs_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// bc (betweenness centrality)

struct bc_request {
  exec_params ex;
  std::int64_t samples = 0;  ///< 0 = exact (all sources)
  bool batched = true;
  std::int64_t lanes = 64;
  std::int64_t top = 5;  ///< entries reported in the response
};

struct bc_entry {
  std::int64_t vertex = 0;
  double score = 0.0;
};

struct bc_response {
  std::vector<bc_entry> top;
  std::int64_t num_vertices = 0;
};

bc_response run(const graph::any_csr& g, const bc_request& req,
                const run_context& ctx = {});
json to_json(const bc_response& r);
bc_request bc_request_from_json(const json& v);
bc_request bc_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// color

struct color_request {
  exec_params ex{.backend = "OpenMP-dynamic",
                 .threads = 4,
                 .chunk = 100,
                 .shards = 1,
                 .tune = {}};
  bool distance2 = false;
};

struct color_response {
  std::int64_t num_colors = 0;
  std::int64_t rounds = 0;
  bool valid = false;
  bool distance2 = false;
};

color_response run(const graph::any_csr& g, const color_request& req,
                   const run_context& ctx = {});
json to_json(const color_response& r);
color_request color_request_from_json(const json& v);
color_request color_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// pagerank

struct pagerank_request {
  exec_params ex;
  double damping = 0.85;
  double tolerance = 1e-8;
  std::int64_t max_iterations = 200;
  std::int64_t top = 5;
};

struct pagerank_response {
  std::int64_t iterations = 0;
  bool converged = false;
  double final_delta = 0.0;
  std::vector<bc_entry> top;  ///< highest-ranked vertices
};

pagerank_response run(const graph::any_csr& g, const pagerank_request& req,
                      const run_context& ctx = {});
json to_json(const pagerank_response& r);
pagerank_request pagerank_request_from_json(const json& v);
pagerank_request pagerank_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// sssp (weighted single-source shortest paths)

struct sssp_request {
  exec_params ex;
  /// Negative selects the |V|/2 default, like bfs.
  std::int64_t source = -1;
  /// Delta-stepping bucket width; 0 picks one from the graph's stats
  /// (tune::pick_sssp_delta). Every value >= 1 yields identical
  /// distances — the knob only moves the speed. Wire field "delta".
  std::int64_t delta = 0;
  /// Weight-stream seed (graph/weighted.hpp): weights are derived from
  /// {seed, endpoint pair}, so equal seeds mean bit-identical weights in
  /// every layout and snapshot epoch. Wire field "weights", CLI flag
  /// --weights.
  std::int64_t weights_seed = 1;
  /// Inclusive weight range upper bound (lower bound is pinned at 1).
  std::int64_t max_weight = 255;
  /// Vertices whose distance the response reports; empty reports none.
  std::vector<std::int64_t> targets;
};

struct sssp_response {
  std::int64_t source = 0;
  std::int64_t delta = 0;  ///< the width actually used (after auto-pick)
  std::int64_t num_vertices = 0;
  std::int64_t reached = 0;
  std::int64_t relaxations = 0;
  std::int64_t buckets = 0;
  /// Distance per requested target (-1 = unreachable), aligned with
  /// sssp_request::targets.
  std::vector<std::int64_t> target_dists;
};

sssp_response run(const graph::any_csr& g, const sssp_request& req,
                  const run_context& ctx = {});
json to_json(const sssp_response& r);
sssp_request sssp_request_from_json(const json& v);
sssp_request sssp_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// cc (connected components)

struct cc_request {
  exec_params ex;
};

struct cc_response {
  std::int64_t num_components = 0;
  std::int64_t largest = 0;  ///< vertices in the largest component
  std::int64_t rounds = 0;   ///< hook+compress iterations until fixpoint
  std::int64_t num_vertices = 0;
};

cc_response run(const graph::any_csr& g, const cc_request& req,
                const run_context& ctx = {});
json to_json(const cc_response& r);
cc_request cc_request_from_json(const json& v);
cc_request cc_request_from_args(const arg_parser& args);

// ---------------------------------------------------------------------------
// Generic dispatch (the server's single entry point)

/// Query operations dispatchable by name over a loaded graph.
bool is_query_op(const std::string& op);

/// Parse `params` as `op`'s request type, run it against `g`, and return
/// the response as JSON. Throws micg::check_error for bad parameters and
/// unknown ops (the serve layer maps those to bad_request / not_found).
/// This is the exact code path the CLI subcommands use — the structs in
/// between are identical.
json dispatch_query(const graph::any_csr& g, const std::string& op,
                    const json& params, const run_context& ctx = {});

}  // namespace micg::api
