// Cilk-style fork-join work-stealing scheduler.
//
// This is the substrate behind the paper's "Cilk Plus" variants and behind
// the TBB-style partitioners: per-worker Chase–Lev deques, LIFO local
// execution, randomized FIFO stealing (child-stealing / help-first, the
// policy the TBB scheduler and the Cilk Plus runtime both approximate).
//
// Usage:
//   task_scheduler sched(pool, nthreads);
//   sched.run([&] {
//     task_group g(sched);
//     g.spawn([&] { left(); });
//     right();
//     g.wait();                 // or rely on ~task_group()
//   });
//
// cilk_for() in cilk_for.hpp layers the recursive loop decomposition of the
// `cilk_for` construct on top of task_group.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "micg/rt/thread_pool.hpp"
#include "micg/rt/ws_deque.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::rt {

class task_group;

/// Aggregate scheduler statistics for one run(); used by tests and by the
/// machine-model calibration.
struct scheduler_stats {
  std::uint64_t spawned = 0;   ///< tasks pushed to deques
  std::uint64_t stolen = 0;    ///< tasks executed by a worker other than the spawner
  std::uint64_t executed = 0;  ///< tasks executed in total
};

class task_scheduler {
 public:
  /// Schedules on `nthreads` workers of `pool`.
  task_scheduler(thread_pool& pool, int nthreads);
  ~task_scheduler();

  task_scheduler(const task_scheduler&) = delete;
  task_scheduler& operator=(const task_scheduler&) = delete;

  /// Execute `root` as the root task on worker 0; all workers steal until
  /// the root (and therefore every task_group inside it) completes.
  void run(const std::function<void()>& root);

  [[nodiscard]] int nthreads() const { return nthreads_; }

  /// Statistics accumulated since construction (sums across run() calls).
  [[nodiscard]] scheduler_stats stats() const;

  /// True when called from inside a task that is being executed by a
  /// different worker than the one that spawned it. This is the signal the
  /// auto-partitioner uses to split further (TBB's split-on-steal rule).
  static bool current_task_was_stolen();

 private:
  friend class task_group;

  struct task {
    std::function<void()> fn;
    std::atomic<std::int64_t>* pending;
    int spawner;
  };

  void spawn_task(task_group& group, std::function<void()> fn);
  void wait_group(task_group& group);

  /// Pop-or-steal one task and execute it. Returns false when nothing was
  /// found anywhere.
  bool try_execute_one(int self);
  void execute(task* t, int self);

  thread_pool& pool_;
  const int nthreads_;
  std::vector<std::unique_ptr<ws_deque<task*>>> deques_;
  // Arrays (not vectors): padded<atomic> is neither copyable nor movable.
  std::unique_ptr<padded<std::atomic<std::uint64_t>>[]> steal_count_;
  std::unique_ptr<padded<std::atomic<std::uint64_t>>[]> spawn_count_;
  std::unique_ptr<padded<std::atomic<std::uint64_t>>[]> exec_count_;
  std::atomic<bool> done_{false};
};

/// A set of spawned tasks that is awaited together (the `cilk_sync` scope).
/// The destructor waits, so a task_group can never be abandoned with tasks
/// in flight.
class task_group {
 public:
  explicit task_group(task_scheduler& sched) : sched_(sched) {}
  ~task_group() { wait(); }

  task_group(const task_group&) = delete;
  task_group& operator=(const task_group&) = delete;

  /// Spawn `fn` to run asynchronously (the `cilk_spawn` edge).
  void spawn(std::function<void()> fn) {
    sched_.spawn_task(*this, std::move(fn));
  }

  /// Block until every task spawned through this group has completed,
  /// helping to execute queued tasks meanwhile (the `cilk_sync` edge).
  void wait() { sched_.wait_group(*this); }

 private:
  friend class task_scheduler;
  task_scheduler& sched_;
  std::atomic<std::int64_t> pending_{0};
};

/// Run `a` and `b` potentially in parallel and wait for both.
template <typename A, typename B>
void parallel_invoke(task_scheduler& sched, A&& a, B&& b) {
  task_group g(sched);
  g.spawn(std::forward<A>(a));
  b();
  g.wait();
}

}  // namespace micg::rt
