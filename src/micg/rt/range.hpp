// TBB-style splittable iteration range.
#pragma once

#include <cstdint>

#include "micg/support/assert.hpp"

namespace micg::rt {

/// Half-open index range with a grain size; splittable in two. The TBB-style
/// partitioners (partitioner.hpp) decide when to split it.
class blocked_range {
 public:
  blocked_range(std::int64_t begin, std::int64_t end, std::int64_t grain = 1)
      : begin_(begin), end_(end), grain_(grain > 0 ? grain : 1) {
    MICG_CHECK(begin <= end, "blocked_range: begin must not exceed end");
  }

  [[nodiscard]] std::int64_t begin() const { return begin_; }
  [[nodiscard]] std::int64_t end() const { return end_; }
  [[nodiscard]] std::int64_t size() const { return end_ - begin_; }
  [[nodiscard]] std::int64_t grain() const { return grain_; }
  [[nodiscard]] bool empty() const { return begin_ >= end_; }

  /// A range splits while it holds more than one grain of work.
  [[nodiscard]] bool is_divisible() const { return size() > grain_; }

  /// Split in half: this keeps the left part, the right part is returned.
  blocked_range split() {
    MICG_ASSERT(is_divisible());
    const std::int64_t mid = begin_ + size() / 2;
    blocked_range right(mid, end_, grain_);
    end_ = mid;
    return right;
  }

 private:
  std::int64_t begin_;
  std::int64_t end_;
  std::int64_t grain_;
};

}  // namespace micg::rt
