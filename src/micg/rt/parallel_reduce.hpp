// TBB-style parallel_reduce and parallel_scan-free helpers built on the
// exec facade: map a range to per-chunk partial values, fold them with a
// commutative-associative op. Used by PageRank's delta accumulation and
// available as public API.
#pragma once

#include <cstdint>

#include "micg/rt/exec.hpp"
#include "micg/rt/hyperobject.hpp"

namespace micg::rt {

/// Reduce `body(i)` over [0, n): `body(begin, end) -> T` computes a
/// chunk-partial value; `Reduce(T, T) -> T` folds partials (must be
/// associative and commutative); `identity` seeds every partial chain.
template <typename T, typename Body, typename Reduce>
T parallel_reduce(const exec& e, std::int64_t n, T identity,
                  const Body& body, const Reduce& reduce) {
  struct monoid {
    T init;
    const Reduce* op;
    T identity() const { return init; }
    T reduce(T a, T b) const { return (*op)(std::move(a), std::move(b)); }
  };
  reducer<T, monoid> acc(e.threads, monoid{identity, &reduce});
  for_range(e, n, [&](std::int64_t b, std::int64_t en, int) {
    acc.combine(body(b, en));
  });
  return acc.get();
}

/// Sum `body(begin, end)` chunk results over [0, n).
template <typename T, typename Body>
T parallel_sum(const exec& e, std::int64_t n, const Body& body) {
  return parallel_reduce(
      e, n, T{}, body, [](T a, T b) { return a + b; });
}

}  // namespace micg::rt
