#include "micg/rt/scheduler.hpp"

#include <thread>

#include "micg/rt/worker.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/rng.hpp"

namespace micg::rt {

namespace {
// Spawner id of the task currently executing on this thread; -1 when not
// inside a task. Used for TBB-style split-on-steal detection.
thread_local int tls_current_spawner = -1;
// Per-thread victim-selection RNG; seeded lazily from the thread id hash.
thread_local xoshiro256ss tls_victim_rng{
    0x9e3779b97f4a7c15ULL ^
    std::hash<std::thread::id>{}(std::this_thread::get_id())};
}  // namespace

task_scheduler::task_scheduler(thread_pool& pool, int nthreads)
    : pool_(pool), nthreads_(nthreads) {
  MICG_CHECK(nthreads >= 1, "scheduler needs at least one worker");
  pool_.reserve(nthreads);
  deques_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    deques_.push_back(std::make_unique<ws_deque<task*>>());
  }
  const auto slots = static_cast<std::size_t>(nthreads);
  steal_count_ =
      std::make_unique<padded<std::atomic<std::uint64_t>>[]>(slots);
  spawn_count_ =
      std::make_unique<padded<std::atomic<std::uint64_t>>[]>(slots);
  exec_count_ =
      std::make_unique<padded<std::atomic<std::uint64_t>>[]>(slots);
}

task_scheduler::~task_scheduler() = default;

scheduler_stats task_scheduler::stats() const {
  scheduler_stats s;
  for (int i = 0; i < nthreads_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    s.stolen += steal_count_[idx].value.load(std::memory_order_relaxed);
    s.spawned += spawn_count_[idx].value.load(std::memory_order_relaxed);
    s.executed += exec_count_[idx].value.load(std::memory_order_relaxed);
  }
  return s;
}

bool task_scheduler::current_task_was_stolen() {
  return tls_current_spawner >= 0 &&
         tls_current_spawner != this_worker_id();
}

void task_scheduler::run(const std::function<void()>& root) {
  done_.store(false, std::memory_order_relaxed);
  pool_.run(nthreads_, [this, &root](int worker) {
    if (worker == 0) {
      root();
      done_.store(true, std::memory_order_release);
    } else {
      int idle_spins = 0;
      while (!done_.load(std::memory_order_acquire)) {
        if (try_execute_one(worker)) {
          idle_spins = 0;
        } else if (++idle_spins > 16) {
          std::this_thread::yield();
          idle_spins = 0;
        }
      }
    }
  });
}

void task_scheduler::spawn_task(task_group& group, std::function<void()> fn) {
  const int self = this_worker_id();
  MICG_CHECK(self >= 0 && self < nthreads_,
             "spawn must be called from a scheduler worker");
  group.pending_.fetch_add(1, std::memory_order_relaxed);
  auto* t = new task{std::move(fn), &group.pending_, self};
  spawn_count_[static_cast<std::size_t>(self)].value.fetch_add(
      1, std::memory_order_relaxed);
  deques_[static_cast<std::size_t>(self)]->push(t);
}

void task_scheduler::wait_group(task_group& group) {
  const int self = this_worker_id();
  if (group.pending_.load(std::memory_order_acquire) == 0) return;
  MICG_CHECK(self >= 0 && self < nthreads_,
             "wait must be called from a scheduler worker");
  int idle_spins = 0;
  while (group.pending_.load(std::memory_order_acquire) > 0) {
    if (try_execute_one(self)) {
      idle_spins = 0;
    } else if (++idle_spins > 16) {
      std::this_thread::yield();
      idle_spins = 0;
    }
  }
}

bool task_scheduler::try_execute_one(int self) {
  const auto self_idx = static_cast<std::size_t>(self);
  // Local LIFO first: depth-first execution keeps the working set hot.
  if (auto t = deques_[self_idx]->pop()) {
    execute(*t, self);
    return true;
  }
  if (nthreads_ == 1) return false;
  // Randomized stealing: up to 2*nthreads probe attempts per call.
  for (int attempt = 0; attempt < 2 * nthreads_; ++attempt) {
    const auto victim = static_cast<int>(tls_victim_rng.below(
        static_cast<std::uint64_t>(nthreads_)));
    if (victim == self) continue;
    if (auto t = deques_[static_cast<std::size_t>(victim)]->steal()) {
      steal_count_[self_idx].value.fetch_add(1, std::memory_order_relaxed);
      execute(*t, self);
      return true;
    }
  }
  return false;
}

void task_scheduler::execute(task* t, int self) {
  exec_count_[static_cast<std::size_t>(self)].value.fetch_add(
      1, std::memory_order_relaxed);
  const int saved = tls_current_spawner;
  tls_current_spawner = t->spawner;
  t->fn();
  tls_current_spawner = saved;
  t->pending->fetch_sub(1, std::memory_order_acq_rel);
  delete t;
}

}  // namespace micg::rt
