// Thread-local worker identity.
//
// Every thread participating in a micgraph parallel region has a dense
// worker id in [0, nthreads). Algorithms use it to index per-thread state
// (the paper's OpenMP and Cilk worker-id variants); the TLS and reducer
// substrates use it internally.
#pragma once

namespace micg::rt {

namespace detail {
// -1 outside any parallel region.
inline thread_local int tls_worker_id = -1;
}  // namespace detail

/// Dense id of the calling worker inside the innermost parallel region,
/// or -1 when called outside one.
inline int this_worker_id() { return detail::tls_worker_id; }

/// RAII setter used by the thread pool; not for user code.
class worker_id_scope {
 public:
  explicit worker_id_scope(int id) : saved_(detail::tls_worker_id) {
    detail::tls_worker_id = id;
  }
  ~worker_id_scope() { detail::tls_worker_id = saved_; }
  worker_id_scope(const worker_id_scope&) = delete;
  worker_id_scope& operator=(const worker_id_scope&) = delete;

 private:
  int saved_;
};

}  // namespace micg::rt
