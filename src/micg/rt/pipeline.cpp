#include "micg/rt/pipeline.hpp"

#include <optional>

#include "micg/support/assert.hpp"

namespace micg::rt {

void pipeline::add_filter(filter_mode mode, filter_fn fn) {
  MICG_CHECK(static_cast<bool>(fn), "filter function must be callable");
  filters_.push_back({mode, std::move(fn)});
}

namespace {

struct work_item {
  std::uint64_t seq;
  void* data;
};

/// Shared pipeline state. One mutex guards everything: pipelines carry
/// coarse items (that is the point of the construct), so the critical
/// sections are tiny relative to filter work.
struct pipeline_state {
  std::mutex mu;
  std::condition_variable cv;

  // Per (non-source) stage: pending items and serial-execution state.
  struct stage_state {
    std::deque<work_item> ready;          // any-order candidates
    std::map<std::uint64_t, work_item> in_order;  // for serial_in_order
    std::uint64_t next_seq = 0;  // next sequence a serial_in_order stage emits
    bool busy = false;           // a serial stage is executing
  };
  std::vector<stage_state> stages;  // index 0 unused (source)

  bool source_busy = false;
  bool source_done = false;
  std::uint64_t next_source_seq = 0;
  int tokens_in_flight = 0;
  int max_tokens = 1;
  int executing = 0;  // filters currently running (any stage)
};

}  // namespace

void pipeline::run(thread_pool& pool, int threads, int max_tokens) {
  MICG_CHECK(filters_.size() >= 2,
             "pipeline needs at least a source and a sink filter");
  MICG_CHECK(threads >= 1, "need at least one thread");
  MICG_CHECK(max_tokens >= 1, "need at least one token");

  pipeline_state st;
  st.stages.resize(filters_.size());
  st.max_tokens = max_tokens;

  auto worker = [&](int) {
    std::unique_lock<std::mutex> lock(st.mu);
    for (;;) {
      // 1) Prefer draining downstream stages (keeps tokens recycling).
      std::optional<std::size_t> stage_idx;
      std::optional<work_item> item;
      for (std::size_t s = filters_.size(); s-- > 1;) {
        auto& ss = st.stages[s];
        const auto mode = filters_[s].mode;
        if (mode == filter_mode::parallel) {
          if (!ss.ready.empty()) {
            item = ss.ready.front();
            ss.ready.pop_front();
            stage_idx = s;
            break;
          }
        } else if (!ss.busy) {
          if (mode == filter_mode::serial_out_of_order &&
              !ss.ready.empty()) {
            item = ss.ready.front();
            ss.ready.pop_front();
            ss.busy = true;
            stage_idx = s;
            break;
          }
          if (mode == filter_mode::serial_in_order &&
              !ss.in_order.empty() &&
              ss.in_order.begin()->first == ss.next_seq) {
            item = ss.in_order.begin()->second;
            ss.in_order.erase(ss.in_order.begin());
            ss.busy = true;
            stage_idx = s;
            break;
          }
        }
      }

      // 2) Otherwise pump the source if a token is available.
      bool run_source = false;
      if (!stage_idx.has_value()) {
        if (!st.source_done && !st.source_busy &&
            st.tokens_in_flight < st.max_tokens) {
          st.source_busy = true;
          run_source = true;
        } else if (st.source_done && st.tokens_in_flight == 0 &&
                   st.executing == 0) {
          st.cv.notify_all();
          return;  // stream fully drained
        } else {
          st.cv.wait(lock);
          continue;
        }
      }

      ++st.executing;
      if (run_source) {
        const std::uint64_t seq = st.next_source_seq;
        lock.unlock();
        void* data = filters_[0].fn(nullptr);
        lock.lock();
        --st.executing;
        st.source_busy = false;
        if (data == nullptr) {
          st.source_done = true;
        } else {
          ++st.next_source_seq;
          ++st.tokens_in_flight;
          auto& next = st.stages[1];
          if (filters_[1].mode == filter_mode::serial_in_order) {
            next.in_order.emplace(seq, work_item{seq, data});
          } else {
            next.ready.push_back(work_item{seq, data});
          }
        }
        st.cv.notify_all();
        continue;
      }

      const std::size_t s = *stage_idx;
      work_item wi = *item;
      lock.unlock();
      void* out = filters_[s].fn(wi.data);
      lock.lock();
      --st.executing;
      auto& ss = st.stages[s];
      if (filters_[s].mode != filter_mode::parallel) {
        ss.busy = false;
        if (filters_[s].mode == filter_mode::serial_in_order) {
          ++ss.next_seq;
        }
      }
      if (s + 1 < filters_.size()) {
        auto& next = st.stages[s + 1];
        if (filters_[s + 1].mode == filter_mode::serial_in_order) {
          next.in_order.emplace(wi.seq, work_item{wi.seq, out});
        } else {
          next.ready.push_back(work_item{wi.seq, out});
        }
      } else {
        --st.tokens_in_flight;  // item retired at the sink
      }
      st.cv.notify_all();
    }
  };

  pool.run(threads, worker);
}

}  // namespace micg::rt
