// Recursive parallel loop over the work-stealing scheduler — the analogue
// of the `cilk_for` construct (§II-B of the paper): the iteration space is
// split in halves by spawned tasks until a grain size is reached, and
// leaves execute the body.
#pragma once

#include <cstdint>

#include "micg/rt/scheduler.hpp"
#include "micg/rt/worker.hpp"

namespace micg::rt {

/// Default grain: Cilk Plus sizes chunks so the task count is proportional
/// to the worker count (§IV-A2); 8 leaves per worker balances steal traffic
/// against load balance.
inline std::int64_t cilk_default_grain(std::int64_t n, int nthreads) {
  const std::int64_t leaves = static_cast<std::int64_t>(nthreads) * 8;
  std::int64_t grain = (n + leaves - 1) / leaves;
  return grain < 1 ? 1 : grain;
}

namespace detail {
template <typename Body>
void cilk_for_rec(task_scheduler& sched, std::int64_t begin, std::int64_t end,
                  std::int64_t grain, const Body& body) {
  if (end - begin <= grain) {
    if (begin < end) body(begin, end, this_worker_id());
    return;
  }
  const std::int64_t mid = begin + (end - begin) / 2;
  task_group g(sched);
  g.spawn([&sched, mid, end, grain, &body] {
    cilk_for_rec(sched, mid, end, grain, body);
  });
  cilk_for_rec(sched, begin, mid, grain, body);
  g.wait();  // sync the spawned right half (helps execute queued leaves)
}
}  // namespace detail

/// Parallel loop over [begin, end). `body(chunk_begin, chunk_end, worker)`
/// is invoked on grain-sized leaves. Must be called from inside
/// task_scheduler::run(); see cilk_parallel_for for the one-shot wrapper.
template <typename Body>
void cilk_for(task_scheduler& sched, std::int64_t begin, std::int64_t end,
              std::int64_t grain, const Body& body) {
  if (begin >= end) return;
  if (grain <= 0) grain = cilk_default_grain(end - begin, sched.nthreads());
  detail::cilk_for_rec(sched, begin, end, grain, body);
}

/// One-shot wrapper: enters a scheduling region, runs the loop, returns.
template <typename Body>
void cilk_parallel_for(task_scheduler& sched, std::int64_t begin,
                       std::int64_t end, std::int64_t grain,
                       const Body& body) {
  sched.run([&] { cilk_for(sched, begin, end, grain, body); });
}

}  // namespace micg::rt
