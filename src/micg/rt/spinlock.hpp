// Test-and-test-and-set spinlock with yield backoff.
//
// Used where the critical section is a handful of instructions (frontier
// merges, conflict-list appends in tests). BasicLockable, so it composes
// with std::lock_guard / std::scoped_lock (CP.20: RAII, never bare
// lock()/unlock()).
#pragma once

#include <atomic>
#include <thread>

namespace micg::rt {

class spinlock {
 public:
  void lock() {
    int spins = 0;
    for (;;) {
      // Test first to avoid hammering the line with RMWs.
      if (!flag_.load(std::memory_order_relaxed) &&
          !flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // This library routinely oversubscribes cores (121 threads on a
      // 31-core part in the paper; many threads on few cores in CI), so
      // yield early instead of burning the quantum.
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace micg::rt
