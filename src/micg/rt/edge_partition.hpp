// Edge-balanced loop partitioning.
//
// for_range() splits [0, n) by *item count*, which serializes on skewed
// degree distributions: an RMAT hub row can hold more edges than the rest
// of a chunk combined, so the worker that draws it becomes the critical
// path (the load imbalance §V-B of the paper measures). for_range_edges()
// splits the same vertex range so every chunk owns roughly equal *edges*,
// found by binary-searching the CSR offset array — the same number of
// chunks a vertex-count split at exec::chunk would produce, with the
// boundaries moved. Chunks then flow through the configured backend
// (dynamic, guided, cilk, tbb, ...) exactly like any other loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "micg/rt/exec.hpp"
#include "micg/support/assert.hpp"

namespace micg::rt {

/// How a kernel splits its vertex loop across workers.
enum class partition_mode {
  vertex,  ///< equal vertex counts per chunk (the historical behavior)
  edge,    ///< equal edge counts per chunk (binary search on xadj)
};

inline const char* partition_mode_name(partition_mode m) {
  return m == partition_mode::edge ? "edge" : "vertex";
}

/// Memory-hierarchy fast-path knobs shared by the irregular kernels and
/// bottom-up BFS. The defaults are the fast path; scalar_mem_opts() is
/// the pre-optimization behavior for ablations and parity tests.
struct mem_opts {
  partition_mode partition = partition_mode::edge;
  /// Software-prefetch distance in *edges* ahead of the gather cursor;
  /// 0 (the default) disables prefetching. Off by default because
  /// out-of-order hosts already hide the gather latency and the extra
  /// instructions cost 10-25% there (docs/performance.md); the knob is
  /// for in-order targets like the paper's KNF. Sweep it with
  /// bench/ablate_memlat before enabling on a new machine.
  int prefetch_distance = 0;
  /// Use the vector gather path when compiled in (see support/simd.hpp).
  bool simd = true;
};

/// The pre-optimization configuration: per-vertex chunks, no prefetch,
/// scalar gathers.
inline mem_opts scalar_mem_opts() {
  return {.partition = partition_mode::vertex,
          .prefetch_distance = 0,
          .simd = false};
}

/// Run `body(vertex_begin, vertex_end, worker)` over [0, n) with chunk
/// boundaries placed so each chunk owns ~equal entries of the CSR offset
/// array `xadj` (size n+1, non-decreasing, xadj[0] == 0). Falls back to
/// an even vertex split when the graph has no edges.
template <class EId, typename Body>
void for_range_edges(const exec& e, std::int64_t n, const EId* xadj,
                     const Body& body) {
  if (n <= 0) return;
  const auto total = static_cast<std::int64_t>(xadj[n]);
  const std::int64_t chunk = e.chunk > 0 ? e.chunk : 1;
  const std::int64_t nchunks =
      std::min<std::int64_t>(n, (n + chunk - 1) / chunk);
  if (total <= 0 || nchunks <= 1) {
    for_range(e, n, body);
    return;
  }

  // bounds[c] = first vertex of chunk c; chunk c covers edge indices
  // ~[c*total/nchunks, (c+1)*total/nchunks). A hub row heavier than a
  // whole chunk gets a chunk of its own (rows are never split).
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(nchunks) + 1);
  bounds.front() = 0;
  bounds.back() = n;
  for (std::int64_t c = 1; c < nchunks; ++c) {
    // 128-bit product: total*c can exceed 2^63 on Graph500-scale inputs.
    const auto target = static_cast<EId>(
        static_cast<std::int64_t>(static_cast<__int128>(total) * c / nchunks));
    const auto* it = std::upper_bound(xadj, xadj + n + 1, target);
    auto v = static_cast<std::int64_t>(it - xadj) - 1;
    v = std::clamp(v, bounds[static_cast<std::size_t>(c) - 1], n);
    bounds[static_cast<std::size_t>(c)] = v;
  }

  exec chunked = e;
  chunked.chunk = 1;  // one dispatch unit = one edge-balanced chunk
  for_range(chunked, nchunks,
            [&](std::int64_t cb, std::int64_t ce, int worker) {
              const std::int64_t vb = bounds[static_cast<std::size_t>(cb)];
              const std::int64_t ve = bounds[static_cast<std::size_t>(ce)];
              if (vb < ve) body(vb, ve, worker);
            });
}

/// Dispatch a vertex loop under either partitioning mode.
template <class EId, typename Body>
void for_range_graph(const exec& e, std::int64_t n, const EId* xadj,
                     partition_mode mode, const Body& body) {
  if (mode == partition_mode::edge) {
    for_range_edges(e, n, xadj, body);
  } else {
    for_range(e, n, body);
  }
}

}  // namespace micg::rt
