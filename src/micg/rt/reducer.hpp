// Reduction hyperobjects.
//
// reducer_max mirrors the Cilk Plus reducer_max the paper's coloring code
// uses for maxcolor (§IV-A2): per-worker views with a write-mostly update
// and a final merge. The same object doubles as the manual per-thread
// maximum used by the OpenMP variant.
#pragma once

#include <vector>

#include "micg/rt/worker.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::rt {

template <typename T>
class reducer_max {
 public:
  reducer_max(int max_workers, T identity)
      : identity_(identity),
        views_(static_cast<std::size_t>(max_workers),
               padded<T>(identity)) {
    MICG_CHECK(max_workers >= 1, "need at least one worker slot");
  }

  /// Fold `v` into the calling worker's view (write-only semantics).
  void update(T v) {
    const int w = this_worker_id();
    MICG_CHECK(w >= 0 && w < static_cast<int>(views_.size()),
               "reducer update outside a parallel region");
    T& view = views_[static_cast<std::size_t>(w)].value;
    if (v > view) view = v;
  }

  /// Merge all views. Call only when quiescent.
  [[nodiscard]] T get() const {
    T best = identity_;
    for (const auto& s : views_) {
      if (s.value > best) best = s.value;
    }
    return best;
  }

  /// Reset every view to the identity.
  void reset() {
    for (auto& s : views_) s.value = identity_;
  }

 private:
  T identity_;
  std::vector<padded<T>> views_;
};

}  // namespace micg::rt
