// Parallel prefix sums (exclusive scan) over the exec facade.
//
// Two-pass blocked scan: per-chunk partial sums, a sequential scan over
// the (few) chunk totals, then a second parallel pass rewriting each
// chunk with its offset. Parallelism is over *chunk indices*, so any
// backend's range splitting is safe. This is the "complex book keeping"
// substrate §IV-C alludes to for compacting partially-filled queue
// blocks (see bfs/compact_frontier.hpp for that use).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "micg/rt/exec.hpp"

namespace micg::rt {

/// Exclusive prefix sum of values[0..n) in place: values[i] becomes
/// sum(values[0..i)). Returns the total.
template <typename T>
T parallel_exclusive_scan(const exec& e, std::vector<T>& values) {
  const auto n = static_cast<std::int64_t>(values.size());
  if (n == 0) return T{};

  const std::int64_t chunk =
      std::max<std::int64_t>(e.chunk > 0 ? e.chunk : 1024, 1);
  const std::int64_t nchunks = (n + chunk - 1) / chunk;
  std::vector<T> partial(static_cast<std::size_t>(nchunks), T{});

  exec pass = e;
  pass.chunk = 1;  // items are whole chunks already

  // Pass 1: per-chunk sums.
  for_range(pass, nchunks, [&](std::int64_t b, std::int64_t en, int) {
    for (std::int64_t c = b; c < en; ++c) {
      const std::int64_t cbegin = c * chunk;
      const std::int64_t cend = std::min(cbegin + chunk, n);
      T sum{};
      for (std::int64_t j = cbegin; j < cend; ++j) {
        sum += values[static_cast<std::size_t>(j)];
      }
      partial[static_cast<std::size_t>(c)] = sum;
    }
  });

  // Sequential scan of chunk totals (nchunks is small).
  T running{};
  for (auto& p : partial) {
    const T next = running + p;
    p = running;
    running = next;
  }

  // Pass 2: local exclusive scan per chunk, seeded with the chunk offset.
  for_range(pass, nchunks, [&](std::int64_t b, std::int64_t en, int) {
    for (std::int64_t c = b; c < en; ++c) {
      const std::int64_t cbegin = c * chunk;
      const std::int64_t cend = std::min(cbegin + chunk, n);
      T acc = partial[static_cast<std::size_t>(c)];
      for (std::int64_t j = cbegin; j < cend; ++j) {
        const T v = values[static_cast<std::size_t>(j)];
        values[static_cast<std::size_t>(j)] = acc;
        acc += v;
      }
    }
  });
  return running;
}

}  // namespace micg::rt
