// Thread-local storage substrates: the TBB-style enumerable_thread_specific
// and combinable, and the Cilk-style holder view (§II-B/C, §IV-A).
//
// Slots are indexed by the dense worker id, padded to a cache line each,
// and lazily constructed on first access — exactly the "at most one object
// per thread is created on demand" semantics the paper describes for ETS
// and holders.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "micg/rt/worker.hpp"
#include "micg/support/assert.hpp"
#include "micg/support/cacheline.hpp"

namespace micg::rt {

/// One lazily-constructed T per worker. T is built by `factory` on the
/// first local() call of each worker (so memory is touched by the thread
/// that will use it).
template <typename T>
class enumerable_thread_specific {
 public:
  explicit enumerable_thread_specific(
      int max_workers, std::function<T()> factory = [] { return T{}; })
      : factory_(std::move(factory)),
        slots_(static_cast<std::size_t>(max_workers)) {
    MICG_CHECK(max_workers >= 1, "need at least one worker slot");
  }

  /// The calling worker's instance, constructed on first use.
  T& local() {
    const int w = this_worker_id();
    MICG_CHECK(w >= 0 && w < static_cast<int>(slots_.size()),
               "local() called outside a parallel region or beyond capacity");
    auto& slot = slots_[static_cast<std::size_t>(w)].value;
    if (!slot.has_value()) slot.emplace(factory_());
    return *slot;
  }

  /// Number of instances constructed so far. Call only when quiescent.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : slots_) n += s.value.has_value() ? 1 : 0;
    return n;
  }

  /// Visit every constructed instance. Call only when quiescent.
  template <typename F>
  void for_each(F&& f) {
    for (auto& s : slots_) {
      if (s.value.has_value()) f(*s.value);
    }
  }

  /// Fold the constructed instances with `op` starting from `init`.
  /// Call only when quiescent.
  template <typename U, typename Op>
  U combine(U init, Op&& op) {
    for (auto& s : slots_) {
      if (s.value.has_value()) init = op(std::move(init), *s.value);
    }
    return init;
  }

  /// Destroy all instances (the next local() re-constructs).
  void clear() {
    for (auto& s : slots_) s.value.reset();
  }

 private:
  std::function<T()> factory_;
  std::vector<padded<std::optional<T>>> slots_;
};

/// TBB-style combinable: per-thread value plus a final combine().
template <typename T>
class combinable {
 public:
  explicit combinable(
      int max_workers, std::function<T()> factory = [] { return T{}; })
      : ets_(max_workers, std::move(factory)) {}

  T& local() { return ets_.local(); }

  /// Reduce all per-thread values with the binary op; `identity` seeds the
  /// fold. Call only when quiescent.
  template <typename Op>
  T combine(T identity, Op&& op) {
    return ets_.combine(std::move(identity), std::forward<Op>(op));
  }

  void clear() { ets_.clear(); }

 private:
  enumerable_thread_specific<T> ets_;
};

/// Cilk-style holder: thread-local views created on demand by the monoid's
/// identity; views are *not* merged (a holder's reduce keeps the left
/// view), matching the Cilk Plus holder used for scratch space (§IV-A2).
template <typename T>
class holder {
 public:
  explicit holder(
      int max_workers, std::function<T()> identity = [] { return T{}; })
      : ets_(max_workers, std::move(identity)) {}

  /// This worker's view.
  T& view() { return ets_.local(); }

  /// Number of views that were materialized.
  [[nodiscard]] std::size_t views_created() const { return ets_.size(); }

 private:
  enumerable_thread_specific<T> ets_;
};

}  // namespace micg::rt
