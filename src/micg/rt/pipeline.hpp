// TBB-style pipeline (§II-C of the paper: "The flow graph construct
// allows to define tasks that are repeatedly executed by taking some data
// as an input and producing an output. It allows to easily set up a
// pipeline of tasks ... typically, video compression, graphical
// rendering, and data processing").
//
// A pipeline is a linear chain of filters. The first filter is the
// source: called with nullptr, it returns a new item or nullptr for
// end-of-stream. Later filters transform the item (returning it or a
// replacement); the last filter's return value is discarded. Filters
// declare a mode:
//   * parallel          — any number of items in flight simultaneously;
//   * serial_in_order   — one item at a time, in production order;
//   * serial_out_of_order — one item at a time, any order.
// run() processes the stream with at most `max_tokens` items in flight on
// `threads` workers of the pool (the classic token-limited design).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "micg/rt/thread_pool.hpp"

namespace micg::rt {

enum class filter_mode {
  parallel,
  serial_in_order,
  serial_out_of_order,
};

class pipeline {
 public:
  using filter_fn = std::function<void*(void*)>;

  /// Append a filter. The first added filter is the source.
  void add_filter(filter_mode mode, filter_fn fn);

  [[nodiscard]] std::size_t num_filters() const { return filters_.size(); }

  /// Run the stream to exhaustion. Requires at least two filters (a
  /// source and a sink) and max_tokens >= 1.
  void run(thread_pool& pool, int threads, int max_tokens);

 private:
  struct filter {
    filter_mode mode;
    filter_fn fn;
  };
  std::vector<filter> filters_;
};

}  // namespace micg::rt
