#include "micg/rt/shard_exec.hpp"

#include <exception>
#include <thread>
#include <utility>

namespace micg::rt {

void bsp_barrier::arrive_and_wait(std::function<void()> at_barrier) {
  std::unique_lock<std::mutex> lock(mu_);
  if (at_barrier) hooks_.push_back(std::move(at_barrier));
  const std::uint64_t gen = generation_;
  if (++arrived_ == parties_) {
    // Last arriver: run this generation's hooks while everyone else is
    // parked — the single-threaded window the mailbox swap relies on.
    for (auto& hook : hooks_) hook();
    hooks_.clear();
    arrived_ = 0;
    ++generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

shard_group::shard_group(int shards, const exec& proto)
    : proto_(proto), barrier_(shards) {
  MICG_CHECK(shards >= 1, "shard group needs at least one shard");
  proto_.pool = nullptr;
  proto_.sched = nullptr;
  proto_.affinity = nullptr;
  pools_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    pools_.push_back(std::make_unique<thread_pool>(proto_.threads));
  }
}

void shard_group::run(const std::function<void(int)>& driver) {
  const int n = shards();
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto drive = [&](int s) {
    try {
      driver(s);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> helpers;
  helpers.reserve(static_cast<std::size_t>(n) - 1);
  for (int s = 1; s < n; ++s) {
    helpers.emplace_back(drive, s);
  }
  drive(0);
  for (auto& t : helpers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace micg::rt
