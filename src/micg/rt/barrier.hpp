// Centralized generation-counting barrier.
//
// The layered BFS and the coloring rounds are bulk-synchronous; this barrier
// is the synchronization point between phases when a persistent parallel
// region is used. Spin-then-yield so it stays correct (if slower) when the
// machine is oversubscribed. A generation counter (rather than a
// sense-reversing thread-local) keeps the barrier safe when one thread uses
// several barrier objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "micg/support/assert.hpp"

namespace micg::rt {

class sense_barrier {
 public:
  explicit sense_barrier(int participants) : participants_(participants) {
    MICG_CHECK(participants >= 1, "barrier needs at least one participant");
  }

  /// Block until all `participants` threads have arrived.
  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      count_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      int spins = 0;
      while (generation_.load(std::memory_order_acquire) == gen) {
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  [[nodiscard]] int participants() const { return participants_; }

 private:
  const int participants_;
  std::atomic<int> count_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace micg::rt
