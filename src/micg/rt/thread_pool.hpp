// Persistent fork-join thread pool.
//
// All three programming-model substrates (OpenMP-style loops, Cilk-style
// work stealing, TBB-style partitioned ranges) execute on this pool, so a
// thread-count sweep exercises identical OS threads for every model — the
// property the paper relies on when comparing runtimes (§V).
//
// Workers are created once and parked on a condition variable between
// parallel regions (CP.41: minimize thread creation). The pool deliberately
// supports oversubscription: the paper runs 121 threads on 31 cores, and CI
// machines may have a single core.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace micg::rt {

class thread_pool {
 public:
  /// A pool that can host parallel regions of up to `max_threads` workers
  /// (including the caller, which always participates as worker 0).
  explicit thread_pool(int max_threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Process-wide pool. Sized from the MICG_MAX_THREADS environment
  /// variable when set, otherwise 128 (enough for the paper's 121-thread
  /// sweeps). Grown on demand by run().
  static thread_pool& global();

  /// Execute `fn(worker_id)` on workers 0..nthreads-1 and return when all
  /// have finished. The calling thread runs worker 0. Not reentrant: a
  /// worker must not call run() on the same pool (nested parallelism is
  /// provided by the work-stealing scheduler instead).
  void run(int nthreads, const std::function<void(int)>& fn);

  /// Current capacity (including the caller's slot).
  [[nodiscard]] int max_threads() const;

  /// Ensure capacity for regions of `nthreads` workers.
  void reserve(int nthreads);

 private:
  void worker_main(int id);
  void spawn_locked(int target_helpers);

  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers park here between regions
  std::condition_variable done_cv_;  // caller waits here for completion
  std::vector<std::thread> threads_;

  // Job state. Published under mu_ (epoch bump is the release point for
  // parked workers); completion is counted with an atomic so finishing
  // workers do not serialize on the mutex longer than needed.
  const std::function<void(int)>* job_fn_ = nullptr;
  int job_threads_ = 0;
  std::uint64_t job_epoch_ = 0;
  std::exception_ptr job_error_;  ///< first helper exception, if any
  std::atomic<int> job_remaining_{0};
  bool stopping_ = false;
  bool in_region_ = false;
};

}  // namespace micg::rt
