#include "micg/rt/exec.hpp"

#include "micg/support/assert.hpp"

namespace micg::rt {

const char* backend_name(backend b) {
  switch (b) {
    case backend::omp_static: return "OpenMP-static";
    case backend::omp_static_chunked: return "OpenMP-static-chunked";
    case backend::omp_dynamic: return "OpenMP-dynamic";
    case backend::omp_guided: return "OpenMP-guided";
    case backend::cilk_tid: return "CilkPlus";
    case backend::cilk_holder: return "CilkPlus-holder";
    case backend::tbb_simple: return "TBB-simple";
    case backend::tbb_auto: return "TBB-auto";
    case backend::tbb_affinity: return "TBB-affinity";
  }
  return "unknown";
}

backend backend_from_name(const std::string& name) {
  for (backend b : all_backends()) {
    if (name == backend_name(b)) return b;
  }
  MICG_CHECK(false, "unknown backend name: " + name);
  return backend::omp_dynamic;  // unreachable
}

std::vector<backend> all_backends() {
  return {backend::omp_static,  backend::omp_static_chunked,
          backend::omp_dynamic, backend::omp_guided,
          backend::cilk_tid,    backend::cilk_holder,
          backend::tbb_simple,  backend::tbb_auto,
          backend::tbb_affinity};
}

}  // namespace micg::rt
